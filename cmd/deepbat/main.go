// Command deepbat trains, inspects, and serves DeepBAT surrogate models.
//
// Subcommands:
//
//	train  — pre-train a surrogate on a synthetic workload and save it
//	decide — load a model and print the optimized configuration for a window
//	serve  — closed-loop trace replay with a chosen controller
//
// Run "deepbat <subcommand> -h" for flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepbat"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "decide":
		err = cmdDecide(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "deepbat: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepbat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deepbat <train|decide|serve> [flags]

  train  -trace azure -hours 12 -hour-seconds 60 -samples 1500 -epochs 15 -seqlen 64 -slo 0.1 -out model.gob
  decide -model model.gob -trace twitter -hour 3 -slo 0.1
  serve  -model model.gob -trace alibaba -decider deepbat|batch|oracle|static -slo 0.1 [-finetune]`)
}

// traceFlags registers the shared trace-selection flags.
func traceFlags(fs *flag.FlagSet) (name *string, hours *int, hourSeconds *float64, seed *int64) {
	name = fs.String("trace", "azure", "workload: azure|twitter|alibaba|synthetic")
	hours = fs.Int("hours", 12, "paper-hours of trace to generate")
	hourSeconds = fs.Float64("hour-seconds", 60, "simulated seconds per paper-hour")
	seed = fs.Int64("seed", 1, "trace generation seed")
	return
}

func genTrace(name string, hours int, hourSeconds float64, seed int64) (*deepbat.Trace, error) {
	return deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: name, Hours: hours, HourSeconds: hourSeconds, Seed: seed,
	})
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name, hours, hourSeconds, seed := traceFlags(fs)
	samples := fs.Int("samples", 1500, "training samples to label")
	epochs := fs.Int("epochs", 15, "training epochs")
	seqLen := fs.Int("seqlen", 64, "model input window length")
	slo := fs.Float64("slo", 0.1, "latency SLO in seconds")
	out := fs.String("out", "model.gob", "output model path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := genTrace(*name, *hours, *hourSeconds, *seed)
	if err != nil {
		return err
	}
	opts := deepbat.DefaultOptions()
	opts.SLO = *slo
	opts.DatasetSamples = *samples
	opts.Train.Epochs = *epochs
	opts.Model.SeqLen = *seqLen
	opts.Train.Progress = func(epoch int, trainLoss, valLoss float64) {
		fmt.Printf("epoch %3d  train %.5f  val %.5f\n", epoch, trainLoss, valLoss)
	}
	fmt.Printf("labeling %d samples from %s (%d arrivals)...\n", *samples, *name, len(tr.Timestamps))
	start := time.Now()
	sys, err := deepbat.Train(tr, opts)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d-parameter model in %s\n", sys.Model.NumParams(), time.Since(start).Round(time.Millisecond))
	if err := sys.SaveModel(*out); err != nil {
		return err
	}
	fmt.Printf("saved %s\n", *out)
	return nil
}

func loadSystem(model string, slo float64) (*deepbat.System, error) {
	opts := deepbat.DefaultOptions()
	opts.SLO = slo
	return deepbat.LoadSystem(model, opts)
}

func cmdDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	name, hours, hourSeconds, seed := traceFlags(fs)
	model := fs.String("model", "model.gob", "trained model path")
	hour := fs.Int("hour", 0, "paper-hour whose window to optimize for")
	slo := fs.Float64("slo", 0.1, "latency SLO in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := loadSystem(*model, *slo)
	if err != nil {
		return err
	}
	tr, err := genTrace(*name, *hours, *hourSeconds, *seed)
	if err != nil {
		return err
	}
	inter := tr.Interarrivals()
	l := sys.Model.Cfg.SeqLen
	off := 0
	if *hour > 0 {
		// Find the first arrival of the hour and take the window before it.
		hs := float64(*hour) * *hourSeconds
		for off < len(tr.Timestamps) && tr.Timestamps[off] < hs {
			off++
		}
	}
	if off < l {
		off = l
	}
	if off > len(inter) {
		return fmt.Errorf("trace too short for a %d-arrival window", l)
	}
	window := inter[off-l : off]
	start := time.Now()
	dec, err := sys.Decide(window)
	if err != nil {
		return err
	}
	fmt.Printf("decision in %s over %d configurations\n", time.Since(start).Round(time.Microsecond), dec.Evaluated)
	fmt.Printf("  config:    %s (feasible=%v, effective SLO %.0fms)\n", dec.Config, dec.Feasible, dec.EffectiveSLO*1000)
	fmt.Printf("  cost/req:  %.3f micro-USD\n", dec.Prediction.CostPerRequest*1e6)
	for i, pct := range sys.Model.Cfg.Percentiles {
		fmt.Printf("  P%-4g      %.1f ms\n", pct, dec.Prediction.Percentiles[i]*1000)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	name, hours, hourSeconds, seed := traceFlags(fs)
	model := fs.String("model", "model.gob", "trained model path")
	slo := fs.Float64("slo", 0.1, "latency SLO in seconds")
	decider := fs.String("decider", "deepbat", "controller: deepbat|batch|oracle|static")
	finetune := fs.Bool("finetune", false, "fine-tune on the first hour before serving")
	periodS := fs.Float64("period", 10, "control period in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := loadSystem(*model, *slo)
	if err != nil {
		return err
	}
	tr, err := genTrace(*name, *hours, *hourSeconds, *seed)
	if err != nil {
		return err
	}
	if *finetune {
		fmt.Println("fine-tuning on the first hour...")
		if err := sys.FineTune(tr.FirstHours(1), 250); err != nil {
			return err
		}
	}
	opts := deepbat.ReplayOptions{
		PeriodS:       *periodS,
		DecideEvery:   1,
		LookbackS:     *hourSeconds,
		InitialConfig: deepbat.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           *slo,
	}
	var dec deepbat.Decider
	switch *decider {
	case "deepbat":
		dec = sys.Decider()
	case "batch":
		dec = sys.BATCHBaseline()
		opts.DecideEvery = int(*hourSeconds / *periodS)
		if opts.DecideEvery < 1 {
			opts.DecideEvery = 1
		}
	case "oracle":
		dec = sys.Oracle()
	case "static":
		dec = sys.Static(opts.InitialConfig)
	default:
		return fmt.Errorf("unknown decider %q", *decider)
	}
	fmt.Printf("replaying %d arrivals of %s with %s...\n", len(tr.Timestamps), *name, dec.Name())
	start := time.Now()
	res, err := sys.Replay(tr.Timestamps, dec, opts)
	if err != nil {
		return err
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  requests:        %d\n", len(res.Latencies()))
	fmt.Printf("  VCR:             %.2f%% (SLO %.0fms)\n", res.VCR(), *slo*1000)
	fmt.Printf("  cost/request:    %.3f micro-USD\n", res.CostPerRequest()*1e6)
	fmt.Printf("  decisions:       %d ok, %d skipped (mean %s)\n",
		res.Decisions, res.DecisionErrors, res.MeanDecisionTime().Round(time.Microsecond))
	fmt.Println("  per-hour VCR:")
	for h, v := range res.WindowVCR(*hourSeconds) {
		fmt.Printf("    hour %2d: %6.2f%%\n", h, v)
	}
	return nil
}
