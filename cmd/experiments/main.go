// Command experiments regenerates the paper's evaluation: one experiment per
// figure (fig1, fig4-fig15b) plus the Section IV-F timing comparison. Each
// experiment prints the rows/series the corresponding figure plots.
//
//	experiments -exp fig8            # one experiment at full scale
//	experiments -exp all -quick      # the whole evaluation, scaled down
//	experiments -list                # available experiment IDs
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deepbat/internal/experiments"
	"deepbat/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (see -list), a comma-separated list, or 'all'")
	quick := flag.Bool("quick", false, "scaled-down lab (fast, for smoke runs)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	hours := flag.Int("hours", 0, "override lab hours")
	hourSeconds := flag.Float64("hour-seconds", 0, "override seconds per paper-hour")
	seed := flag.Int64("seed", 0, "override lab seed")
	workers := flag.Int("workers", 0, "sweep fan-out workers for cell-parallel experiments (0 = GOMAXPROCS; output is identical at any count)")
	metricsOut := flag.String("metrics", "", "write the merged per-cell metric snapshot (JSON) to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	cfg := experiments.DefaultLabConfig()
	if *quick {
		cfg = experiments.QuickLabConfig()
	}
	if *hours > 0 {
		cfg.Hours = *hours
	}
	if *hourSeconds > 0 {
		cfg.HourSeconds = *hourSeconds
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	lab := experiments.NewLab(cfg)
	if *metricsOut != "" {
		lab.Obs = obs.NewRegistry()
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s finished in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *metricsOut != "" {
		var buf bytes.Buffer
		if err := lab.Obs.WriteJSON(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
