// Command lint runs deepbatlint, the repo-specific static-analysis pass
// (internal/analysis), over the module.
//
// Usage:
//
//	go run ./cmd/lint ./...                          # whole module (default)
//	go run ./cmd/lint -json ./...                    # machine-readable findings
//	go run ./cmd/lint -time ./...                    # per-rule wall time
//	go run ./cmd/lint internal/analysis/testdata/src/determinism
//
// With `./...` (or no arguments) every package in the module is analyzed,
// excluding testdata fixtures. Explicit directory arguments are analyzed
// as-is, which is how the seeded-violation fixtures are exercised by hand.
//
// The module is parsed and type-checked exactly once per invocation; all
// rules share the loaded Program, so running the full suite costs one load
// plus nine cheap AST walks (-time shows the per-rule split).
//
// Exit status: 0 when clean, 1 when findings are reported, 2 on load or
// type-check errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"deepbat/internal/analysis"
)

// jsonFinding is the -json wire form of one diagnostic, stable for CI
// annotation tooling.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Rules    []jsonTiming  `json:"rules"`
}

type jsonTiming struct {
	Rule       string  `json:"rule"`
	DurationMS float64 `json:"duration_ms"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-rule timings as JSON on stdout")
	timeOut := flag.Bool("time", false, "report per-rule wall time on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lint [-json] [-time] [./... | package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var prog *analysis.Program
	if len(args) == 1 && args[0] == "./..." {
		prog, err = analysis.LoadModule(root)
	} else {
		dirs := make([]string, len(args))
		for i, a := range args {
			if dirs[i], err = filepath.Abs(a); err != nil {
				break
			}
		}
		if err == nil {
			prog, err = analysis.LoadDirs(root, dirs)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	findings, times := analysis.RunTimed(prog, analysis.Analyzers())
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil {
				return r
			}
		}
		return name
	}

	if *jsonOut {
		report := jsonReport{Findings: []jsonFinding{}, Rules: []jsonTiming{}}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File:   rel(f.Pos.Filename),
				Line:   f.Pos.Line,
				Col:    f.Pos.Column,
				Rule:   f.Rule,
				Reason: f.Msg,
			})
		}
		for _, rt := range times {
			report.Rules = append(report.Rules, jsonTiming{
				Rule:       rt.Rule,
				DurationMS: float64(rt.Duration.Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
		}
	}
	if *timeOut {
		for _, rt := range times {
			fmt.Fprintf(os.Stderr, "lint: %-22s %8.2fms\n", rt.Rule, float64(rt.Duration.Microseconds())/1000)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
