// Command lint runs deepbatlint, the repo-specific static-analysis pass
// (internal/analysis), over the module.
//
// Usage:
//
//	go run ./cmd/lint ./...                          # whole module (default)
//	go run ./cmd/lint internal/analysis/testdata/src/determinism
//
// With `./...` (or no arguments) every package in the module is analyzed,
// excluding testdata fixtures. Explicit directory arguments are analyzed
// as-is, which is how the seeded-violation fixtures are exercised by hand.
//
// Exit status: 0 when clean, 1 when findings are reported, 2 on load or
// type-check errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"deepbat/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lint [./... | package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var prog *analysis.Program
	if len(args) == 1 && args[0] == "./..." {
		prog, err = analysis.LoadModule(root)
	} else {
		dirs := make([]string, len(args))
		for i, a := range args {
			if dirs[i], err = filepath.Abs(a); err != nil {
				break
			}
		}
		if err == nil {
			prog, err = analysis.LoadDirs(root, dirs)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	findings := analysis.Run(prog, analysis.Analyzers())
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
