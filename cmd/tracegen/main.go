// Command tracegen synthesizes the evaluation workloads (azure, twitter,
// alibaba, synthetic) and prints them as CSV: either raw arrival timestamps,
// the binned arrival-rate series (Fig. 4), or the hourly index of dispersion
// (Fig. 5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepbat"
)

func main() {
	name := flag.String("name", "azure", "workload: azure|twitter|alibaba|synthetic (or 'all' for rate/idc)")
	hours := flag.Int("hours", 24, "paper-hours to generate")
	hourSeconds := flag.Float64("hour-seconds", 60, "simulated seconds per paper-hour")
	seed := flag.Int64("seed", 1, "generation seed")
	format := flag.String("format", "timestamps", "output: timestamps|rate|idc")
	bin := flag.Float64("bin", 10, "bin width in seconds for -format rate")
	flag.Parse()

	if err := run(*name, *hours, *hourSeconds, *seed, *format, *bin); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, hours int, hourSeconds float64, seed int64, format string, bin float64) error {
	names := []string{name}
	if name == "all" {
		names = deepbat.TraceNames()
	}
	traces := make([]*deepbat.Trace, len(names))
	for i, n := range names {
		tr, err := deepbat.GenerateTrace(deepbat.TraceSpec{
			Name: n, Hours: hours, HourSeconds: hourSeconds, Seed: seed,
		})
		if err != nil {
			return err
		}
		traces[i] = tr
	}

	switch format {
	case "timestamps":
		if len(traces) != 1 {
			return fmt.Errorf("-format timestamps requires a single trace")
		}
		fmt.Println("timestamp_s")
		for _, ts := range traces[0].Timestamps {
			fmt.Printf("%.6f\n", ts)
		}
	case "rate":
		fmt.Printf("t_s,%s\n", strings.Join(names, ","))
		series := make([][]deepbat.RatePoint, len(traces))
		n := 0
		for i, tr := range traces {
			series[i] = tr.RateSeries(bin)
			if len(series[i]) > n {
				n = len(series[i])
			}
		}
		for r := 0; r < n; r++ {
			row := make([]string, 0, len(series)+1)
			row = append(row, fmt.Sprintf("%.1f", float64(r)*bin))
			for _, s := range series {
				if r < len(s) {
					row = append(row, fmt.Sprintf("%.3f", s[r].Rate))
				} else {
					row = append(row, "")
				}
			}
			fmt.Println(strings.Join(row, ","))
		}
	case "idc":
		fmt.Printf("hour,%s\n", strings.Join(names, ","))
		series := make([][]float64, len(traces))
		for i, tr := range traces {
			series[i] = tr.HourlyIDC(200)
		}
		for h := 0; h < hours; h++ {
			row := []string{fmt.Sprintf("%d", h)}
			for _, s := range series {
				row = append(row, fmt.Sprintf("%.2f", s[h]))
			}
			fmt.Println(strings.Join(row, ","))
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
