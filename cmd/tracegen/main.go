// Command tracegen synthesizes evaluation workloads — the paper's four
// traces (azure, twitter, alibaba, synthetic) plus the workload-zoo shapes
// (diurnal, flashcrowd, corrburst, sizemix) — and writes them as CSV for
// plotting or as versioned tracev1 files for replay.
//
//	tracegen -name azure -format rate                  # Fig. 4 CSV to stdout
//	tracegen -name flashcrowd -o fc.tracev1 -check     # binary trace + digest verify
//	tracegen -name corrburst -json -o cb.json          # JSON twin of the same trace
//
// A tracev1 file is self-describing (name, seed, full spec, class table) and
// digest-sealed; -check decodes the file just written and verifies both the
// digest and that it round-trips to the exact same bytes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"deepbat/internal/trace"
	"deepbat/internal/workload"
)

func main() {
	def := workload.DefaultSpec("azure")
	name := flag.String("name", def.Name, "workload: "+strings.Join(workload.Names(), "|")+" (or 'all' for rate/idc)")
	hours := flag.Int("hours", def.Hours, "paper-hours to generate")
	hourSeconds := flag.Float64("hour-seconds", def.HourSeconds, "simulated seconds per paper-hour")
	seed := flag.Int64("seed", def.Seed, "generation seed")
	rate := flag.Float64("rate", 0, "base arrival rate in req/s for zoo shapes (0 = shape default)")
	classes := flag.Int("classes", 0, "request-class count for multi-class shapes (0 = shape default)")
	format := flag.String("format", "timestamps", "output: timestamps|rate|idc|tracev1")
	bin := flag.Float64("bin", 10, "bin width in seconds for -format rate")
	out := flag.String("o", "", "write a tracev1 file here (implies -format tracev1)")
	asJSON := flag.Bool("json", false, "tracev1 output as JSON instead of binary")
	check := flag.Bool("check", false, "decode the tracev1 output just written and verify its digest")
	flag.Parse()

	f := *format
	if *out != "" {
		f = "tracev1"
	}
	if err := run(*name, *hours, *hourSeconds, *seed, *rate, *classes, f, *bin, *out, *asJSON, *check); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func spec(name string, hours int, hourSeconds float64, seed int64, rate float64, classes int) workload.Spec {
	s := workload.DefaultSpec(name)
	s.Hours, s.HourSeconds, s.Seed = hours, hourSeconds, seed
	if rate > 0 {
		s.RateRPS = rate
	}
	if classes > 0 {
		s.Classes = classes
	}
	return s
}

func run(name string, hours int, hourSeconds float64, seed int64, rate float64, classes int, format string, bin float64, out string, asJSON, check bool) error {
	if format == "tracev1" {
		return writeTraceV1(spec(name, hours, hourSeconds, seed, rate, classes), out, asJSON, check)
	}

	names := []string{name}
	if name == "all" {
		names = workload.Names()
	}
	// CSV formats view any workload through the timestamp-series lens
	// internal/trace provides (RateSeries, HourlyIDC).
	views := make([]*trace.Trace, len(names))
	for i, n := range names {
		wt, err := workload.Generate(spec(n, hours, hourSeconds, seed, rate, classes))
		if err != nil {
			return err
		}
		views[i] = &trace.Trace{
			Spec:       trace.Spec{Name: n, Hours: hours, HourSeconds: hourSeconds, Seed: seed},
			Timestamps: wt.Timestamps(),
		}
	}

	switch format {
	case "timestamps":
		if len(views) != 1 {
			return fmt.Errorf("-format timestamps requires a single trace")
		}
		fmt.Println("timestamp_s")
		for _, ts := range views[0].Timestamps {
			fmt.Printf("%.6f\n", ts)
		}
	case "rate":
		fmt.Printf("t_s,%s\n", strings.Join(names, ","))
		series := make([][]trace.RatePoint, len(views))
		n := 0
		for i, tr := range views {
			series[i] = tr.RateSeries(bin)
			if len(series[i]) > n {
				n = len(series[i])
			}
		}
		for r := 0; r < n; r++ {
			row := make([]string, 0, len(series)+1)
			row = append(row, fmt.Sprintf("%.1f", float64(r)*bin))
			for _, s := range series {
				if r < len(s) {
					row = append(row, fmt.Sprintf("%.3f", s[r].Rate))
				} else {
					row = append(row, "")
				}
			}
			fmt.Println(strings.Join(row, ","))
		}
	case "idc":
		fmt.Printf("hour,%s\n", strings.Join(names, ","))
		series := make([][]float64, len(views))
		for i, tr := range views {
			series[i] = tr.HourlyIDC(200)
		}
		for h := 0; h < hours; h++ {
			row := []string{fmt.Sprintf("%d", h)}
			for _, s := range series {
				row = append(row, fmt.Sprintf("%.2f", s[h]))
			}
			fmt.Println(strings.Join(row, ","))
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// writeTraceV1 generates one workload, writes it in tracev1 form (binary by
// default, JSON with -json), and under -check re-decodes the written bytes
// and verifies the digest survived the trip.
func writeTraceV1(s workload.Spec, out string, asJSON, check bool) error {
	t, err := workload.Generate(s)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if asJSON {
		err = workload.EncodeJSON(&buf, t)
	} else {
		err = workload.Encode(&buf, t)
	}
	if err != nil {
		return err
	}
	data := buf.Bytes()
	if out == "" || out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if !check {
		return nil
	}
	var back *workload.Trace
	if asJSON {
		back, err = workload.DecodeJSON(bytes.NewReader(data))
	} else {
		back, err = workload.DecodeBytes(data)
	}
	if err != nil {
		return fmt.Errorf("check: decoding what was just written: %w", err)
	}
	want, err := workload.Digest(t)
	if err != nil {
		return err
	}
	got, err := workload.Digest(back)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("check: digest mismatch after round trip (wrote %016x, decoded %016x)", want, got)
	}
	fmt.Fprintf(os.Stderr, "tracegen: check ok: %s, %d requests, digest %016x\n", s.Name, len(t.Reqs), want)
	return nil
}
