// Command bench is the performance-regression harness: it runs the core
// benchmark set programmatically (testing.Benchmark, so the numbers match
// `go test -bench`) and writes a JSON snapshot — BENCH_<n>.json at the repo
// root by convention — giving successive PRs a perf trajectory to compare
// against.
//
//	go run ./cmd/bench -out BENCH_3.json -baseline BENCH_2.json
//
// The set covers the surrogate hot paths this project optimizes: the matmul
// kernel across a size sweep (64/128/256/512, spanning both sides of the
// blocked-dispatch threshold), one encoder train step, a full train epoch
// serial vs parallel (data-parallel minibatch sharding) vs
// serial-with-observability, the encode-once batched grid sweep, and a full
// DeepBAT decision. The snapshot also records the relative overhead of
// instrumented training (train_obs_overhead_pct), which the observability PR
// held under 5% (single-run samples jitter a few percent either way), and —
// when -baseline names an earlier snapshot — per-name
// speedup and allocation ratios against it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"deepbat"
	"deepbat/internal/experiments"
	"deepbat/internal/nn"
	"deepbat/internal/obs"
	"deepbat/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Snapshot is the file layout of BENCH_<n>.json.
type Snapshot struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
	// TrainObsOverheadPct is the relative ns/op cost of TrainEpochInstrumented
	// over TrainEpochSerial, in percent (may be slightly negative from run
	// noise).
	TrainObsOverheadPct float64 `json:"train_obs_overhead_pct"`
	// Baseline is the earlier snapshot the ratio maps compare against.
	Baseline string `json:"baseline,omitempty"`
	// SpeedupVsBaseline maps benchmark name to baselineNs/currentNs (>1 means
	// this snapshot is faster) for names present in both snapshots.
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	// AllocImprovementVsBaseline maps benchmark name to
	// baselineAllocs/currentAllocs (>1 means fewer allocations now).
	AllocImprovementVsBaseline map[string]float64 `json:"alloc_improvement_vs_baseline,omitempty"`
}

// compareBaseline fills the ratio maps from an earlier snapshot on disk. A
// missing or unreadable baseline is not an error — first runs have none.
func (s *Snapshot) compareBaseline(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline at %s; skipping ratios\n", path)
		return
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench: baseline %s: %v\n", path, err)
		return
	}
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	s.Baseline = path
	s.SpeedupVsBaseline = map[string]float64{}
	s.AllocImprovementVsBaseline = map[string]float64{}
	for _, r := range s.Results {
		b, ok := byName[r.Name]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		s.SpeedupVsBaseline[r.Name] = b.NsPerOp / r.NsPerOp
		if r.AllocsPerOp > 0 {
			s.AllocImprovementVsBaseline[r.Name] = float64(b.AllocsPerOp) / float64(r.AllocsPerOp)
		}
		fmt.Printf("%-24s %6.2fx faster, %6.2fx fewer allocs vs %s\n",
			r.Name, s.SpeedupVsBaseline[r.Name], s.AllocImprovementVsBaseline[r.Name], path)
	}
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	fmt.Printf("%-24s %12.0f ns/op %12d B/op %9d allocs/op\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func trainDataset(n, seqLen int) *deepbat.Dataset {
	rng := rand.New(rand.NewSource(7))
	cfgs := deepbat.DefaultGrid().Configs()
	pcts := []float64{50, 75, 90, 95, 99}
	ds := &deepbat.Dataset{Percentiles: pcts}
	for i := 0; i < n; i++ {
		seq := make([]float64, seqLen)
		for j := range seq {
			seq[j] = 0.005 + 0.01*rng.Float64()
		}
		target := make([]float64, 1+len(pcts))
		target[0] = 2e-6
		base := 0.02
		for j := 1; j < len(target); j++ {
			base += 0.01 * rng.Float64()
			target[j] = base
		}
		ds.Samples = append(ds.Samples, deepbat.Sample{
			Seq: seq, Config: cfgs[rng.Intn(len(cfgs))], Target: target,
		})
	}
	return ds
}

func trainEpoch(b *testing.B, workers int, instrumented bool) {
	ds := trainDataset(64, 32)
	mc := deepbat.DefaultOptions().Model
	mc.SeqLen = 32
	tc := deepbat.DefaultOptions().Train
	tc.Epochs = 1
	tc.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := deepbat.NewModel(mc)
		m.FitNormalization(ds)
		if instrumented {
			// A fresh registry per iteration includes registration cost in
			// the measurement — the realistic worst case.
			tc.Obs = obs.NewRegistry()
		}
		b.StartTimer()
		if _, err := m.Train(ds, nil, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_3.json", "output JSON path")
	baseline := flag.String("baseline", "BENCH_2.json", "earlier snapshot to compute speedup ratios against (missing file = no ratios)")
	flag.Parse()

	snap := Snapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// The size sweep spans both sides of the gemm blocked-dispatch threshold:
	// 64 runs the naive kernel, 128+ the packed/blocked one.
	for _, n := range []int{64, 128, 256, 512} {
		n := n
		snap.Results = append(snap.Results, measure(fmt.Sprintf("TensorMatMul%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.Randn(rng, 1, n, n)
			y := tensor.Randn(rng, 1, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		}))
	}

	snap.Results = append(snap.Results, measure("EncoderTrainStep", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		enc := nn.NewEncoder(rng, 2, 16, 32, 2, 0)
		x := tensor.Randn(rng, 1, 64, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := enc.Forward(x)
			loss := tensor.SumAll(tensor.Mul(y, y))
			tensor.Backward(loss)
			for _, p := range enc.Params() {
				p.ZeroGrad()
			}
		}
	}))

	serial := measure("TrainEpochSerial", func(b *testing.B) { trainEpoch(b, 1, false) })
	snap.Results = append(snap.Results, serial)
	snap.Results = append(snap.Results, measure("TrainEpochParallel", func(b *testing.B) { trainEpoch(b, 0, false) }))
	instrumented := measure("TrainEpochInstrumented", func(b *testing.B) { trainEpoch(b, 1, true) })
	snap.Results = append(snap.Results, instrumented)
	snap.TrainObsOverheadPct = 100 * (instrumented.NsPerOp - serial.NsPerOp) / serial.NsPerOp
	fmt.Printf("instrumented training overhead: %+.2f%%\n", snap.TrainObsOverheadPct)

	// The lab pre-trains the shared quick-scale surrogate once; Decide and
	// GridPredict then measure pure inference.
	lab := experiments.NewLab(experiments.QuickLabConfig())
	sys, err := lab.BaseSystem()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: lab setup:", err)
		os.Exit(1)
	}
	inter := lab.Trace("azure").Interarrivals()
	window := inter[:sys.Model.Cfg.SeqLen]
	cfgs := deepbat.DefaultGrid().Configs()

	// GridPredict keeps its BENCH_1/2 name for the perf trajectory; since
	// this PR, PredictGrid *is* the batched path, so GridPredictBatched and
	// DecideBatched measure the same entry points in separate runs (two
	// independent measurements, not copied numbers).
	snap.Results = append(snap.Results, measure("GridPredict", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Model.PredictGrid(window, cfgs)
		}
	}))

	snap.Results = append(snap.Results, measure("GridPredictBatched", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Model.PredictGrid(window, cfgs)
		}
	}))

	snap.Results = append(snap.Results, measure("Decide", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Decide(window); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Results = append(snap.Results, measure("DecideBatched", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Decide(window); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.compareBaseline(*baseline)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: encode:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", *out, snap.GOMAXPROCS)
}
