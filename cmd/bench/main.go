// Command bench is the performance-regression harness: it runs the core
// benchmark set programmatically (testing.Benchmark, so the numbers match
// `go test -bench`) and writes a JSON snapshot — BENCH_<n>.json at the repo
// root by convention — giving successive PRs a perf trajectory to compare
// against.
//
//	go run ./cmd/bench -out BENCH_5.json -baseline BENCH_4.json
//
// The set covers the surrogate hot paths this project optimizes: the matmul
// kernel across a size sweep (64/128/256/512, spanning both sides of the
// blocked-dispatch threshold), one encoder train step, a full train epoch
// serial vs parallel (data-parallel minibatch sharding) vs
// serial-with-observability, the encode-once batched grid sweep, a full
// DeepBAT decision, and the gateway serving path: zero-alloc pooled admit
// (GatewayAdmit), size-triggered batch dispatch (GatewayDispatchBatch), the
// legacy channel-per-request queue (GatewaySingleQueue), and the pooled
// sharded path at P = 1/4/8 (GatewaySharded*). Gateway benchmarks run
// against a constant-time backend so they measure gateway overhead, not the
// simulated-Lambda service-time model shared by every path.
//
// The snapshot also records train_obs_overhead_pct — the relative cost of
// instrumented training, measured with paired alternating runs and asserted
// against the 5% budget the observability PR set — plus the pooled-path
// guarantees: gateway_admit_allocs_per_op (asserted zero) and
// speedup_sharded8_vs_single_queue (asserted ≥ 3). When -baseline names an
// earlier snapshot, per-name speedup and allocation ratios are included.
//
// Since the parallel-sweep PR every result records the GOMAXPROCS it ran at,
// and the CPU-bound kernel/training/sweep benchmarks run twice on multi-core
// machines — once at the machine's core count (plain names, so baseline
// ratios keep lining up) and once pinned to one core ("/gomaxprocs=1"
// variants). The sweep benchmarks cover the fan-out engine itself:
// SweepDispatch measures pure dispatch overhead (1024 no-op cells), and the
// scenarios matrix runs at -workers 1 vs 8 to pin the engine's two
// guarantees — the reports must be byte-identical (asserted everywhere) and
// the 8-worker run must be ≥ 3x faster (asserted only when the machine has
// at least 8 CPUs; single-core machines record the measured ratio with a
// skip note instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"deepbat"
	"deepbat/internal/experiments"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/nn"
	"deepbat/internal/obs"
	"deepbat/internal/sweep"
	"deepbat/internal/tensor"
)

// trainObsBudgetPct is the observability-overhead budget for instrumented
// training, in percent. This is the single place the budget lives; the
// snapshot's train_obs_overhead_pct is asserted against it.
const trainObsBudgetPct = 5.0

// sharded8SpeedupFloor is the acceptance floor for the pooled sharded path:
// GatewaySharded8 must beat the legacy single-queue dispatch by at least
// this factor.
const sharded8SpeedupFloor = 3.0

// sweepSpeedupFloor is the acceptance floor for the parallel sweep engine:
// the scenarios matrix at 8 workers must beat 1 worker by at least this
// factor. The floor only binds on machines with sweepSpeedupMinCPU cores —
// below that the hardware cannot exhibit the parallelism the gate measures,
// so the snapshot records the honest ratio and the assertion is skipped
// (CI's multi-core runners enforce it).
const (
	sweepSpeedupFloor  = 3.0
	sweepSpeedupMinCPU = 8
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GOMAXPROCS is the parallelism the measurement ran at: core-count for
	// the plain names, 1 for the "/gomaxprocs=1" variants.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Snapshot is the file layout of BENCH_<n>.json.
type Snapshot struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Results    []Result `json:"results"`
	// TrainObsOverheadPct is the relative cost of instrumented over serial
	// training in percent, the median of paired alternating runs (may be
	// slightly negative from run noise). Asserted <= trainObsBudgetPct.
	TrainObsOverheadPct float64 `json:"train_obs_overhead_pct"`
	// GatewayAdmitAllocsPerOp is the steady-state allocation count of the
	// pooled admit→dispatch→wait path. Asserted zero.
	GatewayAdmitAllocsPerOp int64 `json:"gateway_admit_allocs_per_op"`
	// SpeedupSharded8VsSingleQueue is ns/op(GatewaySingleQueue) /
	// ns/op(GatewaySharded8): how much faster the pooled sharded path
	// dispatches than the legacy channel-per-request queue. Asserted >=
	// sharded8SpeedupFloor.
	SpeedupSharded8VsSingleQueue float64 `json:"speedup_sharded8_vs_single_queue"`
	// SweepScenariosSecsW1/W8 are the median wall-clock seconds for the
	// quick-scale scenarios matrix through the sweep engine at 1 and 8
	// workers; SweepScenariosSpeedup8Vs1 is their ratio, asserted >=
	// sweepSpeedupFloor when the machine has sweepSpeedupMinCPU+ cores.
	SweepScenariosSecsW1      float64 `json:"sweep_scenarios_secs_w1"`
	SweepScenariosSecsW8      float64 `json:"sweep_scenarios_secs_w8"`
	SweepScenariosSpeedup8Vs1 float64 `json:"sweep_scenarios_speedup_8_vs_1"`
	// SweepScenariosIdentical records whether every scenarios run — all
	// repetitions at both worker counts — rendered byte-identical reports.
	// Asserted true on every machine.
	SweepScenariosIdentical bool `json:"sweep_scenarios_identical"`
	// Baseline is the earlier snapshot the ratio maps compare against.
	Baseline string `json:"baseline,omitempty"`
	// SpeedupVsBaseline maps benchmark name to baselineNs/currentNs (>1 means
	// this snapshot is faster) for names present in both snapshots.
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	// AllocImprovementVsBaseline maps benchmark name to
	// baselineAllocs/currentAllocs (>1 means fewer allocations now).
	AllocImprovementVsBaseline map[string]float64 `json:"alloc_improvement_vs_baseline,omitempty"`
}

// compareBaseline fills the ratio maps from an earlier snapshot on disk. A
// missing or unreadable baseline is not an error — first runs have none.
func (s *Snapshot) compareBaseline(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline at %s; skipping ratios\n", path)
		return
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench: baseline %s: %v\n", path, err)
		return
	}
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	s.Baseline = path
	s.SpeedupVsBaseline = map[string]float64{}
	s.AllocImprovementVsBaseline = map[string]float64{}
	for _, r := range s.Results {
		b, ok := byName[r.Name]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		s.SpeedupVsBaseline[r.Name] = b.NsPerOp / r.NsPerOp
		if r.AllocsPerOp > 0 {
			s.AllocImprovementVsBaseline[r.Name] = float64(b.AllocsPerOp) / float64(r.AllocsPerOp)
		}
		fmt.Printf("%-24s %6.2fx faster, %6.2fx fewer allocs vs %s\n",
			r.Name, s.SpeedupVsBaseline[r.Name], s.AllocImprovementVsBaseline[r.Name], path)
	}
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%-24s %12.0f ns/op %12d B/op %9d allocs/op\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

// measureBoth measures a CPU-bound benchmark at the machine's core count
// under its plain name (keeping baseline ratios comparable across
// snapshots) and, on multi-core machines, again pinned to one core as a
// "/gomaxprocs=1" variant — the single-core numbers separate algorithmic
// wins from parallel scaling. Single-core machines skip the duplicate.
func measureBoth(snap *Snapshot, name string, f func(b *testing.B)) {
	snap.Results = append(snap.Results, measure(name, f))
	if runtime.NumCPU() > 1 {
		old := runtime.GOMAXPROCS(1)
		snap.Results = append(snap.Results, measure(name+"/gomaxprocs=1", f))
		runtime.GOMAXPROCS(old)
	}
}

// measureMedian runs a benchmark runs times and keeps the median-ns/op
// result. The sub-microsecond gateway benchmarks are scheduler-noise
// sensitive (the legacy path pays goroutine handoffs), and ratio assertions
// need stable numerators and denominators.
func measureMedian(name string, runs int, f func(b *testing.B)) Result {
	results := make([]Result, 0, runs)
	for i := 0; i < runs; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		results = append(results, Result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].NsPerOp < results[j].NsPerOp })
	res := results[len(results)/2]
	fmt.Printf("%-24s %12.0f ns/op %12d B/op %9d allocs/op  (median of %d)\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, runs)
	return res
}

func trainDataset(n, seqLen int) *deepbat.Dataset {
	rng := rand.New(rand.NewSource(7))
	cfgs := deepbat.DefaultGrid().Configs()
	pcts := []float64{50, 75, 90, 95, 99}
	ds := &deepbat.Dataset{Percentiles: pcts}
	for i := 0; i < n; i++ {
		seq := make([]float64, seqLen)
		for j := range seq {
			seq[j] = 0.005 + 0.01*rng.Float64()
		}
		target := make([]float64, 1+len(pcts))
		target[0] = 2e-6
		base := 0.02
		for j := 1; j < len(target); j++ {
			base += 0.01 * rng.Float64()
			target[j] = base
		}
		ds.Samples = append(ds.Samples, deepbat.Sample{
			Seq: seq, Config: cfgs[rng.Intn(len(cfgs))], Target: target,
		})
	}
	return ds
}

func trainEpoch(b *testing.B, workers int, instrumented bool) {
	ds := trainDataset(64, 32)
	mc := deepbat.DefaultOptions().Model
	mc.SeqLen = 32
	tc := deepbat.DefaultOptions().Train
	tc.Epochs = 1
	tc.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := deepbat.NewModel(mc)
		m.FitNormalization(ds)
		if instrumented {
			// A fresh registry per iteration includes registration cost in
			// the measurement — the realistic worst case.
			tc.Obs = obs.NewRegistry()
		}
		b.StartTimer()
		if _, err := m.Train(ds, nil, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// trainObsOverhead measures the instrumented-over-serial training overhead
// with paired, alternating single-epoch runs: each pair times one serial and
// one instrumented epoch back to back (so slow drift — thermal, background
// load — hits both sides of a pair equally), and the reported figure is the
// median per-pair overhead. Independent testing.Benchmark runs of the two
// epochs (how BENCH_3 computed it) jitter several percent either way, which
// is wider than the budget being asserted.
func trainObsOverhead(pairs int) float64 {
	ds := trainDataset(64, 32)
	mc := deepbat.DefaultOptions().Model
	mc.SeqLen = 32
	tc := deepbat.DefaultOptions().Train
	tc.Epochs = 1
	tc.Workers = 1
	runOne := func(reg *obs.Registry) float64 {
		m := deepbat.NewModel(mc)
		m.FitNormalization(ds)
		tc.Obs = reg
		start := time.Now()
		if _, err := m.Train(ds, nil, tc); err != nil {
			fmt.Fprintln(os.Stderr, "bench: train:", err)
			os.Exit(1)
		}
		return time.Since(start).Seconds()
	}
	// One unmeasured warmup pair primes caches and the page allocator.
	runOne(nil)
	runOne(obs.NewRegistry())
	overheads := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		serial := runOne(nil)
		instrumented := runOne(obs.NewRegistry())
		overheads = append(overheads, 100*(instrumented-serial)/serial)
	}
	sort.Float64s(overheads)
	return overheads[len(overheads)/2]
}

// scenariosSecs runs the quick-scale scenarios matrix through the sweep
// engine `runs` times at the given worker count, returning the rendered
// report (identical across repetitions by the engine's determinism
// guarantee, checked by the caller) and the median wall-clock seconds. Each
// repetition uses a fresh lab so trace generation and replay — the work the
// cells parallelize — are measured end to end.
func scenariosSecs(workers, runs int) (string, float64) {
	var rep string
	secs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		cfg := experiments.QuickLabConfig()
		cfg.Workers = workers
		l := experiments.NewLab(cfg)
		start := time.Now()
		r, err := experiments.Run(l, "scenarios")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: scenarios:", err)
			os.Exit(1)
		}
		secs = append(secs, time.Since(start).Seconds())
		if i == 0 {
			rep = r.String()
		} else if got := r.String(); got != rep {
			fmt.Fprintf(os.Stderr, "bench: ASSERT FAILED: scenarios report differs between repetitions at workers=%d\n", workers)
			os.Exit(1)
		}
	}
	sort.Float64s(secs)
	return rep, secs[len(secs)/2]
}

// nullBackend completes instantly at a fixed cost, isolating gateway
// overhead (queueing, batching, pooling, accounting) from the simulated
// service-time model every real path shares.
type nullBackend struct{}

func (nullBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	return time.Millisecond, 1e-6, nil
}

// newBenchGateway builds a gateway over the null backend for one benchmark.
func newBenchGateway(shards int, cfg lambda.Config) *gateway.Gateway {
	g, err := gateway.New(nullBackend{}, nil, gateway.Config{
		Initial: cfg,
		SLO:     0.1,
		Shards:  shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: gateway:", err)
		os.Exit(1)
	}
	return g
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output JSON path")
	baseline := flag.String("baseline", "BENCH_4.json", "earlier snapshot to compute speedup ratios against (missing file = no ratios)")
	flag.Parse()

	snap := Snapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	// The size sweep spans both sides of the gemm blocked-dispatch threshold:
	// 64 runs the naive kernel, 128+ the packed/blocked one.
	for _, n := range []int{64, 128, 256, 512} {
		n := n
		measureBoth(&snap, fmt.Sprintf("TensorMatMul%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.Randn(rng, 1, n, n)
			y := tensor.Randn(rng, 1, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		})
	}

	measureBoth(&snap, "EncoderTrainStep", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		enc := nn.NewEncoder(rng, 2, 16, 32, 2, 0)
		x := tensor.Randn(rng, 1, 64, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := enc.Forward(x)
			loss := tensor.SumAll(tensor.Mul(y, y))
			tensor.Backward(loss)
			for _, p := range enc.Params() {
				p.ZeroGrad()
			}
		}
	})

	measureBoth(&snap, "TrainEpochSerial", func(b *testing.B) { trainEpoch(b, 1, false) })
	measureBoth(&snap, "TrainEpochParallel", func(b *testing.B) { trainEpoch(b, 0, false) })
	measureBoth(&snap, "TrainEpochInstrumented", func(b *testing.B) { trainEpoch(b, 1, true) })
	snap.TrainObsOverheadPct = trainObsOverhead(7)
	fmt.Printf("instrumented training overhead: %+.2f%% (budget %.1f%%, median of 7 pairs)\n",
		snap.TrainObsOverheadPct, trainObsBudgetPct)

	// The lab pre-trains the shared quick-scale surrogate once; Decide and
	// GridPredict then measure pure inference. (GridPredict keeps its
	// BENCH_1/2 name for the perf trajectory; since the batching PR,
	// PredictGrid *is* the batched path, so the separate *Batched aliases
	// that re-measured the same entry points were dropped in BENCH_4.)
	lab := experiments.NewLab(experiments.QuickLabConfig())
	sys, err := lab.BaseSystem()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: lab setup:", err)
		os.Exit(1)
	}
	inter := lab.Trace("azure").Interarrivals()
	window := inter[:sys.Model.Cfg.SeqLen]
	cfgs := deepbat.DefaultGrid().Configs()

	snap.Results = append(snap.Results, measure("GridPredict", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Model.PredictGrid(window, cfgs)
		}
	}))

	snap.Results = append(snap.Results, measure("Decide", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Decide(window); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Gateway serving path. B=1 configurations dispatch synchronously on the
	// submitting goroutine; the sharded benchmarks drive 16 concurrent
	// clients through RunParallel so shards see interleaved traffic.
	b1 := lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0}

	admit := measureMedian("GatewayAdmit", 3, func(b *testing.B) {
		g := newBenchGateway(1, b1)
		defer g.Stop()
		for i := 0; i < 64; i++ {
			g.Do() // warm the waiter/batch pools before measuring
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Do()
		}
	})
	snap.Results = append(snap.Results, admit)
	snap.GatewayAdmitAllocsPerOp = admit.AllocsPerOp

	snap.Results = append(snap.Results, measureMedian("GatewayDispatchBatch", 3, func(b *testing.B) {
		// Size-triggered dispatch: 16 clients fill B=16 batches; the 5 ms
		// timer only rescues the final partial batch.
		g := newBenchGateway(1, lambda.Config{MemoryMB: 2048, BatchSize: 16, TimeoutS: 0.005})
		defer g.Stop()
		b.SetParallelism(16)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				g.Do()
			}
		})
	}))

	singleQueue := measureMedian("GatewaySingleQueue", 5, func(b *testing.B) {
		g := newBenchGateway(1, b1)
		defer g.Stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			<-g.Enqueue() // legacy channel-per-request path
		}
	})
	snap.Results = append(snap.Results, singleQueue)

	var sharded8 Result
	for _, p := range []int{1, 4, 8} {
		p := p
		runs := 3
		if p == 8 {
			runs = 5 // denominator of the asserted speedup ratio
		}
		r := measureMedian(fmt.Sprintf("GatewaySharded%d", p), runs, func(b *testing.B) {
			g := newBenchGateway(p, b1)
			defer g.Stop()
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					g.Do()
				}
			})
		})
		snap.Results = append(snap.Results, r)
		if p == 8 {
			sharded8 = r
		}
	}
	if sharded8.NsPerOp > 0 {
		snap.SpeedupSharded8VsSingleQueue = singleQueue.NsPerOp / sharded8.NsPerOp
	}
	fmt.Printf("sharded8 vs single-queue dispatch: %.2fx (floor %.1fx)\n",
		snap.SpeedupSharded8VsSingleQueue, sharded8SpeedupFloor)

	// Sweep engine: pure dispatch overhead (one op = a 1024-cell run on 4
	// workers with no-op cells), then the scenarios matrix at 1 vs 8 workers.
	measureBoth(&snap, "SweepDispatch", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sweep.Run(sweep.Options{Workers: 4}, 1024, func(*sweep.Cell) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep1, secs1 := scenariosSecs(1, 3)
	rep8, secs8 := scenariosSecs(8, 3)
	snap.SweepScenariosSecsW1 = secs1
	snap.SweepScenariosSecsW8 = secs8
	snap.SweepScenariosIdentical = rep1 == rep8
	if secs8 > 0 {
		snap.SweepScenariosSpeedup8Vs1 = secs1 / secs8
	}
	fmt.Printf("scenarios sweep: w1 %.3fs, w8 %.3fs, speedup %.2fx (floor %.1fx on %d+ CPUs; this machine: %d), identical=%v\n",
		snap.SweepScenariosSecsW1, snap.SweepScenariosSecsW8, snap.SweepScenariosSpeedup8Vs1,
		sweepSpeedupFloor, sweepSpeedupMinCPU, runtime.NumCPU(), snap.SweepScenariosIdentical)

	snap.compareBaseline(*baseline)

	failed := false
	if snap.TrainObsOverheadPct > trainObsBudgetPct {
		fmt.Fprintf(os.Stderr, "bench: ASSERT FAILED: train_obs_overhead_pct %.2f%% exceeds the %.1f%% budget\n",
			snap.TrainObsOverheadPct, trainObsBudgetPct)
		failed = true
	}
	if snap.GatewayAdmitAllocsPerOp > 0 {
		fmt.Fprintf(os.Stderr, "bench: ASSERT FAILED: GatewayAdmit allocates %d/op; the pooled path must be zero-alloc\n",
			snap.GatewayAdmitAllocsPerOp)
		failed = true
	}
	if snap.SpeedupSharded8VsSingleQueue < sharded8SpeedupFloor {
		fmt.Fprintf(os.Stderr, "bench: ASSERT FAILED: sharded8 speedup %.2fx below the %.1fx floor\n",
			snap.SpeedupSharded8VsSingleQueue, sharded8SpeedupFloor)
		failed = true
	}
	if !snap.SweepScenariosIdentical {
		fmt.Fprintln(os.Stderr, "bench: ASSERT FAILED: scenarios reports differ between 1 and 8 sweep workers; the engine must be byte-deterministic")
		failed = true
	}
	if runtime.NumCPU() >= sweepSpeedupMinCPU {
		if snap.SweepScenariosSpeedup8Vs1 < sweepSpeedupFloor {
			fmt.Fprintf(os.Stderr, "bench: ASSERT FAILED: scenarios sweep speedup %.2fx below the %.1fx floor\n",
				snap.SweepScenariosSpeedup8Vs1, sweepSpeedupFloor)
			failed = true
		}
	} else {
		fmt.Printf("scenarios sweep speedup floor skipped: %d CPUs < %d (ratio recorded, not asserted)\n",
			runtime.NumCPU(), sweepSpeedupMinCPU)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: encode:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", *out, snap.GOMAXPROCS)
	if failed {
		os.Exit(1)
	}
}
