// Command replay drives the real gateway hot path (Submit/Do with sharded
// batching, virtual batch timers, retries, breaker) from a tracev1 workload
// file — or a freshly generated named workload — entirely on a virtual
// clock, and reports throughput, p50/p95/p99 latency, goodput, and cost per
// time window.
//
//	tracegen -name azure -o azure.tracev1
//	replay -trace azure.tracev1 -slo 0.1                # per-window report
//	replay -name flashcrowd -scale 2 -json              # 2x rate, JSON report
//	replay -trace azure.tracev1 -fault-error-rate 0.05  # with injected faults
//
// Replays are byte-reproducible: the same trace file (or name + spec) and
// flags produce the identical report on any machine, which is what
// `make replay-smoke` asserts in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"deepbat/internal/fault"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/replay"
	"deepbat/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "tracev1 file to replay (binary or JSON, auto-detected)")
	name := flag.String("name", "", "generate this workload instead of reading -trace: "+strings.Join(workload.Names(), "|"))
	hours := flag.Int("hours", 0, "paper-hours for -name (0 = workload default)")
	hourSeconds := flag.Float64("hour-seconds", 0, "simulated seconds per paper-hour for -name (0 = default)")
	seed := flag.Int64("seed", 0, "generation seed for -name (0 = default)")
	shards := flag.Int("shards", 1, "gateway shard count (0 = GOMAXPROCS; reports depend on it)")
	slo := flag.Float64("slo", 0.1, "latency SLO in seconds (goodput threshold)")
	memory := flag.Float64("memory", 2048, "serving configuration: memory MB")
	batch := flag.Int("batch", 4, "serving configuration: batch size B")
	timeout := flag.Float64("timeout", 0.1, "serving configuration: batch timeout T seconds")
	scale := flag.Float64("scale", 1, "time compression: arrival timestamps divided by this factor")
	window := flag.Float64("window", 60, "report window length in replayed seconds")
	faultRate := flag.Float64("fault-error-rate", 0, "injected backend failure probability")
	faultStraggler := flag.Float64("fault-straggler-rate", 0, "injected straggler probability")
	faultSeed := flag.Int64("fault-seed", 0, "fault plan seed (0 = the trace's seed)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the text table")
	metricsOut := flag.String("metrics", "", "also write the gateway's full metric snapshot (JSON) to this file")
	flag.Parse()

	if err := run(*tracePath, *name, *hours, *hourSeconds, *seed, *shards, *slo,
		*memory, *batch, *timeout, *scale, *window,
		*faultRate, *faultStraggler, *faultSeed, *asJSON, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(tracePath, name string, hours int, hourSeconds float64, seed int64,
	shards int, slo, memory float64, batch int, timeout, scale, window float64,
	faultRate, faultStraggler float64, faultSeed int64, asJSON bool, metricsOut string) error {
	t, err := loadTrace(tracePath, name, hours, hourSeconds, seed)
	if err != nil {
		return err
	}
	plan := fault.Plan{Seed: faultSeed, ErrorRate: faultRate, StragglerRate: faultStraggler}
	if plan.Active() && plan.Seed == 0 {
		plan.Seed = t.Header.Seed
	}
	reg := obs.NewRegistry()
	rep, err := replay.Run(replay.Config{
		Trace:     t,
		Initial:   lambda.Config{MemoryMB: memory, BatchSize: batch, TimeoutS: timeout},
		Shards:    shards,
		SLO:       slo,
		TimeScale: scale,
		WindowS:   window,
		Fault:     plan,
		Obs:       reg,
	})
	if err != nil {
		return err
	}
	if metricsOut != "" {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(metricsOut, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if asJSON {
		return writeJSON(os.Stdout, rep)
	}
	return rep.WriteText(os.Stdout)
}

// loadTrace reads -trace (sniffing binary tracev1 vs its JSON twin by the
// magic prefix) or generates -name from its default spec with any overrides.
func loadTrace(tracePath, name string, hours int, hourSeconds float64, seed int64) (*workload.Trace, error) {
	switch {
	case tracePath != "" && name != "":
		return nil, fmt.Errorf("-trace and -name are mutually exclusive")
	case tracePath != "":
		data, err := os.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		if bytes.HasPrefix(data, []byte("DBTRACE1")) {
			return workload.DecodeBytes(data)
		}
		return workload.DecodeJSON(bytes.NewReader(data))
	case name != "":
		s := workload.DefaultSpec(name)
		if hours > 0 {
			s.Hours = hours
		}
		if hourSeconds > 0 {
			s.HourSeconds = hourSeconds
		}
		if seed != 0 {
			s.Seed = seed
		}
		return workload.Generate(s)
	default:
		return nil, fmt.Errorf("one of -trace or -name is required")
	}
}

func writeJSON(f *os.File, rep replay.Report) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
