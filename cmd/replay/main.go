// Command replay drives the real gateway hot path (Submit/Do with sharded
// batching, virtual batch timers, retries, breaker) from a tracev1 workload
// file — or a freshly generated named workload — entirely on a virtual
// clock, and reports throughput, p50/p95/p99 latency, goodput, and cost per
// time window.
//
//	tracegen -name azure -o azure.tracev1
//	replay -trace azure.tracev1 -slo 0.1                # per-window report
//	replay -name flashcrowd -scale 2 -json              # 2x rate, JSON report
//	replay -trace azure.tracev1 -fault-error-rate 0.05  # with injected faults
//	replay -name azure -sweep 1,2,4 -workers 0          # parallel shard sweep
//	replay -name corrburst -plan fleet.json -optimize   # fleet front door
//
// With -plan the class-labeled trace replays through a fleet front door:
// every trace class routes by name to the plan class of the same name, each
// function group runs the real gateway hot path, and the report breaks out
// per-class goodput against per-class SLOs. -optimize first runs the fleet
// planner (solo ground-truth search per class plus the plan's merge pass)
// over the trace's per-class arrival windows.
//
// Replays are byte-reproducible: the same trace file (or name + spec) and
// flags produce the identical report on any machine, which is what
// `make replay-smoke` asserts in CI. -sweep fans the shard counts out
// through the deterministic sweep engine: reports print in sweep order and
// are identical at any -workers value.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"deepbat/internal/fault"
	"deepbat/internal/fleet"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/replay"
	"deepbat/internal/sweep"
	"deepbat/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "tracev1 file to replay (binary or JSON, auto-detected)")
	name := flag.String("name", "", "generate this workload instead of reading -trace: "+strings.Join(workload.Names(), "|"))
	hours := flag.Int("hours", 0, "paper-hours for -name (0 = workload default)")
	hourSeconds := flag.Float64("hour-seconds", 0, "simulated seconds per paper-hour for -name (0 = default)")
	seed := flag.Int64("seed", 0, "generation seed for -name (0 = default)")
	shards := flag.Int("shards", 1, "gateway shard count (0 = GOMAXPROCS; reports depend on it)")
	slo := flag.Float64("slo", 0.1, "latency SLO in seconds (goodput threshold)")
	memory := flag.Float64("memory", 2048, "serving configuration: memory MB")
	batch := flag.Int("batch", 4, "serving configuration: batch size B")
	timeout := flag.Float64("timeout", 0.1, "serving configuration: batch timeout T seconds")
	scale := flag.Float64("scale", 1, "time compression: arrival timestamps divided by this factor")
	window := flag.Float64("window", 60, "report window length in replayed seconds")
	faultRate := flag.Float64("fault-error-rate", 0, "injected backend failure probability")
	faultStraggler := flag.Float64("fault-straggler-rate", 0, "injected straggler probability")
	faultSeed := flag.Int64("fault-seed", 0, "fault plan seed (0 = the trace's seed)")
	planPath := flag.String("plan", "", "fleet plan JSON file: replay through the fleet front door, routing trace classes by name")
	optimize := flag.Bool("optimize", false, "with -plan: run the fleet planner (and its merge pass) before replaying")
	sweepList := flag.String("sweep", "", "comma-separated shard counts replayed as a parallel fan-out (overrides -shards)")
	workers := flag.Int("workers", 0, "sweep fan-out workers (0 = GOMAXPROCS; reports are identical at any count)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the text table")
	metricsOut := flag.String("metrics", "", "also write the gateway's full metric snapshot (JSON) to this file")
	flag.Parse()

	o := options{
		tracePath: *tracePath, name: *name, hours: *hours, hourSeconds: *hourSeconds,
		seed: *seed, shards: *shards, slo: *slo,
		initial: lambda.Config{MemoryMB: *memory, BatchSize: *batch, TimeoutS: *timeout},
		scale:   *scale, window: *window,
		faultRate: *faultRate, faultStraggler: *faultStraggler, faultSeed: *faultSeed,
		planPath: *planPath, optimize: *optimize,
		sweepList: *sweepList, workers: *workers,
		asJSON: *asJSON, metricsOut: *metricsOut,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

// options carries the parsed flag set into run.
type options struct {
	tracePath, name           string
	hours                     int
	hourSeconds               float64
	seed                      int64
	shards                    int
	slo                       float64
	initial                   lambda.Config
	scale, window             float64
	faultRate, faultStraggler float64
	faultSeed                 int64
	planPath                  string
	optimize                  bool
	sweepList                 string
	workers                   int
	asJSON                    bool
	metricsOut                string
}

func run(o options) error {
	t, err := loadTrace(o.tracePath, o.name, o.hours, o.hourSeconds, o.seed)
	if err != nil {
		return err
	}
	if o.planPath != "" {
		switch {
		case o.sweepList != "":
			return fmt.Errorf("-plan and -sweep are mutually exclusive")
		case o.faultRate > 0 || o.faultStraggler > 0:
			return fmt.Errorf("fault injection is not supported with -plan")
		case o.metricsOut != "":
			return fmt.Errorf("-metrics is not supported with -plan (use the gateway's /metrics.json)")
		}
		return runFleet(o, t)
	}
	plan := fault.Plan{Seed: o.faultSeed, ErrorRate: o.faultRate, StragglerRate: o.faultStraggler}
	if plan.Active() && plan.Seed == 0 {
		plan.Seed = t.Header.Seed
	}
	cfg := replay.Config{
		Trace:     t,
		Initial:   o.initial,
		Shards:    o.shards,
		SLO:       o.slo,
		TimeScale: o.scale,
		WindowS:   o.window,
		Fault:     plan,
	}
	if o.sweepList != "" {
		return runSweep(o, cfg)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	rep, err := replay.Run(cfg)
	if err != nil {
		return err
	}
	if err := writeMetrics(o.metricsOut, reg); err != nil {
		return err
	}
	if o.asJSON {
		return writeJSON(os.Stdout, rep)
	}
	return rep.WriteText(os.Stdout)
}

// runFleet replays the trace through the fleet front door declared by the
// plan file, optionally running the planner over the trace's per-class
// windows first.
func runFleet(o options, t *workload.Trace) error {
	data, err := os.ReadFile(o.planPath)
	if err != nil {
		return err
	}
	plan, err := fleet.ParsePlan(data)
	if err != nil {
		return err
	}
	cfg := replay.FleetConfig{Trace: t, Plan: plan, TimeScale: o.scale}
	if o.optimize {
		windows, err := fleetWindows(plan, t, o.scale)
		if err != nil {
			return err
		}
		a, err := fleet.Optimize(plan, windows, fleet.OptimizerConfig{Workers: o.workers})
		if err != nil {
			return err
		}
		cfg.Assignment = a
	}
	rep, err := replay.RunFleet(cfg)
	if err != nil {
		return err
	}
	if o.asJSON {
		return writeJSON(os.Stdout, rep)
	}
	return rep.WriteText(os.Stdout)
}

// fleetWindows splits the trace's arrivals into one time-scaled window per
// plan class, routing trace classes by name. Plan classes absent from the
// trace get empty (idle) windows.
func fleetWindows(p fleet.Plan, t *workload.Trace, scale float64) ([][]float64, error) {
	ts := 1.0
	if scale > 0 {
		ts = scale
	}
	classMap := make([]int, len(t.Header.Classes))
	for ti, name := range t.Header.Classes {
		ci := p.ClassIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("trace class %q is not a plan class", name)
		}
		classMap[ti] = ci
	}
	windows := make([][]float64, len(p.Classes))
	for _, rq := range t.Reqs {
		ci := classMap[rq.Class]
		windows[ci] = append(windows[ci], rq.AtS/ts)
	}
	return windows, nil
}

// runSweep replays the trace once per -sweep shard count through the
// deterministic sweep engine: each count is one cell with its own metric
// registry, the shared trace cache digests the trace once, and the rendered
// reports print in sweep order regardless of -workers. -metrics receives the
// ordered merge of every cell's snapshot.
func runSweep(o options, base replay.Config) error {
	counts, err := parseCounts(o.sweepList)
	if err != nil {
		return err
	}
	cache := workload.NewCache()
	merged := obs.NewRegistry()
	outs := make([]bytes.Buffer, len(counts))
	err = sweep.Run(sweep.Options{Workers: o.workers, Obs: merged}, len(counts), func(c *sweep.Cell) error {
		cfg := base
		cfg.Shards = counts[c.Index]
		cfg.Obs = c.Obs()
		cfg.Cache = cache
		rep, err := replay.Run(cfg)
		if err != nil {
			return err
		}
		if o.asJSON {
			return writeJSON(&outs[c.Index], rep)
		}
		return rep.WriteText(&outs[c.Index])
	})
	if err != nil {
		return err
	}
	for i := range outs {
		if _, err := os.Stdout.Write(outs[i].Bytes()); err != nil {
			return err
		}
	}
	return writeMetrics(o.metricsOut, merged)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sweep entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeMetrics(path string, reg *obs.Registry) error {
	if path == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// loadTrace reads -trace (sniffing binary tracev1 vs its JSON twin by the
// magic prefix) or generates -name from its default spec with any overrides.
func loadTrace(tracePath, name string, hours int, hourSeconds float64, seed int64) (*workload.Trace, error) {
	switch {
	case tracePath != "" && name != "":
		return nil, fmt.Errorf("-trace and -name are mutually exclusive")
	case tracePath != "":
		data, err := os.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		if bytes.HasPrefix(data, []byte("DBTRACE1")) {
			return workload.DecodeBytes(data)
		}
		return workload.DecodeJSON(bytes.NewReader(data))
	case name != "":
		s := workload.DefaultSpec(name)
		if hours > 0 {
			s.Hours = hours
		}
		if hourSeconds > 0 {
			s.HourSeconds = hourSeconds
		}
		if seed != 0 {
			s.Seed = seed
		}
		return workload.Generate(s)
	default:
		return nil, fmt.Errorf("one of -trace or -name is required")
	}
}

func writeJSON(w io.Writer, rep any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
