// Command gateway runs the real-time DeepBAT HTTP front-end: POST /infer to
// submit an inference request (it is batched per the live configuration and
// answered when its batch completes), GET /stats, /config, /metrics
// (Prometheus text format), and /metrics.json to observe the system. A
// trained model drives live reconfiguration.
//
//	gateway -model model.gob -addr :8080
//	gateway -model model.gob -pprof            # also mount /debug/pprof/*
//	gateway -model model.gob -demo -demo-rate 200 -demo-duration 10s
//	gateway -plan fleet.json                   # multi-class fleet front door
//
// With -demo the command starts the server, drives synthetic Poisson traffic
// against it, prints the resulting stats, and exits.
//
// With -plan the command serves a fleet instead of a single gateway: the
// JSON plan declares the request classes (name, profile, SLO, optional merge
// groups), POST /infer?class=<name> routes to the class's function group,
// and each group re-searches its own (M, B, T) on the -decide-every period
// via ground-truth simulation. -model and the fault/resilience flags do not
// apply in plan mode; resilience comes from the plan.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"deepbat"
	"deepbat/internal/fault"
	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "model.gob", "trained model path")
	planPath := flag.String("plan", "", "fleet plan JSON file: serve a multi-class fleet instead of a single gateway")
	slo := flag.Float64("slo", 0.1, "latency SLO in seconds")
	decideEvery := flag.Duration("decide-every", 5*time.Second, "control period")
	timeScale := flag.Float64("time-scale", 1.0, "backend wall-clock scale (0 = instant)")
	shards := flag.Int("shards", 0, "batcher shard count (0 = GOMAXPROCS)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	demo := flag.Bool("demo", false, "self-drive synthetic traffic and exit")
	demoRate := flag.Float64("demo-rate", 100, "demo traffic rate (req/s)")
	demoDur := flag.Duration("demo-duration", 10*time.Second, "demo length")
	// Resilience knobs.
	maxRetries := flag.Int("max-retries", 2, "backend retries per batch before it fails")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubles per retry)")
	retryMax := flag.Duration("retry-max", time.Second, "retry backoff cap")
	retryJitterSeed := flag.Int64("retry-jitter-seed", 1, "backoff jitter PRNG seed (0 disables jitter)")
	requestTimeout := flag.Float64("request-timeout", 0, "per-request deadline in seconds (0 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that open the circuit breaker (0 = disabled)")
	breakerCooldown := flag.Float64("breaker-cooldown", 5, "seconds the breaker stays open before a half-open probe")
	// Chaos knobs: a seeded fault.Plan injected in front of the backend.
	faultSeed := flag.Int64("fault-seed", 0, "fault-injection seed")
	faultErrorRate := flag.Float64("fault-error-rate", 0, "probability an invocation attempt fails")
	faultStragglerRate := flag.Float64("fault-straggler-rate", 0, "probability an invocation straggles")
	faultColdSpikeRate := flag.Float64("fault-cold-spike-rate", 0, "probability an invocation pays a cold-start spike")
	faultDecideErrorRate := flag.Float64("fault-decide-error-rate", 0, "probability a control decision fails")
	flag.Parse()

	if *planPath != "" {
		if *demo {
			log.Fatal("gateway: -demo does not apply in -plan mode")
		}
		runFleet(*planPath, *addr, *decideEvery, *timeScale, *withPprof)
		return
	}

	sys, err := deepbat.LoadSystem(*model, optionsWithSLO(*slo))
	if err != nil {
		log.Fatalf("gateway: load model: %v (train one with: deepbat train)", err)
	}
	decide := func(window []float64) (lambda.Config, error) {
		d, err := sys.Decide(window)
		if err != nil {
			return lambda.Config{}, err
		}
		return d.Config, nil
	}
	var backend gateway.Backend = gateway.SimulatedBackend{
		Profile:   deepbat.DefaultProfile(),
		Pricing:   deepbat.DefaultPricing(),
		TimeScale: *timeScale,
	}
	plan := fault.Plan{
		Seed:            *faultSeed,
		ErrorRate:       *faultErrorRate,
		StragglerRate:   *faultStragglerRate,
		ColdSpikeRate:   *faultColdSpikeRate,
		DecideErrorRate: *faultDecideErrorRate,
	}
	if plan.Active() {
		inj := fault.NewInjector(plan)
		pricing := deepbat.DefaultPricing()
		backend = &fault.FaultyBackend{
			Inner: backend, Inj: inj, Pricing: &pricing, TimeScale: *timeScale,
		}
		decide = inj.WrapDecide(decide)
		fmt.Printf("gateway: fault injection active (seed %d, error %.2f, straggler %.2f, cold-spike %.2f, decide-error %.2f)\n",
			plan.Seed, plan.ErrorRate, plan.StragglerRate, plan.ColdSpikeRate, plan.DecideErrorRate)
	}
	resilience := gateway.Resilience{
		MaxRetries:       *maxRetries,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		RequestTimeoutS:  *requestTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldownS: *breakerCooldown,
		Fallback:         lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0},
	}
	if *retryJitterSeed != 0 {
		resilience.Jitter = rand.New(rand.NewSource(*retryJitterSeed))
	}
	gw, err := gateway.New(
		backend,
		decide,
		gateway.Config{
			Initial:     lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
			SLO:         *slo,
			DecideEvery: *decideEvery,
			WindowLen:   sys.Model.Cfg.SeqLen,
			Resilience:  resilience,
			Shards:      *shards,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	if *demo {
		runDemo(gw, *demoRate, *demoDur)
		return
	}
	handler := gw.Handler()
	if *withPprof {
		// Opt-in profiling: mount the pprof handlers next to the gateway
		// endpoints instead of relying on http.DefaultServeMux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	extra := ""
	if *withPprof {
		extra = ", /debug/pprof"
	}
	fmt.Printf("gateway listening on %s (POST /infer, GET /stats, GET /config, GET /metrics%s)\n", *addr, extra)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}

// runFleet serves a multi-class fleet front door from a plan file: one
// sharded gateway per function group, each tuned on the control period by
// ground-truth simulation over its own arrival window.
func runFleet(planPath, addr string, decideEvery time.Duration, timeScale float64, withPprof bool) {
	data, err := os.ReadFile(planPath)
	if err != nil {
		log.Fatalf("gateway: read plan: %v", err)
	}
	plan, err := fleet.ParsePlan(data)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	f, err := fleet.New(plan, fleet.Options{
		TuneEvery: decideEvery,
		BackendFor: func(gi int, g fleet.Group) gateway.Backend {
			lead := plan.Classes[g.Classes[0]]
			for _, ci := range g.Classes[1:] {
				if plan.Classes[ci].SLO < lead.SLO {
					lead = plan.Classes[ci]
				}
			}
			return gateway.SimulatedBackend{
				Profile:   lambda.Profiles[g.Profile],
				Pricing:   lead.LambdaPricing(),
				TimeScale: timeScale,
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	handler := http.Handler(f.Handler())
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	names := make([]string, len(plan.Classes))
	for i, spec := range plan.Classes {
		names[i] = spec.Name
	}
	fmt.Printf("gateway fleet listening on %s: %d classes (%s) on %d groups (POST /infer?class=<name>, GET /stats, /config, /metrics)\n",
		addr, len(plan.Classes), strings.Join(names, ","), f.Groups())
	if err := http.ListenAndServe(addr, handler); err != nil {
		log.Fatal(err)
	}
}

func optionsWithSLO(slo float64) deepbat.Options {
	opts := deepbat.DefaultOptions()
	opts.SLO = slo
	return opts
}

// runDemo drives Poisson traffic at the gateway through a local HTTP server
// and prints the final stats document.
func runDemo(gw *gateway.Gateway, rate float64, dur time.Duration) {
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	fmt.Printf("demo: %g req/s for %s against %s\n", rate, dur, srv.URL)

	rng := rand.New(rand.NewSource(1))
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	sent := 0
	for time.Now().Before(deadline) {
		wg.Add(1)
		sent++
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/infer", "application/json", nil)
			if err != nil {
				return
			}
			resp.Body.Close()
		}()
		gap := rng.ExpFloat64() / rate
		time.Sleep(time.Duration(gap * float64(time.Second)))
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats gateway.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fmt.Printf("demo: sent %d requests; final stats:\n", sent)
	if err := enc.Encode(stats); err != nil {
		log.Fatal(err)
	}
}
