// Command gateway runs the real-time DeepBAT HTTP front-end: POST /infer to
// submit an inference request (it is batched per the live configuration and
// answered when its batch completes), GET /stats, /config, /metrics
// (Prometheus text format), and /metrics.json to observe the system. A
// trained model drives live reconfiguration.
//
//	gateway -model model.gob -addr :8080
//	gateway -model model.gob -pprof            # also mount /debug/pprof/*
//	gateway -model model.gob -demo -demo-rate 200 -demo-duration 10s
//
// With -demo the command starts the server, drives synthetic Poisson traffic
// against it, prints the resulting stats, and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"deepbat"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "model.gob", "trained model path")
	slo := flag.Float64("slo", 0.1, "latency SLO in seconds")
	decideEvery := flag.Duration("decide-every", 5*time.Second, "control period")
	timeScale := flag.Float64("time-scale", 1.0, "backend wall-clock scale (0 = instant)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	demo := flag.Bool("demo", false, "self-drive synthetic traffic and exit")
	demoRate := flag.Float64("demo-rate", 100, "demo traffic rate (req/s)")
	demoDur := flag.Duration("demo-duration", 10*time.Second, "demo length")
	flag.Parse()

	sys, err := deepbat.LoadSystem(*model, optionsWithSLO(*slo))
	if err != nil {
		log.Fatalf("gateway: load model: %v (train one with: deepbat train)", err)
	}
	decide := func(window []float64) (lambda.Config, error) {
		d, err := sys.Decide(window)
		if err != nil {
			return lambda.Config{}, err
		}
		return d.Config, nil
	}
	gw, err := gateway.New(
		gateway.SimulatedBackend{
			Profile:   deepbat.DefaultProfile(),
			Pricing:   deepbat.DefaultPricing(),
			TimeScale: *timeScale,
		},
		decide,
		gateway.Config{
			Initial:     lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
			SLO:         *slo,
			DecideEvery: *decideEvery,
			WindowLen:   sys.Model.Cfg.SeqLen,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	if *demo {
		runDemo(gw, *demoRate, *demoDur)
		return
	}
	handler := gw.Handler()
	if *withPprof {
		// Opt-in profiling: mount the pprof handlers next to the gateway
		// endpoints instead of relying on http.DefaultServeMux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	extra := ""
	if *withPprof {
		extra = ", /debug/pprof"
	}
	fmt.Printf("gateway listening on %s (POST /infer, GET /stats, GET /config, GET /metrics%s)\n", *addr, extra)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}

func optionsWithSLO(slo float64) deepbat.Options {
	opts := deepbat.DefaultOptions()
	opts.SLO = slo
	return opts
}

// runDemo drives Poisson traffic at the gateway through a local HTTP server
// and prints the final stats document.
func runDemo(gw *gateway.Gateway, rate float64, dur time.Duration) {
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	fmt.Printf("demo: %g req/s for %s against %s\n", rate, dur, srv.URL)

	rng := rand.New(rand.NewSource(1))
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	sent := 0
	for time.Now().Before(deadline) {
		wg.Add(1)
		sent++
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/infer", "application/json", nil)
			if err != nil {
				return
			}
			resp.Body.Close()
		}()
		gap := rng.ExpFloat64() / rate
		time.Sleep(time.Duration(gap * float64(time.Second)))
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats gateway.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fmt.Printf("demo: sent %d requests; final stats:\n", sent)
	if err := enc.Encode(stats); err != nil {
		log.Fatal(err)
	}
}
