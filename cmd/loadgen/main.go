// Command loadgen drives an in-process gateway with synthetic traffic and
// reports throughput, p50/p95/p99 latency, and goodput (SLO-satisfying
// req/s).
//
//	loadgen -loop closed -clients 16 -duration 3s          # saturation run
//	loadgen -loop open -requests 5000 -rate 2000 -seed 42  # deterministic replay
//	loadgen -loop open -requests 5000 -rate 2000 -sweep 1,2,4,8
//	loadgen -plan fleet.json -requests 5000 -seed 42       # multi-class fleet
//
// With -plan the open loop drives a fleet instead of a single gateway: each
// plan class emits its own seeded Poisson stream at its rate_rps, the merged
// stream routes through the fleet front door, and the table breaks out one
// row per class with goodput judged against that class's own SLO.
//
// The open loop replays a seeded Poisson arrival process on a virtual
// clock: same seed, same table, on any machine — which is what makes
// -sweep output comparable across shard counts and runs. The closed loop
// measures real wall-clock saturation throughput; -assert turns it into
// the CI smoke check (goodput > 0, zero failed requests).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"deepbat/internal/fleet"
	"deepbat/internal/lambda"
	"deepbat/internal/loadgen"
	"deepbat/internal/sweep"
)

func main() {
	loop := flag.String("loop", "closed", "traffic loop: closed | open")
	planPath := flag.String("plan", "", "fleet plan JSON file: drive a multi-class fleet with per-class Poisson streams (open loop)")
	shards := flag.Int("shards", 0, "gateway shard count (0 = GOMAXPROCS)")
	sweepList := flag.String("sweep", "", "comma-separated shard counts to sweep (overrides -shards)")
	workers := flag.Int("workers", 0, "open-loop sweep fan-out workers (0 = GOMAXPROCS; rows are identical at any count)")
	clients := flag.Int("clients", 8, "closed-loop concurrent clients")
	requests := flag.Int("requests", 0, "request budget: per client (closed), total (open)")
	duration := flag.Duration("duration", 3*time.Second, "closed-loop wall budget (0 = until -requests)")
	rate := flag.Float64("rate", 1000, "open-loop Poisson arrival rate (req/s)")
	seed := flag.Int64("seed", 1, "arrival/fault PRNG seed")
	slo := flag.Float64("slo", 0.1, "latency SLO in seconds (goodput threshold)")
	memory := flag.Float64("memory", 2048, "serving configuration: memory MB")
	batch := flag.Int("batch", 1, "serving configuration: batch size B")
	timeout := flag.Float64("timeout", 0.01, "serving configuration: batch timeout T seconds (closed loop)")
	faultRate := flag.Float64("fault-error-rate", 0, "injected backend failure probability")
	legacy := flag.Bool("legacy", false, "drive the channel-per-request Enqueue path instead of the pooled path")
	assert := flag.Bool("assert", false, "exit 1 unless goodput > 0 and no request failed (CI smoke)")
	flag.Parse()

	cfg := loadgen.Config{
		Initial:        lambda.Config{MemoryMB: *memory, BatchSize: *batch, TimeoutS: *timeout},
		Shards:         *shards,
		SLO:            *slo,
		Clients:        *clients,
		Requests:       *requests,
		Duration:       *duration,
		RateRPS:        *rate,
		Seed:           *seed,
		FaultErrorRate: *faultRate,
		Legacy:         *legacy,
	}
	if *loop == "open" && cfg.Requests == 0 {
		cfg.Requests = 5000
	}
	if *planPath != "" {
		if *sweepList != "" {
			log.Fatal("loadgen: -plan and -sweep are mutually exclusive")
		}
		if cfg.Requests == 0 {
			cfg.Requests = 5000
		}
		runFleet(*planPath, cfg, *assert)
		return
	}

	counts := []int{cfg.Shards}
	if *sweepList != "" {
		counts = parseSweep(*sweepList)
	}
	if *loop != "closed" && *loop != "open" {
		log.Fatalf("loadgen: unknown -loop %q (want closed or open)", *loop)
	}
	reports := make([]loadgen.Report, len(counts))
	if *loop == "open" {
		// Every open-loop run is an isolated gateway on its own virtual
		// clock, so the sweep entries fan out as parallel cells; rows print
		// in sweep order and are identical at any -workers value.
		err := sweep.Run(sweep.Options{Workers: *workers}, len(counts), func(c *sweep.Cell) error {
			lc := cfg
			lc.Shards = counts[c.Index]
			r, err := loadgen.RunOpen(lc)
			if err != nil {
				return err
			}
			reports[c.Index] = r
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		// The closed loop measures wall-clock saturation; concurrent runs
		// would contend for the cores under test, so it stays serial.
		for i, p := range counts {
			c := cfg
			c.Shards = p
			r, err := loadgen.RunClosed(c)
			if err != nil {
				log.Fatal(err)
			}
			reports[i] = r
		}
	}
	printHeader()
	ok := true
	for _, r := range reports {
		printRow(r)
		if r.GoodputRPS <= 0 || r.Failed > 0 {
			ok = false
		}
	}
	if *assert && !ok {
		fmt.Println("loadgen: ASSERT FAILED (goodput must be > 0 with zero failed requests)")
		os.Exit(1)
	}
}

// runFleet drives the fleet open loop from a plan file and prints one row
// per class plus the fleet-wide total.
func runFleet(planPath string, cfg loadgen.Config, assert bool) {
	data, err := os.ReadFile(planPath)
	if err != nil {
		log.Fatalf("loadgen: read plan: %v", err)
	}
	plan, err := fleet.ParsePlan(data)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	res, err := loadgen.RunFleetOpen(plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printFleetHeader()
	ok := true
	for _, r := range res.PerClass {
		printFleetRow(r)
		if r.Requests > 0 && (r.GoodputRPS <= 0 || r.Failed > 0) {
			ok = false
		}
	}
	printFleetRow(res.Total)
	if res.Total.GoodputRPS <= 0 || res.Total.Failed > 0 {
		ok = false
	}
	if assert && !ok {
		fmt.Println("loadgen: ASSERT FAILED (goodput must be > 0 with zero failed requests)")
		os.Exit(1)
	}
}

func printFleetHeader() {
	fmt.Printf("%-12s %7s %9s %8s %12s %12s %9s %9s %9s %12s\n",
		"class", "shards", "requests", "failed",
		"throughput", "goodput", "p50_ms", "p95_ms", "p99_ms", "cost_usd")
}

func printFleetRow(r loadgen.Report) {
	label := r.Class
	if label == "" {
		label = "total"
	}
	fmt.Printf("%-12s %7d %9d %8d %12.1f %12.1f %9.3f %9.3f %9.3f %12.6f\n",
		label, r.Shards, r.Requests, r.Failed,
		r.ThroughputRPS, r.GoodputRPS, r.P50MS, r.P95MS, r.P99MS, r.TotalCostUSD)
}

func parseSweep(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("loadgen: bad -sweep entry %q", part)
		}
		out = append(out, n)
	}
	return out
}

func printHeader() {
	fmt.Printf("%-7s %7s %7s %9s %8s %12s %12s %9s %9s %9s %12s\n",
		"mode", "shards", "path", "requests", "failed",
		"throughput", "goodput", "p50_ms", "p95_ms", "p99_ms", "cost_usd")
}

func printRow(r loadgen.Report) {
	path := "pooled"
	if r.Legacy {
		path = "legacy"
	}
	fmt.Printf("%-7s %7d %7s %9d %8d %12.1f %12.1f %9.3f %9.3f %9.3f %12.6f\n",
		r.Mode, r.Shards, path, r.Requests, r.Failed,
		r.ThroughputRPS, r.GoodputRPS, r.P50MS, r.P95MS, r.P99MS, r.TotalCostUSD)
}
