# Developer entry points. The repo is pure Go stdlib; no tools beyond the Go
# toolchain are required.

GO ?= go

# RACE_PKGS covers the packages that exercise the concurrent code paths:
# the parallel matmul kernels, data-parallel training / no-grad parallel
# evaluation, and the analytical baseline used by the same experiments.
RACE_PKGS = ./internal/tensor/... ./internal/surrogate/... ./internal/batchopt/...

.PHONY: verify test race bench

## verify: tier-1 gate — full build plus the full test suite.
verify:
	$(GO) build ./...
	$(GO) test ./...

test: verify

## race: run the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race $(RACE_PKGS)

## bench: regenerate the benchmark regression snapshot (BENCH_1.json).
bench:
	$(GO) run ./cmd/bench -out BENCH_1.json
