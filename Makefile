# Developer entry points. The repo is pure Go stdlib; no tools beyond the Go
# toolchain are required.

GO ?= go

# RACE_PKGS covers the packages that exercise the concurrent code paths:
# the parallel matmul kernels and the shared blocked/packed gemm kernels they
# drive from row-sharded workers, data-parallel training / no-grad parallel
# evaluation (including the batched grid-sweep fan-out), the analytical
# baseline used by the same experiments, the gateway (which spawns
# batching/control/retry goroutines under test, and since the sharding PR
# pools waiters across shard mutexes and a lock-free exchange slot), the
# fault-injection layer (whose FaultyBackend counter is hit from concurrent
# batch executions), the observability registry/recorder hammered from many
# goroutines, the load generator's closed-loop worker pool, and the analysis
# engine (whose loader type-checks packages while tests run fixtures in
# parallel), the workload/replay pair (whose replay driver runs the
# gateway's batching goroutines from a virtual-time driver), the sweep
# engine (worker pools claiming cells off a shared atomic cursor), the
# qsim grid search (which fans out over sweep workers), the fleet layer
# (whose per-group gateways, tuner ticker, and demultiplexing front door
# all run concurrent goroutines), and the experiments lab (whose
# cell-parallel figures must stay invariant under the detector's
# scheduling perturbation).
RACE_PKGS = ./internal/tensor/... ./internal/gemm/... ./internal/surrogate/... ./internal/batchopt/... ./internal/gateway/... ./internal/fault/... ./internal/obs/... ./internal/loadgen/... ./internal/analysis/... ./internal/workload/... ./internal/replay/... ./internal/sweep/... ./internal/qsim/... ./internal/fleet/...

# Per-package coverage floors enforced by `make cover` (see the cover target).
COVER_FLOOR_GATEWAY = 80
COVER_FLOOR_FAULT   = 90
COVER_FLOOR_REPLAY  = 80
COVER_FLOOR_FLEET   = 80

.PHONY: verify fmtcheck lint test race bench fuzz chaos cover loadgen-smoke replay-smoke sweep-smoke

## verify: tier-1 gate — formatting, vet, the deepbatlint pass, full build,
## and the full test suite. Every PR must leave this green.
verify: fmtcheck
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/lint ./...
	$(GO) test ./...

## fmtcheck: fail (listing the files) if any file is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: run the repo-specific static-analysis pass (internal/analysis) over
## every package. Exits non-zero on findings with file:line diagnostics.
lint:
	$(GO) run ./cmd/lint ./...

test: verify

## race: run the concurrency-sensitive packages under the race detector.
## The gateway is additionally run with the poolcheck build tag, which
## poisons recycled waiters on put and panics on double-put, unconsumed
## responses, or dirty reuse — pool-hygiene bugs the race detector alone
## cannot see.
race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -tags poolcheck ./internal/gateway/
	$(GO) test -race -run 'WorkerInvariance' ./internal/experiments/

## bench: regenerate the benchmark regression snapshot (BENCH_5.json),
## including speedup/alloc ratios against the previous snapshot. Asserts the
## instrumented-training overhead budget, the zero-alloc pooled admit path,
## the sharded-dispatch speedup floor, and the sweep engine's byte-identity
## (plus its 8-worker speedup floor on 8+ CPU machines); non-zero exit on
## violation.
bench:
	$(GO) run ./cmd/bench -out BENCH_5.json -baseline BENCH_4.json

## loadgen-smoke: CI smoke check for the serving path — a short closed-loop
## saturation run that must finish with goodput > 0 and zero failed
## requests, plus a deterministic open-loop shard sweep.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -loop closed -clients 8 -duration 3s -assert
	$(GO) run ./cmd/loadgen -loop open -requests 2000 -rate 1000 -sweep 1,2,4,8 -assert

## fuzz: short native-fuzzing passes sized for CI. FuzzRun hammers the
## discrete-event simulator's batching invariants (corpus seeds include
## fault schedules, so the failure mirror is fuzzed too); FuzzDecode hammers
## the tracev1 binary decoder (never panics, and anything it accepts must
## round-trip bit-identically); FuzzPlanValidate hammers the fleet plan
## codec (never panics, and any plan the canonical decoder accepts must
## re-encode bit-identically).
fuzz:
	$(GO) test -fuzz=FuzzRun -fuzztime=20s -run='^$$' ./internal/qsim
	$(GO) test -fuzz=FuzzDecode -fuzztime=20s -run='^$$' ./internal/workload
	$(GO) test -fuzz=FuzzPlanValidate -fuzztime=20s -run='^$$' ./internal/fleet

## replay-smoke: CI check for the workload-zoo replay path — generate a
## small azure tracev1 (digest-verified), replay it twice through the real
## gateway hot path on the virtual clock, and assert the two reports (and
## metric snapshots) are byte-identical.
replay-smoke:
	$(GO) run ./cmd/tracegen -name azure -hours 4 -o /tmp/replay-smoke.tracev1 -check
	$(GO) run ./cmd/replay -trace /tmp/replay-smoke.tracev1 -shards 4 -metrics /tmp/replay-smoke.m1.json > /tmp/replay-smoke.r1.txt
	$(GO) run ./cmd/replay -trace /tmp/replay-smoke.tracev1 -shards 4 -metrics /tmp/replay-smoke.m2.json > /tmp/replay-smoke.r2.txt
	cmp /tmp/replay-smoke.r1.txt /tmp/replay-smoke.r2.txt
	cmp /tmp/replay-smoke.m1.json /tmp/replay-smoke.m2.json
	@echo "replay-smoke: byte-identical reports and metric snapshots"

## sweep-smoke: CI check for the deterministic parallel sweep engine — run
## the cell-parallel scenarios experiment at 1 and 4 workers and assert the
## rendered report AND the merged per-cell metric snapshot are
## byte-identical, then do the same for a parallel replay shard sweep.
sweep-smoke:
	$(GO) run ./cmd/experiments -exp scenarios -quick -workers 1 -metrics /tmp/sweep-smoke.m1.json | grep -v 'finished in' > /tmp/sweep-smoke.r1.txt
	$(GO) run ./cmd/experiments -exp scenarios -quick -workers 4 -metrics /tmp/sweep-smoke.m4.json | grep -v 'finished in' > /tmp/sweep-smoke.r4.txt
	cmp /tmp/sweep-smoke.r1.txt /tmp/sweep-smoke.r4.txt
	cmp /tmp/sweep-smoke.m1.json /tmp/sweep-smoke.m4.json
	$(GO) run ./cmd/replay -name azure -hours 2 -hour-seconds 30 -sweep 1,2,4 -workers 1 -metrics /tmp/sweep-smoke.rm1.json > /tmp/sweep-smoke.rr1.txt
	$(GO) run ./cmd/replay -name azure -hours 2 -hour-seconds 30 -sweep 1,2,4 -workers 4 -metrics /tmp/sweep-smoke.rm4.json > /tmp/sweep-smoke.rr4.txt
	cmp /tmp/sweep-smoke.rr1.txt /tmp/sweep-smoke.rr4.txt
	cmp /tmp/sweep-smoke.rm1.json /tmp/sweep-smoke.rm4.json
	@echo "sweep-smoke: byte-identical reports and metric snapshots at 1 vs 4 workers"

## chaos: the -race chaos soak — a real-time gateway under concurrent load
## with seeded backend faults, retries, deadlines, and the breaker all live —
## plus the fleet fault-isolation scenarios (an error storm on one class
## opens only that class's breaker; sibling groups' observable bytes are
## unchanged). Bounded to ~25s (15s soak + harness overhead).
chaos:
	CHAOS_SOAK_S=15 $(GO) test -race -run 'TestChaosSoak|TestChaosScenarios|TestChaosNoLeakedGoroutines' -v -timeout 120s ./internal/gateway/
	$(GO) test -race -run 'TestFleetChaos' -v -timeout 120s ./internal/fleet/

## cover: per-package coverage gate. Fails if gateway drops below
## $(COVER_FLOOR_GATEWAY)%, fault below $(COVER_FLOOR_FAULT)%, replay below
## $(COVER_FLOOR_REPLAY)%, or fleet below $(COVER_FLOOR_FLEET)% of
## statements (stdlib tooling only: go test -coverprofile + go tool cover).
cover:
	@set -e; \
	check() { \
		pkg=$$1; floor=$$2; \
		$(GO) test -coverprofile=cover.$$3.out -covermode=atomic $$pkg >/dev/null; \
		pct=$$($(GO) tool cover -func=cover.$$3.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f cover.$$3.out; \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN {print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "coverage below floor"; exit 1; fi; \
	}; \
	check ./internal/gateway $(COVER_FLOOR_GATEWAY) gateway; \
	check ./internal/fault $(COVER_FLOOR_FAULT) fault; \
	check ./internal/replay $(COVER_FLOOR_REPLAY) replay; \
	check ./internal/fleet $(COVER_FLOOR_FLEET) fleet
