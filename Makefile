# Developer entry points. The repo is pure Go stdlib; no tools beyond the Go
# toolchain are required.

GO ?= go

# RACE_PKGS covers the packages that exercise the concurrent code paths:
# the parallel matmul kernels and the shared blocked/packed gemm kernels they
# drive from row-sharded workers, data-parallel training / no-grad parallel
# evaluation (including the batched grid-sweep fan-out), the analytical
# baseline used by the same experiments, the gateway (which spawns
# batching/control goroutines under test), and the observability
# registry/recorder hammered from many goroutines.
RACE_PKGS = ./internal/tensor/... ./internal/gemm/... ./internal/surrogate/... ./internal/batchopt/... ./internal/gateway/... ./internal/obs/...

.PHONY: verify fmtcheck lint test race bench fuzz

## verify: tier-1 gate — formatting, vet, the deepbatlint pass, full build,
## and the full test suite. Every PR must leave this green.
verify: fmtcheck
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/lint ./...
	$(GO) test ./...

## fmtcheck: fail (listing the files) if any file is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: run the repo-specific static-analysis pass (internal/analysis) over
## every package. Exits non-zero on findings with file:line diagnostics.
lint:
	$(GO) run ./cmd/lint ./...

test: verify

## race: run the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race $(RACE_PKGS)

## bench: regenerate the benchmark regression snapshot (BENCH_3.json),
## including speedup/alloc ratios against the previous snapshot.
bench:
	$(GO) run ./cmd/bench -out BENCH_3.json -baseline BENCH_2.json

## fuzz: a short native-fuzzing pass over the discrete-event simulator's
## batching invariants (qsim.FuzzRun), sized for CI (~20s).
fuzz:
	$(GO) test -fuzz=FuzzRun -fuzztime=20s -run='^$$' ./internal/qsim
