// Bursty: the paper's out-of-distribution story (Sections IV-C/D). A model
// pre-trained on the moderately bursty Azure workload is confronted with the
// MAP-generated synthetic trace, whose hourly intensity swings wildly. We
// replay the trace three ways — BATCH (hourly analytical refits), the
// pre-trained DeepBAT, and DeepBAT fine-tuned on the first hour — and print
// the per-hour SLO violation ratios (the Figs. 8/10 view).
package main

import (
	"fmt"
	"log"
	"time"

	"deepbat"
)

func main() {
	const slo = 0.1
	const hourS = 40.0
	const hours = 8

	azure, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "azure", Hours: hours, HourSeconds: hourS, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ood, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "synthetic", Hours: hours, HourSeconds: hourS, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := deepbat.DefaultOptions()
	opts.Model.SeqLen = 32
	opts.DatasetSamples = 400
	opts.Train.Epochs = 8
	opts.SLO = slo
	fmt.Println("pre-training on azure...")
	pre, err := deepbat.Train(azure, opts)
	if err != nil {
		log.Fatal(err)
	}

	replayOpts := deepbat.ReplayOptions{
		PeriodS:       hourS / 6,
		DecideEvery:   1,
		LookbackS:     hourS,
		InitialConfig: deepbat.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           slo,
	}

	run := func(label string, sys *deepbat.System, dec deepbat.Decider, batchCadence bool) *deepbat.ReplayResult {
		o := replayOpts
		if batchCadence {
			o.DecideEvery = 6 // once per paper-hour
		}
		start := time.Now()
		res, err := sys.Replay(ood.Timestamps, dec, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s VCR %6.2f%%  cost %.3f u$/req  (replayed in %s)\n",
			label, res.VCR(), res.CostPerRequest()*1e6, time.Since(start).Round(time.Millisecond))
		return res
	}

	fmt.Println("\nreplaying the bursty synthetic trace:")
	resBatch := run("BATCH (analytical):", pre, pre.BATCHBaseline(), true)
	resPre := run("DeepBAT (no FT):", pre, pre.Decider(), false)

	fmt.Println("\nfine-tuning on the first OOD hour...")
	tuned, err := deepbat.Train(azure, opts) // fresh copy of the pre-trained weights
	if err != nil {
		log.Fatal(err)
	}
	if err := tuned.FineTune(ood.FirstHours(1), 200); err != nil {
		log.Fatal(err)
	}
	resTuned := run("DeepBAT (fine-tuned):", tuned, tuned.Decider(), false)

	fmt.Println("\nper-hour VCR (%):")
	fmt.Printf("%6s %10s %12s %14s\n", "hour", "BATCH", "DeepBAT", "DeepBAT+FT")
	b := resBatch.WindowVCR(hourS)
	p := resPre.WindowVCR(hourS)
	t := resTuned.WindowVCR(hourS)
	for h := 0; h < hours && h < len(b) && h < len(p) && h < len(t); h++ {
		fmt.Printf("%6d %9.2f%% %11.2f%% %13.2f%%\n", h, b[h], p[h], t[h])
	}
	fmt.Println("\nexpected shape: BATCH spikes after intensity shifts; fine-tuned DeepBAT stays lowest.")
}
