// Attention: the Fig. 14 view — where does the Transformer look? We train a
// small surrogate, feed it a bursty window, and render an ASCII chart of the
// interarrival gaps next to the attention each position receives in the
// first encoder layer. Long gaps should light up.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"deepbat"
)

func main() {
	tr, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "synthetic", Hours: 4, HourSeconds: 40, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := deepbat.DefaultOptions()
	opts.Model.SeqLen = 48
	opts.DatasetSamples = 300
	opts.Train.Epochs = 8
	fmt.Println("training a small surrogate on the bursty trace...")
	sys, err := deepbat.Train(tr, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a window containing both dense traffic and long silences.
	inter := tr.Interarrivals()
	window := pickBurstyWindow(inter, opts.Model.SeqLen)
	scores := sys.Model.AttentionScores(window)

	fmt.Println("\npos  gap(ms)      gap            attention")
	maxGap, maxScore := maxOf(window), maxOf(scores)
	for i, gap := range window {
		gBar := bar(gap/maxGap, 14)
		sBar := bar(scores[i]/maxScore, 14)
		fmt.Printf("%3d  %8.2f  %-14s %-14s\n", i, gap*1000, gBar, sBar)
	}

	fmt.Printf("\ncorrelation(attention, log gap): %.3f\n", corrLogGap(scores, window))
	fmt.Println("expected shape: the attention bars peak at the long-gap positions,")
	fmt.Println("matching the paper's observation that the model attends to the")
	fmt.Println("longer inter-arrival periods of the sequence.")
}

// pickBurstyWindow returns the window with the highest gap variance.
func pickBurstyWindow(inter []float64, l int) []float64 {
	best := inter[:l]
	bestVar := -1.0
	for start := 0; start+l <= len(inter); start += l {
		w := inter[start : start+l]
		if v := variance(w); v > bestVar {
			bestVar, best = v, w
		}
	}
	return best
}

func variance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if m == 0 {
		return 1
	}
	return m
}

func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func corrLogGap(scores, gaps []float64) float64 {
	lg := make([]float64, len(gaps))
	for i, g := range gaps {
		lg[i] = math.Log(math.Max(g, 1e-7))
	}
	ms, mg := mean(scores), mean(lg)
	var num, ds, dg float64
	for i := range scores {
		a, b := scores[i]-ms, lg[i]-mg
		num += a * b
		ds += a * a
		dg += b * b
	}
	if ds == 0 || dg == 0 {
		return 0
	}
	return num / math.Sqrt(ds*dg)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
