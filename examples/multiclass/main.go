// Multiclass: serve two inference model classes side by side (the MBS
// direction the paper cites as the multi-class successor of BATCH): a speech
// model with a 100 ms SLO on a diurnal workload and a lightweight vision
// model with a 50 ms SLO on a steadier stream. Each class gets its own
// DeepBAT controller; the coordinator demultiplexes the mixed request stream
// and reports per-class outcomes.
package main

import (
	"fmt"
	"log"

	"deepbat"
	"deepbat/internal/core"
	"deepbat/internal/fleet"
	"deepbat/internal/lambda"
)

func main() {
	speechTrace, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "azure", Hours: 3, HourSeconds: 40, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	visionTrace, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "twitter", Hours: 3, HourSeconds: 40, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One DeepBAT system per class: the surrogate is trained against the
	// class's own service-time profile.
	speechSys := trainFor(speechTrace, lambda.Profiles["nlp-base"], 0.1)
	visionSys := trainFor(visionTrace, lambda.Profiles["cnn-small"], 0.05)

	opts := core.ReplayOptions{
		PeriodS:       10,
		DecideEvery:   1,
		LookbackS:     40,
		InitialConfig: deepbat.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
	}
	coord, err := fleet.NewCoordinator([]fleet.Class{
		{
			Name:    "speech",
			Profile: lambda.Profiles["nlp-base"],
			Pricing: deepbat.DefaultPricing(),
			SLO:     0.1,
			Decider: speechSys.Decider(),
			Options: opts,
		},
		{
			Name:    "vision",
			Profile: lambda.Profiles["cnn-small"],
			Pricing: deepbat.DefaultPricing(),
			SLO:     0.05,
			Decider: visionSys.Decider(),
			Options: opts,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	stream := fleet.MixStreams(map[string][]float64{
		"speech": speechTrace.Timestamps,
		"vision": visionTrace.Timestamps,
	})
	fmt.Printf("replaying a mixed stream of %d requests across 2 classes...\n\n", len(stream))
	sum, err := coord.Replay(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.VCRTable())
	fmt.Printf("\noverall: %d requests, worst-class VCR %.2f%%, mean VCR %.2f%%, %.3f micro-USD/request\n",
		sum.Requests, sum.WorstVCR, sum.MeanVCR, sum.CostPerRequest()*1e6)
}

// trainFor trains a small per-class surrogate against the class profile.
func trainFor(tr *deepbat.Trace, profile deepbat.Profile, slo float64) *deepbat.System {
	opts := deepbat.DefaultOptions()
	opts.Profile = profile
	opts.SLO = slo
	opts.Model.SeqLen = 32
	opts.DatasetSamples = 300
	opts.Train.Epochs = 8
	fmt.Printf("training the %s-profile surrogate (SLO %.0fms)...\n", profile.Name, slo*1000)
	sys, err := deepbat.Train(tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}
