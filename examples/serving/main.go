// Serving: run the full Fig. 2 pipeline — Workload Parser, Buffer, Deep
// Surrogate + Optimizer, simulated Lambda — as an event-driven framework
// over a diurnal workload, and compare it against a statically configured
// deployment of the same application.
package main

import (
	"fmt"
	"log"

	"deepbat"
	"deepbat/internal/stats"
)

func main() {
	const slo = 0.1

	// Train on the first half of the day, serve the second half.
	day, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "azure", Hours: 12, HourSeconds: 60, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainTrace := day.FirstHours(6)
	serveTrace := day.LastHours(6)

	opts := deepbat.DefaultOptions()
	opts.Model.SeqLen = 32
	opts.DatasetSamples = 400
	opts.Train.Epochs = 8
	opts.SLO = slo
	fmt.Println("training on the first 6 hours...")
	sys, err := deepbat.Train(trainTrace, opts)
	if err != nil {
		log.Fatal(err)
	}

	initial := deepbat.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}

	// DeepBAT-controlled framework: the parser feeds the optimizer, which
	// reconfigures the buffer and function every 10 simulated seconds.
	fw, err := sys.NewFramework(initial)
	if err != nil {
		log.Fatal(err)
	}
	fw.DecidePeriodS = 10
	fmt.Printf("serving %d requests through the framework...\n", len(serveTrace.Timestamps))
	fw.Run(serveTrace.Timestamps)

	// Static deployment for comparison: same initial config, never adapted.
	static, err := sys.NewFramework(initial)
	if err != nil {
		log.Fatal(err)
	}
	static.Reconfigure = nil
	static.Run(serveTrace.Timestamps)

	report := func(name string, lat []float64, cost float64, reconf int) {
		p95, _ := stats.Percentile(lat, 95)
		fmt.Printf("%-22s P95 %6.1fms  VCR %6.2f%%  cost %.3f u$/req  reconfigs %d\n",
			name, p95*1000, stats.VCR(lat, slo), cost/float64(len(lat))*1e6, reconf)
	}
	fmt.Println()
	report("DeepBAT framework:", fw.Latencies(), fw.TotalCost(), fw.Reconfigurations)
	report("static deployment:", static.Latencies(), static.TotalCost(), static.Reconfigurations)

	fmt.Printf("\nfinal DeepBAT configuration: %s\n", fw.Config())
}
