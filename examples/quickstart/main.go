// Quickstart: train a small DeepBAT surrogate on a synthetic Azure-like
// workload, then ask it for the cheapest serverless configuration that keeps
// the 95th-percentile latency under a 100 ms SLO.
package main

import (
	"fmt"
	"log"
	"time"

	"deepbat"
)

func main() {
	// 1. Synthesize a training workload (6 paper-hours, 60 s each).
	tr, err := deepbat.GenerateTrace(deepbat.TraceSpec{
		Name: "azure", Hours: 6, HourSeconds: 60, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d arrivals over %d scaled hours\n", len(tr.Timestamps), tr.Spec.Hours)

	// 2. Train the deep surrogate. Small settings keep this example quick;
	// raise DatasetSamples/Epochs/SeqLen for production-quality accuracy.
	opts := deepbat.DefaultOptions()
	opts.Model.SeqLen = 32
	opts.DatasetSamples = 400
	opts.Train.Epochs = 8
	opts.SLO = 0.1 // 100 ms on the 95th percentile

	fmt.Println("training the surrogate (labeling windows with the simulator)...")
	start := time.Now()
	sys, err := deepbat.Train(tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d parameters in %s\n\n", sys.Model.NumParams(), time.Since(start).Round(time.Millisecond))

	// 3. Observe a recent window of interarrival times and decide.
	inter := tr.Interarrivals()
	window := inter[len(inter)-opts.Model.SeqLen:]

	start = time.Now()
	dec, err := sys.Decide(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized over %d configurations in %s:\n", dec.Evaluated, time.Since(start).Round(time.Microsecond))
	fmt.Printf("  chosen config:       %s\n", dec.Config)
	fmt.Printf("  feasible under SLO:  %v\n", dec.Feasible)
	fmt.Printf("  predicted cost:      %.3f micro-USD/request\n", dec.Prediction.CostPerRequest*1e6)
	for i, pct := range sys.Model.Cfg.Percentiles {
		fmt.Printf("  predicted P%-4g      %.1f ms\n", pct, dec.Prediction.Percentiles[i]*1000)
	}

	// 4. Check the decision against the ground-truth simulator.
	res, err := sys.Simulator.Run(tr.Timestamps[len(tr.Timestamps)-2000:], dec.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated with the chosen config over the last 2000 arrivals:\n")
	fmt.Printf("  measured P95:   %.1f ms (SLO %.0f ms)\n", res.LatencyPercentile(95)*1000, opts.SLO*1000)
	fmt.Printf("  measured cost:  %.3f micro-USD/request\n", res.CostPerRequest()*1e6)
	fmt.Printf("  mean batch:     %.2f requests/invocation\n", res.MeanBatchSize())
}
