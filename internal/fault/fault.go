// Package fault is DeepBAT's deterministic, seed-driven fault-injection
// layer: the failure model the gateway's resilience machinery (retries,
// per-request deadlines, circuit breaker) is built against and that
// internal/qsim mirrors in simulated time.
//
// The central contract is bit-determinism under a fixed seed: the outcome of
// invocation i is a pure function of (Plan.Seed, i) — derived with a
// splitmix64 hash, never a shared mutable PRNG — so the real-time gateway,
// the discrete-event simulator, and the chaos-test harness all agree on the
// same fault schedule regardless of goroutine scheduling. An explicit
// Script overrides the hashed schedule for the first len(Script)
// invocations, which is how the table-driven breaker/retry tests pin exact
// failure sequences.
//
// FaultyBackend wraps any batching backend (it satisfies gateway.Backend
// structurally, without importing the gateway), and WrapDecide makes any
// decision function fallible the same way.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"deepbat/internal/lambda"
)

// ErrInjected is the sentinel every injected backend error wraps; match it
// with errors.Is.
var ErrInjected = errors.New("fault: injected backend error")

// ErrInjectedDecide is the sentinel every injected decide error wraps.
var ErrInjectedDecide = errors.New("fault: injected decide error")

// InjectedError is the typed error a FaultyBackend returns for a failed
// invocation; it records which invocation index failed.
type InjectedError struct {
	Invocation uint64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected backend error (invocation %d)", e.Invocation)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// InjectedDecideError is the typed error an injected decide failure carries.
type InjectedDecideError struct {
	Decision uint64
}

// Error implements error.
func (e *InjectedDecideError) Error() string {
	return fmt.Sprintf("fault: injected decide error (decision %d)", e.Decision)
}

// Unwrap makes errors.Is(err, ErrInjectedDecide) true.
func (e *InjectedDecideError) Unwrap() error { return ErrInjectedDecide }

// Outcome describes the faults injected into one backend invocation
// attempt. The zero value is a clean invocation.
type Outcome struct {
	// Err fails the invocation outright (the backend is never reached).
	Err bool
	// StragglerFactor > 0 multiplies the invocation's service time,
	// modeling a slow container or a noisy neighbour.
	StragglerFactor float64
	// ColdSpikeS > 0 adds that many seconds of latency, modeling a
	// cold-start spike beyond the profile's steady-state cold start.
	ColdSpikeS float64
}

// Clean reports whether the outcome injects nothing.
func (o Outcome) Clean() bool {
	return !o.Err && o.StragglerFactor <= 0 && o.ColdSpikeS <= 0
}

// Plan parameterizes an Injector. Rates are independent per-invocation
// probabilities in [0, 1].
type Plan struct {
	// Seed drives the whole schedule; two injectors with equal plans
	// produce identical outcomes.
	Seed int64
	// ErrorRate is the probability an invocation attempt fails.
	ErrorRate float64
	// StragglerRate is the probability a successful invocation straggles;
	// StragglerFactor (default 4) multiplies its service time.
	StragglerRate   float64
	StragglerFactor float64
	// ColdSpikeRate is the probability a successful invocation pays an
	// extra ColdSpikeS seconds (default 1 s) of latency.
	ColdSpikeRate float64
	ColdSpikeS    float64
	// DecideErrorRate is the probability a wrapped decide call fails.
	DecideErrorRate float64
	// Script, when non-empty, pins the outcome of invocation i to
	// Script[i] for i < len(Script); later invocations fall back to the
	// seeded rates. Test scenarios use it to force exact sequences.
	Script []Outcome
}

// Active reports whether the plan can inject anything at all. An inactive
// plan is behaviourally identical to no fault injection, which is how the
// epsilon-zero "no faults => no behavior change" property is kept exact.
func (p Plan) Active() bool {
	return p.ErrorRate > 0 || p.StragglerRate > 0 || p.ColdSpikeRate > 0 ||
		p.DecideErrorRate > 0 || len(p.Script) > 0
}

// stragglerFactor returns the configured factor with its default applied.
func (p Plan) stragglerFactor() float64 {
	if p.StragglerFactor > 0 {
		return p.StragglerFactor
	}
	return 4
}

// coldSpikeS returns the configured spike with its default applied.
func (p Plan) coldSpikeS() float64 {
	if p.ColdSpikeS > 0 {
		return p.ColdSpikeS
	}
	return 1
}

// Draw streams: each fault dimension reads an independent uniform so that,
// e.g., raising the error rate never perturbs which invocations straggle.
const (
	streamError = iota
	streamStraggler
	streamColdSpike
	streamDecide
)

// splitmix64 is the finalizer of the SplitMix64 generator — a bijective
// avalanche hash, the standard seed-spreading primitive.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Injector derives per-invocation fault outcomes from a Plan. It is
// stateless and safe for concurrent use: Outcome(i) depends only on the
// plan, never on call order.
type Injector struct {
	plan Plan
}

// NewInjector returns an injector over the plan.
func NewInjector(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Active reports whether the injector can inject anything.
func (in *Injector) Active() bool { return in.plan.Active() }

// uniform returns the stream-th uniform in [0, 1) of invocation i — a pure
// function of (seed, i, stream).
func (in *Injector) uniform(i uint64, stream uint64) float64 {
	x := splitmix64(splitmix64(uint64(in.plan.Seed)^(i*0x9e3779b97f4a7c15)) ^ (stream * 0xda942042e4dd58b5))
	return float64(x>>11) / (1 << 53)
}

// Outcome returns the fault outcome of backend invocation i. Scripted
// entries win for i < len(Script); beyond the script the seeded rates
// apply.
func (in *Injector) Outcome(i uint64) Outcome {
	p := in.plan
	if i < uint64(len(p.Script)) {
		return p.Script[i]
	}
	var o Outcome
	if p.ErrorRate > 0 && in.uniform(i, streamError) < p.ErrorRate {
		o.Err = true
		return o
	}
	if p.StragglerRate > 0 && in.uniform(i, streamStraggler) < p.StragglerRate {
		o.StragglerFactor = p.stragglerFactor()
	}
	if p.ColdSpikeRate > 0 && in.uniform(i, streamColdSpike) < p.ColdSpikeRate {
		o.ColdSpikeS = p.coldSpikeS()
	}
	return o
}

// DecideErr reports whether decision i fails.
func (in *Injector) DecideErr(i uint64) bool {
	p := in.plan
	return p.DecideErrorRate > 0 && in.uniform(i, streamDecide) < p.DecideErrorRate
}

// Schedule materializes the first n outcomes — the harness uses it to
// compute expected retry/failure counts from the same pure function the
// backend consumes.
func (in *Injector) Schedule(n int) []Outcome {
	out := make([]Outcome, n)
	for i := range out {
		out[i] = in.Outcome(uint64(i))
	}
	return out
}

// Retry is the shared retry policy: Max retries after the first attempt,
// with exponential backoff from BaseS doubling per retry and capped at
// CapS (seconds). The zero value disables retries. Both the gateway (real
// time, with jitter layered on top) and qsim (simulated time, jitter-free)
// apply the same bounds.
type Retry struct {
	Max   int
	BaseS float64
	CapS  float64
}

// BackoffS returns the deterministic backoff in seconds before retry
// attempt (0-based; the first retry waits BackoffS(0)).
func (r Retry) BackoffS(attempt int) float64 {
	if r.BaseS <= 0 {
		return 0
	}
	b := math.Ldexp(r.BaseS, attempt) // BaseS * 2^attempt, exactly
	if r.CapS > 0 && b > r.CapS {
		b = r.CapS
	}
	return b
}

// Backend matches gateway.Backend structurally: one batched invocation
// under a configuration, returning duration, USD cost, and an error.
// Declaring it here (rather than importing the gateway) keeps the
// dependency arrow pointing from the serving layer to the fault model.
type Backend interface {
	Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error)
}

// FaultyBackend wraps a Backend with injected faults: errors replace the
// invocation, stragglers and cold-start spikes inflate the reported
// duration (and the re-billed cost when Pricing is set). Each Execute call
// consumes one invocation index from an atomic counter, so concurrent
// callers draw disjoint outcomes.
type FaultyBackend struct {
	Inner Backend
	Inj   *Injector
	// Pricing, when non-nil, re-bills the invocation at the inflated
	// duration, mirroring AWS billing slow invocations for their real
	// runtime. When nil the inner backend's cost is reported unchanged.
	Pricing *lambda.Pricing
	// TimeScale, when > 0, sleeps for the injected extra latency scaled by
	// this factor — wall-clock realism for live chaos demos. Tests leave
	// it 0 so nothing sleeps.
	TimeScale float64

	next atomic.Uint64
}

// Invocations returns how many invocation indices have been consumed.
func (f *FaultyBackend) Invocations() uint64 { return f.next.Load() }

// Execute implements Backend (and, structurally, gateway.Backend).
func (f *FaultyBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	i := f.next.Add(1) - 1
	o := f.Inj.Outcome(i)
	if o.Err {
		return 0, 0, &InjectedError{Invocation: i}
	}
	dur, cost, err := f.Inner.Execute(cfg, batchSize)
	if err != nil {
		return dur, cost, err
	}
	extra := time.Duration(0)
	if o.StragglerFactor > 0 {
		extra += time.Duration(float64(dur) * (o.StragglerFactor - 1))
	}
	if o.ColdSpikeS > 0 {
		extra += time.Duration(o.ColdSpikeS * float64(time.Second))
	}
	if extra > 0 {
		dur += extra
		if f.Pricing != nil {
			cost = f.Pricing.InvocationCost(cfg.MemoryMB, dur.Seconds())
		}
		if f.TimeScale > 0 {
			time.Sleep(time.Duration(float64(extra) * f.TimeScale))
		}
	}
	return dur, cost, nil
}

// WrapDecide makes a decision function fallible: decision i errors with a
// typed InjectedDecideError whenever the plan's DecideErrorRate stream
// fires. The unnamed func type keeps it assignable to gateway.DecideFunc
// without a conversion.
func (in *Injector) WrapDecide(inner func(window []float64) (lambda.Config, error)) func(window []float64) (lambda.Config, error) {
	var n atomic.Uint64
	return func(window []float64) (lambda.Config, error) {
		i := n.Add(1) - 1
		if in.DecideErr(i) {
			return lambda.Config{}, &InjectedDecideError{Decision: i}
		}
		return inner(window)
	}
}
