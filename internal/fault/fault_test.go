package fault

import (
	"errors"
	"math"
	"testing"
	"time"

	"deepbat/internal/lambda"
)

func planAllFaults() Plan {
	return Plan{
		Seed:            7,
		ErrorRate:       0.2,
		StragglerRate:   0.3,
		StragglerFactor: 3,
		ColdSpikeRate:   0.1,
		ColdSpikeS:      0.5,
		DecideErrorRate: 0.25,
	}
}

// TestOutcomePure pins the central contract: Outcome(i) is a pure function
// of (Plan, i), independent of call order and of other injector instances.
func TestOutcomePure(t *testing.T) {
	a := NewInjector(planAllFaults())
	b := NewInjector(planAllFaults())
	// Query b in reverse order and interleaved with decide draws.
	for i := 511; i >= 0; i-- {
		b.DecideErr(uint64(i))
		if got, want := b.Outcome(uint64(i)), a.Outcome(uint64(i)); got != want {
			t.Fatalf("outcome(%d) differs across instances/orders: %+v vs %+v", i, got, want)
		}
	}
	sched := a.Schedule(512)
	for i, o := range sched {
		if o != a.Outcome(uint64(i)) {
			t.Fatalf("Schedule[%d] != Outcome(%d)", i, i)
		}
	}
}

// TestOutcomeSeedSensitivity: different seeds give different schedules.
func TestOutcomeSeedSensitivity(t *testing.T) {
	p := planAllFaults()
	a := NewInjector(p)
	p.Seed = 8
	b := NewInjector(p)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Outcome(uint64(i)) == b.Outcome(uint64(i)) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seed change did not change the schedule")
	}
}

// TestOutcomeRates checks the empirical fault frequencies track the plan's
// rates over a long schedule.
func TestOutcomeRates(t *testing.T) {
	const n = 20000
	in := NewInjector(planAllFaults())
	var errs, strag, cold int
	for i := 0; i < n; i++ {
		o := in.Outcome(uint64(i))
		if o.Err {
			errs++
			if !o.Clean() == true && (o.StragglerFactor > 0 || o.ColdSpikeS > 0) {
				t.Fatal("errored invocation also straggles or spikes")
			}
			continue
		}
		if o.StragglerFactor > 0 {
			strag++
			if o.StragglerFactor != 3 {
				t.Fatalf("straggler factor = %v, want 3", o.StragglerFactor)
			}
		}
		if o.ColdSpikeS > 0 {
			cold++
			if o.ColdSpikeS != 0.5 {
				t.Fatalf("cold spike = %v, want 0.5", o.ColdSpikeS)
			}
		}
	}
	within := func(name string, got int, rate, of float64) {
		t.Helper()
		want := rate * of
		if math.Abs(float64(got)-want) > 0.1*want+50 {
			t.Fatalf("%s = %d, want about %.0f", name, got, want)
		}
	}
	within("errors", errs, 0.2, n)
	// Straggler/cold-spike rates apply to non-errored invocations.
	within("stragglers", strag, 0.3, float64(n-errs))
	within("cold spikes", cold, 0.1, float64(n-errs))

	var decides int
	for i := 0; i < n; i++ {
		if in.DecideErr(uint64(i)) {
			decides++
		}
	}
	within("decide errors", decides, 0.25, n)
}

// TestStreamsIndependent: raising the error rate must not change which of
// the surviving invocations straggle.
func TestStreamsIndependent(t *testing.T) {
	base := Plan{Seed: 3, StragglerRate: 0.5}
	with := base
	with.ErrorRate = 0.5
	a, b := NewInjector(base), NewInjector(with)
	for i := 0; i < 1000; i++ {
		ob := b.Outcome(uint64(i))
		if ob.Err {
			continue
		}
		if oa := a.Outcome(uint64(i)); oa.StragglerFactor != ob.StragglerFactor {
			t.Fatalf("invocation %d straggler changed when the error stream was enabled", i)
		}
	}
}

func TestScriptOverridesThenFallsBack(t *testing.T) {
	p := Plan{Seed: 1, Script: []Outcome{{Err: true}, {}, {StragglerFactor: 2}}}
	in := NewInjector(p)
	if !in.Outcome(0).Err || in.Outcome(1).Err || in.Outcome(2).StragglerFactor != 2 {
		t.Fatalf("script not honored: %+v", in.Schedule(3))
	}
	// Beyond the script, rates (all zero here) apply: clean forever.
	for i := 3; i < 32; i++ {
		if o := in.Outcome(uint64(i)); !o.Clean() {
			t.Fatalf("outcome(%d) = %+v beyond an all-zero-rate script", i, o)
		}
	}
}

func TestActiveAndDefaults(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan must be inactive")
	}
	for _, p := range []Plan{
		{ErrorRate: 0.1}, {StragglerRate: 0.1}, {ColdSpikeRate: 0.1},
		{DecideErrorRate: 0.1}, {Script: []Outcome{{}}},
	} {
		if !p.Active() {
			t.Fatalf("plan %+v should be active", p)
		}
	}
	if NewInjector(Plan{}).Active() {
		t.Fatal("injector over a zero plan must be inactive")
	}
	// Defaults: factor 4, spike 1 s.
	in := NewInjector(Plan{Seed: 5, StragglerRate: 1, ColdSpikeRate: 1})
	o := in.Outcome(0)
	if o.StragglerFactor != 4 || o.ColdSpikeS != 1 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if got := NewInjector(Plan{Seed: 5}).Plan().Seed; got != 5 {
		t.Fatalf("Plan() seed = %d", got)
	}
}

func TestRetryBackoff(t *testing.T) {
	if got := (Retry{}).BackoffS(3); got != 0 {
		t.Fatalf("zero retry backoff = %v", got)
	}
	r := Retry{Max: 5, BaseS: 0.01, CapS: 0.05}
	want := []float64{0.01, 0.02, 0.04, 0.05, 0.05}
	for i, w := range want {
		if got := r.BackoffS(i); got != w {
			t.Fatalf("BackoffS(%d) = %v, want %v", i, got, w)
		}
	}
	uncapped := Retry{Max: 2, BaseS: 0.5}
	if got := uncapped.BackoffS(4); got != 8 {
		t.Fatalf("uncapped BackoffS(4) = %v, want 8", got)
	}
}

// instantBackend is a deterministic inner backend for wrapper tests.
type instantBackend struct {
	dur  time.Duration
	cost float64
	err  error
}

func (b instantBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	return b.dur, b.cost, b.err
}

func TestFaultyBackendCleanPassthrough(t *testing.T) {
	fb := &FaultyBackend{Inner: instantBackend{dur: time.Second, cost: 2}, Inj: NewInjector(Plan{})}
	dur, cost, err := fb.Execute(lambda.Config{MemoryMB: 1024, BatchSize: 1}, 1)
	if err != nil || dur != time.Second || cost != 2 {
		t.Fatalf("clean passthrough = (%v, %v, %v)", dur, cost, err)
	}
	if fb.Invocations() != 1 {
		t.Fatalf("invocations = %d", fb.Invocations())
	}
}

func TestFaultyBackendInjectsTypedError(t *testing.T) {
	fb := &FaultyBackend{
		Inner: instantBackend{dur: time.Second, cost: 2},
		Inj:   NewInjector(Plan{Script: []Outcome{{Err: true}, {}}}),
	}
	_, _, err := fb.Execute(lambda.Config{MemoryMB: 1024, BatchSize: 1}, 1)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Invocation != 0 {
		t.Fatalf("typed error = %#v", err)
	}
	if ie.Error() == "" {
		t.Fatal("empty error string")
	}
	if _, _, err := fb.Execute(lambda.Config{MemoryMB: 1024, BatchSize: 1}, 1); err != nil {
		t.Fatalf("second invocation should pass: %v", err)
	}
}

func TestFaultyBackendInnerErrorPassthrough(t *testing.T) {
	boom := errors.New("inner boom")
	fb := &FaultyBackend{Inner: instantBackend{err: boom}, Inj: NewInjector(Plan{})}
	if _, _, err := fb.Execute(lambda.Config{MemoryMB: 1024, BatchSize: 1}, 1); !errors.Is(err, boom) {
		t.Fatalf("inner error not passed through: %v", err)
	}
}

func TestFaultyBackendInflatesAndRebills(t *testing.T) {
	pricing := lambda.DefaultPricing()
	inner := instantBackend{dur: time.Second, cost: pricing.InvocationCost(2048, 1)}
	fb := &FaultyBackend{
		Inner:   inner,
		Inj:     NewInjector(Plan{Script: []Outcome{{StragglerFactor: 3, ColdSpikeS: 0.5}}}),
		Pricing: &pricing,
	}
	dur, cost, err := fb.Execute(lambda.Config{MemoryMB: 2048, BatchSize: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*time.Second + 500*time.Millisecond
	if dur != want {
		t.Fatalf("inflated duration = %v, want %v", dur, want)
	}
	if wantCost := pricing.InvocationCost(2048, want.Seconds()); cost != wantCost {
		t.Fatalf("re-billed cost = %v, want %v", cost, wantCost)
	}
	// Without Pricing the inner cost is reported unchanged.
	fb2 := &FaultyBackend{
		Inner: inner,
		Inj:   NewInjector(Plan{Script: []Outcome{{ColdSpikeS: 1}}}),
	}
	if _, cost2, _ := fb2.Execute(lambda.Config{MemoryMB: 2048, BatchSize: 1}, 1); cost2 != inner.cost {
		t.Fatalf("cost changed without Pricing: %v", cost2)
	}
}

func TestFaultyBackendTimeScaleSleeps(t *testing.T) {
	fb := &FaultyBackend{
		Inner:     instantBackend{},
		Inj:       NewInjector(Plan{Script: []Outcome{{ColdSpikeS: 1}}}),
		TimeScale: 0.002, // 1 s spike -> 2 ms sleep
	}
	start := time.Now()
	if _, _, err := fb.Execute(lambda.Config{MemoryMB: 1024, BatchSize: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("TimeScale did not sleep for the injected latency")
	}
}

func TestWrapDecide(t *testing.T) {
	in := NewInjector(Plan{Seed: 2, DecideErrorRate: 1})
	calls := 0
	wrapped := in.WrapDecide(func(window []float64) (lambda.Config, error) {
		calls++
		return lambda.Config{MemoryMB: 2048, BatchSize: 1}, nil
	})
	_, err := wrapped([]float64{0.1})
	if !errors.Is(err, ErrInjectedDecide) {
		t.Fatalf("err = %v, want ErrInjectedDecide", err)
	}
	var de *InjectedDecideError
	if !errors.As(err, &de) || de.Decision != 0 || de.Error() == "" {
		t.Fatalf("typed decide error = %#v", err)
	}
	if calls != 0 {
		t.Fatal("inner decide called despite injected error")
	}
	clean := NewInjector(Plan{Seed: 2}).WrapDecide(func(window []float64) (lambda.Config, error) {
		calls++
		return lambda.Config{MemoryMB: 2048, BatchSize: 1}, nil
	})
	if cfg, err := clean([]float64{0.1}); err != nil || calls != 1 || !cfg.Valid() {
		t.Fatalf("clean wrapper = (%v, %v), calls = %d", cfg, err, calls)
	}
}

// TestUniformRange: draws stay in [0, 1) and are well spread.
func TestUniformRange(t *testing.T) {
	in := NewInjector(Plan{Seed: 9})
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		u := in.uniform(uint64(i), streamError)
		if u < 0 || u >= 1 {
			t.Fatalf("uniform out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}
