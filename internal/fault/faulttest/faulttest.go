// Package faulttest is the deterministic chaos-test harness for the
// gateway's resilience layer. A Scenario pins a fault schedule (a
// fault.Plan, usually scripted), the gateway's resilience knobs, and a
// sequence of Steps driven on an obs.ManualClock; Run plays it against a
// real Gateway wrapped in a fault.FaultyBackend and returns every Response
// plus the final Stats and the byte-exact obs JSON snapshots.
//
// Determinism discipline: scenarios advance the clock only between steps,
// dispatch batches by size (or flush at Stop) rather than by wall-clock
// batch timers, await every in-flight response before the next step, and
// draw backoff jitter from a per-run PRNG seeded by JitterSeed — so two
// Runs of the same Scenario are bit-identical, which AssertDeterministic
// checks down to the snapshot and event-stream bytes.
package faulttest

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"

	"math/rand"
)

// Step is one scripted action. Within a step the order is fixed: advance
// the clock, enqueue, force a decision, await responses.
type Step struct {
	// AdvanceS moves the manual clock forward by this many seconds.
	AdvanceS float64
	// Enqueue submits this many requests (their completion channels are
	// queued in arrival order).
	Enqueue int
	// Decide forces one synchronous control decision (DecideNow).
	Decide bool
	// Await receives this many responses, oldest outstanding first. Steps
	// must await every request a dispatch resolves before the clock moves
	// again, or latency accounting would race the executing batch.
	Await int
}

// Scenario is a reproducible chaos experiment against one gateway.
type Scenario struct {
	Name string
	// Plan is the fault schedule; Script entries pin exact outcomes.
	Plan fault.Plan
	// Initial is the serving configuration (batch timers should be far
	// larger than the test runtime: dispatch deterministically by size).
	Initial lambda.Config
	// Resilience configures retries/deadline/breaker. Leave Jitter nil and
	// set JitterSeed instead, so each Run rebuilds an identical PRNG.
	Resilience gateway.Resilience
	JitterSeed int64
	SLO        float64
	WindowLen  int
	// Decide, when non-nil, is the inner decision function; Run wraps it
	// with the plan's DecideErrorRate stream.
	Decide func(window []float64) (lambda.Config, error)
	// Shards is the gateway shard count (0 = 1). The harness defaults to a
	// single shard — not GOMAXPROCS — because scenarios script batch fills
	// by arrival count, which presumes one queue; multi-shard scenarios
	// must opt in and route by hash.
	Shards int
	Steps  []Step
}

// Result captures everything observable about one Run.
type Result struct {
	// Responses in arrival order (including error responses).
	Responses []gateway.Response
	Stats     gateway.Stats
	Breaker   gateway.BreakerState
	// Invocations is how many invocation indices the faulty backend
	// consumed (attempts, not successes).
	Invocations uint64
	// Snapshot and Events are the byte-exact obs JSON expositions taken
	// after Stop.
	Snapshot []byte
	Events   []byte
}

const awaitTimeout = 10 * time.Second

// Run plays the scenario once. The gateway is stopped (flushing any open
// batch) and fully drained before the snapshots are taken.
func Run(t *testing.T, s Scenario) Result {
	t.Helper()
	clock := &obs.ManualClock{}
	inj := fault.NewInjector(s.Plan)
	backend := &fault.FaultyBackend{
		Inner: gateway.SimulatedBackend{
			Profile: lambda.DefaultProfile(),
			Pricing: lambda.DefaultPricing(),
		},
		Inj:     inj,
		Pricing: func() *lambda.Pricing { p := lambda.DefaultPricing(); return &p }(),
	}
	res := s.Resilience
	if res.Jitter == nil && s.JitterSeed != 0 {
		res.Jitter = rand.New(rand.NewSource(s.JitterSeed))
	}
	var decide gateway.DecideFunc
	if s.Decide != nil {
		decide = inj.WrapDecide(s.Decide)
	}
	shards := s.Shards
	if shards == 0 {
		shards = 1
	}
	g, err := gateway.New(backend, decide, gateway.Config{
		Initial:    s.Initial,
		SLO:        s.SLO,
		WindowLen:  s.WindowLen,
		Clock:      clock,
		Resilience: res,
		Shards:     shards,
	})
	if err != nil {
		t.Fatalf("scenario %q: %v", s.Name, err)
	}
	var queue []<-chan gateway.Response
	var out Result
	await := func(n int) {
		for i := 0; i < n; i++ {
			if len(queue) == 0 {
				t.Fatalf("scenario %q: await with no outstanding requests", s.Name)
			}
			select {
			case resp := <-queue[0]:
				out.Responses = append(out.Responses, resp)
			case <-time.After(awaitTimeout):
				t.Fatalf("scenario %q: response %d never arrived", s.Name, len(out.Responses))
			}
			queue = queue[1:]
		}
	}
	for _, st := range s.Steps {
		if st.AdvanceS > 0 {
			clock.Advance(st.AdvanceS)
		}
		for i := 0; i < st.Enqueue; i++ {
			queue = append(queue, g.Enqueue())
		}
		if st.Decide {
			g.DecideNow()
		}
		await(st.Await)
	}
	g.Stop() // flushes any open batch
	await(len(queue))
	out.Stats = g.Stats()
	out.Breaker = g.Breaker()
	out.Invocations = backend.Invocations()
	var snap, ev bytes.Buffer
	if err := g.Obs().WriteJSON(&snap); err != nil {
		t.Fatalf("scenario %q: snapshot: %v", s.Name, err)
	}
	if err := g.Events().WriteEventsJSON(&ev); err != nil {
		t.Fatalf("scenario %q: events: %v", s.Name, err)
	}
	out.Snapshot = snap.Bytes()
	out.Events = ev.Bytes()
	return out
}

// AssertDeterministic runs the scenario twice and fails the test unless the
// two runs are bit-identical: same responses, same Stats, and byte-equal
// metric snapshot and event stream. It returns the first run for further
// assertions.
func AssertDeterministic(t *testing.T, s Scenario) Result {
	t.Helper()
	a := Run(t, s)
	b := Run(t, s)
	if !reflect.DeepEqual(a.Responses, b.Responses) {
		t.Errorf("scenario %q: responses differ across same-seed runs:\n%+v\n%+v",
			s.Name, a.Responses, b.Responses)
	}
	if a.Stats != b.Stats {
		t.Errorf("scenario %q: stats differ across same-seed runs:\n%+v\n%+v",
			s.Name, a.Stats, b.Stats)
	}
	if !bytes.Equal(a.Snapshot, b.Snapshot) {
		t.Errorf("scenario %q: metric snapshots differ across same-seed runs:\n%s\n%s",
			s.Name, a.Snapshot, b.Snapshot)
	}
	if !bytes.Equal(a.Events, b.Events) {
		t.Errorf("scenario %q: event streams differ across same-seed runs:\n%s\n%s",
			s.Name, a.Events, b.Events)
	}
	return a
}
