package optimizer

import (
	"testing"

	"deepbat/internal/obs"
)

// TestDecideObsCountersAndEvents checks that each grid search lands in the
// registry and event stream with consistent evaluated/rejected accounting.
func TestDecideObsCountersAndEvents(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(nil, 0)
	o.Obs = reg
	o.Recorder = rec

	const decisions = 3
	var feasible, evaluated int
	for i := 0; i < decisions; i++ {
		d, err := o.Decide(window())
		if err != nil {
			t.Fatal(err)
		}
		evaluated += d.Evaluated
		if d.Feasible {
			feasible++
		}
	}

	counter := func(name string) float64 {
		t.Helper()
		c, err := reg.Counter(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return c.Value()
	}
	if got := counter("optimizer_decisions_total"); got != decisions {
		t.Fatalf("decisions counter = %v, want %d", got, decisions)
	}
	if got := counter("optimizer_candidates_evaluated_total"); got != float64(evaluated) {
		t.Fatalf("evaluated counter = %v, want %d", got, evaluated)
	}
	if got := counter("optimizer_candidates_rejected_total"); got >= float64(evaluated) {
		t.Fatalf("rejected counter = %v, want < evaluated %d", got, evaluated)
	}
	if got := counter("optimizer_infeasible_total"); got != float64(decisions-feasible) {
		t.Fatalf("infeasible counter = %v, want %d", got, decisions-feasible)
	}

	ev := rec.Events()
	if len(ev) != decisions {
		t.Fatalf("events = %d, want %d", len(ev), decisions)
	}
	attrs := map[string]string{}
	for _, a := range ev[0].Attrs {
		attrs[a.Key] = a.Value
	}
	for _, key := range []string{"config", "cost_usd", "tail_s", "evaluated", "rejected", "feasible"} {
		if _, ok := attrs[key]; !ok {
			t.Fatalf("decide event missing attr %q: %+v", key, ev[0])
		}
	}

	// An impossible SLO drives the infeasible-fallback counter.
	o.SLO = 1e-9
	if _, err := o.Decide(window()); err != nil {
		t.Fatal(err)
	}
	if got := counter("optimizer_infeasible_total"); got != float64(decisions-feasible)+1 {
		t.Fatalf("infeasible counter after impossible SLO = %v", got)
	}

	// Colliding registry errors instead of panicking.
	bad := obs.NewRegistry()
	if _, err := bad.Gauge("optimizer_decisions_total", ""); err != nil {
		t.Fatal(err)
	}
	o.Obs = bad
	if _, err := o.Decide(window()); err == nil {
		t.Fatal("Decide accepted a registry with a colliding metric name")
	}
}
