package optimizer

import (
	"testing"

	"deepbat/internal/obs"
)

// TestDecideObsCountersAndEvents checks that each grid search lands in the
// registry and event stream with consistent evaluated/rejected accounting.
func TestDecideObsCountersAndEvents(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(nil, 0)
	o.Obs = reg
	o.Recorder = rec

	const decisions = 3
	var feasible, evaluated int
	for i := 0; i < decisions; i++ {
		d, err := o.Decide(window())
		if err != nil {
			t.Fatal(err)
		}
		evaluated += d.Evaluated
		if d.Feasible {
			feasible++
		}
	}

	counter := func(name string) float64 {
		t.Helper()
		c, err := reg.Counter(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return c.Value()
	}
	if got := counter("optimizer_decisions_total"); got != decisions {
		t.Fatalf("decisions counter = %v, want %d", got, decisions)
	}
	if got := counter("optimizer_candidates_evaluated_total"); got != float64(evaluated) {
		t.Fatalf("evaluated counter = %v, want %d", got, evaluated)
	}
	if got := counter("optimizer_candidates_rejected_total"); got >= float64(evaluated) {
		t.Fatalf("rejected counter = %v, want < evaluated %d", got, evaluated)
	}
	if got := counter("optimizer_infeasible_total"); got != float64(decisions-feasible) {
		t.Fatalf("infeasible counter = %v, want %d", got, decisions-feasible)
	}

	ev := rec.Events()
	if len(ev) != decisions {
		t.Fatalf("events = %d, want %d", len(ev), decisions)
	}
	attrs := map[string]string{}
	for _, a := range ev[0].Attrs {
		attrs[a.Key] = a.Value
	}
	for _, key := range []string{"config", "cost_usd", "tail_s", "evaluated", "rejected", "feasible"} {
		if _, ok := attrs[key]; !ok {
			t.Fatalf("decide event missing attr %q: %+v", key, ev[0])
		}
	}

	// An impossible SLO drives the infeasible-fallback counter.
	o.SLO = 1e-9
	if _, err := o.Decide(window()); err != nil {
		t.Fatal(err)
	}
	if got := counter("optimizer_infeasible_total"); got != float64(decisions-feasible)+1 {
		t.Fatalf("infeasible counter after impossible SLO = %v", got)
	}

	// Colliding registry errors instead of panicking.
	bad := obs.NewRegistry()
	if _, err := bad.Gauge("optimizer_decisions_total", ""); err != nil {
		t.Fatal(err)
	}
	o.Obs = bad
	if _, err := o.Decide(window()); err == nil {
		t.Fatal("Decide accepted a registry with a colliding metric name")
	}
}

// TestDecideSweepMetrics checks the per-sweep candidate counter and the
// clock-gated sweep-duration histogram.
func TestDecideSweepMetrics(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	reg := obs.NewRegistry()
	o.Obs = reg
	o.Clock = &obs.ManualClock{} // every sweep observes a duration of 0s

	const decisions = 2
	for i := 0; i < decisions; i++ {
		if _, err := o.Decide(window()); err != nil {
			t.Fatal(err)
		}
	}
	c, err := reg.Counter("optimizer_sweep_candidates_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(decisions * len(grid.Configs())); c.Value() != want {
		t.Fatalf("sweep candidates = %v, want %v", c.Value(), want)
	}
	h, err := reg.Histogram("optimizer_sweep_duration_seconds", "", sweepDurationBounds)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != decisions {
		t.Fatalf("sweep duration count = %d, want %d", h.Count(), decisions)
	}
	if h.Sum() != 0 {
		t.Fatalf("manual-clock sweeps should observe 0s, sum = %v", h.Sum())
	}

	// Without a clock the histogram stays empty but candidates still count.
	o2 := New(m, grid, 0.1)
	reg2 := obs.NewRegistry()
	o2.Obs = reg2
	if _, err := o2.Decide(window()); err != nil {
		t.Fatal(err)
	}
	h2, err := reg2.Histogram("optimizer_sweep_duration_seconds", "", sweepDurationBounds)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 0 {
		t.Fatalf("clockless sweep observed %d durations", h2.Count())
	}
	c2, err := reg2.Counter("optimizer_sweep_candidates_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(len(grid.Configs())); c2.Value() != want {
		t.Fatalf("clockless sweep candidates = %v, want %v", c2.Value(), want)
	}
}
