package optimizer

import "deepbat/internal/obs"

// decideMetrics holds the series Decide maintains when Optimizer.Obs is set.
type decideMetrics struct {
	decisions  *obs.Counter
	evaluated  *obs.Counter
	rejected   *obs.Counter
	infeasible *obs.Counter
}

func newDecideMetrics(reg *obs.Registry) (*decideMetrics, error) {
	if reg == nil {
		return nil, nil
	}
	m := &decideMetrics{}
	var err error
	counter := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	counter(&m.decisions, "optimizer_decisions_total", "grid searches completed")
	counter(&m.evaluated, "optimizer_candidates_evaluated_total", "candidate configurations scored")
	counter(&m.rejected, "optimizer_candidates_rejected_total", "candidates whose predicted tail missed the effective SLO")
	counter(&m.infeasible, "optimizer_infeasible_total", "decisions that fell back to the lowest-tail configuration")
	if err != nil {
		return nil, err
	}
	return m, nil
}

// observeDecision records one completed grid search.
func (m *decideMetrics) observeDecision(d Decision, rejected int) {
	if m == nil {
		return
	}
	m.decisions.Inc()
	m.evaluated.Add(float64(d.Evaluated))
	m.rejected.Add(float64(rejected))
	if !d.Feasible {
		m.infeasible.Inc()
	}
}

// recordDecision appends a "decide" event describing the chosen
// configuration. The recorder's clock supplies the timestamp, so a
// ManualClock keeps replays deterministic.
func recordDecision(rec *obs.Recorder, d Decision, tail float64, rejected int) {
	if rec == nil {
		return
	}
	rec.Event("decide",
		obs.S("config", d.Config.String()),
		obs.F("cost_usd", d.Prediction.CostPerRequest),
		obs.F("tail_s", tail),
		obs.F("effective_slo_s", d.EffectiveSLO),
		obs.I("evaluated", d.Evaluated),
		obs.I("rejected", rejected),
		obs.B("feasible", d.Feasible),
	)
}
