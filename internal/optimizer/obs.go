package optimizer

import "deepbat/internal/obs"

// sweepDurationBounds buckets the surrogate grid-sweep latency; the batched
// path lands in the sub-millisecond buckets on current hardware, and the
// upper bounds leave headroom for much larger grids.
var sweepDurationBounds = []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1}

// decideMetrics holds the series Decide maintains when Optimizer.Obs is set.
type decideMetrics struct {
	decisions  *obs.Counter
	evaluated  *obs.Counter
	rejected   *obs.Counter
	infeasible *obs.Counter
	// sweepCands counts candidate configurations handed to PredictGrid and
	// sweepDur distributes the wall/simulated time one batched sweep took
	// (observed only when the optimizer carries a Clock).
	sweepCands *obs.Counter
	sweepDur   *obs.Histogram
}

func newDecideMetrics(reg *obs.Registry) (*decideMetrics, error) {
	if reg == nil {
		return nil, nil
	}
	m := &decideMetrics{}
	var err error
	counter := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	counter(&m.decisions, "optimizer_decisions_total", "grid searches completed")
	counter(&m.evaluated, "optimizer_candidates_evaluated_total", "candidate configurations scored")
	counter(&m.rejected, "optimizer_candidates_rejected_total", "candidates whose predicted tail missed the effective SLO")
	counter(&m.infeasible, "optimizer_infeasible_total", "decisions that fell back to the lowest-tail configuration")
	counter(&m.sweepCands, "optimizer_sweep_candidates_total", "candidate configurations batched per surrogate grid sweep")
	if err == nil {
		m.sweepDur, err = reg.Histogram("optimizer_sweep_duration_seconds",
			"duration of one batched surrogate grid sweep", sweepDurationBounds)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// observeSweep records one batched PredictGrid call: the candidate count and,
// when a clock was available (elapsed >= 0), its duration.
func (m *decideMetrics) observeSweep(candidates int, elapsed float64) {
	if m == nil {
		return
	}
	m.sweepCands.Add(float64(candidates))
	if elapsed >= 0 {
		m.sweepDur.Observe(elapsed)
	}
}

// observeDecision records one completed grid search.
func (m *decideMetrics) observeDecision(d Decision, rejected int) {
	if m == nil {
		return
	}
	m.decisions.Inc()
	m.evaluated.Add(float64(d.Evaluated))
	m.rejected.Add(float64(rejected))
	if !d.Feasible {
		m.infeasible.Inc()
	}
}

// recordDecision appends a "decide" event describing the chosen
// configuration. The recorder's clock supplies the timestamp, so a
// ManualClock keeps replays deterministic.
func recordDecision(rec *obs.Recorder, d Decision, tail float64, rejected int) {
	if rec == nil {
		return
	}
	rec.Event("decide",
		obs.S("config", d.Config.String()),
		obs.F("cost_usd", d.Prediction.CostPerRequest),
		obs.F("tail_s", tail),
		obs.F("effective_slo_s", d.EffectiveSLO),
		obs.I("evaluated", d.Evaluated),
		obs.I("rejected", rejected),
		obs.B("feasible", d.Feasible),
	)
}
