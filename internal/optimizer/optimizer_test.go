package optimizer

import (
	"testing"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/surrogate"
	"deepbat/internal/trace"
)

func trainedModel(t *testing.T, grid lambda.Grid) *surrogate.Model {
	t.Helper()
	spec := trace.Spec{Name: "twitter", Hours: 2, HourSeconds: 60, Seed: 5}
	tr := trace.MustGenerate(spec)
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	opts := surrogate.DefaultBuildOptions(grid)
	opts.NumSamples = 150
	opts.SeqLen = 16
	ds, err := surrogate.Build(tr, sim, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc := surrogate.DefaultModelConfig()
	mc.SeqLen = 16
	mc.Dropout = 0
	m := surrogate.NewModel(mc)
	m.FitNormalization(ds)
	tc := surrogate.DefaultTrainConfig()
	tc.Epochs = 8
	if _, err := m.Train(ds, nil, tc); err != nil {
		t.Fatal(err)
	}
	return m
}

func testGrid() lambda.Grid {
	return lambda.Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.02, 0.08},
	}
}

func window() []float64 {
	w := make([]float64, 16)
	for i := range w {
		w[i] = 0.01
	}
	return w
}

func TestDecideReturnsValidConfig(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	d, err := o.Decide(window())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Config.Valid() {
		t.Fatalf("invalid config %v", d.Config)
	}
	if d.Evaluated != grid.Size() {
		t.Fatalf("evaluated %d of %d", d.Evaluated, grid.Size())
	}
	if d.EffectiveSLO != 0.1 {
		t.Fatalf("effective SLO = %v", d.EffectiveSLO)
	}
	if d.Feasible {
		tail, _ := d.Prediction.Percentile(m.Cfg, 95)
		if tail > 0.1 {
			t.Fatalf("feasible decision predicts tail %v > SLO", tail)
		}
	}
}

func TestDecideCheapestFeasible(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.15)
	d, err := o.Decide(window())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Skip("model predicts no feasible config for this window; covered elsewhere")
	}
	preds := m.PredictGrid(window(), grid.Configs())
	for _, p := range preds {
		tail, _ := p.Percentile(m.Cfg, 95)
		if tail <= d.EffectiveSLO && p.CostPerRequest < d.Prediction.CostPerRequest-1e-18 {
			t.Fatalf("config %v feasible and cheaper", p.Config)
		}
	}
}

func TestGammaTightensSLO(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	o.Gamma = 0.5
	d, err := o.Decide(window())
	if err != nil {
		t.Fatal(err)
	}
	if d.EffectiveSLO != 0.05 {
		t.Fatalf("effective SLO = %v, want 0.05", d.EffectiveSLO)
	}
	// Gamma is clamped to keep the constraint meaningful.
	o.Gamma = 5
	d, err = o.Decide(window())
	if err != nil {
		t.Fatal(err)
	}
	if d.EffectiveSLO < 0.1*0.09 {
		t.Fatalf("gamma clamp failed: %v", d.EffectiveSLO)
	}
}

func TestImpossibleSLOFallsBack(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 1e-9)
	d, err := o.Decide(window())
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Fatal("impossible SLO marked feasible")
	}
	if !d.Config.Valid() {
		t.Fatal("fallback config invalid")
	}
}

func TestDecideErrors(t *testing.T) {
	grid := testGrid()
	m := trainedModel(t, grid)
	o := New(m, grid, 0.1)
	if _, err := o.Decide(nil); err == nil {
		t.Fatal("expected error for empty window")
	}
	o.Grid = lambda.Grid{}
	if _, err := o.Decide(window()); err == nil {
		t.Fatal("expected error for empty grid")
	}
	o.Grid = grid
	o.Pct = 42
	if _, err := o.Decide(window()); err == nil {
		t.Fatal("expected error for unpredicted percentile")
	}
}
