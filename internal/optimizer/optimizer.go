// Package optimizer implements the Optimizer component of DeepBAT
// (Section III-E): given the deep surrogate model's cost and latency
// predictions for every candidate configuration, it solves the paper's
// optimization problem (Eq. 10) by exhaustive search — minimize the cost per
// request subject to the predicted i-th percentile latency meeting the SLO.
//
// A penalty factor gamma (Section III-D, Model Fine-Tuning) optionally
// tightens the SLO to SLO*(1-gamma) as a fast, robust reaction to entirely
// unseen arrival processes.
package optimizer

import (
	"errors"
	"fmt"
	"math"

	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
	"deepbat/internal/surrogate"
)

// Optimizer selects configurations from surrogate predictions.
type Optimizer struct {
	Model *surrogate.Model
	Grid  lambda.Grid
	// SLO is the latency objective in seconds (Eq. 10b).
	SLO float64
	// Pct is the percentile the SLO constrains; it must be one of the
	// model's predicted percentiles (the paper uses 95).
	Pct float64
	// Gamma tightens the effective SLO to SLO*(1-Gamma); 0 disables it.
	Gamma float64
	// Obs, when non-nil, accumulates per-Decide counters: decisions, grid
	// candidates evaluated and rejected, infeasible fallbacks, candidates
	// per batched sweep, and (when Clock is also set) a grid-sweep duration
	// histogram.
	Obs *obs.Registry
	// Clock, when non-nil alongside Obs, times each batched PredictGrid
	// sweep. Inject a WallClock when serving and a ManualClock in
	// simulations/experiments so reports stay byte-identical.
	Clock obs.Clock
	// Recorder, when non-nil, receives one "decide" event per grid search.
	Recorder *obs.Recorder
}

// New returns an optimizer with the paper's defaults (95th percentile).
func New(m *surrogate.Model, grid lambda.Grid, slo float64) *Optimizer {
	return &Optimizer{Model: m, Grid: grid, SLO: slo, Pct: 95}
}

// Decision is the outcome of one optimization.
type Decision struct {
	Config lambda.Config
	// Prediction is the surrogate output for the chosen configuration.
	Prediction surrogate.Prediction
	// Feasible reports whether any configuration met the (tightened) SLO;
	// when false the decision is the lowest-predicted-tail fallback.
	Feasible bool
	// EffectiveSLO is the constraint actually applied after gamma.
	EffectiveSLO float64
	// Evaluated counts candidate configurations scored.
	Evaluated int
}

// Decide encodes the recent interarrival window once, scores every candidate
// configuration, and returns the cheapest SLO-feasible one.
func (o *Optimizer) Decide(window []float64) (Decision, error) {
	if len(window) == 0 {
		return Decision{}, errors.New("optimizer: empty arrival window")
	}
	cfgs := o.Grid.Configs()
	if len(cfgs) == 0 {
		return Decision{}, errors.New("optimizer: empty configuration grid")
	}
	if _, ok := pctIndex(o.Model.Cfg, o.Pct); !ok {
		return Decision{}, fmt.Errorf("optimizer: model does not predict P%g", o.Pct)
	}
	met, err := newDecideMetrics(o.Obs)
	if err != nil {
		return Decision{}, err
	}
	eff := o.SLO * (1 - clamp01(o.Gamma))
	sweepStart := 0.0
	if o.Clock != nil {
		sweepStart = o.Clock.Now()
	}
	preds := o.Model.PredictGrid(window, cfgs)
	elapsed := -1.0
	if o.Clock != nil {
		elapsed = o.Clock.Now() - sweepStart
	}
	met.observeSweep(len(cfgs), elapsed)
	best := -1
	fallback := 0
	rejected := 0
	bestTail := math.Inf(1)
	for i, p := range preds {
		tail, _ := p.Percentile(o.Model.Cfg, o.Pct)
		if tail < bestTail {
			bestTail, fallback = tail, i
		}
		if tail > eff {
			rejected++
			continue
		}
		if best < 0 || p.CostPerRequest < preds[best].CostPerRequest {
			best = i
		}
	}
	d := Decision{EffectiveSLO: eff, Evaluated: len(cfgs), Feasible: best >= 0}
	if best < 0 {
		best = fallback
	}
	d.Config = cfgs[best]
	d.Prediction = preds[best]
	chosenTail, _ := d.Prediction.Percentile(o.Model.Cfg, o.Pct)
	met.observeDecision(d, rejected)
	recordDecision(o.Recorder, d, chosenTail, rejected)
	return d, nil
}

func pctIndex(cfg surrogate.ModelConfig, pct float64) (int, bool) {
	for i, q := range cfg.Percentiles {
		if stats.ApproxEqual(q, pct, stats.PercentileLevelTol) {
			return i, true
		}
	}
	return 0, false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.9 {
		return 0.9
	}
	return x
}
