package opt

import (
	"math"
	"math/rand"
	"testing"

	"deepbat/internal/tensor"
)

// quadLoss builds the loss (x - target)^2 summed, whose minimum is at target.
func quadLoss(x, target *tensor.Tensor) *tensor.Tensor {
	d := tensor.Sub(x, target)
	return tensor.SumAll(tensor.Mul(d, d))
}

func optimize(t *testing.T, makeOpt func([]*tensor.Tensor) Optimizer, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := tensor.Randn(rng, 1, 4).RequireGrad()
	target := tensor.FromData([]float64{1, -2, 3, 0.5}, 4)
	o := makeOpt([]*tensor.Tensor{x})
	var last float64
	for i := 0; i < steps; i++ {
		o.ZeroGrad()
		loss := quadLoss(x, target)
		tensor.Backward(loss)
		o.Step()
		last = loss.Item()
	}
	return last
}

func TestSGDConverges(t *testing.T) {
	final := optimize(t, func(ps []*tensor.Tensor) Optimizer {
		return NewSGD(ps, 0.1, 0)
	}, 200)
	if final > 1e-6 {
		t.Fatalf("SGD final loss = %v", final)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	final := optimize(t, func(ps []*tensor.Tensor) Optimizer {
		return NewSGD(ps, 0.05, 0.9)
	}, 200)
	if final > 1e-6 {
		t.Fatalf("SGD+momentum final loss = %v", final)
	}
}

func TestAdamConverges(t *testing.T) {
	final := optimize(t, func(ps []*tensor.Tensor) Optimizer {
		return NewAdam(ps, 0.05)
	}, 500)
	if final > 1e-4 {
		t.Fatalf("Adam final loss = %v", final)
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ~lr
	// regardless of gradient scale.
	x := tensor.FromData([]float64{0}, 1).RequireGrad()
	x.Grad[0] = 1234.5
	a := NewAdam([]*tensor.Tensor{x}, 0.001)
	a.Step()
	if math.Abs(math.Abs(x.Data[0])-0.001) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ~0.001", x.Data[0])
	}
}

func TestZeroGrad(t *testing.T) {
	x := tensor.FromData([]float64{1}, 1).RequireGrad()
	x.Grad[0] = 5
	o := NewAdam([]*tensor.Tensor{x}, 0.1)
	o.ZeroGrad()
	if x.Grad[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestSetLR(t *testing.T) {
	x := tensor.FromData([]float64{1}, 1).RequireGrad()
	for _, o := range []Optimizer{NewSGD([]*tensor.Tensor{x}, 0.1, 0), NewAdam([]*tensor.Tensor{x}, 0.1)} {
		o.SetLR(0.42)
		if o.LR() != 0.42 {
			t.Fatalf("SetLR/LR roundtrip failed for %T", o)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	x := tensor.FromData([]float64{0, 0}, 2).RequireGrad()
	x.Grad[0], x.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*tensor.Tensor{x}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("reported norm = %v, want 5", norm)
	}
	got := math.Sqrt(x.Grad[0]*x.Grad[0] + x.Grad[1]*x.Grad[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", got)
	}
	// No clipping when under the limit.
	x.Grad[0], x.Grad[1] = 0.1, 0
	ClipGradNorm([]*tensor.Tensor{x}, 1)
	if x.Grad[0] != 0.1 {
		t.Fatal("clip modified small gradients")
	}
}

func TestStepDecay(t *testing.T) {
	if got := StepDecay(1.0, 0.5, 10, 0); got != 1.0 {
		t.Fatalf("decay epoch 0 = %v", got)
	}
	if got := StepDecay(1.0, 0.5, 10, 25); got != 0.25 {
		t.Fatalf("decay epoch 25 = %v", got)
	}
	if got := StepDecay(1.0, 0.5, 0, 25); got != 1.0 {
		t.Fatalf("decay stepSize 0 = %v", got)
	}
}

func TestAdamBeatsSGDOnIllConditioned(t *testing.T) {
	// Loss with very different curvature per coordinate; Adam's per-parameter
	// scaling should reach a lower loss in the same number of steps as plain
	// SGD at a stable learning rate.
	run := func(makeOpt func([]*tensor.Tensor) Optimizer) float64 {
		x := tensor.FromData([]float64{5, 5}, 2).RequireGrad()
		scale := tensor.FromData([]float64{100, 0.01}, 2)
		o := makeOpt([]*tensor.Tensor{x})
		var last float64
		for i := 0; i < 100; i++ {
			o.ZeroGrad()
			sx := tensor.Mul(x, scale)
			loss := tensor.SumAll(tensor.Mul(sx, tensor.Mul(x, tensor.FromData([]float64{1, 1}, 2))))
			tensor.Backward(loss)
			o.Step()
			last = loss.Item()
		}
		return math.Abs(last)
	}
	sgd := run(func(ps []*tensor.Tensor) Optimizer { return NewSGD(ps, 0.005, 0) })
	adam := run(func(ps []*tensor.Tensor) Optimizer { return NewAdam(ps, 0.1) })
	if adam > sgd {
		t.Fatalf("Adam (%v) did not beat SGD (%v) on ill-conditioned quadratic", adam, sgd)
	}
}

func TestGradBufferBindAndReduce(t *testing.T) {
	a := tensor.FromData([]float64{1, 2}, 2).RequireGrad()
	b := tensor.FromData([]float64{3}, 1).RequireGrad()
	params := []*tensor.Tensor{a, b}

	// Two shards, as if two samples each produced a gradient.
	replica := []*tensor.Tensor{a.ShareData(), b.ShareData()}
	g1 := NewGradBuffer(params)
	g2 := NewGradBuffer(params)

	g1.Bind(replica)
	tensor.Backward(tensor.SumAll(tensor.Mul(replica[0], replica[0]))) // d/da = 2a
	g2.Bind(replica)
	tensor.Backward(tensor.SumAll(replica[1])) // d/db = 1

	g1.AddInto(params)
	g2.AddInto(params)
	if a.Grad[0] != 2 || a.Grad[1] != 4 {
		t.Fatalf("reduced dA = %v, want [2 4]", a.Grad)
	}
	if b.Grad[0] != 1 {
		t.Fatalf("reduced dB = %v, want [1]", b.Grad)
	}

	// Zero clears the shard without touching the reduced grads.
	g1.Zero()
	g1.AddInto(params)
	if a.Grad[0] != 2 {
		t.Fatal("Zero did not clear the shard")
	}
}

func TestGradBufferMismatchPanics(t *testing.T) {
	a := tensor.New(2).RequireGrad()
	g := NewGradBuffer([]*tensor.Tensor{a})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Bind count", func() { g.Bind(nil) })
	mustPanic("Bind shape", func() { g.Bind([]*tensor.Tensor{tensor.New(3).RequireGrad()}) })
	mustPanic("AddInto count", func() { g.AddInto(nil) })
}
