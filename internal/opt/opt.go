// Package opt implements the gradient-descent optimizers used to train the
// DeepBAT surrogate model: plain SGD (with optional momentum) and Adam with
// bias correction, plus global-norm gradient clipping.
package opt

import (
	"math"

	"deepbat/internal/tensor"
)

// Optimizer updates a fixed set of parameter tensors from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the current gradients.
	Step()
	// ZeroGrad clears all parameter gradients.
	ZeroGrad()
	// SetLR changes the learning rate.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*tensor.Tensor
	lr       float64
	momentum float64
	velocity [][]float64
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*tensor.Tensor, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.NumEl())
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if s.momentum != 0 {
			v := s.velocity[i]
			for j := range p.Data {
				v[j] = s.momentum*v[j] + p.Grad[j]
				p.Data[j] -= s.lr * v[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= s.lr * p.Grad[j]
			}
		}
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias-corrected first and
// second moment estimates, the optimizer used by the paper (lr = 1e-3).
type Adam struct {
	params []*tensor.Tensor
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.NumEl())
		a.v[i] = make([]float64, p.NumEl())
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Data[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// GradNorm returns the global L2 norm of the gradients of params without
// modifying them.
func GradNorm(params []*tensor.Tensor) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	return math.Sqrt(total)
}

// ClipGradNorm rescales the gradients of params so their global L2 norm does
// not exceed maxNorm. It returns the pre-clipping norm.
func ClipGradNorm(params []*tensor.Tensor, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}

// GradBuffer is one detachable gradient shard, shape-aligned with a fixed
// parameter list. Data-parallel training gives every in-flight sample its own
// buffer: a worker binds the buffer to its replica's parameters, runs
// forward/backward so gradients land in the buffer, and the reducer then adds
// buffers into the optimizer's parameters in a fixed sample order — making
// the accumulated gradient bit-identical for any worker count.
type GradBuffer struct {
	bufs [][]float64
}

// NewGradBuffer allocates a zeroed shard matching params element-for-element.
func NewGradBuffer(params []*tensor.Tensor) *GradBuffer {
	g := &GradBuffer{bufs: make([][]float64, len(params))}
	for i, p := range params {
		g.bufs[i] = make([]float64, p.NumEl())
	}
	return g
}

// Zero clears the shard.
func (g *GradBuffer) Zero() {
	for _, b := range g.bufs {
		for i := range b {
			b[i] = 0
		}
	}
}

// Bind points each parameter's Grad slice at this shard, so a subsequent
// backward pass accumulates here. params must be shape-aligned with the list
// the buffer was created from (e.g. a replica's Params() in the same order).
func (g *GradBuffer) Bind(params []*tensor.Tensor) {
	if len(params) != len(g.bufs) {
		panic("opt: GradBuffer.Bind parameter count mismatch")
	}
	for i, p := range params {
		if p.NumEl() != len(g.bufs[i]) {
			panic("opt: GradBuffer.Bind parameter shape mismatch")
		}
		p.Grad = g.bufs[i]
	}
}

// AddInto accumulates the shard into the gradients of params (the optimizer's
// canonical parameters).
func (g *GradBuffer) AddInto(params []*tensor.Tensor) {
	if len(params) != len(g.bufs) {
		panic("opt: GradBuffer.AddInto parameter count mismatch")
	}
	for i, p := range params {
		b := g.bufs[i]
		for j := range b {
			p.Grad[j] += b[j]
		}
	}
}

// StepDecay returns the learning rate after applying multiplicative decay
// gamma every stepSize epochs: lr0 * gamma^(epoch/stepSize).
func StepDecay(lr0, gamma float64, stepSize, epoch int) float64 {
	if stepSize <= 0 {
		return lr0
	}
	return lr0 * math.Pow(gamma, float64(epoch/stepSize))
}
