package batchopt

import (
	"math"
	"math/rand"
	"testing"

	"deepbat/internal/arrival"
	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
)

func analyzer() *Analyzer {
	return NewAnalyzer(lambda.DefaultProfile(), lambda.DefaultPricing())
}

func cfg(m float64, b int, t float64) lambda.Config {
	return lambda.Config{MemoryMB: m, BatchSize: b, TimeoutS: t}
}

// simulate runs the ground-truth simulator over a long MAP sample.
func simulate(t *testing.T, m *arrival.MAP, c lambda.Config, n int, seed int64) *qsim.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := arrival.NewGen(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	res, err := sim.Run(qsim.Timestamps(g.Sample(n)), c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeInvalidConfig(t *testing.T) {
	if _, err := analyzer().Analyze(arrival.Poisson(10), cfg(1024, 0, 0.1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestAnalyzeBatchSizeOne(t *testing.T) {
	a := analyzer()
	p, err := a.Analyze(arrival.Poisson(50), cfg(2048, 1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	svc := a.Profile.ServiceTime(2048, 1)
	if math.Abs(p.Percentile(95)-svc) > 1e-12 {
		t.Fatalf("B=1 P95 = %v, want service time %v", p.Percentile(95), svc)
	}
	if p.MeanBatchSize != 1 {
		t.Fatalf("B=1 mean batch = %v", p.MeanBatchSize)
	}
	want := a.Pricing.CostPerRequest(2048, svc, 1)
	if math.Abs(p.CostPerRequest-want) > 1e-15 {
		t.Fatalf("B=1 cost = %v, want %v", p.CostPerRequest, want)
	}
}

func TestAnalyzeZeroTimeout(t *testing.T) {
	p, err := analyzer().Analyze(arrival.Poisson(50), cfg(2048, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanBatchSize != 1 {
		t.Fatalf("T=0 should serve singletons, mean batch = %v", p.MeanBatchSize)
	}
}

func TestAnalyzeMatchesSimulationPoisson(t *testing.T) {
	// Core validation: analytic latency percentiles and cost should match
	// long-run simulation of the same MAP.
	m := arrival.Poisson(100)
	c := cfg(2048, 8, 0.05)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 200000, 1)
	for _, pct := range []float64{50, 90, 95, 99} {
		ana := p.Percentile(pct)
		emp := sim.LatencyPercentile(pct)
		if math.Abs(ana-emp)/emp > 0.08 {
			t.Fatalf("P%v: analytic %v vs simulated %v", pct, ana, emp)
		}
	}
	if math.Abs(p.CostPerRequest-sim.CostPerRequest())/sim.CostPerRequest() > 0.05 {
		t.Fatalf("cost: analytic %v vs simulated %v", p.CostPerRequest, sim.CostPerRequest())
	}
	if math.Abs(p.MeanBatchSize-sim.MeanBatchSize())/sim.MeanBatchSize() > 0.05 {
		t.Fatalf("mean batch: analytic %v vs simulated %v", p.MeanBatchSize, sim.MeanBatchSize())
	}
}

func TestAnalyzeMatchesSimulationMMPP(t *testing.T) {
	m := arrival.MMPP2(150, 20, 1.0, 0.8)
	c := cfg(1536, 6, 0.06)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 300000, 2)
	for _, pct := range []float64{50, 95} {
		ana := p.Percentile(pct)
		emp := sim.LatencyPercentile(pct)
		if math.Abs(ana-emp)/emp > 0.12 {
			t.Fatalf("P%v: analytic %v vs simulated %v", pct, ana, emp)
		}
	}
	if math.Abs(p.CostPerRequest-sim.CostPerRequest())/sim.CostPerRequest() > 0.10 {
		t.Fatalf("cost: analytic %v vs simulated %v", p.CostPerRequest, sim.CostPerRequest())
	}
}

func TestAnalyzeTimeoutDominatedRegime(t *testing.T) {
	// Sparse traffic: batches almost never fill, everyone waits ~T.
	m := arrival.Poisson(5)
	c := cfg(2048, 32, 0.05)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 100000, 3)
	ana, emp := p.Percentile(95), sim.LatencyPercentile(95)
	if math.Abs(ana-emp)/emp > 0.10 {
		t.Fatalf("P95: analytic %v vs simulated %v", ana, emp)
	}
	if p.MeanBatchSize > 2.5 {
		t.Fatalf("sparse traffic mean batch = %v, want small", p.MeanBatchSize)
	}
}

func TestAnalyzeCountDominatedRegime(t *testing.T) {
	// Dense traffic: batches fill almost immediately.
	m := arrival.Poisson(2000)
	c := cfg(2048, 8, 0.5)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 200000, 4)
	ana, emp := p.Percentile(95), sim.LatencyPercentile(95)
	if math.Abs(ana-emp)/emp > 0.10 {
		t.Fatalf("P95: analytic %v vs simulated %v", ana, emp)
	}
	if p.MeanBatchSize < 7.5 {
		t.Fatalf("dense traffic mean batch = %v, want ~8", p.MeanBatchSize)
	}
}

func TestAnalyzeMatchesSimulationErlang(t *testing.T) {
	// Smoother-than-Poisson arrivals (SCV = 1/4).
	m := arrival.Erlang(4, 120)
	c := cfg(2048, 6, 0.06)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 200000, 11)
	for _, pct := range []float64{50, 95} {
		ana, emp := p.Percentile(pct), sim.LatencyPercentile(pct)
		if math.Abs(ana-emp)/emp > 0.10 {
			t.Fatalf("P%v: analytic %v vs simulated %v", pct, ana, emp)
		}
	}
}

func TestAnalyzeMatchesSimulationHyperExp(t *testing.T) {
	// Burstier-than-Poisson renewal arrivals.
	m := arrival.HyperExp(0.3, 400, 40)
	c := cfg(2048, 8, 0.08)
	p, err := analyzer().Analyze(m, c)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, m, c, 200000, 12)
	for _, pct := range []float64{50, 95} {
		ana, emp := p.Percentile(pct), sim.LatencyPercentile(pct)
		if math.Abs(ana-emp)/emp > 0.12 {
			t.Fatalf("P%v: analytic %v vs simulated %v", pct, ana, emp)
		}
	}
	if math.Abs(p.CostPerRequest-sim.CostPerRequest())/sim.CostPerRequest() > 0.10 {
		t.Fatalf("cost: analytic %v vs simulated %v", p.CostPerRequest, sim.CostPerRequest())
	}
}

func TestAnalyzeConvergesWithGridResolution(t *testing.T) {
	// Halving the discretization step should move the estimate toward the
	// fine-grid value, and coarse/fine estimates must agree reasonably.
	m := arrival.MMPP2(150, 20, 1.0, 0.8)
	c := cfg(2048, 8, 0.06)
	vals := map[int]float64{}
	for _, g := range []int{48, 96, 384} {
		a := analyzer()
		a.GridSteps = g
		p, err := a.Analyze(m, c)
		if err != nil {
			t.Fatal(err)
		}
		vals[g] = p.Percentile(95)
	}
	coarseErr := math.Abs(vals[48] - vals[384])
	midErr := math.Abs(vals[96] - vals[384])
	if midErr > coarseErr+1e-9 {
		t.Fatalf("refinement did not converge: |48-384|=%v, |96-384|=%v", coarseErr, midErr)
	}
	if coarseErr/vals[384] > 0.15 {
		t.Fatalf("coarse grid too far off: %v vs %v", vals[48], vals[384])
	}
}

func TestPercentileMonotone(t *testing.T) {
	p, err := analyzer().Analyze(arrival.Poisson(100), cfg(2048, 8, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, pct := range []float64{10, 25, 50, 75, 90, 95, 99} {
		v := p.Percentile(pct)
		if v < prev {
			t.Fatalf("percentiles not monotone at P%v: %v < %v", pct, v, prev)
		}
		prev = v
	}
	if p.Mean() <= 0 {
		t.Fatal("mean latency must be positive")
	}
}

func TestOptimizeRespectsSLO(t *testing.T) {
	m := arrival.Poisson(100)
	a := analyzer()
	grid := lambda.Grid{
		Memories:  []float64{1024, 2048, 4096},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.01, 0.05, 0.1},
	}
	best, pred, err := a.Optimize(m, grid, 0.1, 95)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Percentile(95) > 0.1 {
		t.Fatalf("optimizer violated SLO: %v with %v", pred.Percentile(95), best)
	}
	// Must be the cheapest feasible config.
	for _, c := range grid.Configs() {
		p, err := a.Analyze(m, c)
		if err != nil {
			t.Fatal(err)
		}
		if p.Percentile(95) <= 0.1 && p.CostPerRequest < pred.CostPerRequest-1e-15 {
			t.Fatalf("config %v feasible and cheaper (%v < %v)", c, p.CostPerRequest, pred.CostPerRequest)
		}
	}
}

func TestOptimizeInfeasibleFallsBack(t *testing.T) {
	m := arrival.Poisson(100)
	grid := lambda.Grid{Memories: []float64{512}, Batches: []int{16}, TimeoutsS: []float64{0.5}}
	best, pred, err := analyzer().Optimize(m, grid, 1e-9, 95)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Valid() || pred == nil {
		t.Fatal("fallback should still pick a configuration")
	}
}

func TestOptimizeEmptyGrid(t *testing.T) {
	if _, _, err := analyzer().Optimize(arrival.Poisson(1), lambda.Grid{}, 0.1, 95); err == nil {
		t.Fatal("expected error for empty grid")
	}
}

func TestPipelineDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := arrival.NewGen(arrival.MMPP2(120, 10, 0.5, 0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	inter := g.Sample(5000)
	grid := lambda.Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.02, 0.05},
	}
	pl := NewPipeline(lambda.DefaultProfile(), lambda.DefaultPricing(), grid, 0.1)
	rep, err := pl.Decide(inter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fit == nil || rep.Prediction == nil || !rep.Config.Valid() {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if rep.Prediction.Percentile(95) > 0.1 {
		t.Fatalf("pipeline violated predicted SLO: %v", rep.Prediction.Percentile(95))
	}
}

func TestPipelineDecideTooFewSamples(t *testing.T) {
	pl := NewPipeline(lambda.DefaultProfile(), lambda.DefaultPricing(), lambda.DefaultGrid(), 0.1)
	if _, err := pl.Decide([]float64{1, 2}); err == nil {
		t.Fatal("expected fitting error")
	}
}

func TestBatchingTradeoffVisibleAnalytically(t *testing.T) {
	// The analytic model must reproduce the Fig. 1 trade-offs.
	a := analyzer()
	m := arrival.Poisson(100)
	pSmall, err := a.Analyze(m, cfg(2048, 1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := a.Analyze(m, cfg(2048, 16, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if pBig.CostPerRequest >= pSmall.CostPerRequest {
		t.Fatalf("batching should cut analytic cost: %v vs %v", pBig.CostPerRequest, pSmall.CostPerRequest)
	}
	if pBig.Percentile(95) <= pSmall.Percentile(95) {
		t.Fatalf("batching should raise analytic latency: %v vs %v", pBig.Percentile(95), pSmall.Percentile(95))
	}
}

func TestTotalWeightIsRequestsPerCycle(t *testing.T) {
	a := analyzer()
	p, err := a.Analyze(arrival.Poisson(100), cfg(2048, 4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range p.weights {
		total += w
	}
	// E[requests per cycle] must be at least 1 (the opening request) and at
	// most B.
	if total < 0.95 || total > 4.05 {
		t.Fatalf("total probability mass = %v, want within [1, B]", total)
	}
}
