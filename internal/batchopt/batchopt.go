// Package batchopt implements the BATCH baseline (Ali et al., SC'20) that
// the paper compares against: an analytical model of serverless batching
// under Markovian Arrival Process (MAP) traffic.
//
// Model. A collection cycle starts when a request arrives to an empty
// buffer. The batch is dispatched either when B requests have accumulated
// (the (B-1)-th additional arrival) or T seconds after the cycle started,
// whichever comes first. Service is deterministic given the configuration
// and runs at unlimited concurrency (serverless autoscaling), so a request's
// latency is its buffering delay plus the batch service time.
//
// Analysis. Working on a discretized time grid over [0, T], the analyzer
// builds, per starting phase, the matrix densities of the j-th arrival epoch
// (iterated convolutions of e^(D0 t) D1) and the transient counting
// probabilities P(N(tau) = r). From those it derives the exact per-request
// waiting-time distribution, split by realized batch size, for both
// dispatch-by-count and dispatch-by-timeout cycles; combining with the
// deterministic service times yields the latency distribution, and
// renewal-reward over cycles yields the expected cost per request. This is
// the same quantity BATCH obtains through matrix-analytic methods, and like
// BATCH it is orders of magnitude more expensive than a surrogate forward
// pass — matrix exponentials and O(B G^2) convolutions per configuration.
//
// The full BATCH pipeline (Pipeline) first fits a MAP to the observed
// interarrival times (arrival.FitMMPP2, standing in for the KPC-toolbox
// fitting step) and then exhaustively optimizes the configuration grid
// against the analytical predictions.
package batchopt

import (
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"

	"deepbat/internal/arrival"
	"deepbat/internal/lambda"
	"deepbat/internal/linalg"
)

// Analyzer evaluates configurations analytically against a MAP.
type Analyzer struct {
	Profile lambda.Profile
	Pricing lambda.Pricing
	// GridSteps is the number of time-discretization bins over [0, T].
	GridSteps int
}

// NewAnalyzer returns an Analyzer with the default grid resolution.
func NewAnalyzer(p lambda.Profile, pr lambda.Pricing) *Analyzer {
	return &Analyzer{Profile: p, Pricing: pr, GridSteps: 192}
}

// Prediction is the analytical performance estimate of one configuration.
type Prediction struct {
	Config         lambda.Config
	CostPerRequest float64
	// MeanBatchSize is the expected number of requests per invocation.
	MeanBatchSize float64
	// latencies/weights form the weighted latency distribution.
	latencies []float64
	weights   []float64
	sorted    bool
}

// Percentile returns the p-th percentile (p in [0, 100]) of the per-request
// latency distribution.
func (pr *Prediction) Percentile(p float64) float64 {
	if len(pr.latencies) == 0 {
		return 0
	}
	if !pr.sorted {
		idx := make([]int, len(pr.latencies))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return pr.latencies[idx[a]] < pr.latencies[idx[b]] })
		ls := make([]float64, len(idx))
		ws := make([]float64, len(idx))
		for i, j := range idx {
			ls[i] = pr.latencies[j]
			ws[i] = pr.weights[j]
		}
		pr.latencies, pr.weights = ls, ws
		pr.sorted = true
	}
	total := 0.0
	for _, w := range pr.weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	target := p / 100 * total
	acc := 0.0
	for i, w := range pr.weights {
		acc += w
		if acc >= target {
			return pr.latencies[i]
		}
	}
	return pr.latencies[len(pr.latencies)-1]
}

// Mean returns the mean per-request latency.
func (pr *Prediction) Mean() float64 {
	var s, w float64
	for i := range pr.latencies {
		s += pr.latencies[i] * pr.weights[i]
		w += pr.weights[i]
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// Analyze computes the latency distribution and expected cost per request of
// cfg under MAP traffic m.
func (a *Analyzer) Analyze(m *arrival.MAP, cfg lambda.Config) (*Prediction, error) {
	if !cfg.Valid() {
		return nil, errors.New("batchopt: invalid configuration " + cfg.String())
	}
	phi, err := m.ArrivalPhase()
	if err != nil {
		return nil, err
	}
	pred := &Prediction{Config: cfg}

	// Degenerate cases: B = 1 or no accumulation time — every request is
	// dispatched immediately upon arrival in its own batch.
	if cfg.BatchSize == 1 || cfg.TimeoutS <= 0 {
		svc := a.Profile.ServiceTime(cfg.MemoryMB, 1)
		pred.CostPerRequest = a.Pricing.CostPerRequest(cfg.MemoryMB, svc, 1)
		pred.MeanBatchSize = 1
		pred.latencies = []float64{svc}
		pred.weights = []float64{1}
		return pred, nil
	}

	n := m.Order()
	G := a.GridSteps
	if G < 8 {
		G = 8
	}
	dt := cfg.TimeoutS / float64(G)
	B := cfg.BatchSize

	// Precompute step operators.
	eStep := linalg.Expm(linalg.Scale(m.D0, dt))   // e^(D0 dt)
	eHalf := linalg.Expm(linalg.Scale(m.D0, dt/2)) // e^(D0 dt/2)
	d1dt := linalg.Scale(m.D1, dt)                 // D1 dt
	// A1[i]: density x dt of the next arrival in bin i, as a phase matrix
	// evaluated at the bin midpoint: e^(D0 (i+1/2) dt) D1 dt.
	a1 := make([]*linalg.Mat, G)
	cur := eHalf.Clone()
	for i := 0; i < G; i++ {
		a1[i] = linalg.Mul(cur, d1dt)
		cur = linalg.Mul(cur, eStep)
	}

	// Aj[j][i]: j-th arrival epoch density (iterated convolution), j=1..B-1.
	aj := make([][]*linalg.Mat, B)
	aj[1] = a1
	for j := 2; j <= B-1; j++ {
		prev := aj[j-1]
		cvd := make([]*linalg.Mat, G)
		for i := 0; i < G; i++ {
			acc := linalg.NewMat(n, n)
			for k := 0; k <= i; k++ {
				// prev at bin k, next interarrival spanning i-k bins.
				acc = linalg.Add(acc, linalg.Mul(prev[k], a1[i-k]))
			}
			cvd[i] = acc
		}
		aj[j] = cvd
	}

	// Cr[r][i]: P(N(tau_i) = r) as a phase matrix at grid point tau_i = i dt,
	// for r = 0..B-2 (exact counts that end in a timeout dispatch).
	cr := make([][]*linalg.Mat, B-1)
	c0 := make([]*linalg.Mat, G+1)
	c0[0] = linalg.Identity(n)
	for i := 1; i <= G; i++ {
		c0[i] = linalg.Mul(c0[i-1], eStep)
	}
	cr[0] = c0
	for r := 1; r <= B-2; r++ {
		prev := cr[r-1]
		out := make([]*linalg.Mat, G+1)
		out[0] = linalg.NewMat(n, n)
		for i := 1; i <= G; i++ {
			acc := linalg.NewMat(n, n)
			for k := 0; k < i; k++ {
				// arrival in bin k (midpoint (k+1/2) dt), then exactly r-1
				// arrivals in the remaining (i-k-1/2) dt ~ grid point i-k-1.
				rem := i - k - 1
				acc = linalg.Add(acc, linalg.Mul(a1[k], prev[rem]))
			}
			out[i] = acc
		}
		cr[r] = out
	}

	ones := linalg.Ones(n)
	// u[mcount][d] = P(the mcount-th next arrival lands in bin d | phase),
	// as a per-phase column vector.
	u := make([][][]float64, B)
	for j := 1; j <= B-1; j++ {
		u[j] = make([][]float64, G)
		for d := 0; d < G; d++ {
			u[j][d] = linalg.MatVec(aj[j][d], ones)
		}
	}
	// csum[r][i] = P(N(tau_i) = r | phase) column vectors.
	cvec := make([][][]float64, B-1)
	for r := 0; r <= B-2; r++ {
		cvec[r] = make([][]float64, G+1)
		for i := 0; i <= G; i++ {
			cvec[r][i] = linalg.MatVec(cr[r][i], ones)
		}
	}

	// V[j][k] = phi A_j[k]: row vector over phases, the probability that the
	// j-th additional arrival happens in bin k jointly with the phase there.
	v := make([][][]float64, B)
	v[0] = nil // position 0 arrives at time zero with phase phi
	for j := 1; j <= B-1; j++ {
		v[j] = make([][]float64, G)
		for k := 0; k < G; k++ {
			v[j][k] = linalg.VecMat(phi, aj[j][k])
		}
	}
	// Prefix sums over k of V[j][k] for the count-dispatch case.
	vpre := make([][][]float64, B)
	for j := 1; j <= B-1; j++ {
		vpre[j] = make([][]float64, G+1)
		vpre[j][0] = make([]float64, n)
		for k := 0; k < G; k++ {
			nxt := make([]float64, n)
			for p := 0; p < n; p++ {
				nxt[p] = vpre[j][k][p] + v[j][k][p]
			}
			vpre[j][k+1] = nxt
		}
	}

	// hist[b][d] accumulates request weight with realized batch size b and
	// waiting time ~ (d+1/2) dt; bin G means "waited exactly T".
	hist := make([][]float64, B+1)
	for b := 1; b <= B; b++ {
		hist[b] = make([]float64, G+1)
	}

	// --- Dispatch by count: batch size B, requires the (B-1)-th additional
	// arrival within [0, T].
	// Position 0 waits until the (B-1)-th arrival: weight phi . u[B-1][d].
	for d := 0; d < G; d++ {
		hist[B][d] += linalg.Dot(phi, u[B-1][d])
	}
	// Position j (1..B-1) waits from its own arrival at bin k to the
	// (B-1)-th at bin k+d; summing over k <= G-d uses the prefix sums.
	for j := 1; j <= B-1; j++ {
		rest := B - 1 - j
		if rest == 0 {
			// The B-th request triggers the dispatch: zero wait. Its total
			// probability is that of the (B-1)-th arrival within the window.
			pTrig := 0.0
			for k := 0; k < G; k++ {
				pTrig += linalg.Dot(v[j][k], ones)
			}
			hist[B][0] += pTrig
			continue
		}
		for d := 0; d < G; d++ {
			hist[B][d] += linalg.Dot(vpre[j][G-d], u[rest][d])
		}
	}

	// --- Dispatch by timeout: batch size b = mcount+1 with mcount <= B-2
	// additional arrivals in [0, T].
	for mcount := 0; mcount <= B-2; mcount++ {
		b := mcount + 1
		// Position 0 waits exactly T.
		hist[b][G] += linalg.Dot(phi, cvec[mcount][G])
		// Position j arrived at bin k; needs exactly mcount-j further
		// arrivals in the remaining time ~ (G-k) grid points; waits T - t_k.
		for j := 1; j <= mcount; j++ {
			r := mcount - j
			for k := 0; k < G; k++ {
				hist[b][G-k-1] += linalg.Dot(v[j][k], cvec[r][G-k-1])
			}
		}
	}

	// Assemble the weighted latency distribution and the cycle economics.
	var costCycle, reqCycle float64
	for b := 1; b <= B; b++ {
		svc := a.Profile.ServiceTime(cfg.MemoryMB, b)
		inv := a.Pricing.InvocationCost(cfg.MemoryMB, svc)
		var wsum float64
		for d := 0; d <= G; d++ {
			w := hist[b][d]
			if w <= 0 {
				continue
			}
			wait := (float64(d) + 0.5) * dt
			if d == G {
				wait = cfg.TimeoutS
			}
			pred.latencies = append(pred.latencies, wait+svc)
			pred.weights = append(pred.weights, w)
			wsum += w
		}
		reqCycle += wsum
		// wsum/b is the probability the cycle realized batch size b.
		costCycle += inv * wsum / float64(b)
	}
	if reqCycle <= 0 {
		return nil, errors.New("batchopt: degenerate cycle (no probability mass)")
	}
	pred.CostPerRequest = costCycle / reqCycle
	// E[b] over cycles: requests per cycle / cycles (total cycle prob = sum
	// over b of wsum/b).
	var cycles float64
	for b := 1; b <= B; b++ {
		var wsum float64
		for d := 0; d <= G; d++ {
			wsum += hist[b][d]
		}
		cycles += wsum / float64(b)
	}
	if cycles > 0 {
		pred.MeanBatchSize = reqCycle / cycles
	}
	return pred, nil
}

// Optimize exhaustively evaluates every configuration in the grid and
// returns the cheapest one whose pct-percentile latency meets the SLO. When
// no configuration is feasible it returns the one with the lowest predicted
// tail latency. Evaluation is spread across worker goroutines.
func (a *Analyzer) Optimize(m *arrival.MAP, grid lambda.Grid, slo, pct float64) (lambda.Config, *Prediction, error) {
	cfgs := grid.Configs()
	if len(cfgs) == 0 {
		return lambda.Config{}, nil, errors.New("batchopt: empty grid")
	}
	preds := make([]*Prediction, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				preds[i], errs[i] = a.Analyze(m, cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return lambda.Config{}, nil, err
		}
	}
	bestIdx, fallback := -1, 0
	bestTail := math.Inf(1)
	for i, p := range preds {
		tail := p.Percentile(pct)
		if tail < bestTail {
			bestTail, fallback = tail, i
		}
		if tail > slo {
			continue
		}
		if bestIdx < 0 || p.CostPerRequest < preds[bestIdx].CostPerRequest {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		bestIdx = fallback
	}
	return cfgs[bestIdx], preds[bestIdx], nil
}

// Report summarizes one full BATCH decision.
type Report struct {
	Fit        *arrival.FitResult
	Config     lambda.Config
	Prediction *Prediction
}

// Pipeline is the end-to-end BATCH baseline: fit a MAP to the observed
// window, then optimize the grid analytically.
type Pipeline struct {
	Analyzer *Analyzer
	Grid     lambda.Grid
	SLO      float64
	Pct      float64
}

// NewPipeline builds the baseline with the paper's defaults (95th-percentile
// SLO objective).
func NewPipeline(p lambda.Profile, pr lambda.Pricing, grid lambda.Grid, slo float64) *Pipeline {
	return &Pipeline{Analyzer: NewAnalyzer(p, pr), Grid: grid, SLO: slo, Pct: 95}
}

// Decide fits the interarrival window and returns the optimized
// configuration, exactly as BATCH re-parameterizes every control period.
func (b *Pipeline) Decide(inter []float64) (*Report, error) {
	fit, err := arrival.FitMMPP2(inter)
	if err != nil {
		return nil, err
	}
	cfg, pred, err := b.Analyzer.Optimize(fit.MAP, b.Grid, b.SLO, b.Pct)
	if err != nil {
		return nil, err
	}
	return &Report{Fit: fit, Config: cfg, Prediction: pred}, nil
}
