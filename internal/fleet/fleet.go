package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/qsim"
)

// Options parameterizes New beyond the plan itself. The zero value serves
// every group on a simulated backend with wall-clock timers and no tuner.
type Options struct {
	// BackendFor, when non-nil, supplies each group's backend (gi is the
	// group index into the assignment). nil builds a SimulatedBackend from
	// the group's profile and pricing.
	BackendFor func(gi int, g Group) gateway.Backend
	// Clock is the shared gateway clock (nil = wall clock). Virtual-time
	// drivers inject an obs.ManualClock.
	Clock obs.Clock
	// VirtualTimers disables wall-clock batch timers on every group
	// gateway; the driver honours NextFlushDeadline/FlushDue instead.
	VirtualTimers bool
	// ObsFor, when non-nil, supplies each group's metric registry (one
	// gateway's series per registry — the names collide otherwise). nil, or
	// a nil result, gives each group a private registry.
	ObsFor func(gi int, g Group) *obs.Registry
	// Assignment overrides the plan's static grouping with an optimizer
	// result (its groups must partition the plan's classes).
	Assignment *Assignment
	// Tune enables the per-group (M, B, T) tuner: each group gateway gets a
	// decide function that ground-truth-searches the plan grid over the
	// group's recent interarrival window at the group SLO. TuneEvery > 0
	// also runs it periodically; with Tune alone, DecideNow drives it.
	Tune      bool
	TuneEvery time.Duration
	// Pct is the tuner's SLO percentile (0 = 95).
	Pct float64
	// WindowLen is the tuner's interarrival window length (0 = gateway
	// default).
	WindowLen int
	// EventCap bounds each group gateway's event stream (0 = default).
	EventCap int
}

// Fleet is the running multi-class front door: one sharded gateway per
// function group, a class-indexed router in front, and the per-group tuner
// behind. Create with New, stop with Stop.
type Fleet struct {
	plan    Plan
	assign  *Assignment
	gws     []*gateway.Gateway
	byClass []int          // class index -> group index
	names   map[string]int // class name -> class index
}

// New validates the plan and builds the fleet's group gateways. A 1-class
// plan builds exactly one gateway with exactly the class's configuration —
// bit-identical to constructing that gateway directly.
func New(p Plan, o Options) (*Fleet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	assign := o.Assignment
	if assign == nil {
		var err error
		if assign, err = StaticAssignment(p); err != nil {
			return nil, err
		}
	} else if err := checkAssignment(p, assign); err != nil {
		return nil, err
	}
	f := &Fleet{
		plan:    p,
		assign:  assign,
		byClass: assign.ByClass,
		names:   make(map[string]int, len(p.Classes)),
	}
	for i, c := range p.Classes {
		f.names[c.Name] = i
	}
	tune := o.Tune || o.TuneEvery > 0
	pct := o.Pct
	if pct <= 0 {
		pct = 95
	}
	grid := p.LambdaGrid()
	f.gws = make([]*gateway.Gateway, len(assign.Groups))
	for gi, grp := range assign.Groups {
		lead := leadOf(p, grp.Classes)
		spec := p.Classes[lead]
		var backend gateway.Backend
		if o.BackendFor != nil {
			backend = o.BackendFor(gi, grp)
		}
		if backend == nil {
			backend = gateway.SimulatedBackend{
				Profile: lambda.Profiles[grp.Profile],
				Pricing: spec.LambdaPricing(),
			}
		}
		var reg *obs.Registry
		if o.ObsFor != nil {
			reg = o.ObsFor(gi, grp)
		}
		var decide gateway.DecideFunc
		if tune {
			decide = tuner(lambda.Profiles[grp.Profile], spec.LambdaPricing(), grid, grp.SLO, pct)
		}
		g, err := gateway.New(backend, decide, gateway.Config{
			Initial:       grp.Config,
			SLO:           grp.SLO,
			DecideEvery:   o.TuneEvery,
			WindowLen:     o.WindowLen,
			Obs:           reg,
			EventCap:      o.EventCap,
			Clock:         o.Clock,
			Resilience:    spec.Resilience.Resilience(),
			Shards:        spec.Shards,
			VirtualTimers: o.VirtualTimers,
		})
		if err != nil {
			for _, built := range f.gws[:gi] {
				built.Stop()
			}
			return nil, fmt.Errorf("fleet: group %d: %w", gi, err)
		}
		f.gws[gi] = g
	}
	return f, nil
}

// tuner builds one group's fast-timescale decide function: a serial
// ground-truth grid search over the group's recent arrival window at the
// group's (strictest-member) SLO.
func tuner(profile lambda.Profile, pricing lambda.Pricing, grid lambda.Grid, slo, pct float64) gateway.DecideFunc {
	sim := qsim.New(profile, pricing)
	sim.Opts.Workers = 1
	return func(window []float64) (lambda.Config, error) {
		cfg, _, err := sim.GroundTruthBest(qsim.Timestamps(window), grid, slo, pct)
		return cfg, err
	}
}

// checkAssignment verifies an injected assignment partitions the plan's
// classes with consistent membership and per-group invariants.
func checkAssignment(p Plan, a *Assignment) error {
	if len(a.ByClass) != len(p.Classes) {
		return fmt.Errorf("fleet: assignment covers %d classes, plan has %d", len(a.ByClass), len(p.Classes))
	}
	seen := make([]bool, len(p.Classes))
	for gi, g := range a.Groups {
		if len(g.Classes) == 0 {
			return fmt.Errorf("fleet: assignment group %d is empty", gi)
		}
		if !g.Config.Valid() {
			return fmt.Errorf("fleet: assignment group %d has invalid config %s", gi, g.Config)
		}
		for _, ci := range g.Classes {
			if ci < 0 || ci >= len(p.Classes) {
				return fmt.Errorf("fleet: assignment group %d references class %d of %d", gi, ci, len(p.Classes))
			}
			if seen[ci] {
				return fmt.Errorf("fleet: class %q assigned twice", p.Classes[ci].Name)
			}
			seen[ci] = true
			if a.ByClass[ci] != gi {
				return fmt.Errorf("fleet: ByClass[%d] = %d, group %d claims it", ci, a.ByClass[ci], gi)
			}
			if p.Classes[ci].profileName() != g.Profile {
				return fmt.Errorf("fleet: class %q (profile %s) in a %s group",
					p.Classes[ci].Name, p.Classes[ci].profileName(), g.Profile)
			}
		}
	}
	for ci, ok := range seen {
		if !ok {
			return fmt.Errorf("fleet: class %q not assigned to any group", p.Classes[ci].Name)
		}
	}
	return nil
}

// Plan returns the fleet's plan.
func (f *Fleet) Plan() Plan { return f.plan }

// Assignment returns the grouping the fleet serves.
func (f *Fleet) Assignment() *Assignment { return f.assign }

// Classes returns the number of classes.
func (f *Fleet) Classes() int { return len(f.plan.Classes) }

// Groups returns the number of function groups (= gateways).
func (f *Fleet) Groups() int { return len(f.gws) }

// ClassIndex resolves a class name to its index (-1 when unknown).
func (f *Fleet) ClassIndex(name string) int {
	if i, ok := f.names[name]; ok {
		return i
	}
	return -1
}

// GroupOf returns the group index serving class.
func (f *Fleet) GroupOf(class int) int { return f.byClass[class] }

// GatewayFor returns the gateway serving class — the handle tests and
// drivers use for per-group stats, metrics, and breaker state.
func (f *Fleet) GatewayFor(class int) *gateway.Gateway {
	return f.gws[f.byClass[class]]
}

// GroupGateway returns the gi-th group's gateway.
func (f *Fleet) GroupGateway(gi int) *gateway.Gateway { return f.gws[gi] }

// Submit routes one request of the given class onto its group's pooled
// zero-alloc admit path. The caller must consume the handle via Wait. It
// panics on an out-of-range class index, like any slice access.
//
//deepbat:hotpath
func (f *Fleet) Submit(class int) gateway.Handle {
	return f.gws[f.byClass[class]].Submit()
}

// Do submits one request of the given class and waits for its response.
//
//deepbat:hotpath
func (f *Fleet) Do(class int) gateway.Response {
	return f.Submit(class).Wait()
}

// Enqueue routes one request on the channel-per-request path (the HTTP
// handler's contract).
func (f *Fleet) Enqueue(class int) <-chan gateway.Response {
	return f.gws[f.byClass[class]].Enqueue()
}

// DecideNow forces one synchronous tuner decision on every group, in group
// order — the deterministic way to drive the fast timescale.
func (f *Fleet) DecideNow() {
	for _, g := range f.gws {
		g.DecideNow()
	}
}

// Apply pushes an optimizer assignment with the SAME grouping onto the
// running fleet: each group gateway is reconfigured to the new group config.
// A changed grouping needs a rebuild (gateways own their batch queues), so
// it is rejected.
func (f *Fleet) Apply(a *Assignment) error {
	if len(a.Groups) != len(f.assign.Groups) {
		return errors.New("fleet: assignment grouping changed; rebuild the fleet")
	}
	for gi, g := range a.Groups {
		cur := f.assign.Groups[gi].Classes
		if len(g.Classes) != len(cur) {
			return errors.New("fleet: assignment grouping changed; rebuild the fleet")
		}
		for i, ci := range g.Classes {
			if ci != cur[i] {
				return errors.New("fleet: assignment grouping changed; rebuild the fleet")
			}
		}
	}
	for gi, g := range a.Groups {
		if err := f.gws[gi].Reconfigure(g.Config); err != nil {
			return fmt.Errorf("fleet: group %d: %w", gi, err)
		}
	}
	f.assign = a
	return nil
}

// NextFlushDeadline returns the earliest virtual batch-timeout deadline
// across every group's shards, for VirtualTimers drivers.
func (f *Fleet) NextFlushDeadline() (float64, bool) {
	min, ok := 0.0, false
	for _, g := range f.gws {
		if d, due := g.NextFlushDeadline(); due && (!ok || d < min) {
			min, ok = d, true
		}
	}
	return min, ok
}

// FlushDue dispatches every due virtual batch timeout, group by group in
// group order, and returns the number of batches flushed.
func (f *Fleet) FlushDue() int {
	n := 0
	for _, g := range f.gws {
		n += g.FlushDue()
	}
	return n
}

// Stop shuts every group gateway down, in group order. Idempotent.
func (f *Fleet) Stop() {
	for _, g := range f.gws {
		g.Stop()
	}
}

// Close is an alias for Stop.
func (f *Fleet) Close() { f.Stop() }

// GroupStats pairs one group's identity with its gateway stats.
type GroupStats struct {
	Classes []string      `json:"classes"`
	SLO     float64       `json:"slo_s"`
	Profile string        `json:"profile"`
	Config  lambda.Config `json:"config"`
	Stats   gateway.Stats `json:"stats"`
}

// Stats is the fleet-wide stats document: per-group breakdowns (in group
// order — a deterministic reduction) plus cross-group totals.
type Stats struct {
	Groups         []GroupStats `json:"groups"`
	Served         int          `json:"served"`
	FailedRequests int          `json:"failed_requests"`
	TotalCostUSD   float64      `json:"total_cost_usd"`
}

// Stats merges every group's stats in group order.
func (f *Fleet) Stats() Stats {
	var out Stats
	for gi, g := range f.gws {
		grp := f.assign.Groups[gi]
		names := make([]string, len(grp.Classes))
		for i, ci := range grp.Classes {
			names[i] = f.plan.Classes[ci].Name
		}
		st := g.Stats()
		out.Groups = append(out.Groups, GroupStats{
			Classes: names,
			SLO:     grp.SLO,
			Profile: grp.Profile,
			Config:  g.Config(),
			Stats:   st,
		})
		out.Served += st.Served
		out.FailedRequests += st.FailedRequests
		out.TotalCostUSD += st.TotalCostUSD
	}
	return out
}

// Handler returns the fleet's HTTP front door:
//
//	POST /infer?class=<name>   route one request to its class's group
//	GET  /stats                the fleet Stats document
//	GET  /config               per-group serving configurations
//	GET  /metrics?group=<i>    one group's Prometheus exposition
//	GET  /metrics.json?group=<i>  one group's JSON snapshot + events
//
// The group parameter defaults to 0 — for a 1-class plan the endpoints read
// exactly like the single gateway's.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", f.handleInfer)
	mux.HandleFunc("/stats", f.handleStats)
	mux.HandleFunc("/config", f.handleConfig)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/metrics.json", f.handleMetricsJSON)
	return mux
}

func (f *Fleet) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("class")
	class := 0
	if name != "" {
		class = f.ClassIndex(name)
		if class < 0 {
			http.Error(w, "unknown class "+strconv.Quote(name), http.StatusNotFound)
			return
		}
	} else if len(f.plan.Classes) > 1 {
		http.Error(w, "class parameter required", http.StatusBadRequest)
		return
	}
	done := f.Enqueue(class)
	select {
	case resp := <-done:
		w.Header().Set("Content-Type", "application/json")
		switch resp.Error {
		case "":
		case gateway.ErrDeadlineExceeded.Error():
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			w.WriteHeader(http.StatusBadGateway)
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			return // response already committed
		}
	case <-r.Context().Done():
		http.Error(w, "client cancelled", http.StatusRequestTimeout)
	}
}

func (f *Fleet) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(f.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (f *Fleet) handleConfig(w http.ResponseWriter, r *http.Request) {
	configs := make([]lambda.Config, len(f.gws))
	for gi, g := range f.gws {
		configs[gi] = g.Config()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(configs); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// groupParam resolves the ?group= query (default 0).
func (f *Fleet) groupParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("group")
	if q == "" {
		return 0, nil
	}
	gi, err := strconv.Atoi(q)
	if err != nil || gi < 0 || gi >= len(f.gws) {
		return 0, fmt.Errorf("bad group %q (have %d groups)", q, len(f.gws))
	}
	return gi, nil
}

func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gi, err := f.groupParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := f.gws[gi].Obs().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (f *Fleet) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	gi, err := f.groupParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Metrics obs.Snapshot `json:"metrics"`
		Events  []obs.Event  `json:"events"`
	}{Metrics: f.gws[gi].Obs().Snapshot(), Events: f.gws[gi].Events().Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
