// Package fleet serves N model classes, each with its own service-time
// profile, SLO, and traffic stream, behind one demultiplexing front door —
// the ROADMAP's fleet gateway. A Plan declares the classes; New builds one
// sharded gateway per function group (classes the optimizer or the plan
// packed together) and routes each request to its class's group, keeping the
// zero-alloc Submit hot path of the single gateway intact. A 1-class plan is
// byte-identical to a bare gateway — the golden tests pin that bit for bit.
//
// Above the per-group fast paths sits the two-timescale controller the
// InferLine split suggests: a slow planner (Optimize, the HarmonyBatch-style
// SLO-merging pass in optimizer.go) decides the grouping offline, and a fast
// per-group tuner re-searches (M, B, T) on the control timescale against the
// group's recent arrival window.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
)

// ConfigSpec is a serving configuration in plan-file form.
type ConfigSpec struct {
	MemoryMB  float64 `json:"memory_mb"`
	BatchSize int     `json:"batch_size"`
	TimeoutS  float64 `json:"timeout_s,omitempty"`
}

// Config converts the spec to a lambda.Config.
func (c ConfigSpec) Config() lambda.Config {
	return lambda.Config{MemoryMB: c.MemoryMB, BatchSize: c.BatchSize, TimeoutS: c.TimeoutS}
}

// PricingSpec overrides the default AWS pricing for one class. All merged
// classes must share a pricing (a function group is billed one way).
type PricingSpec struct {
	PerRequestUSD      float64 `json:"per_request_usd"`
	PerGBSecondUSD     float64 `json:"per_gb_second_usd"`
	BillingGranularity float64 `json:"billing_granularity_s,omitempty"`
}

// Pricing converts the spec to a lambda.Pricing.
func (p PricingSpec) Pricing() lambda.Pricing {
	return lambda.Pricing{
		PerRequestUSD:      p.PerRequestUSD,
		PerGBSecondUSD:     p.PerGBSecondUSD,
		BillingGranularity: p.BillingGranularity,
	}
}

// ResilienceSpec is gateway.Resilience in plan-file form: durations in
// milliseconds, and the backoff-jitter PRNG named by seed so every build of
// the plan constructs an identical one.
type ResilienceSpec struct {
	MaxRetries       int         `json:"max_retries,omitempty"`
	RetryBaseMS      float64     `json:"retry_base_ms,omitempty"`
	RetryMaxMS       float64     `json:"retry_max_ms,omitempty"`
	JitterSeed       int64       `json:"jitter_seed,omitempty"`
	RequestTimeoutS  float64     `json:"request_timeout_s,omitempty"`
	BreakerThreshold int         `json:"breaker_threshold,omitempty"`
	BreakerCooldownS float64     `json:"breaker_cooldown_s,omitempty"`
	Fallback         *ConfigSpec `json:"fallback,omitempty"`
}

// Resilience builds the gateway.Resilience the spec describes. A non-zero
// JitterSeed seeds a fresh backoff-jitter PRNG, exactly as the chaos harness
// does, so same-plan runs stay bit-identical.
func (r *ResilienceSpec) Resilience() gateway.Resilience {
	if r == nil {
		return gateway.Resilience{}
	}
	out := gateway.Resilience{
		MaxRetries:       r.MaxRetries,
		RetryBase:        time.Duration(r.RetryBaseMS * float64(time.Millisecond)),
		RetryMax:         time.Duration(r.RetryMaxMS * float64(time.Millisecond)),
		RequestTimeoutS:  r.RequestTimeoutS,
		BreakerThreshold: r.BreakerThreshold,
		BreakerCooldownS: r.BreakerCooldownS,
	}
	if r.JitterSeed != 0 {
		out.Jitter = rand.New(rand.NewSource(r.JitterSeed))
	}
	if r.Fallback != nil {
		out.Fallback = r.Fallback.Config()
	}
	return out
}

// ClassSpec declares one model class of the fleet.
type ClassSpec struct {
	// Name labels the class; requests route by it. Unique, non-empty.
	Name string `json:"name"`
	// Profile names the service-time profile in lambda.Profiles
	// ("" = nlp-base, the default profile).
	Profile string `json:"profile,omitempty"`
	// SLO is the class's latency objective in seconds (> 0).
	SLO float64 `json:"slo_s"`
	// Initial is the serving configuration before any tuning
	// (nil = 2048 MB, B=4, T=0.1 s, the replay default).
	Initial *ConfigSpec `json:"initial,omitempty"`
	// Shards is the class gateway's batcher shard count (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// RateRPS is the class's mean arrival rate — the arrival source the
	// fleet load generator drives (0 = no synthetic stream).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// MergeWith statically packs this class onto the named class's function
	// group (chains allowed; cycles are invalid). The optimizer's merge
	// pass can pack further when Plan.Merge is set.
	MergeWith string `json:"merge_with,omitempty"`
	// Pricing overrides the AWS default pricing (merged classes must agree).
	Pricing *PricingSpec `json:"pricing,omitempty"`
	// Resilience configures retries/deadline/breaker for the class's group
	// (the group adopts its strictest-SLO member's resilience).
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
}

// profileName resolves the class's profile key.
func (c ClassSpec) profileName() string {
	if c.Profile == "" {
		return "nlp-base"
	}
	return c.Profile
}

// LambdaProfile returns the class's service-time profile.
func (c ClassSpec) LambdaProfile() lambda.Profile {
	return lambda.Profiles[c.profileName()]
}

// LambdaPricing returns the class's pricing (default AWS when unset).
func (c ClassSpec) LambdaPricing() lambda.Pricing {
	if c.Pricing != nil {
		return c.Pricing.Pricing()
	}
	return lambda.DefaultPricing()
}

// InitialConfig returns the class's starting configuration.
func (c ClassSpec) InitialConfig() lambda.Config {
	if c.Initial != nil {
		return c.Initial.Config()
	}
	return lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.1}
}

// GridSpec is the candidate (M, B, T) space in plan-file form.
type GridSpec struct {
	Memories  []float64 `json:"memories_mb"`
	Batches   []int     `json:"batches"`
	TimeoutsS []float64 `json:"timeouts_s"`
}

// Grid converts the spec to a lambda.Grid.
func (g GridSpec) Grid() lambda.Grid {
	return lambda.Grid{Memories: g.Memories, Batches: g.Batches, TimeoutsS: g.TimeoutsS}
}

// Plan is the fleet declaration: the classes to serve, whether the optimizer
// may merge SLO-compatible classes onto shared function groups, and the
// candidate configuration grid the searches run over.
type Plan struct {
	Classes []ClassSpec `json:"classes"`
	// Merge enables the HarmonyBatch-style merging pass in Optimize.
	Merge bool `json:"merge,omitempty"`
	// Grid overrides lambda.DefaultGrid for the (M, B, T) searches.
	Grid *GridSpec `json:"grid,omitempty"`
}

// LambdaGrid returns the plan's search grid (the default when unset).
func (p Plan) LambdaGrid() lambda.Grid {
	if p.Grid != nil {
		return p.Grid.Grid()
	}
	return lambda.DefaultGrid()
}

// ClassIndex returns the index of the named class, or -1.
func (p Plan) ClassIndex(name string) int {
	for i, c := range p.Classes {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// finite rejects NaN and infinities in plan floats.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every plan invariant New and Optimize rely on: at least
// one class, unique non-empty names, positive finite SLOs, known profiles,
// valid configurations and grids, acyclic merge_with chains, and profile/
// pricing agreement inside every statically merged group.
func (p Plan) Validate() error {
	if len(p.Classes) == 0 {
		return errors.New("fleet: plan has no classes")
	}
	seen := make(map[string]int, len(p.Classes))
	for i, c := range p.Classes {
		if c.Name == "" {
			return fmt.Errorf("fleet: class %d has an empty name", i)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("fleet: duplicate class %q", c.Name)
		}
		seen[c.Name] = i
		if !finite(c.SLO) || c.SLO <= 0 {
			return fmt.Errorf("fleet: class %q has non-positive SLO %g", c.Name, c.SLO)
		}
		if _, ok := lambda.Profiles[c.profileName()]; !ok {
			return fmt.Errorf("fleet: class %q names unknown profile %q", c.Name, c.Profile)
		}
		if c.Initial != nil {
			cfg := c.Initial.Config()
			if !finite(cfg.MemoryMB) || !finite(cfg.TimeoutS) || !cfg.Valid() {
				return fmt.Errorf("fleet: class %q has invalid initial config %s", c.Name, cfg)
			}
		}
		if c.Shards < 0 {
			return fmt.Errorf("fleet: class %q has negative shard count", c.Name)
		}
		if !finite(c.RateRPS) || c.RateRPS < 0 {
			return fmt.Errorf("fleet: class %q has invalid rate %g", c.Name, c.RateRPS)
		}
		if r := c.Resilience; r != nil {
			if r.MaxRetries < 0 || r.BreakerThreshold < 0 ||
				!finite(r.RetryBaseMS) || r.RetryBaseMS < 0 ||
				!finite(r.RetryMaxMS) || r.RetryMaxMS < 0 ||
				!finite(r.RequestTimeoutS) || r.RequestTimeoutS < 0 ||
				!finite(r.BreakerCooldownS) || r.BreakerCooldownS < 0 {
				return fmt.Errorf("fleet: class %q has invalid resilience", c.Name)
			}
			if r.Fallback != nil {
				fb := r.Fallback.Config()
				if !finite(fb.MemoryMB) || !finite(fb.TimeoutS) || !fb.Valid() {
					return fmt.Errorf("fleet: class %q has invalid fallback config %s", c.Name, fb)
				}
			}
		}
		if pr := c.Pricing; pr != nil {
			if !finite(pr.PerRequestUSD) || pr.PerRequestUSD < 0 ||
				!finite(pr.PerGBSecondUSD) || pr.PerGBSecondUSD < 0 ||
				!finite(pr.BillingGranularity) || pr.BillingGranularity < 0 {
				return fmt.Errorf("fleet: class %q has invalid pricing", c.Name)
			}
		}
	}
	if p.Grid != nil {
		g := p.Grid
		if len(g.Memories) == 0 || len(g.Batches) == 0 || len(g.TimeoutsS) == 0 {
			return errors.New("fleet: plan grid has an empty dimension")
		}
		for _, m := range g.Memories {
			if !finite(m) || m < lambda.MinMemoryMB || m > lambda.MaxMemoryMB {
				return fmt.Errorf("fleet: grid memory %g outside the Lambda range", m)
			}
		}
		for _, b := range g.Batches {
			if b < 1 {
				return fmt.Errorf("fleet: grid batch size %d < 1", b)
			}
		}
		for _, t := range g.TimeoutsS {
			if !finite(t) || t < 0 {
				return fmt.Errorf("fleet: grid timeout %g < 0", t)
			}
		}
	}
	// Resolve every merge_with chain to its root, rejecting unknown targets,
	// self-references, and cycles, then check group-wide agreement.
	roots := make([]int, len(p.Classes))
	for i := range p.Classes {
		roots[i] = -1
	}
	var resolve func(i int, onPath map[int]bool) (int, error)
	resolve = func(i int, onPath map[int]bool) (int, error) {
		if roots[i] >= 0 {
			return roots[i], nil
		}
		target := p.Classes[i].MergeWith
		if target == "" {
			roots[i] = i
			return i, nil
		}
		j, ok := seen[target]
		if !ok {
			return -1, fmt.Errorf("fleet: class %q merges with unknown class %q", p.Classes[i].Name, target)
		}
		if j == i || onPath[j] {
			return -1, fmt.Errorf("fleet: merge_with cycle through class %q", p.Classes[i].Name)
		}
		onPath[i] = true
		root, err := resolve(j, onPath)
		if err != nil {
			return -1, err
		}
		roots[i] = root
		return root, nil
	}
	for i := range p.Classes {
		root, err := resolve(i, map[int]bool{})
		if err != nil {
			return err
		}
		if p.Classes[i].profileName() != p.Classes[root].profileName() {
			return fmt.Errorf("fleet: class %q (profile %s) cannot merge with %q (profile %s)",
				p.Classes[i].Name, p.Classes[i].profileName(),
				p.Classes[root].Name, p.Classes[root].profileName())
		}
		if !samePricing(p.Classes[i].Pricing, p.Classes[root].Pricing) {
			return fmt.Errorf("fleet: class %q cannot merge with %q: pricing differs",
				p.Classes[i].Name, p.Classes[root].Name)
		}
	}
	return nil
}

// samePricing reports whether two pricing specs describe the same billing.
func samePricing(a, b *PricingSpec) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return *a == *b
}

// StaticGroups partitions the class indices into the plan's merge_with
// units: classes that share a chain root form one group. Groups are ordered
// by their smallest member index; members are ascending. Call only on a
// validated plan (chains must resolve).
func (p Plan) StaticGroups() [][]int {
	seen := make(map[string]int, len(p.Classes))
	for i, c := range p.Classes {
		seen[c.Name] = i
	}
	root := func(i int) int {
		for p.Classes[i].MergeWith != "" {
			i = seen[p.Classes[i].MergeWith]
		}
		return i
	}
	byRoot := make(map[int][]int, len(p.Classes))
	var order []int
	for i := range p.Classes {
		r := root(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], i) // ascending: i increases
	}
	// Iterating i ascending makes each root's first appearance its group's
	// smallest member, so order is already by smallest member index.
	groups := make([][]int, 0, len(order))
	for _, r := range order {
		groups = append(groups, byRoot[r])
	}
	return groups
}

// ParsePlan decodes a plan file leniently (any JSON formatting, unknown
// fields rejected) and validates it — the CLI entry point.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fleet: decoding plan: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return Plan{}, errors.New("fleet: trailing data after plan document")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// DecodePlan is the canonical codec: it accepts exactly the bytes EncodePlan
// emits. Anything else — reordered keys, extra whitespace, duplicate keys,
// omitted-default fields spelled out — is rejected, so every accepted input
// re-encodes bit-identically (the FuzzPlanValidate contract, mirroring the
// tracev1 decoder).
func DecodePlan(data []byte) (Plan, error) {
	p, err := ParsePlan(data)
	if err != nil {
		return Plan{}, err
	}
	enc, err := EncodePlan(p)
	if err != nil {
		return Plan{}, err
	}
	if !bytes.Equal(enc, data) {
		return Plan{}, errors.New("fleet: plan document is not in canonical form")
	}
	return p, nil
}

// EncodePlan renders the canonical byte form of a plan: compact JSON with
// struct-order keys.
func EncodePlan(p Plan) ([]byte, error) {
	return json.Marshal(p)
}
