// The qsim-level multi-class coordinator, absorbed from the former
// internal/multiclass package: several model classes served side by side
// over one labeled stream, each with its own closed-loop engine — the MBS
// (Ali et al., VLDB'22) direction the paper cites. The Coordinator is the
// simulation-time counterpart of the Fleet front door: same demultiplexing,
// but over core.Engine replays instead of live gateways.
package fleet

import (
	"errors"
	"fmt"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/stats"
)

// Class describes one model class the Coordinator serves.
type Class struct {
	Name    string
	Profile lambda.Profile
	Pricing lambda.Pricing
	SLO     float64
	// Decider controls this class's configuration over time.
	Decider core.Decider
	// Options are this class's replay options (period, lookback, initial
	// config).
	Options core.ReplayOptions
}

// Request is one labeled arrival.
type Request struct {
	At    float64
	Class string
}

// ClassResult is the outcome for one class.
type ClassResult struct {
	Class  string
	Result *core.ReplayResult
}

// Summary aggregates a multi-class run.
type Summary struct {
	PerClass []ClassResult
	// Requests across all classes.
	Requests int
	// TotalCostUSD across all classes.
	TotalCostUSD float64
	// WorstVCR is the maximum per-class VCR (the binding SLO view).
	WorstVCR float64
	// MeanVCR is the request-weighted VCR across classes.
	MeanVCR float64
}

// Coordinator serves several classes over a mixed stream.
type Coordinator struct {
	classes map[string]Class
	order   []string
}

// NewCoordinator validates and registers the classes.
func NewCoordinator(classes []Class) (*Coordinator, error) {
	if len(classes) == 0 {
		return nil, errors.New("fleet: no classes")
	}
	c := &Coordinator{classes: make(map[string]Class, len(classes))}
	for _, cl := range classes {
		if cl.Name == "" {
			return nil, errors.New("fleet: class with empty name")
		}
		if _, dup := c.classes[cl.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate class %q", cl.Name)
		}
		if cl.Decider == nil {
			return nil, fmt.Errorf("fleet: class %q has no decider", cl.Name)
		}
		if !cl.Options.InitialConfig.Valid() {
			return nil, fmt.Errorf("fleet: class %q has invalid initial config", cl.Name)
		}
		if cl.SLO <= 0 {
			return nil, fmt.Errorf("fleet: class %q has non-positive SLO", cl.Name)
		}
		c.classes[cl.Name] = cl
		c.order = append(c.order, cl.Name)
	}
	return c, nil
}

// Split demultiplexes a labeled stream into per-class timestamp traces.
// Unknown class labels are reported as an error.
func (c *Coordinator) Split(reqs []Request) (map[string][]float64, error) {
	out := make(map[string][]float64, len(c.classes))
	for _, r := range reqs {
		if _, ok := c.classes[r.Class]; !ok {
			return nil, fmt.Errorf("fleet: unknown class %q", r.Class)
		}
		out[r.Class] = append(out[r.Class], r.At)
	}
	return out, nil
}

// Replay runs every class's closed loop over its share of the stream.
// Classes with no traffic are skipped.
func (c *Coordinator) Replay(reqs []Request) (*Summary, error) {
	if len(reqs) == 0 {
		return nil, errors.New("fleet: empty stream")
	}
	split, err := c.Split(reqs)
	if err != nil {
		return nil, err
	}
	sum := &Summary{}
	var weighted float64
	for _, name := range c.order {
		arrivals := split[name]
		if len(arrivals) == 0 {
			continue
		}
		cl := c.classes[name]
		eng := core.NewEngine(qsim.New(cl.Profile, cl.Pricing))
		opts := cl.Options
		opts.SLO = cl.SLO
		res, err := eng.Replay(arrivals, cl.Decider, opts)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %q: %w", name, err)
		}
		sum.PerClass = append(sum.PerClass, ClassResult{Class: name, Result: res})
		n := len(res.Latencies())
		sum.Requests += n
		sum.TotalCostUSD += res.TotalCost()
		vcr := res.VCR()
		if vcr > sum.WorstVCR {
			sum.WorstVCR = vcr
		}
		weighted += vcr * float64(n)
	}
	if sum.Requests == 0 {
		return nil, errors.New("fleet: no class received traffic")
	}
	sum.MeanVCR = weighted / float64(sum.Requests)
	return sum, nil
}

// CostPerRequest returns the overall average cost per request.
func (s *Summary) CostPerRequest() float64 {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalCostUSD / float64(s.Requests)
}

// ClassVCRs returns per-class (name, VCR) pairs in registration order.
func (s *Summary) ClassVCRs() map[string]float64 {
	out := make(map[string]float64, len(s.PerClass))
	for _, cr := range s.PerClass {
		out[cr.Class] = cr.Result.VCR()
	}
	return out
}

// MixStreams interleaves per-class timestamp traces into one labeled stream
// sorted by arrival time (a helper for building multi-class workloads from
// the single-class generators).
func MixStreams(perClass map[string][]float64) []Request {
	var total int
	for _, ts := range perClass {
		total += len(ts)
	}
	out := make([]Request, 0, total)
	// k-way merge by repeated minimum over the class heads; class counts are
	// small so the simple scan is fine.
	heads := make(map[string]int, len(perClass))
	for len(out) < total {
		bestClass := ""
		bestTS := 0.0
		for name, ts := range perClass {
			i := heads[name]
			if i >= len(ts) {
				continue
			}
			if bestClass == "" || ts[i] < bestTS {
				bestClass, bestTS = name, ts[i]
			}
		}
		out = append(out, Request{At: bestTS, Class: bestClass})
		heads[bestClass]++
	}
	return out
}

// VCRTable renders a compact per-class summary for logs.
func (s *Summary) VCRTable() string {
	out := ""
	for _, cr := range s.PerClass {
		res := cr.Result
		out += fmt.Sprintf("%-12s requests=%-7d VCR=%6.2f%%  P95=%6.1fms  cost=%.3fu$/req\n",
			cr.Class, len(res.Latencies()), res.VCR(), p95(res)*1000,
			res.CostPerRequest()*1e6)
	}
	return out
}

func p95(res *core.ReplayResult) float64 {
	v, err := stats.Percentile(res.Latencies(), 95)
	if err != nil {
		return 0
	}
	return v
}
