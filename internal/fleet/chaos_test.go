// Fleet fault-isolation chaos scenarios: one class's backend melts down and
// only that class's group reacts — sibling classes' breakers stay closed
// and their entire observable series (snapshot + events) are byte-for-byte
// what they would have been with no storm anywhere. `make chaos` runs these
// under -race.
package fleet_test

import (
	"bytes"
	"testing"

	"deepbat/internal/fault"
	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

// isolationPlan is the 2-class fleet under test: a strict class that will
// take the storm and a relaxed sibling on its own group (no merge groups, so
// the static assignment keeps them apart).
func isolationPlan() fleet.Plan {
	one := &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 1}
	return fleet.Plan{Classes: []fleet.ClassSpec{
		{
			Name: "strict", SLO: 0.1, Initial: one, Shards: 1,
			Resilience: &fleet.ResilienceSpec{BreakerThreshold: 2, BreakerCooldownS: 1000},
		},
		{
			Name: "relaxed", SLO: 0.5, Initial: one, Shards: 1,
		},
	}}
}

// runIsolation drives the isolation plan on a manual clock. With storm set,
// the strict class's group serves from an always-failing backend; the
// relaxed class's backend is clean either way. Returns the fleet after Stop
// plus the relaxed group's snapshot and event bytes.
func runIsolation(t *testing.T, storm bool) (*fleet.Fleet, []byte, []byte) {
	t.Helper()
	clock := &obs.ManualClock{}
	p := isolationPlan()
	f, err := fleet.New(p, fleet.Options{
		Clock: clock,
		BackendFor: func(gi int, g fleet.Group) gateway.Backend {
			clean := gateway.SimulatedBackend{
				Profile: lambda.DefaultProfile(),
				Pricing: lambda.DefaultPricing(),
			}
			if storm && p.Classes[g.Classes[0]].Name == "strict" {
				return &fault.FaultyBackend{
					Inner:   clean,
					Inj:     fault.NewInjector(fault.Plan{Seed: 1, ErrorRate: 1}),
					Pricing: func() *lambda.Pricing { pr := lambda.DefaultPricing(); return &pr }(),
				}
			}
			return clean
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, relaxed := f.ClassIndex("strict"), f.ClassIndex("relaxed")
	// Interleave the two classes' traffic so any cross-group leak would land
	// inside the relaxed class's recorded series.
	for i := 0; i < 10; i++ {
		clock.Advance(0.01)
		a := f.Enqueue(strict)
		b := f.Enqueue(relaxed)
		<-a
		<-b
	}
	f.Stop()
	var snap, ev bytes.Buffer
	rg := f.GatewayFor(relaxed)
	if err := rg.Obs().WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if err := rg.Events().WriteEventsJSON(&ev); err != nil {
		t.Fatal(err)
	}
	return f, snap.Bytes(), ev.Bytes()
}

// TestFleetChaosIsolation asserts the blast radius of a backend error storm
// is exactly one function group: the strict class's breaker opens and its
// requests fail, while the relaxed class serves everything breaker-closed.
func TestFleetChaosIsolation(t *testing.T) {
	f, _, _ := runIsolation(t, true)
	strict, relaxed := f.ClassIndex("strict"), f.ClassIndex("relaxed")

	sg := f.GatewayFor(strict)
	if got := sg.Breaker(); got != gateway.BreakerOpen {
		t.Errorf("strict breaker = %v, want open", got)
	}
	if st := sg.Stats(); st.FailedRequests == 0 || st.Served != 0 {
		t.Errorf("strict stats = %+v, want all requests failed", st)
	}

	rg := f.GatewayFor(relaxed)
	if got := rg.Breaker(); got != gateway.BreakerClosed {
		t.Errorf("relaxed breaker = %v, want closed", got)
	}
	if st := rg.Stats(); st.Served != 10 || st.FailedRequests != 0 {
		t.Errorf("relaxed stats = %+v, want 10 served, 0 failed", st)
	}

	// The fleet-wide stats document folds both groups.
	fs := f.Stats()
	if fs.Served != 10 || fs.FailedRequests == 0 {
		t.Errorf("fleet stats = %+v, want 10 served and the storm's failures", fs)
	}
}

// TestFleetChaosSiblingBytesUnchanged asserts the stronger isolation
// property: the relaxed class's full metric snapshot and event stream are
// byte-identical whether or not its sibling class is storming — its
// latency/goodput series cannot even see the storm.
func TestFleetChaosSiblingBytesUnchanged(t *testing.T) {
	_, stormSnap, stormEv := runIsolation(t, true)
	_, calmSnap, calmEv := runIsolation(t, false)
	if !bytes.Equal(stormSnap, calmSnap) {
		t.Errorf("relaxed snapshot changed under sibling storm:\n storm: %s\n calm: %s", stormSnap, calmSnap)
	}
	if !bytes.Equal(stormEv, calmEv) {
		t.Errorf("relaxed events changed under sibling storm:\n storm: %s\n calm: %s", stormEv, calmEv)
	}
}

// TestFleetChaosDeterministic runs the storm scenario twice and requires
// bit-identical observability from both groups — the fleet analogue of
// faulttest.AssertDeterministic.
func TestFleetChaosDeterministic(t *testing.T) {
	run := func() [][]byte {
		f, relSnap, relEv := runIsolation(t, true)
		var snap, ev bytes.Buffer
		sg := f.GatewayFor(f.ClassIndex("strict"))
		if err := sg.Obs().WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		if err := sg.Events().WriteEventsJSON(&ev); err != nil {
			t.Fatal(err)
		}
		return [][]byte{relSnap, relEv, snap.Bytes(), ev.Bytes()}
	}
	a, b := run(), run()
	labels := []string{"relaxed snapshot", "relaxed events", "strict snapshot", "strict events"}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("%s differs across same-seed runs:\n%s\n%s", labels[i], a[i], b[i])
		}
	}
}

// TestFleetChaosFallbackKeepsServing covers the breaker's fallback path in
// fleet context: with a fallback configuration the storming group keeps
// answering (degraded) instead of shedding, and the sibling still cannot
// tell.
func TestFleetChaosFallbackKeepsServing(t *testing.T) {
	clock := &obs.ManualClock{}
	p := isolationPlan()
	p.Classes[0].Resilience.Fallback = &fleet.ConfigSpec{MemoryMB: 1024, BatchSize: 1}
	// Storm for 2 requests (opens the breaker), then recover.
	script := []fault.Outcome{{Err: true}, {Err: true}}
	f, err := fleet.New(p, fleet.Options{
		Clock: clock,
		BackendFor: func(gi int, g fleet.Group) gateway.Backend {
			clean := gateway.SimulatedBackend{
				Profile: lambda.DefaultProfile(),
				Pricing: lambda.DefaultPricing(),
			}
			if p.Classes[g.Classes[0]].Name == "strict" {
				return &fault.FaultyBackend{
					Inner:   clean,
					Inj:     fault.NewInjector(fault.Plan{Script: script}),
					Pricing: func() *lambda.Pricing { pr := lambda.DefaultPricing(); return &pr }(),
				}
			}
			return clean
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	strict := f.ClassIndex("strict")
	for i := 0; i < 4; i++ {
		clock.Advance(0.01)
		<-f.Enqueue(strict)
	}
	f.Stop()
	st := f.GatewayFor(strict).Stats()
	if st.Served == 0 {
		t.Errorf("strict stats = %+v, want fallback serving after the breaker opened", st)
	}
	if st.BreakerOpens == 0 {
		t.Errorf("strict stats = %+v, want at least one breaker open", st)
	}
}
