// The fleet planner: per-unit ground-truth (M, B, T) search plus the
// HarmonyBatch-style merging pass. The planner runs on the slow timescale
// (offline, or between replan epochs); the per-group tuner in fleet.go
// re-searches (M, B, T) alone on the fast timescale.
package fleet

import (
	"errors"
	"fmt"
	"sort"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
)

// Group is one function group of an assignment: the classes packed onto it,
// the SLO it serves (its strictest member's), and the configuration the
// search chose for the merged arrival stream.
type Group struct {
	// Classes holds the member class indices, ascending.
	Classes []int `json:"classes"`
	// SLO is the group's serving objective: the strictest member SLO.
	SLO float64 `json:"slo_s"`
	// Profile is the shared service-time profile of the members.
	Profile string `json:"profile"`
	// Config is the group's serving configuration.
	Config lambda.Config `json:"config"`
	// PredictedCostUSD is the qsim-predicted cost of serving the group's
	// merged window under Config (0 for idle or unoptimized groups).
	PredictedCostUSD float64 `json:"predicted_cost_usd"`
	// Feasible reports whether Config met the group SLO at the planning
	// percentile over the merged window.
	Feasible bool `json:"feasible"`
}

// Assignment maps every class onto a function group.
type Assignment struct {
	Groups []Group `json:"groups"`
	// ByClass[i] is the group index serving class i.
	ByClass []int `json:"by_class"`
	// SplitCostUSD is the predicted total cost with every unit on its own
	// group (the per-class-only optimum the merge pass must beat).
	SplitCostUSD float64 `json:"split_cost_usd"`
	// MergedCostUSD is the predicted total cost of the final groups.
	MergedCostUSD float64 `json:"merged_cost_usd"`
}

// OptimizerConfig parameterizes Optimize.
type OptimizerConfig struct {
	// Grid overrides the plan's search grid when non-empty.
	Grid lambda.Grid
	// Pct is the latency percentile SLOs are enforced at (0 = 95).
	Pct float64
	// Workers bounds each grid search's parallel fan-out (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical at any value.
	Workers int
}

func (oc OptimizerConfig) pct() float64 {
	if oc.Pct > 0 {
		return oc.Pct
	}
	return 95
}

func (oc OptimizerConfig) grid(p Plan) lambda.Grid {
	if oc.Grid.Size() > 0 {
		return oc.Grid
	}
	return p.LambdaGrid()
}

// unit is one atomic merge unit during planning: a static group with its
// solo search outcome.
type unit struct {
	members  []int
	arrivals []float64
	slo      float64
	profile  string
	pricing  lambda.Pricing
	cfg      lambda.Config
	cost     float64
	feasible bool
	idle     bool
}

// StaticAssignment builds the assignment New uses when no optimizer ran:
// the plan's static merge units, each serving its strictest member's SLO
// under its strictest member's initial configuration.
func StaticAssignment(p Plan) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Assignment{ByClass: make([]int, len(p.Classes))}
	for gi, members := range p.StaticGroups() {
		lead := leadOf(p, members)
		a.Groups = append(a.Groups, Group{
			Classes: members,
			SLO:     p.Classes[lead].SLO,
			Profile: p.Classes[lead].profileName(),
			Config:  p.Classes[lead].InitialConfig(),
		})
		for _, ci := range members {
			a.ByClass[ci] = gi
		}
	}
	return a, nil
}

// leadOf returns the strictest-SLO member (ties to the lowest index).
func leadOf(p Plan, members []int) int {
	lead := members[0]
	for _, ci := range members[1:] {
		if p.Classes[ci].SLO < p.Classes[lead].SLO {
			lead = ci
		}
	}
	return lead
}

// mergeSorted merges two nondecreasing timestamp slices, ties keeping a's
// element first — a pure, order-deterministic reduction.
func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Optimize searches the grid per merge unit and, when the plan allows,
// greedily packs SLO-compatible units onto shared function groups. windows
// holds one nondecreasing absolute-timestamp arrival window per class (empty
// = idle class). A merge is accepted only when the merged group's best
// configuration still meets the strictest member SLO at the planning
// percentile AND its predicted cost is strictly below the sum of the split
// groups' predicted costs — otherwise the units stay apart. The result is a
// pure function of (plan, windows, config) at any Workers value.
func Optimize(p Plan, windows [][]float64, oc OptimizerConfig) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(windows) != len(p.Classes) {
		return nil, fmt.Errorf("fleet: Optimize got %d windows for %d classes", len(windows), len(p.Classes))
	}
	grid := oc.grid(p)
	if grid.Size() == 0 {
		return nil, errors.New("fleet: empty search grid")
	}
	pct := oc.pct()

	// Phase 1: solo search per static unit.
	units := make([]*unit, 0, len(p.Classes))
	for _, members := range p.StaticGroups() {
		lead := leadOf(p, members)
		u := &unit{
			members: members,
			slo:     p.Classes[lead].SLO,
			profile: p.Classes[lead].profileName(),
			pricing: p.Classes[lead].LambdaPricing(),
			cfg:     p.Classes[lead].InitialConfig(),
		}
		for _, ci := range members {
			u.arrivals = mergeSorted(u.arrivals, windows[ci])
		}
		if len(u.arrivals) == 0 {
			u.idle = true
			u.feasible = true
			units = append(units, u)
			continue
		}
		sim := qsim.New(lambda.Profiles[u.profile], u.pricing)
		sim.Opts.Workers = oc.Workers
		cfg, res, err := sim.GroundTruthBest(u.arrivals, grid, u.slo, pct)
		if err != nil {
			return nil, fmt.Errorf("fleet: unit search: %w", err)
		}
		u.cfg = cfg
		u.cost = res.TotalCost
		u.feasible = res.LatencyPercentile(pct) <= u.slo
		units = append(units, u)
	}
	splitCost := 0.0
	for _, u := range units {
		splitCost += u.cost
	}

	// Phase 2: the merging pass. Units are visited strictest SLO first
	// (ties by first member), so a growing group's SLO — its strictest
	// member's — never tightens when a new unit joins it.
	groups := units
	if p.Merge && len(units) > 1 {
		order := make([]int, len(units))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ua, ub := units[order[a]], units[order[b]]
			if ua.slo < ub.slo {
				return true
			}
			if ub.slo < ua.slo {
				return false
			}
			return ua.members[0] < ub.members[0]
		})
		groups = make([]*unit, 0, len(units))
		for _, ui := range order {
			u := units[ui]
			merged := false
			if !u.idle && u.feasible {
				for _, g := range groups {
					if g.idle || !g.feasible || g.profile != u.profile || g.pricing != u.pricing {
						continue
					}
					arrivals := mergeSorted(g.arrivals, u.arrivals)
					sim := qsim.New(lambda.Profiles[g.profile], g.pricing)
					sim.Opts.Workers = oc.Workers
					cfg, res, err := sim.GroundTruthBest(arrivals, grid, g.slo, pct)
					if err != nil {
						return nil, fmt.Errorf("fleet: merge search: %w", err)
					}
					if res.LatencyPercentile(pct) > g.slo || res.TotalCost >= g.cost+u.cost {
						continue
					}
					g.members = append(g.members, u.members...)
					g.arrivals = arrivals
					g.cfg = cfg
					g.cost = res.TotalCost
					merged = true
					break
				}
			}
			if !merged {
				groups = append(groups, u)
			}
		}
	}

	// Assemble in first-member order with ascending members per group.
	for _, g := range groups {
		sort.Ints(g.members)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].members[0] < groups[b].members[0] })
	a := &Assignment{ByClass: make([]int, len(p.Classes))}
	for gi, g := range groups {
		a.Groups = append(a.Groups, Group{
			Classes:          g.members,
			SLO:              g.slo,
			Profile:          g.profile,
			Config:           g.cfg,
			PredictedCostUSD: g.cost,
			Feasible:         g.feasible,
		})
		a.MergedCostUSD += g.cost
		for _, ci := range g.members {
			a.ByClass[ci] = gi
		}
	}
	a.SplitCostUSD = splitCost
	return a, nil
}
