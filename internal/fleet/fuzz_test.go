package fleet

import (
	"bytes"
	"testing"
)

// FuzzPlanValidate throws arbitrary bytes at the plan codec. Two properties
// hold for every input: ParsePlan/DecodePlan never panic (malformed plans —
// duplicate class names, non-positive SLOs, empty grids, merge-group cycles,
// unknown fields, trailing garbage — fail with an error), and any input
// DecodePlan accepts re-encodes bit-identically through EncodePlan, i.e. the
// canonical decoder's accepted language is exactly the canonical encoding.
// Wired into `make fuzz`.
func FuzzPlanValidate(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"classes":[]}`))
	// Valid canonical plans (compact json.Marshal output).
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1}]}`))
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1},{"name":"b","slo_s":0.5,"merge_with":"a"}],"merge":true}`))
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1,"initial":{"memory_mb":2048,"batch_size":4,"timeout_s":0.1},"shards":2,"rate_rps":100}],"grid":{"memories_mb":[1024,2048],"batches":[1,4],"timeouts_s":[0.05,0.1]}}`))
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.2,"resilience":{"max_retries":2,"retry_base_ms":1,"retry_max_ms":4,"jitter_seed":1}},{"name":"b","slo_s":0.4,"pricing":{"per_request_usd":2e-7,"per_gb_second_usd":1.6e-5}}]}`))
	// The malformed shapes Validate must reject without panicking.
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1},{"name":"a","slo_s":0.2}]}`))                                   // duplicate name
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0}]}`))                                                              // non-positive SLO
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":-1}]}`))                                                             // negative SLO
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1}],"grid":{"memories_mb":[]}}`))                                  // empty grid dim
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1,"merge_with":"b"},{"name":"b","slo_s":0.2,"merge_with":"a"}]}`)) // merge cycle
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1,"merge_with":"a"}]}`))                                           // self-merge
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1,"profile":"nope"}]}`))                                           // unknown profile
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1}],"bogus":1}`))                                                  // unknown field
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":0.1}]} trailing`))                                                   // trailing data
	f.Add([]byte(`{"classes":[{"name":"a","slo_s":1e999}]}`))                                                          // non-finite SLO
	f.Fuzz(func(t *testing.T, data []byte) {
		// The lenient parser must never panic, whatever the bytes.
		if _, err := ParsePlan(data); err != nil {
			_ = err
		}
		// The canonical decoder accepts exactly its own encoding: anything it
		// admits must re-encode to the identical bytes.
		p, err := DecodePlan(data)
		if err != nil {
			return
		}
		again, err := EncodePlan(p)
		if err != nil {
			t.Fatalf("accepted plan failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("accepted plan does not round-trip:\n in: %s\nout: %s", data, again)
		}
	})
}
