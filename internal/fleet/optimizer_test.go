package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
)

// propGrid keeps the property sweep's grid searches fast while leaving the
// optimizer real choices on every axis.
var propGrid = lambda.Grid{
	Memories:  []float64{1024, 2048},
	Batches:   []int{1, 4, 8},
	TimeoutsS: []float64{0.05, 0.1},
}

// propPlan generates one random multi-SLO plan and its per-class Poisson
// windows from a pinned seed: 2-5 classes, SLOs drawn from a spread ladder,
// rates 20-100 rps over a 30 s window.
func propPlan(seed int64) (Plan, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	slos := []float64{0.15, 0.3, 0.6, 1.2}
	n := 2 + rng.Intn(4)
	p := Plan{Merge: true}
	windows := make([][]float64, n)
	for i := 0; i < n; i++ {
		p.Classes = append(p.Classes, ClassSpec{
			Name: fmt.Sprintf("c%d", i),
			SLO:  slos[rng.Intn(len(slos))],
		})
		rate := 20 + rng.Float64()*80
		for at := rng.ExpFloat64() / rate; at < 30; at += rng.ExpFloat64() / rate {
			windows[i] = append(windows[i], at)
		}
	}
	return p, windows
}

// TestOptimizeMergeProperty checks the merge pass's two acceptance
// invariants on a seed-pinned corpus of random plans:
//
//  1. SLO safety: every merged (multi-member) group serves at its strictest
//     member's SLO — the group SLO lower-bounds every member's, and
//     re-simulating the chosen config over the merged member windows meets
//     that SLO at p95.
//  2. Cost dominance: a merged group predicts strictly cheaper than the sum
//     of its members' solo groups, and the merged assignment's total never
//     exceeds the per-class-only (merge-off) total.
func TestOptimizeMergeProperty(t *testing.T) {
	oc := OptimizerConfig{Grid: propGrid, Workers: 1}
	mergedAny := false
	for seed := int64(1); seed <= 10; seed++ {
		p, windows := propPlan(seed)
		merged, err := Optimize(p, windows, oc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		splitPlan := p
		splitPlan.Merge = false
		split, err := Optimize(splitPlan, windows, oc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The split run is the per-class-only optimum: one group per class,
		// in class order.
		if len(split.Groups) != len(p.Classes) {
			t.Fatalf("seed %d: split run built %d groups for %d classes", seed, len(split.Groups), len(p.Classes))
		}
		if merged.MergedCostUSD > split.MergedCostUSD {
			t.Errorf("seed %d: merged total %.6g exceeds split total %.6g",
				seed, merged.MergedCostUSD, split.MergedCostUSD)
		}
		if merged.SplitCostUSD < split.MergedCostUSD || split.MergedCostUSD < merged.SplitCostUSD {
			t.Errorf("seed %d: SplitCostUSD %.6g disagrees with the merge-off run %.6g",
				seed, merged.SplitCostUSD, split.MergedCostUSD)
		}
		for gi, g := range merged.Groups {
			if len(g.Classes) < 2 {
				continue
			}
			mergedAny = true
			soloSum := 0.0
			var arrivals []float64
			for _, ci := range g.Classes {
				if p.Classes[ci].SLO < g.SLO {
					t.Errorf("seed %d group %d: SLO %.3g looser than member %q's %.3g",
						seed, gi, g.SLO, p.Classes[ci].Name, p.Classes[ci].SLO)
				}
				soloSum += split.Groups[ci].PredictedCostUSD
				arrivals = mergeSorted(arrivals, windows[ci])
			}
			if g.PredictedCostUSD >= soloSum {
				t.Errorf("seed %d group %d: merged cost %.6g not below solo sum %.6g",
					seed, gi, g.PredictedCostUSD, soloSum)
			}
			// Re-simulate the accepted config over the merged window: the
			// group must meet its SLO at the planning percentile.
			sim := qsim.New(lambda.Profiles[g.Profile], lambda.DefaultPricing())
			res, err := sim.Run(arrivals, g.Config)
			if err != nil {
				t.Fatalf("seed %d group %d: %v", seed, gi, err)
			}
			if p95 := res.LatencyPercentile(95); p95 > g.SLO {
				t.Errorf("seed %d group %d: merged p95 %.4gs violates group SLO %.3gs", seed, gi, p95, g.SLO)
			}
			if !g.Feasible {
				t.Errorf("seed %d group %d: merged group not marked feasible", seed, gi)
			}
		}
	}
	if !mergedAny {
		t.Fatal("property corpus never exercised a merge; grow the corpus")
	}
}

// TestOptimizeDeterministicAcrossWorkers pins the planner's byte-level
// determinism contract: the same plan and windows produce identical
// assignments at any Workers value.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	p, windows := propPlan(3)
	a1, err := Optimize(p, windows, OptimizerConfig{Grid: propGrid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a4, err := Optimize(p, windows, OptimizerConfig{Grid: propGrid, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(a1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := json.Marshal(a4)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b4) {
		t.Errorf("assignments differ across Workers:\n1: %s\n4: %s", b1, b4)
	}
}

// TestOptimizeIdleAndInfeasible covers the planner's edge units: an idle
// class (empty window) stays on its own initial-config group at zero cost,
// and idle units never merge.
func TestOptimizeIdleAndInfeasible(t *testing.T) {
	p := Plan{Merge: true, Classes: []ClassSpec{
		{Name: "busy", SLO: 0.3},
		{Name: "idle", SLO: 0.3},
	}}
	rng := rand.New(rand.NewSource(7))
	var w []float64
	for at := rng.ExpFloat64() / 50; at < 10; at += rng.ExpFloat64() / 50 {
		w = append(w, at)
	}
	a, err := Optimize(p, [][]float64{w, nil}, OptimizerConfig{Grid: propGrid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 2 {
		t.Fatalf("idle class merged: %d groups", len(a.Groups))
	}
	idle := a.Groups[a.ByClass[1]]
	if idle.PredictedCostUSD != 0 || !idle.Feasible {
		t.Errorf("idle group = %+v, want zero cost and feasible", idle)
	}
	if got, want := idle.Config, p.Classes[1].InitialConfig(); got != want {
		t.Errorf("idle group config = %v, want initial %v", got, want)
	}
}

// TestOptimizeWindowCountMismatch pins the argument contract.
func TestOptimizeWindowCountMismatch(t *testing.T) {
	p := Plan{Classes: []ClassSpec{{Name: "a", SLO: 0.1}}}
	if _, err := Optimize(p, nil, OptimizerConfig{Grid: propGrid}); err == nil {
		t.Fatal("want error for missing windows")
	}
}

// TestStaticAssignmentMergeWith verifies static merge_with chains collapse
// into one group serving the strictest member's SLO and config.
func TestStaticAssignmentMergeWith(t *testing.T) {
	p := Plan{Classes: []ClassSpec{
		{Name: "a", SLO: 0.4},
		{Name: "b", SLO: 0.1, MergeWith: "a"},
		{Name: "c", SLO: 0.2},
	}}
	a, err := StaticAssignment(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(a.Groups))
	}
	g := a.Groups[0]
	if len(g.Classes) != 2 || g.SLO != p.Classes[1].SLO {
		t.Errorf("merged static group = %+v, want classes [0 1] at b's SLO", g)
	}
	if a.ByClass[0] != a.ByClass[1] || a.ByClass[2] == a.ByClass[0] {
		t.Errorf("ByClass = %v, want a+b together, c apart", a.ByClass)
	}
}
