package fleet

import (
	"sort"
	"strings"
	"testing"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/trace"
)

func classOpts() core.ReplayOptions {
	return core.ReplayOptions{
		PeriodS:       10,
		DecideEvery:   1,
		LookbackS:     30,
		InitialConfig: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           0.1,
	}
}

func twoClasses() []Class {
	return []Class{
		{
			Name:    "speech",
			Profile: lambda.Profiles["nlp-base"],
			Pricing: lambda.DefaultPricing(),
			SLO:     0.1,
			Decider: core.StaticDecider{Cfg: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}},
			Options: classOpts(),
		},
		{
			Name:    "vision",
			Profile: lambda.Profiles["cnn-small"],
			Pricing: lambda.DefaultPricing(),
			SLO:     0.05,
			Decider: core.StaticDecider{Cfg: lambda.Config{MemoryMB: 1024, BatchSize: 2, TimeoutS: 0.02}},
			Options: classOpts(),
		},
	}
}

func labeledStream(t *testing.T) []Request {
	t.Helper()
	a := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 30, Seed: 41})
	b := trace.MustGenerate(trace.Spec{Name: "azure", Hours: 1, HourSeconds: 30, Seed: 42})
	return MixStreams(map[string][]float64{
		"speech": a.Timestamps,
		"vision": b.Timestamps,
	})
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil); err == nil {
		t.Fatal("expected error for no classes")
	}
	cls := twoClasses()
	cls[1].Name = cls[0].Name
	if _, err := NewCoordinator(cls); err == nil {
		t.Fatal("expected error for duplicate class")
	}
	cls = twoClasses()
	cls[0].Decider = nil
	if _, err := NewCoordinator(cls); err == nil {
		t.Fatal("expected error for missing decider")
	}
	cls = twoClasses()
	cls[0].Options.InitialConfig = lambda.Config{}
	if _, err := NewCoordinator(cls); err == nil {
		t.Fatal("expected error for invalid initial config")
	}
	cls = twoClasses()
	cls[0].SLO = 0
	if _, err := NewCoordinator(cls); err == nil {
		t.Fatal("expected error for zero SLO")
	}
	cls = twoClasses()
	cls[0].Name = ""
	if _, err := NewCoordinator(cls); err == nil {
		t.Fatal("expected error for empty name")
	}
}

func TestMixStreamsSorted(t *testing.T) {
	mixed := MixStreams(map[string][]float64{
		"a": {1, 3, 5},
		"b": {2, 4},
	})
	if len(mixed) != 5 {
		t.Fatalf("mixed length = %d", len(mixed))
	}
	if !sort.SliceIsSorted(mixed, func(i, j int) bool { return mixed[i].At < mixed[j].At }) {
		t.Fatalf("stream not sorted: %+v", mixed)
	}
	wantClasses := []string{"a", "b", "a", "b", "a"}
	for i, r := range mixed {
		if r.Class != wantClasses[i] {
			t.Fatalf("mixed[%d] = %+v, want class %s", i, r, wantClasses[i])
		}
	}
}

func TestSplitUnknownClass(t *testing.T) {
	c, err := NewCoordinator(twoClasses())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Split([]Request{{At: 1, Class: "nope"}}); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestReplayTwoClasses(t *testing.T) {
	c, err := NewCoordinator(twoClasses())
	if err != nil {
		t.Fatal(err)
	}
	stream := labeledStream(t)
	sum, err := c.Replay(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PerClass) != 2 {
		t.Fatalf("classes served = %d", len(sum.PerClass))
	}
	if sum.Requests != len(stream) {
		t.Fatalf("served %d of %d", sum.Requests, len(stream))
	}
	if sum.TotalCostUSD <= 0 || sum.CostPerRequest() <= 0 {
		t.Fatal("cost accounting broken")
	}
	vcrs := sum.ClassVCRs()
	if len(vcrs) != 2 {
		t.Fatalf("ClassVCRs = %v", vcrs)
	}
	if sum.WorstVCR < sum.MeanVCR-1e-9 {
		t.Fatalf("WorstVCR %v below MeanVCR %v", sum.WorstVCR, sum.MeanVCR)
	}
	table := sum.VCRTable()
	if !strings.Contains(table, "speech") || !strings.Contains(table, "vision") {
		t.Fatalf("VCRTable missing classes:\n%s", table)
	}
}

func TestReplayEmptyStream(t *testing.T) {
	c, err := NewCoordinator(twoClasses())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(nil); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestReplaySkipsIdleClasses(t *testing.T) {
	c, err := NewCoordinator(twoClasses())
	if err != nil {
		t.Fatal(err)
	}
	only := []Request{{At: 0.1, Class: "speech"}, {At: 0.2, Class: "speech"}}
	sum, err := c.Replay(only)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PerClass) != 1 || sum.PerClass[0].Class != "speech" {
		t.Fatalf("PerClass = %+v", sum.PerClass)
	}
}

func TestPerClassSLOsIndependent(t *testing.T) {
	// The vision class has a much tighter SLO; give it a deliberately slow
	// configuration and check its VCR rises while speech stays clean.
	cls := twoClasses()
	cls[1].Decider = core.StaticDecider{Cfg: lambda.Config{MemoryMB: 512, BatchSize: 16, TimeoutS: 0.2}}
	c, err := NewCoordinator(cls)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Replay(labeledStream(t))
	if err != nil {
		t.Fatal(err)
	}
	vcrs := sum.ClassVCRs()
	if vcrs["vision"] <= vcrs["speech"] {
		t.Fatalf("vision %v should violate more than speech %v", vcrs["vision"], vcrs["speech"])
	}
	if sum.WorstVCR != vcrs["vision"] {
		t.Fatalf("WorstVCR = %v, want vision's %v", sum.WorstVCR, vcrs["vision"])
	}
}
