// The 1-class bit-identity contract: a single-class fleet plan driven
// through the fleet front door must reproduce the single gateway's
// pre-shard golden bytes exactly — same obs snapshot, same event stream.
// The goldens live in internal/gateway/testdata/preshard/ and are the same
// files TestPreShardGoldenBytes pins; this test replays the same scenarios
// through fleet.Enqueue(0) instead of gateway.Enqueue().
package fleet_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"deepbat/internal/fault"
	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

// goldenStep mirrors faulttest.Step for the fleet drive loop.
type goldenStep struct {
	advanceS float64
	enqueue  int
	await    int
}

// goldenCase is one pre-shard golden scenario expressed as a 1-class plan.
type goldenCase struct {
	name  string
	plan  fault.Plan
	spec  fleet.ClassSpec
	steps []goldenStep
}

// goldenCases transliterates the gateway package's goldenScenarios: same
// fault scripts, same resilience knobs, same step schedules — the only
// change is that the configuration rides in a fleet.ClassSpec.
func goldenCases() []goldenCase {
	initial := &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 2, TimeoutS: 60}
	fallback := &fleet.ConfigSpec{MemoryMB: 1024, BatchSize: 1}
	one := &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 1}
	return []goldenCase{
		{
			name: "golden-retry-success",
			plan: fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}}},
			spec: fleet.ClassSpec{
				Name: "only", SLO: 0.1, Initial: initial, Shards: 1,
				Resilience: &fleet.ResilienceSpec{
					MaxRetries: 2, RetryBaseMS: 1, RetryMaxMS: 4, JitterSeed: 1,
				},
			},
			steps: []goldenStep{{enqueue: 2, await: 2}},
		},
		{
			name: "golden-breaker-lifecycle",
			plan: fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}, {}}},
			spec: fleet.ClassSpec{
				Name: "only", SLO: 0.1, Initial: one, Shards: 1,
				Resilience: &fleet.ResilienceSpec{
					BreakerThreshold: 2, BreakerCooldownS: 5, Fallback: fallback,
				},
			},
			steps: []goldenStep{
				{enqueue: 1, await: 1},
				{enqueue: 1, await: 1},
				{enqueue: 1, await: 1},
				{advanceS: 6, enqueue: 1, await: 1},
			},
		},
		{
			name: "golden-deadline-expiry",
			plan: fault.Plan{},
			spec: fleet.ClassSpec{
				Name: "only", SLO: 0.1, Initial: initial, Shards: 1,
				Resilience: &fleet.ResilienceSpec{RequestTimeoutS: 1},
			},
			steps: []goldenStep{
				{enqueue: 1},
				{advanceS: 2, enqueue: 1, await: 2},
			},
		},
		{
			name: "golden-mixed-chaos",
			plan: fault.Plan{
				Seed:            7,
				ErrorRate:       0.3,
				StragglerRate:   0.3,
				StragglerFactor: 3,
				ColdSpikeRate:   0.2,
				ColdSpikeS:      0.5,
			},
			spec: fleet.ClassSpec{
				Name: "only", SLO: 0.1, Initial: initial, Shards: 1,
				Resilience: &fleet.ResilienceSpec{
					MaxRetries: 5, RetryBaseMS: 0.1, RetryMaxMS: 1, JitterSeed: 99,
				},
			},
			steps: []goldenStep{
				{enqueue: 2, await: 2}, {enqueue: 2, await: 2},
				{advanceS: 0.5, enqueue: 2, await: 2}, {enqueue: 2, await: 2},
				{advanceS: 0.5, enqueue: 2, await: 2},
			},
		},
	}
}

// runGolden drives one golden case through a 1-class fleet and returns the
// group gateway's snapshot and event bytes.
func runGolden(t *testing.T, gc goldenCase) (snapshot, events []byte) {
	t.Helper()
	clock := &obs.ManualClock{}
	backend := &fault.FaultyBackend{
		Inner: gateway.SimulatedBackend{
			Profile: lambda.DefaultProfile(),
			Pricing: lambda.DefaultPricing(),
		},
		Inj:     fault.NewInjector(gc.plan),
		Pricing: func() *lambda.Pricing { p := lambda.DefaultPricing(); return &p }(),
	}
	f, err := fleet.New(fleet.Plan{Classes: []fleet.ClassSpec{gc.spec}}, fleet.Options{
		Clock:      clock,
		BackendFor: func(int, fleet.Group) gateway.Backend { return backend },
	})
	if err != nil {
		t.Fatalf("golden %q: %v", gc.name, err)
	}
	var queue []<-chan gateway.Response
	await := func(n int) {
		for i := 0; i < n; i++ {
			if len(queue) == 0 {
				t.Fatalf("golden %q: await with no outstanding requests", gc.name)
			}
			<-queue[0]
			queue = queue[1:]
		}
	}
	for _, st := range gc.steps {
		if st.advanceS > 0 {
			clock.Advance(st.advanceS)
		}
		for i := 0; i < st.enqueue; i++ {
			queue = append(queue, f.Enqueue(0))
		}
		await(st.await)
	}
	f.Stop()
	await(len(queue))
	var snap, ev bytes.Buffer
	if err := f.GroupGateway(0).Obs().WriteJSON(&snap); err != nil {
		t.Fatalf("golden %q: snapshot: %v", gc.name, err)
	}
	if err := f.GroupGateway(0).Events().WriteEventsJSON(&ev); err != nil {
		t.Fatalf("golden %q: events: %v", gc.name, err)
	}
	return snap.Bytes(), ev.Bytes()
}

// TestFleetSingleClassGoldenBytes replays every pre-shard golden scenario
// through a 1-class fleet and byte-compares the snapshot and event stream
// against the single gateway's golden captures. Any fleet-layer overhead —
// an extra metric, a changed default, an eager decide — fails this test.
func TestFleetSingleClassGoldenBytes(t *testing.T) {
	dir := filepath.Join("..", "gateway", "testdata", "preshard")
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			snap, ev := runGolden(t, gc)
			wantSnap, err := os.ReadFile(filepath.Join(dir, gc.name+".snapshot.json"))
			if err != nil {
				t.Fatalf("missing single-gateway golden: %v", err)
			}
			wantEv, err := os.ReadFile(filepath.Join(dir, gc.name+".events.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, wantSnap) {
				t.Errorf("fleet snapshot diverged from single-gateway bytes:\n got: %s\nwant: %s", snap, wantSnap)
			}
			if !bytes.Equal(ev, wantEv) {
				t.Errorf("fleet events diverged from single-gateway bytes:\n got: %s\nwant: %s", ev, wantEv)
			}
		})
	}
}
