package fleet_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

func twoClassPlan() fleet.Plan {
	one := &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 1}
	return fleet.Plan{Classes: []fleet.ClassSpec{
		{Name: "fast", SLO: 0.1, Initial: one, Shards: 1},
		{Name: "slow", SLO: 0.5, Initial: one, Shards: 1},
	}}
}

func TestFleetAccessorsAndRouting(t *testing.T) {
	clock := &obs.ManualClock{}
	p := twoClassPlan()
	f, err := fleet.New(p, fleet.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Classes() != 2 || f.Groups() != 2 {
		t.Fatalf("classes=%d groups=%d, want 2/2", f.Classes(), f.Groups())
	}
	if f.ClassIndex("fast") != 0 || f.ClassIndex("slow") != 1 || f.ClassIndex("nope") != -1 {
		t.Fatalf("ClassIndex routing broken: fast=%d slow=%d nope=%d",
			f.ClassIndex("fast"), f.ClassIndex("slow"), f.ClassIndex("nope"))
	}
	if f.GroupOf(0) == f.GroupOf(1) {
		t.Fatal("distinct classes share a group without merge_with")
	}
	if got := len(f.Plan().Classes); got != 2 {
		t.Fatalf("Plan() classes = %d", got)
	}
	if got := len(f.Assignment().Groups); got != 2 {
		t.Fatalf("Assignment() groups = %d", got)
	}
	if f.GatewayFor(0) != f.GroupGateway(f.GroupOf(0)) {
		t.Fatal("GatewayFor and GroupGateway disagree")
	}
	// Each routing path serves.
	clock.Advance(0.01)
	if resp := f.Submit(0).Wait(); resp.Error != "" {
		t.Fatalf("Submit: %v", resp.Error)
	}
	if resp := f.Do(1); resp.Error != "" {
		t.Fatalf("Do: %v", resp.Error)
	}
	if resp := <-f.Enqueue(0); resp.Error != "" {
		t.Fatalf("Enqueue: %v", resp.Error)
	}
	st := f.Stats()
	if st.Served != 3 || len(st.Groups) != 2 {
		t.Fatalf("Stats = %+v, want 3 served over 2 groups", st)
	}
}

func TestFleetApply(t *testing.T) {
	p := twoClassPlan()
	f, err := fleet.New(p, fleet.Options{Clock: &obs.ManualClock{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	next := *f.Assignment()
	next.Groups = append([]fleet.Group(nil), next.Groups...)
	next.Groups[0].Config = lambda.Config{MemoryMB: 3008, BatchSize: 4, TimeoutS: 0.05}
	if err := f.Apply(&next); err != nil {
		t.Fatal(err)
	}
	if got := f.GroupGateway(0).Config(); got != next.Groups[0].Config {
		t.Fatalf("group 0 config = %v, want %v", got, next.Groups[0].Config)
	}
	// A changed grouping must be rejected.
	regrouped := *f.Assignment()
	regrouped.Groups = []fleet.Group{{
		Classes: []int{0, 1}, SLO: 0.1, Profile: "nlp-base",
		Config: lambda.Config{MemoryMB: 2048, BatchSize: 1},
	}}
	regrouped.ByClass = []int{0, 0}
	if err := f.Apply(&regrouped); err == nil || !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("Apply with regrouping = %v, want rebuild error", err)
	}
}

func TestFleetTunerDecideNow(t *testing.T) {
	clock := &obs.ManualClock{}
	p := fleet.Plan{
		Classes: []fleet.ClassSpec{{
			Name: "only", SLO: 0.5, Shards: 1,
			Initial: &fleet.ConfigSpec{MemoryMB: 512, BatchSize: 1},
		}},
		Grid: &fleet.GridSpec{
			Memories:  []float64{1024, 2048},
			Batches:   []int{1, 4},
			TimeoutsS: []float64{0.05},
		},
	}
	f, err := fleet.New(p, fleet.Options{Clock: clock, Tune: true, WindowLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Feed the tuner a steady window, then force a decision: the grid search
	// must move the group off the deliberately bad initial config.
	for i := 0; i < 40; i++ {
		clock.Advance(0.02)
		if resp := f.Do(0); resp.Error != "" {
			t.Fatalf("serve: %v", resp.Error)
		}
	}
	f.DecideNow()
	got := f.GroupGateway(0).Config()
	if got.MemoryMB < 1024 {
		t.Fatalf("tuner left config at %v, want a grid member", got)
	}
}

func TestFleetRejectsBadAssignment(t *testing.T) {
	p := twoClassPlan()
	bad := &fleet.Assignment{
		Groups: []fleet.Group{{
			Classes: []int{0}, SLO: 0.1, Profile: "nlp-base",
			Config: lambda.Config{MemoryMB: 2048, BatchSize: 1},
		}},
		ByClass: []int{0},
	}
	if _, err := fleet.New(p, fleet.Options{Assignment: bad}); err == nil {
		t.Fatal("want error: assignment covers one of two classes")
	}
	dup := &fleet.Assignment{
		Groups: []fleet.Group{
			{Classes: []int{0, 0}, SLO: 0.1, Profile: "nlp-base", Config: lambda.Config{MemoryMB: 2048, BatchSize: 1}},
			{Classes: []int{1}, SLO: 0.5, Profile: "nlp-base", Config: lambda.Config{MemoryMB: 2048, BatchSize: 1}},
		},
		ByClass: []int{0, 1},
	}
	if _, err := fleet.New(p, fleet.Options{Assignment: dup}); err == nil {
		t.Fatal("want error: class assigned twice")
	}
	wrongProfile := &fleet.Assignment{
		Groups: []fleet.Group{
			{Classes: []int{0}, SLO: 0.1, Profile: "nlp-large", Config: lambda.Config{MemoryMB: 2048, BatchSize: 1}},
			{Classes: []int{1}, SLO: 0.5, Profile: "nlp-base", Config: lambda.Config{MemoryMB: 2048, BatchSize: 1}},
		},
		ByClass: []int{0, 1},
	}
	if _, err := fleet.New(p, fleet.Options{Assignment: wrongProfile}); err == nil {
		t.Fatal("want error: group profile disagrees with member")
	}
}

func TestFleetVirtualFlush(t *testing.T) {
	clock := &obs.ManualClock{}
	p := fleet.Plan{Classes: []fleet.ClassSpec{{
		Name: "only", SLO: 0.5, Shards: 1,
		Initial: &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.1},
	}}}
	f, err := fleet.New(p, fleet.Options{Clock: clock, VirtualTimers: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := f.Submit(0)
	d, ok := f.NextFlushDeadline()
	if !ok {
		t.Fatal("no flush deadline for an open partial batch")
	}
	clock.Set(d)
	if n := f.FlushDue(); n != 1 {
		t.Fatalf("FlushDue = %d, want 1", n)
	}
	if resp := h.Wait(); resp.Error != "" || resp.BatchSize != 1 {
		t.Fatalf("flushed response = %+v", resp)
	}
	if _, ok := f.NextFlushDeadline(); ok {
		t.Fatal("deadline still pending after flush")
	}
}

func TestFleetHandler(t *testing.T) {
	clock := &obs.ManualClock{}
	f, err := fleet.New(twoClassPlan(), fleet.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := post("/infer?class=fast"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/infer?class=fast = %d", resp.StatusCode)
	} else {
		var r gateway.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil || r.Error != "" {
			t.Fatalf("infer body: %+v err=%v", r, err)
		}
		resp.Body.Close()
	}
	if resp := post("/infer?class=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/infer unknown class = %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post("/infer"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/infer without class on multi-class fleet = %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := get("/infer?class=fast"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer = %d, want 405", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	if resp := get("/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats = %d", resp.StatusCode)
	} else {
		var st fleet.Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || len(st.Groups) != 2 || st.Served != 1 {
			t.Fatalf("stats = %+v err=%v", st, err)
		}
		resp.Body.Close()
	}
	if resp := get("/config"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/config = %d", resp.StatusCode)
	} else {
		var cfgs []lambda.Config
		if err := json.NewDecoder(resp.Body).Decode(&cfgs); err != nil || len(cfgs) != 2 {
			t.Fatalf("config = %+v err=%v", cfgs, err)
		}
		resp.Body.Close()
	}
	if resp := get("/metrics?group=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?group=1 = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := get("/metrics.json"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := get("/metrics?group=7"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/metrics bad group = %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := get("/metrics.json?group=x"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/metrics.json bad group = %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestFleetSingleClassHandlerDefaultsClass pins the 1-class ergonomic: no
// class parameter needed, exactly like the single gateway's /infer.
func TestFleetSingleClassHandlerDefaultsClass(t *testing.T) {
	f, err := fleet.New(fleet.Plan{Classes: []fleet.ClassSpec{{Name: "only", SLO: 0.5, Shards: 1}}},
		fleet.Options{Clock: &obs.ManualClock{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("1-class /infer without class = %d, want 200", resp.StatusCode)
	}
}

func TestFleetTuneEveryPeriodic(t *testing.T) {
	// TuneEvery wires the gateway's periodic decide loop; just verify the
	// fleet builds and serves with it enabled on the wall clock.
	p := fleet.Plan{Classes: []fleet.ClassSpec{{Name: "only", SLO: 0.5, Shards: 1}}}
	f, err := fleet.New(p, fleet.Options{TuneEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if resp := f.Do(0); resp.Error != "" {
		t.Fatalf("serve under TuneEvery: %v", resp.Error)
	}
}
