// Package stats provides the statistical primitives used throughout the
// DeepBAT reproduction: percentiles, empirical CDFs, error metrics (MAPE),
// SLO violation counting (VCR), and index-of-dispersion computations for
// arrival processes.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ApproxEqual reports whether a and b are equal within the absolute
// tolerance tol. It is the tolerance helper deepbatlint's floatcompare rule
// steers all float equality toward: the exact == fast path below is the only
// place it is approved, and it is required for equal infinities (whose
// difference is NaN).
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// PercentileLevelTol is the tolerance used when matching configured
// percentile levels (e.g. 95.0): levels are small exact constants, so any
// sub-ulp-scale tolerance distinguishes them safely.
const PercentileLevelTol = 1e-9

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0 when
// fewer than two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SCV returns the squared coefficient of variation, Var/Mean^2.
// It returns 0 when the mean is zero.
func SCV(xs []float64) float64 {
	m := Mean(xs)
	if m*m == 0 { // includes denormal means whose square underflows
		return 0
	}
	return Variance(xs) / (m * m)
}

// Autocorrelation returns the lag-k autocorrelation coefficient of xs.
// Lags that exceed the sample size return 0.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+k < n; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	return num / den
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// Percentiles returns the requested percentiles of xs in one pass over a
// single sorted copy. The result has the same length and order as ps.
func Percentiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAPE returns the mean absolute percentage error between predictions and
// truths, in percent. Pairs whose true value is zero are skipped; if every
// pair is skipped MAPE returns 0.
func MAPE(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	var s float64
	var cnt int
	for i := 0; i < n; i++ {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt) * 100
}

// VCR (SLO Violation Count Ratio, Eq. 11 of the paper) returns the percentage
// of latencies that exceed the SLO.
func VCR(latencies []float64, slo float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	viol := 0
	for _, l := range latencies {
		if l > slo {
			viol++
		}
	}
	return float64(viol) / float64(len(latencies)) * 100
}

// CDF is an empirical cumulative distribution function over a sorted sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) via linear interpolation.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Support returns the min and max of the sample (0,0 for an empty CDF).
func (c *CDF) Support() (lo, hi float64) {
	if len(c.sorted) == 0 {
		return 0, 0
	}
	return c.sorted[0], c.sorted[len(c.sorted)-1]
}

// Points materializes n evenly spaced (x, F(x)) points across the support,
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) (xs, fs []float64) {
	if n < 2 || len(c.sorted) == 0 {
		return nil, nil
	}
	lo, hi := c.Support()
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = c.At(x)
	}
	return xs, fs
}

// IDC computes the empirical index of dispersion of a stationary sequence
// (typically interarrival times) following the paper's definition:
//
//	IDC = (sigma^2 / mu^2) * (1 + 2 * sum_k rho_k)
//
// The autocorrelation sum is truncated at maxLag (or when the estimate
// becomes unreliable near the end of the sample). An IDC of 1 indicates no
// autocorrelation with exponential-like variability.
func IDC(xs []float64, maxLag int) float64 {
	n := len(xs)
	if n < 2 {
		return 1
	}
	m := Mean(xs)
	if m*m == 0 { // includes denormal means whose square underflows
		return 1
	}
	scv := Variance(xs) / (m * m)
	if maxLag > n/2 {
		maxLag = n / 2
	}
	sum := 0.0
	for k := 1; k <= maxLag; k++ {
		sum += Autocorrelation(xs, k)
	}
	idc := scv * (1 + 2*sum)
	if idc < 0 {
		// Negative estimates can occur for short, anticorrelated samples;
		// clamp to a minimal positive dispersion.
		idc = 1e-6
	}
	return idc
}

// CountIDC computes the index of dispersion for counts: the ratio
// Var(N(t))/E(N(t)) for counts of events in windows of the given length,
// computed over the event timestamps ts (which must be nondecreasing).
func CountIDC(ts []float64, window float64) float64 {
	if len(ts) < 2 || window <= 0 {
		return 1
	}
	start, end := ts[0], ts[len(ts)-1]
	if end <= start {
		return 1
	}
	nw := int((end - start) / window)
	if nw < 2 {
		return 1
	}
	counts := make([]float64, nw)
	for _, t := range ts {
		i := int((t - start) / window)
		if i >= nw {
			// Drop events beyond the last full window so partial windows do
			// not bias the variance estimate.
			continue
		}
		counts[i]++
	}
	m := Mean(counts)
	if m == 0 {
		return 1
	}
	return Variance(counts) / m
}

// Histogram bins xs into n equal-width bins across [lo, hi] and returns the
// bin edges (n+1 values) and counts (n values).
func Histogram(xs []float64, lo, hi float64, n int) (edges []float64, counts []int) {
	if n <= 0 || hi <= lo {
		return nil, nil
	}
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	counts = make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		i := int((x - lo) / w)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return edges, counts
}

// Summary holds the descriptive statistics reported by Describe.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Describe computes a Summary of xs. It returns ErrEmpty for no samples.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	ps, err := Percentiles(xs, []float64{0, 50, 90, 95, 99, 100})
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  ps[0],
		P50:  ps[1],
		P90:  ps[2],
		P95:  ps[3],
		P99:  ps[4],
		Max:  ps[5],
	}, nil
}
