package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

func decodeFloats(data []byte) []float64 {
	var xs []float64
	for len(data) >= 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, v)
	}
	return xs
}

// FuzzPercentiles checks that percentile extraction never panics, respects
// ordering across levels, and stays within the sample's support.
func FuzzPercentiles(f *testing.F) {
	seed := make([]byte, 0, 40)
	for _, v := range []float64{1, 2, 3, -5, 100} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed = append(seed, b[:]...)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		xs := decodeFloats(raw)
		if len(xs) == 0 {
			if _, err := Percentile(xs, 50); err != ErrEmpty {
				t.Fatal("empty sample should return ErrEmpty")
			}
			return
		}
		levels := []float64{0, 10, 50, 90, 95, 99, 100}
		ps, err := Percentiles(xs, levels)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		prev := math.Inf(-1)
		for i, p := range ps {
			if p < prev-1e-9 {
				t.Fatalf("percentiles not monotone: %v", ps)
			}
			if p < lo-1e-9 || p > hi+1e-9 {
				t.Fatalf("P%g = %v outside support [%v, %v]", levels[i], p, lo, hi)
			}
			prev = p
		}
		// The CDF view must agree at the median within one sample step.
		c := NewCDF(xs)
		if med := c.Quantile(0.5); math.Abs(med-ps[2]) > 1e-9 {
			t.Fatalf("CDF median %v vs Percentile %v", med, ps[2])
		}
	})
}

// FuzzIDC checks the dispersion estimators never panic or go negative.
func FuzzIDC(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, raw []byte) {
		xs := decodeFloats(raw)
		for i, x := range xs {
			xs[i] = math.Abs(x)
		}
		if v := IDC(xs, 50); v < 0 || math.IsNaN(v) {
			t.Fatalf("IDC = %v", v)
		}
		if v := CountIDC(xs, 1); v < 0 || math.IsNaN(v) {
			t.Fatalf("CountIDC = %v", v)
		}
	})
}
