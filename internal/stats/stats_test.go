package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestSCV(t *testing.T) {
	// Exponential-like sample has SCV near 1.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	if got := SCV(xs); !almostEq(got, 1, 0.05) {
		t.Fatalf("SCV(exp) = %v, want ~1", got)
	}
	if got := SCV([]float64{0, 0}); got != 0 {
		t.Fatalf("SCV zero-mean = %v, want 0", got)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating sequence has rho_1 near -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if got := Autocorrelation(xs, 1); got > -0.9 {
		t.Fatalf("rho1(alternating) = %v, want near -1", got)
	}
	if got := Autocorrelation(xs, 0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("rho0 = %v, want 1", got)
	}
	if got := Autocorrelation(xs, len(xs)+5); got != 0 {
		t.Fatalf("rho out-of-range = %v, want 0", got)
	}
	if got := Autocorrelation([]float64{3, 3, 3}, 1); got != 0 {
		t.Fatalf("rho constant = %v, want 0 (zero denominator)", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	p, err := Percentile(xs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 29, 1e-9) { // linear interpolation: 20 + 0.6*(35-20)
		t.Fatalf("P40 = %v, want 29", p)
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("Percentile(nil) error = %v, want ErrEmpty", err)
	}
	// Clamping.
	lo, _ := Percentile(xs, -10)
	hi, _ := Percentile(xs, 300)
	if lo != 15 || hi != 50 {
		t.Fatalf("clamped percentiles = %v,%v want 15,50", lo, hi)
	}
	one, _ := Percentile([]float64{7}, 99)
	if one != 7 {
		t.Fatalf("single-sample percentile = %v, want 7", one)
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got, err := Percentiles(xs, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Percentiles(nil, []float64{50}); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	truth := []float64{100, 100}
	if got := MAPE(pred, truth); !almostEq(got, 10, 1e-9) {
		t.Fatalf("MAPE = %v, want 10", got)
	}
	// Zero truths are skipped.
	if got := MAPE([]float64{5, 110}, []float64{0, 100}); !almostEq(got, 10, 1e-9) {
		t.Fatalf("MAPE with zero truth = %v, want 10", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("MAPE all-zero truths = %v, want 0", got)
	}
	if got := MAPE(nil, nil); got != 0 {
		t.Fatalf("MAPE empty = %v, want 0", got)
	}
}

func TestVCR(t *testing.T) {
	ls := []float64{0.05, 0.15, 0.09, 0.2}
	if got := VCR(ls, 0.1); !almostEq(got, 50, 1e-12) {
		t.Fatalf("VCR = %v, want 50", got)
	}
	if got := VCR(nil, 0.1); got != 0 {
		t.Fatalf("VCR empty = %v, want 0", got)
	}
	if got := VCR(ls, 1); got != 0 {
		t.Fatalf("VCR high slo = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2.5); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("CDF(2.5) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("CDF(0) = %v, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Fatalf("CDF(4) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("Quantile(0.5) = %v, want 2.5", got)
	}
	lo, hi := c.Support()
	if lo != 1 || hi != 4 {
		t.Fatalf("Support = %v,%v want 1,4", lo, hi)
	}
	xs, fs := c.Points(4)
	if len(xs) != 4 || len(fs) != 4 || fs[0] < 0.2 || fs[3] != 1 {
		t.Fatalf("Points = %v %v", xs, fs)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Quantile(0.5) != 0 || empty.Len() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			lo, hi := c.Support()
			x := lo + (hi-lo)*q
			v := c.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		p50, _ := Percentile(xs, 50)
		p95, _ := Percentile(xs, 95)
		p99, _ := Percentile(xs, 99)
		return p50 <= p95+1e-9 && p95 <= p99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIDCPoisson(t *testing.T) {
	// Exponential interarrivals (Poisson process) should yield IDC near 1.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	idc := IDC(xs, 100)
	if idc < 0.7 || idc > 1.4 {
		t.Fatalf("IDC(poisson) = %v, want ~1", idc)
	}
}

func TestIDCBursty(t *testing.T) {
	// Strongly autocorrelated on/off interarrivals should have IDC >> 1.
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	fast := true
	for i := range xs {
		if i%500 == 0 {
			fast = !fast
		}
		if fast {
			xs[i] = rng.ExpFloat64() * 0.01
		} else {
			xs[i] = rng.ExpFloat64() * 1.0
		}
	}
	idc := IDC(xs, 250)
	if idc < 5 {
		t.Fatalf("IDC(bursty) = %v, want >> 1", idc)
	}
}

func TestIDCEdgeCases(t *testing.T) {
	if got := IDC(nil, 10); got != 1 {
		t.Fatalf("IDC(nil) = %v, want 1", got)
	}
	if got := IDC([]float64{0, 0, 0}, 2); got != 1 {
		t.Fatalf("IDC zero-mean = %v, want 1", got)
	}
}

func TestCountIDC(t *testing.T) {
	// Deterministic arrivals: counts per window are constant -> IDC ~ 0.
	ts := make([]float64, 1000)
	for i := range ts {
		ts[i] = float64(i) * 0.1
	}
	if got := CountIDC(ts, 10); got > 0.2 {
		t.Fatalf("CountIDC deterministic = %v, want near 0", got)
	}
	if got := CountIDC(nil, 1); got != 1 {
		t.Fatalf("CountIDC(nil) = %v, want 1", got)
	}
	if got := CountIDC(ts, 0); got != 1 {
		t.Fatalf("CountIDC zero window = %v, want 1", got)
	}
	if got := CountIDC(ts, 1000); got != 1 {
		t.Fatalf("CountIDC single window = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.5, 1.5, 1.6, 2.5, 3.0, -1, 5}, 0, 3, 3)
	if len(edges) != 4 || len(counts) != 3 {
		t.Fatalf("Histogram shapes: %v %v", edges, counts)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("Histogram counts = %v, want [1 2 2]", counts)
	}
	if e, c := Histogram(nil, 3, 0, 3); e != nil || c != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestDescribe(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("Describe = %+v", s)
	}
	if !almostEq(s.Mean, 50.5, 1e-9) {
		t.Fatalf("Describe mean = %v", s.Mean)
	}
	if s.P50 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("percentile ordering broken: %+v", s)
	}
	if _, err := Describe(nil); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, 1.0 + 1e-12, 1e-9, true},
		{1.0, 1.1, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1.0, 1e9, false},
		{0, -0.0, 0, true},
		{math.NaN(), math.NaN(), 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
