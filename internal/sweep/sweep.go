// Package sweep is the deterministic parallel fan-out/fan-in engine behind
// every multi-cell evaluation in this repo: the experiments' scenario
// matrices, ablation/sensitivity grids and chaos sweeps, qsim's grid-search
// fan-out, and the loadgen/replay shard sweeps.
//
// A sweep executes N independent cells on a bounded worker pool and merges
// their results in cell-index order. Three properties make the output a pure
// function of (inputs, cell count, sweep seed) — never of the worker count,
// scheduling, or machine:
//
//   - Per-cell seeds. Cell i's Seed is a splitmix64 derivation of the sweep
//     seed and i (CellSeed), so a cell's randomness is identical whether it
//     runs first on one worker or last on sixteen.
//
//   - Isolated observability. Each cell lazily owns a private obs.Registry
//     and obs.Recorder; nothing is shared while cells are in flight. After
//     the pool joins, Run merges the per-cell registries (and event streams)
//     into the optional Options.Obs/Options.Recorder sinks in cell-index
//     order, so even float-summation order is pinned and merged snapshots
//     are byte-identical for any worker count.
//
//   - Ordered fan-in. Results land in caller-owned slices at c.Index, and
//     the first error surfaced is the one from the lowest-index failed cell
//     among those executed; a panicking cell is captured as a *PanicError
//     instead of crashing the pool, which drains and joins before Run
//     returns.
//
// This is the same "parallel must equal serial, byte for byte" discipline
// the training fan-out (PR 1), the blocked kernels (PR 4), and the P=1
// gateway sharding (PR 6) pinned for their layers, applied to whole
// evaluations.
package sweep

//deepbat:deterministic

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"deepbat/internal/obs"
)

// Options parameterizes one sweep.
type Options struct {
	// Workers bounds the pool (0 = GOMAXPROCS, clamped to the cell count;
	// 1 runs the cells inline on the calling goroutine).
	Workers int
	// Seed is the sweep seed every cell seed derives from (CellSeed).
	Seed int64
	// Obs, when non-nil, receives every cell's lazily created registry
	// (Cell.Obs) after the pool joins, merged in cell-index order — the
	// deterministic fan-in for metric snapshots.
	Obs *obs.Registry
	// Recorder, when non-nil, receives every cell's lazily created event
	// stream (Cell.Recorder) after the pool joins, appended in cell-index
	// order.
	Recorder *obs.Recorder
}

// workers resolves the effective pool size for n cells.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// bijective avalanche mix the fault injector and the gateway shard router
// use for their pure-function randomness.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CellSeed derives cell index's seed from the sweep seed: two rounds of
// splitmix64 over (seed, index) on distinct odd constants. It is a pure
// function, so cell seeds never depend on worker count or execution order,
// and distinct indices get decorrelated streams even for adjacent sweep
// seeds.
func CellSeed(seed int64, index int) int64 {
	x := splitmix64(uint64(seed) ^ 0xda942042e4dd58b5)
	return int64(splitmix64(x + (uint64(index)+1)*0x9e3779b97f4a7c15))
}

// Cell is one unit of sweep work. Exactly one worker executes a given cell,
// so its methods need no synchronization; the pointer must not be retained
// past the cell function's return.
type Cell struct {
	// Index is the cell's position in [0, N); results belong at this index.
	Index int
	// Seed is CellSeed(Options.Seed, Index) — the only randomness a
	// deterministic cell function may consume.
	Seed int64

	reg *obs.Registry
	rec *obs.Recorder
}

// Obs returns the cell's private metric registry, creating it on first use.
// Cells that never call Obs cost nothing; created registries are merged into
// Options.Obs in cell-index order after the pool joins.
func (c *Cell) Obs() *obs.Registry {
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	return c.reg
}

// Recorder returns the cell's private event recorder (manual clock, default
// capacity), creating it on first use. Created recorders are appended into
// Options.Recorder in cell-index order after the pool joins.
func (c *Cell) Recorder() *obs.Recorder {
	if c.rec == nil {
		c.rec = obs.NewRecorder(nil, 0)
	}
	return c.rec
}

// PanicError is the captured panic of one cell: the sweep surfaces it as an
// ordinary error instead of tearing down the process, after the pool has
// drained.
type PanicError struct {
	Cell  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v", e.Cell, e.Value)
}

// runner is the shared state of one sweep execution.
type runner struct {
	fn    func(*Cell) error
	cells []Cell
	errs  []error
	next  atomic.Int64
	// failed stops the dispatch of new cells after the first error; workers
	// finish the cell they hold, so the pool always drains and joins.
	failed atomic.Bool
}

// drain is the steady-state dispatch loop every worker runs: claim the next
// cell index with one atomic add, execute it, repeat until the cells are
// exhausted or a cell has failed. The loop itself performs no heap
// allocation — cells, errors, and results all live in pre-sized slices — so
// sweep overhead stays flat no matter how many cells a sweep has.
//
//deepbat:hotpath
func (r *runner) drain() {
	for {
		i := int(r.next.Add(1)) - 1
		if i >= len(r.cells) || r.failed.Load() {
			return
		}
		r.runCell(i)
	}
}

// runCell executes one cell, capturing a panic as that cell's error.
//
//deepbat:hotpath
func (r *runner) runCell(i int) {
	//lint:allow hotpath-alloc the recover path allocates a PanicError and stack copy only when a cell has already crashed
	defer r.capture(i)
	if err := r.fn(&r.cells[i]); err != nil {
		r.errs[i] = err
		r.failed.Store(true)
	}
}

// capture converts a cell panic into a *PanicError so the sweep reports it
// as an error after the pool drains.
func (r *runner) capture(i int) {
	if p := recover(); p != nil {
		r.errs[i] = &PanicError{Cell: i, Value: p, Stack: debug.Stack()}
		r.failed.Store(true)
	}
}

// Run executes fn for each of n cells on the bounded pool and returns after
// every launched worker has joined. The caller communicates results by
// writing into its own pre-sized slices at c.Index; Run guarantees the cell
// function runs at most once per index.
//
// On failure Run reports the error of the lowest-index failed cell (a cell
// panic surfaces as *PanicError); remaining undispatched cells are skipped,
// in-flight cells complete, and no goroutine outlives the call.
func Run(o Options, n int, fn func(c *Cell) error) error {
	if n < 0 {
		return fmt.Errorf("sweep: negative cell count %d", n)
	}
	if n == 0 {
		return nil
	}
	r := &runner{
		fn:    fn,
		cells: make([]Cell, n),
		errs:  make([]error, n),
	}
	for i := range r.cells {
		r.cells[i].Index = i
		r.cells[i].Seed = CellSeed(o.Seed, i)
	}
	if w := o.workers(n); w <= 1 {
		r.drain()
	} else {
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.drain()
			}()
		}
		wg.Wait()
	}
	for i := range r.errs {
		if err := r.errs[i]; err != nil {
			if _, ok := err.(*PanicError); ok {
				return err
			}
			return fmt.Errorf("sweep: cell %d: %w", i, err)
		}
	}
	// Deterministic fan-in: merge per-cell telemetry in cell-index order so
	// even float-summation order is independent of the worker count.
	for i := range r.cells {
		c := &r.cells[i]
		if o.Obs != nil && c.reg != nil {
			if err := o.Obs.Merge(c.reg); err != nil {
				return fmt.Errorf("sweep: cell %d metrics: %w", i, err)
			}
		}
		if o.Recorder != nil && c.rec != nil {
			o.Recorder.Append(c.rec)
		}
	}
	return nil
}
