package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"deepbat/internal/obs"
)

// TestCellSeedStable pins CellSeed as a pure function: the derivation is
// part of the determinism contract (a changed constant silently reseeds
// every sweep in the repo), so representative values are golden.
func TestCellSeedStable(t *testing.T) {
	got := []int64{
		CellSeed(0, 0),
		CellSeed(0, 1),
		CellSeed(42, 0),
		CellSeed(42, 39),
		CellSeed(-7, 3),
	}
	for i, v := range got {
		if v == 0 {
			t.Fatalf("CellSeed case %d produced 0 — derivation degenerate", i)
		}
	}
	// Same inputs, same outputs; adjacent indices decorrelated.
	if CellSeed(42, 7) != CellSeed(42, 7) {
		t.Fatal("CellSeed is not a pure function")
	}
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := CellSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("CellSeed collision: indices %d and %d -> %d", prev, i, s)
		}
		seen[s] = i
	}
}

// run the same sweep body at a given worker count and return every
// observable output: the result slice, the merged registry snapshot, and
// the merged event stream.
func runSweepOnce(t *testing.T, workers int) ([]string, []byte, []obs.Event) {
	t.Helper()
	const n = 40
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(nil, 0)
	out := make([]string, n)
	err := Run(Options{Workers: workers, Seed: 42, Obs: reg, Recorder: rec}, n, func(c *Cell) error {
		// Consume the cell seed through every telemetry kind so the merge
		// order is load-bearing for the byte comparison.
		v := float64(uint64(c.Seed)%1000) / 7
		ctr, err := c.Obs().Counter("sweep_cells_total", "cells executed")
		if err != nil {
			return err
		}
		ctr.Add(v)
		h, err := c.Obs().Histogram("sweep_cell_value", "per-cell seed-derived value", obs.DefaultLatencyBuckets())
		if err != nil {
			return err
		}
		h.Observe(v / 1000)
		g, err := c.Obs().Gauge("sweep_cell_sum", "gauge fan-in is additive")
		if err != nil {
			return err
		}
		g.Add(v)
		c.Recorder().EventAt(float64(c.Index), "cell", obs.I("i", c.Index), obs.F("v", v))
		out[c.Index] = fmt.Sprintf("cell %d seed %d v %.6f", c.Index, c.Seed, v)
		return nil
	})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return out, buf.Bytes(), rec.Events()
}

// TestDeterminismAcrossWorkerCounts is the tentpole contract: the merged
// output of a sweep — results, metric snapshot, event stream — is
// byte-identical for workers 1, 4, and 8 with the same seed.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	refOut, refSnap, refEvents := runSweepOnce(t, 1)
	for _, w := range []int{1, 4, 8} {
		out, snap, events := runSweepOnce(t, w)
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("workers=%d: result %d = %q, want %q", w, i, out[i], refOut[i])
			}
		}
		if !bytes.Equal(snap, refSnap) {
			t.Fatalf("workers=%d: merged metric snapshot differs from workers=1:\n%s\nvs\n%s", w, snap, refSnap)
		}
		if len(events) != len(refEvents) {
			t.Fatalf("workers=%d: %d events, want %d", w, len(events), len(refEvents))
		}
		for i := range events {
			a, b := events[i], refEvents[i]
			if a.Name != b.Name || a.Time != b.Time || fmt.Sprint(a.Attrs) != fmt.Sprint(b.Attrs) {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", w, i, a, b)
			}
		}
	}
}

// TestPanicCapture asserts a panicking cell surfaces as a *PanicError after
// the pool drains, and that no worker goroutine outlives Run.
func TestPanicCapture(t *testing.T) {
	before := runtime.NumGoroutine()
	err := Run(Options{Workers: 4, Seed: 1}, 64, func(c *Cell) error {
		if c.Index == 7 {
			panic("boom in cell 7")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil, want captured panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want *PanicError", err, err)
	}
	if pe.Cell != 7 {
		t.Fatalf("PanicError.Cell = %d, want 7", pe.Cell)
	}
	if pe.Value != "boom in cell 7" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack empty")
	}
	waitForGoroutines(t, before)
}

// TestErrorLowestIndex asserts the surfaced error is the lowest-index
// failure, with cell attribution in the message.
func TestErrorLowestIndex(t *testing.T) {
	sentinel := errors.New("cell failed")
	err := Run(Options{Workers: 1, Seed: 1}, 16, func(c *Cell) error {
		if c.Index == 3 || c.Index == 9 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the cell error", err)
	}
	if want := "sweep: cell 3:"; err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q, want prefix %q", err, want)
	}
}

// TestErrorStopsDispatch asserts a failed cell halts the claim loop:
// undispatched cells never run.
func TestErrorStopsDispatch(t *testing.T) {
	ran := make([]bool, 1024)
	err := Run(Options{Workers: 1, Seed: 1}, len(ran), func(c *Cell) error {
		ran[c.Index] = true
		if c.Index == 2 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	for i := 4; i < len(ran); i++ {
		if ran[i] {
			t.Fatalf("cell %d ran after cell 2 failed on a single worker", i)
		}
	}
}

// TestNoGoroutineLeak hammers parallel sweeps and asserts the goroutine
// count returns to baseline.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if err := Run(Options{Workers: 8, Seed: int64(i)}, 32, func(c *Cell) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, before)
}

// TestZeroAndNegativeCells pins the edge cases.
func TestZeroAndNegativeCells(t *testing.T) {
	if err := Run(Options{}, 0, func(c *Cell) error { t.Error("cell ran"); return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Run(Options{}, -1, nil); err == nil {
		t.Fatal("n=-1: want error")
	}
}

// TestDispatchAllocBudget bounds the steady-state cost of cell dispatch:
// the whole Run — pool launch included — must stay within a fixed
// allocation budget independent of the cell count, i.e. the per-cell
// dispatch path allocates nothing. Skipped under -race (instrumented
// allocation) like the other pooled-path budgets in this repo.
func TestDispatchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race runtime")
	}
	const cells = 1024
	avg := testing.AllocsPerRun(20, func() {
		if err := Run(Options{Workers: 4, Seed: 9}, cells, func(c *Cell) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed setup: runner + cells slice + errs slice + per-worker goroutine
	// machinery. Anything scaling with the 1024 cells would blow well past
	// the budget.
	if avg > 32 {
		t.Fatalf("sweep Run allocates %.1f objects for %d cells; dispatch is allocating per cell", avg, cells)
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// the baseline (the runtime reaps exited goroutines asynchronously).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
