//go:build race

package sweep

// raceEnabled reports that this binary was built with -race. The race
// runtime instruments every allocation, so the AllocsPerRun dispatch budget
// is asserted only in non-race builds.
const raceEnabled = true
