//go:build !race

package sweep

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
