// Generator golden-byte tests: the exact tracev1 bytes each zoo generator
// produces for a pinned spec, captured in testdata/golden/. Any change to a
// generator's PRNG consumption order, arrival math, class assignment, or
// size stream — or to the codec — fails these loudly, mirroring the
// testdata/preshard pattern in internal/gateway.
//
// Regenerate (only when a PR deliberately changes a generator):
//
//	UPDATE_WORKLOAD_GOLDEN=1 go test -run TestGeneratorGoldenBytes ./internal/workload/
package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenSpecs pins one small spec per generator family. Small horizons keep
// the files a few KB while still exercising every code path (multiple
// hours, bursts, classes, size tiers).
func goldenSpecs() []Spec {
	return []Spec{
		{Name: "azure", Hours: 2, HourSeconds: 10, Seed: 1},
		{Name: "diurnal", Hours: 3, HourSeconds: 10, Seed: 1},
		{Name: "flashcrowd", Hours: 2, HourSeconds: 10, Seed: 1},
		{Name: "corrburst", Hours: 2, HourSeconds: 10, Seed: 1},
		{Name: "sizemix", Hours: 2, HourSeconds: 10, Seed: 1},
	}
}

func TestGeneratorGoldenBytes(t *testing.T) {
	update := os.Getenv("UPDATE_WORKLOAD_GOLDEN") != ""
	dir := filepath.Join("testdata", "golden")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, spec := range goldenSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			data, err := EncodeBytes(MustGenerate(spec))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, spec.Name+".tracev1")
			if update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_WORKLOAD_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(data, want) {
				d1, _ := Digest(MustGenerate(spec))
				t.Errorf("%s: generated tracev1 diverged from golden bytes (%d vs %d bytes, digest %016x); "+
					"if this change is deliberate, regenerate with UPDATE_WORKLOAD_GOLDEN=1",
					spec.Name, len(data), len(want), d1)
			}
		})
	}
}

// TestGoldenDecodable keeps the checked-in goldens honest: every golden file
// must decode cleanly and carry the spec it was generated from.
func TestGoldenDecodable(t *testing.T) {
	for _, spec := range goldenSpecs() {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", spec.Name+".tracev1"))
		if err != nil {
			t.Skipf("goldens not generated yet: %v", err)
		}
		tr, err := DecodeBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if tr.Header.Spec != spec {
			t.Fatalf("%s: golden carries spec %+v, want %+v", spec.Name, tr.Header.Spec, spec)
		}
		if len(tr.Reqs) == 0 {
			t.Fatalf("%s: golden is empty", spec.Name)
		}
	}
}
