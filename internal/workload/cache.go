package workload

import (
	"hash/fnv"
	"sync"
)

// Cache is a concurrency-safe memo of decoded/generated traces and their
// derived views, built for sweep fan-out: when N cells replay the same
// digest-sealed trace, the trace is synthesized (or decoded) once and the
// arrival slice, class records, and digest are shared read-only across every
// cell instead of being rebuilt N times.
//
// Ownership contract: everything a Cache hands out is shared and immutable.
// Callers must treat the *Trace, its Reqs, and the Timestamps slice as
// read-only; a cell that needs a private copy must make one. Generation and
// decoding happen with the cache lock held — concurrent callers for the same
// key serialize rather than duplicate work, which is the right trade for
// sweep warm-up (the first cell to ask pays, the rest hit the memo).
type Cache struct {
	mu      sync.Mutex
	traces  map[Spec]*Trace
	decoded map[uint64]*Trace
	digests map[*Trace]uint64
	stamps  map[*Trace][]float64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		traces:  make(map[Spec]*Trace),
		decoded: make(map[uint64]*Trace),
		digests: make(map[*Trace]uint64),
		stamps:  make(map[*Trace][]float64),
	}
}

// Generate returns the memoized trace for spec, synthesizing it on first
// use. Generate is a pure function of its spec, so the memo is sound: every
// caller sees the identical shared trace.
func (c *Cache) Generate(spec Spec) (*Trace, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.traces[spec]; ok {
		return t, nil
	}
	t, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	c.traces[spec] = t
	return t, nil
}

// Decode returns the memoized decode of a tracev1 binary blob, keyed by a
// hash of the raw bytes, decoding (and digest-verifying) it on first use.
// Accepted tracev1 inputs round-trip bit-identically, so byte-equal blobs
// decode to interchangeable traces and sharing one is sound.
func (c *Cache) Decode(data []byte) (*Trace, error) {
	h := fnv.New64a()
	h.Write(data)
	key := h.Sum64()
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.decoded[key]; ok {
		return t, nil
	}
	t, err := DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	c.decoded[key] = t
	return t, nil
}

// Digest returns the memoized tracev1 digest for a trace previously handed
// out by (or registered with) this cache, computing the O(n) re-encode only
// once per trace pointer.
func (c *Cache) Digest(t *Trace) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.digests[t]; ok {
		return d, nil
	}
	d, err := Digest(t)
	if err != nil {
		return 0, err
	}
	c.digests[t] = d
	return d, nil
}

// Timestamps returns the memoized arrival-timestamp view of a trace — one
// shared slice per trace pointer, in place of the fresh copy
// Trace.Timestamps allocates per call. Callers must not mutate it.
func (c *Cache) Timestamps(t *Trace) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stamps[t]; ok {
		return s
	}
	s := t.Timestamps()
	c.stamps[t] = s
	return s
}
