package workload

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// The tracev1 binary layout, little-endian throughout:
//
//	magic      [8]byte  "DBTRACE1"
//	headerLen  uint32   length of the JSON-encoded Header that follows
//	header     []byte   canonical json.Marshal of Header (self-describing)
//	count      uint64   record count
//	records    count ×  { atBits uint64, class uint8, size uint32 } (13 B)
//	digest     uint64   FNV-1a 64 over every preceding byte
//
// Timestamps are stored as raw IEEE-754 bits, so decode(encode(t)) is
// bit-identical — no parsing, no rounding. The digest makes truncation and
// corruption loud, and is what tracegen -check and replay provenance notes
// report. The JSON form (EncodeJSON/DecodeJSON) carries the same data as one
// readable document; Go's shortest-round-trip float encoding keeps it
// bit-exact too.

// ErrFormat reports a malformed tracev1 input; match with errors.Is.
var ErrFormat = errors.New("workload: malformed tracev1")

const (
	magic      = "DBTRACE1"
	recordSize = 8 + 1 + 4
	// maxHeaderLen bounds the self-declared header length so a corrupt
	// length field cannot drive a giant allocation.
	maxHeaderLen = 1 << 20
)

// Encode writes the trace in tracev1 binary form.
func Encode(w io.Writer, t *Trace) error {
	if err := t.validate(); err != nil {
		return err
	}
	buf, err := appendEncoded(nil, t)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// EncodeBytes returns the tracev1 binary encoding.
func EncodeBytes(t *Trace) ([]byte, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	return appendEncoded(nil, t)
}

func appendEncoded(buf []byte, t *Trace) ([]byte, error) {
	hdr, err := json.Marshal(t.Header)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding header: %w", err)
	}
	if len(hdr) > maxHeaderLen {
		return nil, fmt.Errorf("%w: header exceeds %d bytes", ErrFormat, maxHeaderLen)
	}
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.Reqs)))
	for _, rq := range t.Reqs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rq.AtS))
		buf = append(buf, rq.Class)
		buf = binary.LittleEndian.AppendUint32(buf, rq.Size)
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64()), nil
}

// Digest returns the trace's tracev1 digest — the FNV-1a 64 the binary
// encoding is sealed with, rendered by tracegen -check and replay reports.
func Digest(t *Trace) (uint64, error) {
	buf, err := EncodeBytes(t)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[len(buf)-8:]), nil
}

// Decode reads one tracev1 binary trace, verifying structure and digest.
func Decode(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes decodes a tracev1 binary trace from memory. Every accepted
// input round-trips: EncodeBytes(DecodeBytes(b)) == b.
func DecodeBytes(data []byte) (*Trace, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed prelude", ErrFormat, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:len(magic)])
	}
	off := len(magic)
	hlen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if hlen > maxHeaderLen || hlen < 2 {
		return nil, fmt.Errorf("%w: header length %d out of range", ErrFormat, hlen)
	}
	if len(data) < off+hlen+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrFormat)
	}
	var hdr Header
	if err := json.Unmarshal(data[off:off+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("%w: header JSON: %v", ErrFormat, err)
	}
	off += hlen
	count := binary.LittleEndian.Uint64(data[off:])
	off += 8
	rest := len(data) - off
	want := int64(count)*recordSize + 8
	if int64(count) > int64(rest)/recordSize || int64(rest) != want {
		return nil, fmt.Errorf("%w: %d records declared but %d payload bytes present", ErrFormat, count, rest)
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if got, wantD := h.Sum64(), binary.LittleEndian.Uint64(data[len(data)-8:]); got != wantD {
		return nil, fmt.Errorf("%w: digest mismatch (computed %016x, stored %016x)", ErrFormat, got, wantD)
	}
	t := &Trace{Header: hdr}
	if count > 0 {
		t.Reqs = make([]Request, count)
		for i := range t.Reqs {
			t.Reqs[i] = Request{
				AtS:   math.Float64frombits(binary.LittleEndian.Uint64(data[off:])),
				Class: data[off+8],
				Size:  binary.LittleEndian.Uint32(data[off+9:]),
			}
			off += recordSize
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	// Canonical-form check: the header must be the byte-exact marshal of the
	// decoded Header, or re-encoding would not reproduce the input.
	canon, err := json.Marshal(t.Header)
	if err != nil || len(canon) != hlen {
		return nil, fmt.Errorf("%w: non-canonical header encoding", ErrFormat)
	}
	for i := range canon {
		if canon[i] != data[len(magic)+4+i] {
			return nil, fmt.Errorf("%w: non-canonical header encoding", ErrFormat)
		}
	}
	return t, nil
}

// EncodeJSON writes the trace as one self-describing JSON document — the
// human-inspectable twin of the binary form, with identical information and
// exact float round-trip (Go emits shortest-form floats).
func EncodeJSON(w io.Writer, t *Trace) error {
	if err := t.validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads the JSON twin, applying the same structural validation as
// the binary decoder (there is no digest; JSON is the editable form).
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
