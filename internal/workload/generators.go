package workload

import (
	"math"
	"math/rand"
	"strconv"

	"deepbat/internal/arrival"
	"deepbat/internal/trace"
)

// Nominal per-class payload sizes in bytes. Sizes matter to multi-model
// routing and batch packing experiments; every generator stamps them so a
// tracev1 file is complete even for consumers this repo does not have yet.
const (
	sizeDefault = 4 << 10   // single-class shapes and the legacy adapter
	sizeSmall   = 2 << 10   // sizemix: short prompts
	sizeMedium  = 32 << 10  // sizemix: typical documents
	sizeLarge   = 512 << 10 // sizemix: batch uploads
)

// ---------------------------------------------------------------------------
// Legacy adapter: the paper's four workloads as single-class traces.
// ---------------------------------------------------------------------------

// genLegacy wraps internal/trace: identical timestamp sequence for identical
// (name, hours, hourSeconds, seed), one "default" class, jittered sizes from
// an independent salted PRNG.
func genLegacy(spec Spec) (*Trace, error) {
	ltr, err := trace.Generate(trace.Spec{
		Name:        spec.Name,
		Hours:       spec.Hours,
		HourSeconds: spec.HourSeconds,
		Seed:        spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	t := newTrace(spec, []string{"default"})
	sizeRng := rand.New(rand.NewSource(spec.Seed ^ legacySizeSalt))
	t.Reqs = make([]Request, len(ltr.Timestamps))
	for i, ts := range ltr.Timestamps {
		t.Reqs[i] = Request{AtS: ts, Class: 0, Size: sizeFor(sizeRng, sizeDefault)}
	}
	return t, t.validate()
}

// legacySizeSalt decorrelates the legacy adapter's size stream from the
// arrival seed, so stamping sizes can never perturb trace timestamps.
const legacySizeSalt = 0x51ED0DEF

// ---------------------------------------------------------------------------
// diurnal: multi-period diurnal rate.
// ---------------------------------------------------------------------------

// genDiurnal superposes two sinusoidal periods — a 24-hour day and an 8-hour
// sub-cycle (think three regional business days sharing one deployment) — on
// the base rate and samples each hour as a Poisson stream at the hour's
// modulated mean. InferLine-style planners are exercised by exactly this
// shape: smooth but multi-scale rate motion with no burst structure, so a
// planner that merely tracks the mean should do well and anything that
// overreacts is exposed.
func genDiurnal(spec Spec) (*Trace, error) {
	base := rate0(spec, 120)
	t := newTrace(spec, []string{"default"})
	rng := rand.New(rand.NewSource(spec.Seed))
	for h := 0; h < spec.Hours; h++ {
		day := math.Sin(2 * math.Pi * float64(h+18) / 24)
		sub := math.Sin(2 * math.Pi * float64(h) / 8)
		rate := base * (1 + 0.45*day + 0.25*sub)
		if rate < 0.05*base {
			rate = 0.05 * base
		}
		g, err := arrival.NewGen(arrival.Poisson(rate), rng)
		if err != nil {
			return nil, err
		}
		h0 := float64(h) * spec.HourSeconds
		for _, ts := range g.SampleUntil(spec.HourSeconds) {
			t.Reqs = append(t.Reqs, Request{AtS: h0 + ts, Class: 0, Size: sizeFor(rng, sizeDefault)})
		}
	}
	return t, t.validate()
}

// ---------------------------------------------------------------------------
// flashcrowd: steady baseline plus cohort arrival events.
// ---------------------------------------------------------------------------

// genFlashCrowd layers cohort flash events over a steady Poisson baseline:
// every ~6 hours a cohort arrives (a product launch, a retweet, a class
// assignment deadline) and hammers the service with an on-off burst at 8x
// the baseline rate for half an hour-slot. Baseline requests are class
// "steady", cohort requests class "cohort" — the per-class mix HarmonyBatch-
// style multi-SLO packing is evaluated against.
func genFlashCrowd(spec Spec) (*Trace, error) {
	base := rate0(spec, 60)
	t := newTrace(spec, []string{"steady", "cohort"})
	rng := rand.New(rand.NewSource(spec.Seed))
	horizon := t.Duration()

	// Baseline stream over the whole horizon.
	g, err := arrival.NewGen(arrival.Poisson(base), rng)
	if err != nil {
		return nil, err
	}
	for _, ts := range g.SampleUntil(horizon) {
		t.Reqs = append(t.Reqs, Request{AtS: ts, Class: 0, Size: sizeFor(rng, sizeDefault)})
	}

	// One cohort event per ~6 hours (at least one), placed uniformly inside
	// its slot, bursting on-off for half a slot.
	events := spec.Hours / 6
	if events < 1 {
		events = 1
	}
	slot := horizon / float64(events)
	for e := 0; e < events; e++ {
		dur := 0.5 * slot
		start := (float64(e) + rng.Float64()*0.5) * slot
		burst, err := arrival.NewGen(arrival.OnOff(8*base, 0.1*dur, 0.1*dur), rng)
		if err != nil {
			return nil, err
		}
		for _, ts := range burst.SampleUntil(dur) {
			t.Reqs = append(t.Reqs, Request{AtS: start + ts, Class: 1, Size: sizeFor(rng, sizeDefault)})
		}
	}
	sortReqs(t.Reqs)
	return t, t.validate()
}

// ---------------------------------------------------------------------------
// corrburst: bursts correlated across classes by a shared modulator.
// ---------------------------------------------------------------------------

// genCorrBurst drives N request classes from one shared two-state modulator:
// a background CTMC alternates between calm and burst modes (exponential
// sojourns), and while it bursts, every class's Poisson rate is multiplied
// together. Superposing independent MMPPs (what internal/trace does per
// hour) cannot produce this cross-class correlation, yet it is exactly the
// failure mode a shared-capacity fleet gateway must survive: all tenants
// burst at once.
func genCorrBurst(spec Spec) (*Trace, error) {
	base := rate0(spec, 90)
	n := classes0(spec, 3)
	names := make([]string, n)
	for i := range names {
		names[i] = classLabel(i)
	}
	t := newTrace(spec, names)
	rng := rand.New(rand.NewSource(spec.Seed))
	horizon := t.Duration()

	const (
		meanCalmS  = 0.25 // of an hour, converted below
		meanBurstS = 0.08
		burstGain  = 6.0
		calmGain   = 0.4
	)
	meanCalm := meanCalmS * spec.HourSeconds
	meanBurst := meanBurstS * spec.HourSeconds

	// Class weights sum to 1 with a deterministic geometric taper, so class 0
	// is the heavy stream and later classes are progressively lighter.
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(0.6, float64(i))
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}

	// Walk the shared modulator's segments; inside each segment every class
	// emits a Poisson stream at its gained rate. Segment-outer, class-inner
	// iteration keeps PRNG consumption order fixed.
	t0, burst := 0.0, false
	for t0 < horizon {
		mean := meanCalm
		gain := calmGain
		if burst {
			mean = meanBurst
			gain = burstGain
		}
		segLen := rng.ExpFloat64() * mean
		if t0+segLen > horizon {
			segLen = horizon - t0
		}
		for c := 0; c < n; c++ {
			rate := base * weights[c] * gain
			g, err := arrival.NewGen(arrival.Poisson(rate), rng)
			if err != nil {
				return nil, err
			}
			for _, ts := range g.SampleUntil(segLen) {
				t.Reqs = append(t.Reqs, Request{AtS: t0 + ts, Class: uint8(c), Size: sizeFor(rng, sizeDefault)})
			}
		}
		t0 += segLen
		burst = !burst
	}
	sortReqs(t.Reqs)
	return t, t.validate()
}

// classLabel names the c-th generic class.
func classLabel(c int) string {
	return "class" + strconv.Itoa(c)
}

// ---------------------------------------------------------------------------
// sizemix: one arrival stream, heavy-tailed request-size mixture.
// ---------------------------------------------------------------------------

// genSizeMix emits a single Poisson arrival stream whose requests draw their
// class — and with it their payload size — from a small/medium/large mixture
// (70/25/5). Arrival dynamics are deliberately flat: this shape isolates
// size heterogeneity, the dimension none of the timestamp-only traces carry.
func genSizeMix(spec Spec) (*Trace, error) {
	base := rate0(spec, 100)
	t := newTrace(spec, []string{"small", "medium", "large"})
	rng := rand.New(rand.NewSource(spec.Seed))
	g, err := arrival.NewGen(arrival.Poisson(base), rng)
	if err != nil {
		return nil, err
	}
	sizes := [3]float64{sizeSmall, sizeMedium, sizeLarge}
	for _, ts := range g.SampleUntil(t.Duration()) {
		u := rng.Float64()
		var c uint8
		switch {
		case u < 0.70:
			c = 0
		case u < 0.95:
			c = 1
		default:
			c = 2
		}
		t.Reqs = append(t.Reqs, Request{AtS: ts, Class: c, Size: sizeFor(rng, sizes[c])})
	}
	return t, t.validate()
}
