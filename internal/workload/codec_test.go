package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"deepbat/internal/trace"
)

// legacyTimestamps generates the reference timestamp sequence straight from
// internal/trace for the adapter bit-exactness check.
func legacyTimestamps(t *testing.T, spec Spec) []float64 {
	t.Helper()
	ltr, err := trace.Generate(trace.Spec{
		Name: spec.Name, Hours: spec.Hours, HourSeconds: spec.HourSeconds, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ltr.Timestamps
}

// specsUnderTest covers every generator family at small scale plus rate and
// class overrides.
func specsUnderTest() []Spec {
	specs := []Spec{
		{Name: "azure", Hours: 2, HourSeconds: 10, Seed: 1},
		{Name: "synthetic", Hours: 1, HourSeconds: 10, Seed: 42},
		{Name: "diurnal", Hours: 3, HourSeconds: 10, Seed: 2},
		{Name: "flashcrowd", Hours: 2, HourSeconds: 10, Seed: 3},
		{Name: "corrburst", Hours: 2, HourSeconds: 10, Seed: 4, Classes: 5},
		{Name: "sizemix", Hours: 2, HourSeconds: 10, Seed: 5, RateRPS: 40},
	}
	return specs
}

// TestBinaryRoundTrip is the codec property test: for every generator,
// encode -> decode -> encode must reproduce the exact bytes, and the decoded
// trace must equal the original structurally (bit-exact timestamps).
func TestBinaryRoundTrip(t *testing.T) {
	for _, spec := range specsUnderTest() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := MustGenerate(spec)
			data, err := EncodeBytes(tr)
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeBytes(data)
			if err != nil {
				t.Fatalf("decode of own encoding: %v", err)
			}
			if !reflect.DeepEqual(tr, back) {
				t.Fatalf("decoded trace differs structurally")
			}
			again, err := EncodeBytes(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encode is not bit-identical: %d vs %d bytes", len(data), len(again))
			}
		})
	}
}

// TestJSONRoundTrip pins the JSON twin: exact float round-trip via Go's
// shortest-form encoding, so binary and JSON forms carry identical data.
func TestJSONRoundTrip(t *testing.T) {
	for _, spec := range specsUnderTest() {
		tr := MustGenerate(spec)
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("%s: JSON round trip not exact", spec.Name)
		}
	}
}

// TestDigestStable pins that Digest is a pure function of the trace and
// changes when the trace does.
func TestDigestStable(t *testing.T) {
	spec := Spec{Name: "diurnal", Hours: 2, HourSeconds: 10, Seed: 9}
	d1, err := Digest(MustGenerate(spec))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(MustGenerate(spec))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("same spec, different digests: %016x vs %016x", d1, d2)
	}
	spec.Seed = 10
	d3, err := Digest(MustGenerate(spec))
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatalf("different seeds share digest %016x", d1)
	}
}

func mustEncode(t *testing.T) []byte {
	t.Helper()
	data, err := EncodeBytes(MustGenerate(Spec{Name: "azure", Hours: 1, HourSeconds: 5, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecodeRejectsCorruption walks the error paths: every mutilation of a
// valid file must fail with ErrFormat, never panic or mis-decode.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := mustEncode(t)
	cases := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"short":        func(b []byte) []byte { return b[:4] },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"huge-header":  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 1<<30); return b },
		"zero-header":  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 0); return b },
		"trunc-header": func(b []byte) []byte { return b[:13] },
		"trunc-body":   func(b []byte) []byte { return b[:len(b)-9] },
		"extra-byte":   func(b []byte) []byte { return append(b, 0) },
		"flip-record":  func(b []byte) []byte { b[len(b)-20] ^= 0x01; return b },
		"flip-digest":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"header-json":  func(b []byte) []byte { b[12] = '!'; return b },
	}
	for name, corrupt := range cases {
		name, corrupt := name, corrupt
		t.Run(name, func(t *testing.T) {
			data := corrupt(append([]byte(nil), valid...))
			if _, err := DecodeBytes(data); !errors.Is(err, ErrFormat) {
				t.Fatalf("DecodeBytes(%s) = %v, want ErrFormat", name, err)
			}
		})
	}
}

// TestDecodeBombSafe feeds a tiny input whose count field claims billions of
// records: the decoder must reject it from the length check, not allocate.
func TestDecodeBombSafe(t *testing.T) {
	hdr := []byte(`{"version":1,"name":"x","seed":1,"spec":{"name":"x","hours":1,"hour_seconds":1,"seed":1},"classes":["a"]}`)
	var b []byte
	b = append(b, "DBTRACE1"...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(hdr)))
	b = append(b, hdr...)
	b = binary.LittleEndian.AppendUint64(b, math.MaxUint64/16)
	b = append(b, make([]byte, 8)...) // "digest"
	if _, err := DecodeBytes(b); !errors.Is(err, ErrFormat) {
		t.Fatalf("decode bomb = %v, want ErrFormat", err)
	}
}

// TestValidateRejectsBadTraces covers the structural invariants on the
// decode path via hand-built traces.
func TestValidateRejectsBadTraces(t *testing.T) {
	base := func() *Trace {
		return &Trace{Header: Header{Version: Version, Name: "x", Seed: 1,
			Spec:    Spec{Name: "x", Hours: 1, HourSeconds: 10, Seed: 1},
			Classes: []string{"a"}}}
	}
	cases := map[string]func(*Trace){
		"bad-version":   func(tr *Trace) { tr.Header.Version = 99 },
		"no-classes":    func(tr *Trace) { tr.Header.Classes = nil },
		"class-oob":     func(tr *Trace) { tr.Reqs = []Request{{AtS: 1, Class: 3, Size: 1}} },
		"nan-timestamp": func(tr *Trace) { tr.Reqs = []Request{{AtS: math.NaN()}} },
		"neg-timestamp": func(tr *Trace) { tr.Reqs = []Request{{AtS: -1}} },
		"out-of-order":  func(tr *Trace) { tr.Reqs = []Request{{AtS: 2}, {AtS: 1}} },
	}
	for name, mutate := range cases {
		tr := base()
		mutate(tr)
		if _, err := EncodeBytes(tr); !errors.Is(err, ErrFormat) {
			t.Fatalf("%s: EncodeBytes = %v, want ErrFormat", name, err)
		}
	}
}

// TestGenerateErrors pins the input validation of Generate.
func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "nope", Hours: 1, HourSeconds: 1}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Generate(Spec{Name: "azure"}); err == nil {
		t.Fatal("zero-hours spec accepted")
	}
}

// TestLegacyAdapterBitExact pins the adapter contract: workload.Generate on
// a legacy name reproduces internal/trace's timestamp sequence exactly.
func TestLegacyAdapterBitExact(t *testing.T) {
	spec := Spec{Name: "twitter", Hours: 2, HourSeconds: 10, Seed: 3}
	wt := MustGenerate(spec)
	ts := wt.Timestamps()
	want := legacyTimestamps(t, spec)
	if len(ts) != len(want) {
		t.Fatalf("adapter has %d arrivals, trace has %d", len(ts), len(want))
	}
	for i := range ts {
		if math.Float64bits(ts[i]) != math.Float64bits(want[i]) {
			t.Fatalf("timestamp %d differs: %v vs %v", i, ts[i], want[i])
		}
	}
	if len(wt.Header.Classes) != 1 || wt.Header.Classes[0] != "default" {
		t.Fatalf("legacy adapter classes = %v", wt.Header.Classes)
	}
}

// TestDefaultSpecNames pins that every listed workload has a generable
// default spec and that Names is sorted and complete.
func TestDefaultSpecNames(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		s := DefaultSpec(n)
		s.Hours, s.HourSeconds = 1, 5 // shrink, keep defaults for the rest
		if _, err := Generate(s); err != nil {
			t.Fatalf("DefaultSpec(%q) not generable: %v", n, err)
		}
	}
}
