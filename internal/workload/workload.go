// Package workload is DeepBAT's workload zoo: a versioned on-disk trace
// format ("tracev1") plus composable arrival-shape generators layered on
// internal/arrival, feeding both the discrete-event simulator and — through
// internal/replay — the real sharded gateway.
//
// A workload Trace generalizes internal/trace in three ways: every request
// carries a class (cohort, size tier, traffic stream) and a payload size in
// addition to its timestamp; the generator zoo covers scenario shapes the
// four paper traces cannot express (multi-period diurnal mixes, cohort flash
// crowds, bursts correlated across classes by a shared MMPP modulator, and
// request-size mixtures); and traces serialize to a self-describing,
// digest-checked binary or JSON file, so an experiment pinned to a trace
// file replays the exact same request stream forever.
//
// The four paper workloads (azure, twitter, alibaba, synthetic) are
// re-exported through an adapter over internal/trace: Generate with a legacy
// name produces the bit-exact timestamp sequence trace.Generate yields for
// the same spec, wrapped in single-class records. Old call sites on
// internal/trace keep working unchanged; new call sites get one namespace
// for every shape.
//
// Determinism contract: Generate is a pure function of its Spec — one seeded
// PRNG consumed in a fixed order, no wall clock, no map iteration — so the
// same spec produces byte-identical encoded traces on any machine. The
// golden-byte tests in this package pin that contract per generator.
package workload

//deepbat:deterministic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepbat/internal/trace"
)

// Version is the trace format version this package reads and writes.
const Version = 1

// Spec configures one synthesis. Hours/HourSeconds/Seed follow the
// internal/trace convention: Hours paper-hours at HourSeconds of simulated
// time each. RateRPS and Classes parameterize the new shapes and are ignored
// by the legacy adapters (their rates are fixed by the paper's figures).
type Spec struct {
	Name        string  `json:"name"`
	Hours       int     `json:"hours"`
	HourSeconds float64 `json:"hour_seconds"`
	Seed        int64   `json:"seed"`
	// RateRPS is the base mean arrival rate (0 = the shape's default).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// Classes is the request-class count for multi-class shapes
	// (0 = the shape's default; legacy shapes are single-class).
	Classes int `json:"classes,omitempty"`
}

// DefaultSpec returns the named workload's default spec. It is the single
// source of truth for per-workload defaults: the base scale comes from
// internal/trace's Default* constants (shared with the experiments lab), and
// the per-shape rate/class defaults live only here — cmd/tracegen,
// cmd/replay, and the scenarios experiment all start from this function.
func DefaultSpec(name string) Spec {
	base := trace.DefaultSpec(name)
	s := Spec{Name: base.Name, Hours: base.Hours, HourSeconds: base.HourSeconds, Seed: base.Seed}
	switch name {
	case "diurnal":
		s.RateRPS, s.Classes = 120, 1
	case "flashcrowd":
		s.RateRPS, s.Classes = 60, 2
	case "corrburst":
		s.RateRPS, s.Classes = 90, 3
	case "sizemix":
		s.RateRPS, s.Classes = 100, 3
	}
	return s
}

// Request is one trace record: an absolute arrival timestamp in seconds, a
// request class (index into Header.Classes), and a payload size in bytes.
type Request struct {
	AtS   float64 `json:"at_s"`
	Class uint8   `json:"class"`
	Size  uint32  `json:"size"`
}

// Header is the self-describing tracev1 header: the format version, the
// workload name and seed (mirrored from the spec for quick inspection), the
// full generation spec, and the class-name table records index into.
type Header struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Seed    int64    `json:"seed"`
	Spec    Spec     `json:"spec"`
	Classes []string `json:"classes"`
}

// Trace is a generated (or decoded) workload: a header plus its request
// records in non-decreasing timestamp order.
type Trace struct {
	Header Header    `json:"header"`
	Reqs   []Request `json:"requests"`
}

// Duration returns the trace horizon in seconds.
func (t *Trace) Duration() float64 {
	return float64(t.Header.Spec.Hours) * t.Header.Spec.HourSeconds
}

// Timestamps returns the arrival timestamps as a fresh slice — the view the
// qsim/replay call sites that predate request classes consume.
func (t *Trace) Timestamps() []float64 {
	out := make([]float64, len(t.Reqs))
	for i, rq := range t.Reqs {
		out[i] = rq.AtS
	}
	return out
}

// ClassName returns the class-table entry for c, or a stable placeholder for
// out-of-table indices (possible only on hand-edited JSON traces).
func (t *Trace) ClassName(c uint8) string {
	if int(c) < len(t.Header.Classes) {
		return t.Header.Classes[c]
	}
	return fmt.Sprintf("class%d", c)
}

// legacyNames are the paper's four workloads, adapted from internal/trace.
var legacyNames = []string{"azure", "twitter", "alibaba", "synthetic"}

// zooNames are the shapes native to this package.
var zooNames = []string{"corrburst", "diurnal", "flashcrowd", "sizemix"}

// Names lists every supported workload name in sorted order: the four paper
// traces plus the zoo shapes.
func Names() []string {
	out := make([]string, 0, len(legacyNames)+len(zooNames))
	out = append(out, legacyNames...)
	out = append(out, zooNames...)
	sort.Strings(out)
	return out
}

// Generate synthesizes the named workload. The result is a pure function of
// the spec.
func Generate(spec Spec) (*Trace, error) {
	if spec.Hours <= 0 || spec.HourSeconds <= 0 {
		return nil, fmt.Errorf("workload: spec needs positive Hours and HourSeconds, got %d x %g", spec.Hours, spec.HourSeconds)
	}
	switch spec.Name {
	case "azure", "twitter", "alibaba", "synthetic":
		return genLegacy(spec)
	case "diurnal":
		return genDiurnal(spec)
	case "flashcrowd":
		return genFlashCrowd(spec)
	case "corrburst":
		return genCorrBurst(spec)
	case "sizemix":
		return genSizeMix(spec)
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (want one of %v)", spec.Name, Names())
	}
}

// MustGenerate is Generate for known-good specs; it panics on error.
func MustGenerate(spec Spec) *Trace {
	t, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// newTrace builds the trace skeleton for a spec and its class table.
func newTrace(spec Spec, classes []string) *Trace {
	return &Trace{Header: Header{
		Version: Version,
		Name:    spec.Name,
		Seed:    spec.Seed,
		Spec:    spec,
		Classes: classes,
	}}
}

// sizeFor draws a per-request payload size around a class's nominal size:
// uniform in [0.75, 1.25) of the base, deterministic from the shared PRNG.
func sizeFor(rng *rand.Rand, base float64) uint32 {
	return uint32(base * (0.75 + 0.5*rng.Float64()))
}

// sortReqs orders records by timestamp. The sort is stable, so records with
// equal timestamps keep their deterministic generation order and the result
// is a pure function of the inputs.
func sortReqs(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].AtS < reqs[j].AtS })
}

// rate0 substitutes a shape's default base rate for an unset spec rate.
func rate0(spec Spec, def float64) float64 {
	if spec.RateRPS > 0 {
		return spec.RateRPS
	}
	return def
}

// classes0 substitutes a shape's default class count, clamped to the uint8
// record field and a floor of 1.
func classes0(spec Spec, def int) int {
	n := spec.Classes
	if n <= 0 {
		n = def
	}
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	return n
}

// validate checks the invariants every generator (and every accepted decode)
// guarantees: header version, class table covering every record, and
// non-decreasing timestamps inside the horizon.
func (t *Trace) validate() error {
	if t.Header.Version != Version {
		return fmt.Errorf("%w: version %d (support %d)", ErrFormat, t.Header.Version, Version)
	}
	if len(t.Header.Classes) == 0 || len(t.Header.Classes) > 256 {
		return fmt.Errorf("%w: class table has %d entries", ErrFormat, len(t.Header.Classes))
	}
	prev := math.Inf(-1)
	for i, rq := range t.Reqs {
		if int(rq.Class) >= len(t.Header.Classes) {
			return fmt.Errorf("%w: record %d references class %d of %d", ErrFormat, i, rq.Class, len(t.Header.Classes))
		}
		if rq.AtS < prev {
			return fmt.Errorf("%w: record %d out of time order (%g after %g)", ErrFormat, i, rq.AtS, prev)
		}
		if math.IsNaN(rq.AtS) || math.IsInf(rq.AtS, 0) || rq.AtS < 0 {
			return fmt.Errorf("%w: record %d has invalid timestamp %g", ErrFormat, i, rq.AtS)
		}
		prev = rq.AtS
	}
	return nil
}
