package workload

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the binary decoder. Two properties
// hold for every input: the decoder never panics (bad inputs fail with
// ErrFormat), and any input it accepts round-trips bit-identically through
// EncodeBytes — i.e. the accepted language is exactly the canonical
// encoding. Wired into `make fuzz`.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DBTRACE1"))
	for _, spec := range []Spec{
		{Name: "azure", Hours: 1, HourSeconds: 5, Seed: 1},
		{Name: "corrburst", Hours: 1, HourSeconds: 5, Seed: 2},
		{Name: "sizemix", Hours: 1, HourSeconds: 5, Seed: 3},
	} {
		data, err := EncodeBytes(MustGenerate(spec))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A corrupted variant to seed the error paths.
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBytes(data)
		if err != nil {
			return
		}
		again, err := EncodeBytes(tr)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("accepted input does not round-trip: %d in, %d out", len(data), len(again))
		}
	})
}
