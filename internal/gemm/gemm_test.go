package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// raggedShapes stresses every panel configuration: widths below, at, and
// straddling panelWidth, single rows/columns, and sizes with ragged last
// tiles.
var raggedShapes = []struct{ n, k, m int }{
	{1, 1, 1},
	{1, 3, 7},
	{2, 5, 8},
	{3, 4, 9},
	{5, 2, 15},
	{7, 7, 16},
	{4, 9, 17},
	{13, 5, 11},
	{16, 16, 16},
	{31, 32, 33},
	{10, 64, 63},
	{6, 128, 40},
}

func randMat(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// sparsify zeroes a fraction of entries so the skip-on-zero path is
// exercised (ReLU activations make zero inputs common in practice).
func sparsify(rng *rand.Rand, xs []float64, frac float64) {
	for i := range xs {
		if rng.Float64() < frac {
			xs[i] = 0
		}
	}
}

// TestBlockedMatchesNaiveBitwise pins the package contract: the packed
// blocked kernel produces bit-identical output to the reference kernel for
// every shape, including ragged column tiles, and for sparse inputs.
func TestBlockedMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, s := range raggedShapes {
		for _, frac := range []float64{0, 0.3} {
			a := randMat(rng, s.n*s.k)
			b := randMat(rng, s.k*s.m)
			sparsify(rng, a, frac)

			want := make([]float64, s.n*s.m)
			Naive(want, a, b, 0, s.n, s.k, s.m)

			packed := make([]float64, PackedLen(s.k, s.m))
			Pack(packed, b, s.k, s.m)
			got := make([]float64, s.n*s.m)
			Blocked(got, a, packed, 0, s.n, s.k, s.m)

			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("shape %v sparsity %g: cell %d = %v, want %v (bitwise)",
						s, frac, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBlockedRowRanges checks that computing the product in disjoint row
// ranges (as the parallel caller does) covers exactly the rows asked for
// and matches the full-range result bitwise.
func TestBlockedRowRanges(t *testing.T) {
	const n, k, m = 9, 6, 13
	rng := rand.New(rand.NewSource(42))
	a := randMat(rng, n*k)
	b := randMat(rng, k*m)
	packed := make([]float64, PackedLen(k, m))
	Pack(packed, b, k, m)

	want := make([]float64, n*m)
	Blocked(want, a, packed, 0, n, k, m)

	got := make([]float64, n*m)
	for _, split := range []int{0, 1, 4, n} {
		for i := range got {
			got[i] = math.NaN()
		}
		Blocked(got, a, packed, 0, split, k, m)
		Blocked(got, a, packed, split, n, k, m)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("split %d: cell %d = %v, want %v", split, i, got[i], want[i])
			}
		}
	}
}

// TestBlockedSpecialValues covers the IEEE edge cases the skip-on-zero rule
// exists for: a zero A entry against an infinite B entry must be skipped
// (not produce NaN), negative zeros must round-trip, and NaNs must
// propagate identically through both kernels.
func TestBlockedSpecialValues(t *testing.T) {
	const n, k, m = 2, 3, 9
	a := []float64{
		0, 1, math.Copysign(0, -1),
		2, math.NaN(), 0.5,
	}
	b := make([]float64, k*m)
	for i := range b {
		b[i] = float64(i) - 10
	}
	b[0] = math.Inf(1)
	b[m] = math.Copysign(0, -1)
	b[2*m+1] = math.Inf(-1)

	want := make([]float64, n*m)
	Naive(want, a, b, 0, n, k, m)
	packed := make([]float64, PackedLen(k, m))
	Pack(packed, b, k, m)
	got := make([]float64, n*m)
	Blocked(got, a, packed, 0, n, k, m)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("cell %d = %v (bits %x), want %v (bits %x)",
				i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestPackLayout pins the panel layout documented on Pack.
func TestPackLayout(t *testing.T) {
	const k, m = 3, 10 // one full tile of 8, one ragged tile of 2
	b := make([]float64, k*m)
	for i := range b {
		b[i] = float64(i)
	}
	packed := make([]float64, PackedLen(k, m))
	Pack(packed, b, k, m)
	for c0 := 0; c0 < m; c0 += panelWidth {
		w := m - c0
		if w > panelWidth {
			w = panelWidth
		}
		for j := 0; j < k; j++ {
			for cc := 0; cc < w; cc++ {
				want := b[j*m+c0+cc]
				got := packed[c0*k+j*w+cc]
				if got != want {
					t.Fatalf("panel c0=%d j=%d cc=%d: got %v want %v", c0, j, cc, got, want)
				}
			}
		}
	}
}

// FuzzBlockedMatchesNaive fuzzes shapes and data seeds, asserting bitwise
// kernel equivalence on every input the engine invents.
func FuzzBlockedMatchesNaive(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(17), false)
	f.Add(int64(9), uint8(16), uint8(8), uint8(8), true)
	f.Add(int64(77), uint8(1), uint8(1), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed int64, nr, kr, mr uint8, sparse bool) {
		n, k, m := int(nr%24)+1, int(kr%24)+1, int(mr%24)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, n*k)
		b := randMat(rng, k*m)
		if sparse {
			sparsify(rng, a, 0.5)
			sparsify(rng, b, 0.2)
		}
		want := make([]float64, n*m)
		Naive(want, a, b, 0, n, k, m)
		packed := make([]float64, PackedLen(k, m))
		Pack(packed, b, k, m)
		got := make([]float64, n*m)
		Blocked(got, a, packed, 0, n, k, m)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d k=%d m=%d: cell %d = %v, want %v (bitwise)", n, k, m, i, got[i], want[i])
			}
		}
	})
}

func BenchmarkNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 256*256)
	y := randMat(rng, 256*256)
	dst := make([]float64, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Naive(dst, x, y, 0, 256, 256, 256)
	}
}

func BenchmarkBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 256*256)
	y := randMat(rng, 256*256)
	packed := make([]float64, PackedLen(256, 256))
	dst := make([]float64, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(packed, y, 256, 256)
		Blocked(dst, x, packed, 0, 256, 256, 256)
	}
}
