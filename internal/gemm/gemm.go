// Package gemm holds the dense row-major matrix-multiply inner kernels
// shared by internal/tensor (the autograd engine's MatMul) and
// internal/linalg (the MAP machinery's Mul). Two kernels are provided:
//
//   - Naive: the retained reference kernel, an ikj triple loop that streams
//     B row-wise. It defines the repo's floating-point contract for matrix
//     products: each output cell (i, c) accumulates a[i][j]*b[j][c] over j
//     in ascending order, skipping terms whose a[i][j] is exactly zero.
//
//   - Blocked: the fast kernel — B is packed once into contiguous column
//     panels (the transposed-panel layout of classical GEBP blocking) and
//     the product is computed panel by panel with a register-tiled micro
//     kernel that keeps panelWidth accumulators live per A row.
//
// Blocked is bit-identical to Naive by construction, not by tolerance: for
// every output cell it performs the exact same sequence of IEEE-754
// multiply and add operations on the exact same values (the k-innermost
// ascending summation order and the skip-on-zero of the reference kernel
// are both preserved; only the association of loop levels around that
// per-cell sequence changes). The package's tests pin this bitwise, across
// ragged shapes that do not divide the panel width.
//
//deepbat:deterministic
package gemm

// panelWidth is the register-tile width of the micro kernel: the number of
// output columns (and accumulators) processed per pass over a row of A.
// Eight float64 accumulators fit comfortably in registers on amd64/arm64
// and give the dependent-add chains enough instruction-level parallelism to
// hide floating-point add latency.
const panelWidth = 8

// BlockedThreshold is the multiply-add volume (n*k*m) above which Blocked
// is expected to beat Naive (below it, the packing pass and panel
// bookkeeping dominate). Callers dispatching between kernels use it;
// because the kernels are bit-identical the cutoff affects speed only.
const BlockedThreshold = 1 << 15

// Naive computes dst = A (n×k) × B (k×m) for rows [lo, hi) of the output
// with the reference ikj loop: row-wise streaming of B, per-cell ascending
// summation over j, skipping zero A entries. dst rows in [lo, hi) are
// overwritten.
//
//deepbat:hotpath
func Naive(dst, a, b []float64, lo, hi, k, m int) {
	for i := lo; i < hi; i++ {
		dOff := i * m
		aOff := i * k
		row := dst[dOff : dOff+m]
		for c := range row {
			row[c] = 0
		}
		for j := 0; j < k; j++ {
			av := a[aOff+j]
			if av == 0 {
				continue
			}
			bOff := j * m
			for c := 0; c < m; c++ {
				row[c] += av * b[bOff+c]
			}
		}
	}
}

// PackedLen returns the scratch length Pack needs for a k×m matrix. The
// packed layout is exactly k*m floats (a permutation of B), so callers can
// reuse one buffer across equally sized products.
func PackedLen(k, m int) int { return k * m }

// Pack copies the k×m matrix b into dst in column-panel order: the columns
// are split into tiles of panelWidth (the last tile may be ragged), and
// tile t (covering columns [c0, c0+w)) occupies dst[c0*k : (c0+w)*k] in
// row-major (j, cc) order — dst[c0*k + j*w + cc] = b[j*m + c0 + cc]. Within
// a panel every micro-kernel step j reads w contiguous floats, so the fast
// kernel streams one buffer linearly instead of striding across B.
//
//deepbat:hotpath
func Pack(dst, b []float64, k, m int) {
	if len(dst) < k*m {
		panic("gemm: Pack scratch too small")
	}
	for c0 := 0; c0 < m; c0 += panelWidth {
		w := m - c0
		if w > panelWidth {
			w = panelWidth
		}
		panel := dst[c0*k : c0*k+w*k]
		for j := 0; j < k; j++ {
			src := b[j*m+c0 : j*m+c0+w]
			copy(panel[j*w:j*w+w], src)
		}
	}
}

// Blocked computes dst = A (n×k) × B (k×m) for rows [lo, hi) of the output
// from a packed copy of B (see Pack). It is bit-identical to Naive over the
// same rows. packed is read-only, so one packed buffer may be shared by
// concurrent row-range workers.
//
//deepbat:hotpath
func Blocked(dst, a, packed []float64, lo, hi, k, m int) {
	for c0 := 0; c0 < m; c0 += panelWidth {
		w := m - c0
		if w > panelWidth {
			w = panelWidth
		}
		panel := packed[c0*k : c0*k+w*k]
		if w == panelWidth {
			for i := lo; i < hi; i++ {
				mulPanel8(dst[i*m+c0:i*m+c0+panelWidth], a[i*k:i*k+k], panel)
			}
		} else {
			for i := lo; i < hi; i++ {
				mulPanelW(dst[i*m+c0:i*m+c0+w], a[i*k:i*k+k], panel, w)
			}
		}
	}
}

// mulPanel8 computes one full-width micro-kernel tile: dst[0..7] =
// sum_j a[j] * panel[j*8 + 0..7], accumulating in ascending j with one
// separately rounded add per term, exactly as the reference kernel does
// cell by cell. The eight accumulators live in registers, so the inner loop
// performs no loads or stores against dst.
func mulPanel8(dst, a, panel []float64) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	for j, av := range a {
		if av == 0 {
			continue
		}
		p := panel[j*panelWidth : j*panelWidth+panelWidth : j*panelWidth+panelWidth]
		s0 += av * p[0]
		s1 += av * p[1]
		s2 += av * p[2]
		s3 += av * p[3]
		s4 += av * p[4]
		s5 += av * p[5]
		s6 += av * p[6]
		s7 += av * p[7]
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
	dst[4], dst[5], dst[6], dst[7] = s4, s5, s6, s7
}

// mulPanelW is the ragged-tile micro kernel for the last column tile when m
// is not a multiple of panelWidth (w < panelWidth accumulators, held in a
// small stack array).
func mulPanelW(dst, a, panel []float64, w int) {
	var acc [panelWidth]float64
	for j, av := range a {
		if av == 0 {
			continue
		}
		p := panel[j*w : j*w+w]
		for cc, pv := range p {
			acc[cc] += av * pv
		}
	}
	copy(dst, acc[:w])
}
