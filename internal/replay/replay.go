// Package replay drives the real gateway hot path (gateway.Submit / Do, not
// the discrete-event simulator) from a recorded workload trace on an
// injected manual clock.
//
// The driver is single-threaded and fully virtual-time: arrivals are taken
// from the trace (optionally compressed by a time-scale factor), the
// gateway runs with Config.VirtualTimers so batch timeouts fire exactly at
// their modeled instants via NextFlushDeadline/FlushDue, and a clock-
// advancing backend charges each invocation's deterministic service time to
// the same clock. The result: every latency, dispatch cause, and cost in
// the report is a pure function of (trace bytes, replay config) — the same
// trace file and seed produce byte-identical reports across runs, machines,
// and GOMAXPROCS values. That is the property `make replay-smoke` pins in
// CI and the scenarios experiment builds its tables on.
//
// In keeping with the noprint rule this package only returns Report values
// and renders them to an io.Writer on request; printing belongs to
// cmd/replay.
package replay

//deepbat:deterministic

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
	"deepbat/internal/workload"
)

// Config parameterizes one replay run against a fresh gateway.
type Config struct {
	// Trace is the workload to replay (required).
	Trace *workload.Trace
	// Initial is the serving configuration (zero value: 2048 MB, B=4,
	// T=0.1 s — a batching configuration, so the virtual-timer path is
	// actually exercised).
	Initial lambda.Config
	// Shards is the gateway shard count (0 = GOMAXPROCS). Reports are
	// deterministic at any value; they change with it, so comparable runs
	// pin it.
	Shards int
	// SLO is the latency objective goodput and violations are judged
	// against, in seconds (0 = no goodput accounting).
	SLO float64
	// TimeScale compresses trace time: arrival timestamps are divided by
	// it, so 2.0 replays the trace at twice the recorded rate against
	// unchanged service times — a load-stress knob, not a wall-time one
	// (replay is virtual-time and never sleeps). 0 means 1.0.
	TimeScale float64
	// WindowS is the report window length in replayed (scaled) seconds
	// (0 = 60).
	WindowS float64
	// Fault, when active, injects backend faults with this plan through a
	// fault.FaultyBackend (outcome of invocation i is a pure function of
	// the plan).
	Fault fault.Plan
	// Resilience configures the gateway's retries/deadlines/breaker for
	// the run (zero value: all disabled). Leave Jitter nil to keep the
	// replay deterministic.
	Resilience gateway.Resilience
	// Obs, when non-nil, is the registry the gateway records into; inject
	// one to capture the run's full metric snapshot alongside the report.
	Obs *obs.Registry
	// Cache, when non-nil, memoizes trace-derived views (notably the O(n)
	// tracev1 digest re-encode) across runs — the sweep engine's cells share
	// one so a 40-cell matrix digests each trace once, not once per cell.
	// Reports are byte-identical with or without it.
	Cache *workload.Cache
}

// Window is one report row: requests are assigned to windows by their
// (scaled) arrival time.
type Window struct {
	StartS        float64 `json:"start_s"`
	EndS          float64 `json:"end_s"`
	Arrivals      int     `json:"arrivals"`
	Served        int     `json:"served"`
	Failed        int     `json:"failed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	CostUSD       float64 `json:"cost_usd"`
}

// Report is the outcome of one replay: provenance (trace name, seed, and
// tracev1 digest), the run configuration, per-window rows, and run totals.
type Report struct {
	Trace       string   `json:"trace"`
	Seed        int64    `json:"seed"`
	TraceDigest string   `json:"trace_digest"`
	Requests    int      `json:"requests"`
	Config      string   `json:"config"`
	Shards      int      `json:"shards"`
	SLO         float64  `json:"slo_s"`
	TimeScale   float64  `json:"time_scale"`
	WindowS     float64  `json:"window_s"`
	Windows     []Window `json:"windows"`
	Totals      Window   `json:"totals"`
	Invocations int      `json:"invocations"`
	CostUSD     float64  `json:"cost_usd"`
}

// clockBackend charges each successful invocation's (possibly fault-
// inflated) duration to the replay clock, so end-to-end latencies read
// batching delay + service time in virtual seconds. Failed attempts do not
// advance time: retries re-execute at the same instant, keeping the run a
// pure function of the trace and plan.
type clockBackend struct {
	inner gateway.Backend
	clock *obs.ManualClock
}

func (b clockBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	dur, cost, err := b.inner.Execute(cfg, batchSize)
	if err == nil {
		b.clock.Advance(dur.Seconds())
	}
	return dur, cost, err
}

func (c Config) initial() lambda.Config {
	if c.Initial.Valid() {
		return c.Initial
	}
	return lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.1}
}

func (c Config) timeScale() float64 {
	if c.TimeScale > 0 {
		return c.TimeScale
	}
	return 1
}

func (c Config) windowS() float64 {
	if c.WindowS > 0 {
		return c.WindowS
	}
	return 60
}

func (c Config) digest() (uint64, error) {
	if c.Cache != nil {
		return c.Cache.Digest(c.Trace)
	}
	return workload.Digest(c.Trace)
}

// scratch is the per-run working set Run needs besides the Report itself:
// one handle and one arrival stamp per request, the latency accumulators the
// percentiles are computed from, and the per-window latency buckets. None of
// it survives the run, so sweeps recycle it through scratchPool instead of
// re-allocating trace-sized slices for every cell.
type scratch struct {
	handles []gateway.Handle
	arrive  []float64
	all     []float64
	perWin  [][]float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch sized for nreq requests, with every slice
// length-set and logically empty; reused capacity is overwritten or appended
// past, never read.
func getScratch(nreq int) *scratch {
	s := scratchPool.Get().(*scratch)
	if cap(s.handles) < nreq {
		s.handles = make([]gateway.Handle, nreq)
	}
	if cap(s.arrive) < nreq {
		s.arrive = make([]float64, nreq)
	}
	s.handles = s.handles[:nreq]
	s.arrive = s.arrive[:nreq]
	s.all = s.all[:0]
	return s
}

// winBuckets returns nwin logically empty per-window latency buckets,
// reusing the capacity of previous runs' buckets.
func (s *scratch) winBuckets(nwin int) [][]float64 {
	if cap(s.perWin) < nwin {
		s.perWin = append(s.perWin[:cap(s.perWin)], make([][]float64, nwin-cap(s.perWin))...)
	}
	s.perWin = s.perWin[:nwin]
	for i := range s.perWin {
		s.perWin[i] = s.perWin[i][:0]
	}
	return s.perWin
}

// putScratch returns the working set to the pool. Handles are cleared so the
// pool does not pin resolved gateway responses between runs.
func putScratch(s *scratch) {
	for i := range s.handles {
		s.handles[i] = gateway.Handle{}
	}
	scratchPool.Put(s)
}

// Run replays the trace and returns its report.
func Run(c Config) (Report, error) {
	if c.Trace == nil {
		return Report{}, errors.New("replay: Config.Trace is required")
	}
	if len(c.Trace.Reqs) == 0 {
		return Report{}, errors.New("replay: trace has no requests")
	}
	digest, err := c.digest()
	if err != nil {
		return Report{}, fmt.Errorf("replay: %w", err)
	}
	ts := c.timeScale()
	clock := &obs.ManualClock{}
	var inner gateway.Backend = gateway.SimulatedBackend{
		Profile: lambda.DefaultProfile(),
		Pricing: lambda.DefaultPricing(),
	}
	if c.Fault.Active() {
		inner = &fault.FaultyBackend{Inner: inner, Inj: fault.NewInjector(c.Fault)}
	}
	initial := c.initial()
	g, err := gateway.New(clockBackend{inner: inner, clock: clock}, nil, gateway.Config{
		Initial:       initial,
		SLO:           c.SLO,
		Clock:         clock,
		Obs:           c.Obs,
		Resilience:    c.Resilience,
		Shards:        c.Shards,
		VirtualTimers: true,
	})
	if err != nil {
		return Report{}, fmt.Errorf("replay: %w", err)
	}

	// Drive trace time through the gateway: before each arrival, honour
	// every virtual batch timeout due at or before it (clock jumps to the
	// deadline, the shard's batch dispatches with causeTimeout, and the
	// backend advance is then superseded by the next Set), then stamp the
	// arrival and submit on the pooled hot path.
	reqs := c.Trace.Reqs
	s := getScratch(len(reqs))
	defer putScratch(s)
	handles, arrive := s.handles, s.arrive
	for i, rq := range reqs {
		at := rq.AtS / ts
		flushUntil(g, clock, at)
		clock.Set(at)
		arrive[i] = at
		handles[i] = g.Submit()
	}
	end := c.Trace.Duration() / ts
	if last := arrive[len(arrive)-1]; last > end {
		end = last
	}
	flushUntil(g, clock, end)
	if clock.Now() < end {
		clock.Set(end)
	}
	g.Stop() // drains the remaining partial batches in shard order

	// Fold responses into windows by arrival time. Handles resolve in
	// submission order; responses were delivered during dispatch (buffered
	// channels / direct writes), so Wait never blocks here.
	win := c.windowS()
	n := int(end/win) + 1
	windows := make([]Window, n) // escapes into the Report; never pooled
	all := s.all
	perWin := s.winBuckets(n)
	sloMS := c.SLO * 1000
	var totals Window
	for i, h := range handles {
		resp := h.Wait()
		w := int(arrive[i] / win)
		if w >= n {
			w = n - 1
		}
		wd := &windows[w]
		wd.Arrivals++
		totals.Arrivals++
		if resp.Error != "" {
			wd.Failed++
			totals.Failed++
			continue
		}
		wd.Served++
		totals.Served++
		wd.CostUSD += resp.CostUSD
		perWin[w] = append(perWin[w], resp.LatencyMS)
		all = append(all, resp.LatencyMS)
		if sloMS <= 0 || resp.LatencyMS <= sloMS {
			wd.GoodputRPS++ // counts; converted to a rate below
			totals.GoodputRPS++
		}
	}
	for w := range windows {
		wd := &windows[w]
		wd.StartS = float64(w) * win
		wd.EndS = wd.StartS + win
		if wd.EndS > end {
			wd.EndS = end
		}
		span := wd.EndS - wd.StartS
		if span > 0 {
			wd.ThroughputRPS = float64(wd.Served) / span
			wd.GoodputRPS /= span
		} else {
			wd.GoodputRPS = 0
		}
		wd.P50MS, _ = stats.Percentile(perWin[w], 50)
		wd.P95MS, _ = stats.Percentile(perWin[w], 95)
		wd.P99MS, _ = stats.Percentile(perWin[w], 99)
	}
	totals.StartS, totals.EndS = 0, end
	if end > 0 {
		totals.ThroughputRPS = float64(totals.Served) / end
		totals.GoodputRPS /= end
	} else {
		totals.GoodputRPS = 0
	}
	totals.P50MS, _ = stats.Percentile(all, 50)
	totals.P95MS, _ = stats.Percentile(all, 95)
	totals.P99MS, _ = stats.Percentile(all, 99)
	s.all = all // keep capacity grown by appends for the next pooled run
	st := g.Stats()
	totals.CostUSD = st.TotalCostUSD

	return Report{
		Trace:       c.Trace.Header.Name,
		Seed:        c.Trace.Header.Seed,
		TraceDigest: fmt.Sprintf("%016x", digest),
		Requests:    len(reqs),
		Config:      initial.String(),
		Shards:      g.Shards(),
		SLO:         c.SLO,
		TimeScale:   ts,
		WindowS:     win,
		Windows:     windows,
		Totals:      totals,
		Invocations: st.Invocations,
		CostUSD:     st.TotalCostUSD,
	}, nil
}

// flushUntil dispatches every virtual batch timeout due at or before t, in
// deadline order (ties broken by shard order inside FlushDue).
func flushUntil(g *gateway.Gateway, clock *obs.ManualClock, t float64) {
	for {
		d, ok := g.NextFlushDeadline()
		if !ok || d > t {
			return
		}
		clock.Set(d)
		g.FlushDue()
	}
}

// WriteText renders the report as a fixed-format text table — the byte-
// reproducible document replay-smoke compares across runs.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"replay %s seed=%d digest=%s requests=%d config=%s shards=%d slo=%.3fs scale=%.2fx window=%.0fs\n",
		r.Trace, r.Seed, r.TraceDigest, r.Requests, r.Config, r.Shards, r.SLO, r.TimeScale, r.WindowS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s %8s %8s %8s %10s %10s %9s %9s %9s %12s\n",
		"window_s", "arrive", "served", "failed", "thru_rps", "good_rps", "p50_ms", "p95_ms", "p99_ms", "cost_usd"); err != nil {
		return err
	}
	row := func(label string, d Window) error {
		_, err := fmt.Fprintf(w, "%10s %8d %8d %8d %10.2f %10.2f %9.2f %9.2f %9.2f %12.6f\n",
			label, d.Arrivals, d.Served, d.Failed, d.ThroughputRPS, d.GoodputRPS, d.P50MS, d.P95MS, d.P99MS, d.CostUSD)
		return err
	}
	for _, d := range r.Windows {
		if err := row(fmt.Sprintf("%.0f", d.StartS), d); err != nil {
			return err
		}
	}
	if err := row("total", r.Totals); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "invocations=%d total_cost_usd=%.6f\n", r.Invocations, r.CostUSD)
	return err
}
