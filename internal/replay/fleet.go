package replay

import (
	"errors"
	"fmt"
	"io"

	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
	"deepbat/internal/workload"
)

// FleetConfig parameterizes one class-labeled replay through a fleet front
// door: every trace class routes to the plan class of the same name, each
// function group runs the real sharded gateway hot path on the shared manual
// clock, and the per-class SLOs come from the plan.
type FleetConfig struct {
	// Trace is the workload to replay (required). Every class in the trace
	// header must name a plan class.
	Trace *workload.Trace
	// Plan declares the fleet (required, validated by fleet.New).
	Plan fleet.Plan
	// Assignment overrides the plan's static grouping with an optimizer
	// result (nil = static groups with per-class initial configs).
	Assignment *fleet.Assignment
	// TimeScale compresses trace time (0 = 1.0), as in Config.TimeScale.
	TimeScale float64
	// Cache memoizes the trace digest across runs (optional).
	Cache *workload.Cache
}

// FleetClassRow is one class's outcome over the whole replay.
type FleetClassRow struct {
	Class      string  `json:"class"`
	Group      int     `json:"group"`
	SLO        float64 `json:"slo_s"`
	Arrivals   int     `json:"arrivals"`
	Served     int     `json:"served"`
	Failed     int     `json:"failed"`
	GoodputRPS float64 `json:"goodput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	CostUSD    float64 `json:"cost_usd"`
}

// FleetGroupRow is one function group's identity and serving totals.
type FleetGroupRow struct {
	Group       int     `json:"group"`
	Classes     string  `json:"classes"`
	Config      string  `json:"config"`
	SLO         float64 `json:"slo_s"`
	Invocations int     `json:"invocations"`
	CostUSD     float64 `json:"cost_usd"`
}

// FleetReport is the outcome of one fleet replay.
type FleetReport struct {
	Trace       string          `json:"trace"`
	Seed        int64           `json:"seed"`
	TraceDigest string          `json:"trace_digest"`
	Requests    int             `json:"requests"`
	TimeScale   float64         `json:"time_scale"`
	DurationS   float64         `json:"duration_s"`
	Groups      []FleetGroupRow `json:"groups"`
	Classes     []FleetClassRow `json:"classes"`
	Totals      FleetClassRow   `json:"totals"`
	Invocations int             `json:"invocations"`
	CostUSD     float64         `json:"cost_usd"`
}

// RunFleet replays a class-labeled trace through a fleet on a manual clock.
// Like Run, the whole report is a pure function of (trace bytes, plan,
// assignment): the driver is single-threaded, batch timeouts fire at their
// modeled instants via the fleet's virtual timers, and each group's backend
// charges its deterministic service time to the shared clock.
func RunFleet(c FleetConfig) (FleetReport, error) {
	if c.Trace == nil {
		return FleetReport{}, errors.New("replay: FleetConfig.Trace is required")
	}
	if len(c.Trace.Reqs) == 0 {
		return FleetReport{}, errors.New("replay: trace has no requests")
	}
	var digest uint64
	var err error
	if c.Cache != nil {
		digest, err = c.Cache.Digest(c.Trace)
	} else {
		digest, err = workload.Digest(c.Trace)
	}
	if err != nil {
		return FleetReport{}, fmt.Errorf("replay: %w", err)
	}
	// Route trace classes to plan classes by name, up front: a trace class
	// the plan does not serve is a configuration error, not a per-request
	// surprise halfway through the replay.
	classMap := make([]int, len(c.Trace.Header.Classes))
	for ti, name := range c.Trace.Header.Classes {
		ci := c.Plan.ClassIndex(name)
		if ci < 0 {
			return FleetReport{}, fmt.Errorf("replay: trace class %q is not a plan class", name)
		}
		classMap[ti] = ci
	}
	ts := 1.0
	if c.TimeScale > 0 {
		ts = c.TimeScale
	}
	clock := &obs.ManualClock{}
	f, err := fleet.New(c.Plan, fleet.Options{
		Clock:         clock,
		VirtualTimers: true,
		Assignment:    c.Assignment,
		BackendFor: func(gi int, g fleet.Group) gateway.Backend {
			lead := c.Plan.Classes[g.Classes[0]]
			for _, ci := range g.Classes[1:] {
				if c.Plan.Classes[ci].SLO < lead.SLO {
					lead = c.Plan.Classes[ci]
				}
			}
			return clockBackend{
				inner: gateway.SimulatedBackend{
					Profile: lambda.Profiles[g.Profile],
					Pricing: lead.LambdaPricing(),
				},
				clock: clock,
			}
		},
	})
	if err != nil {
		return FleetReport{}, fmt.Errorf("replay: %w", err)
	}

	reqs := c.Trace.Reqs
	handles := make([]gateway.Handle, len(reqs))
	arrive := make([]float64, len(reqs))
	classes := make([]int, len(reqs))
	for i, rq := range reqs {
		at := rq.AtS / ts
		fleetFlushUntil(f, clock, at)
		clock.Set(at)
		arrive[i] = at
		ci := classMap[rq.Class]
		classes[i] = ci
		handles[i] = f.Submit(ci)
	}
	end := c.Trace.Duration() / ts
	if last := arrive[len(arrive)-1]; last > end {
		end = last
	}
	fleetFlushUntil(f, clock, end)
	if clock.Now() < end {
		clock.Set(end)
	}
	f.Stop()

	// Fold responses per class. Handles resolve in submission order.
	rows := make([]FleetClassRow, len(c.Plan.Classes))
	perClass := make([][]float64, len(c.Plan.Classes))
	var all []float64
	var totals FleetClassRow
	good := make([]int, len(c.Plan.Classes))
	totalGood := 0
	for i, h := range handles {
		resp := h.Wait()
		ci := classes[i]
		row := &rows[ci]
		row.Arrivals++
		totals.Arrivals++
		if resp.Error != "" {
			row.Failed++
			totals.Failed++
			continue
		}
		row.Served++
		totals.Served++
		row.CostUSD += resp.CostUSD
		totals.CostUSD += resp.CostUSD
		perClass[ci] = append(perClass[ci], resp.LatencyMS)
		all = append(all, resp.LatencyMS)
		if resp.LatencyMS <= c.Plan.Classes[ci].SLO*1000 {
			good[ci]++
			totalGood++
		}
	}
	for ci := range rows {
		rows[ci].Class = c.Plan.Classes[ci].Name
		rows[ci].Group = f.GroupOf(ci)
		rows[ci].SLO = c.Plan.Classes[ci].SLO
		if end > 0 {
			rows[ci].GoodputRPS = float64(good[ci]) / end
		}
		rows[ci].P50MS, _ = stats.Percentile(perClass[ci], 50)
		rows[ci].P95MS, _ = stats.Percentile(perClass[ci], 95)
		rows[ci].P99MS, _ = stats.Percentile(perClass[ci], 99)
	}
	if end > 0 {
		totals.GoodputRPS = float64(totalGood) / end
	}
	totals.P50MS, _ = stats.Percentile(all, 50)
	totals.P95MS, _ = stats.Percentile(all, 95)
	totals.P99MS, _ = stats.Percentile(all, 99)

	rep := FleetReport{
		Trace:       c.Trace.Header.Name,
		Seed:        c.Trace.Header.Seed,
		TraceDigest: fmt.Sprintf("%016x", digest),
		Requests:    len(reqs),
		TimeScale:   ts,
		DurationS:   end,
		Classes:     rows,
		Totals:      totals,
	}
	assign := f.Assignment()
	for gi := range assign.Groups {
		grp := assign.Groups[gi]
		names := ""
		for i, ci := range grp.Classes {
			if i > 0 {
				names += "+"
			}
			names += c.Plan.Classes[ci].Name
		}
		st := f.GroupGateway(gi).Stats()
		rep.Groups = append(rep.Groups, FleetGroupRow{
			Group:       gi,
			Classes:     names,
			Config:      grp.Config.String(),
			SLO:         grp.SLO,
			Invocations: st.Invocations,
			CostUSD:     st.TotalCostUSD,
		})
		rep.Invocations += st.Invocations
		rep.CostUSD += st.TotalCostUSD
	}
	return rep, nil
}

// fleetFlushUntil dispatches every virtual batch timeout due at or before t,
// in deadline order across all groups.
func fleetFlushUntil(f *fleet.Fleet, clock *obs.ManualClock, t float64) {
	for {
		d, ok := f.NextFlushDeadline()
		if !ok || d > t {
			return
		}
		clock.Set(d)
		f.FlushDue()
	}
}

// WriteText renders the fleet report as a fixed-format text table — byte-
// reproducible run to run for the same trace and plan.
func (r FleetReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"fleet replay %s seed=%d digest=%s requests=%d classes=%d groups=%d scale=%.2fx duration=%.1fs\n",
		r.Trace, r.Seed, r.TraceDigest, r.Requests, len(r.Classes), len(r.Groups), r.TimeScale, r.DurationS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%5s %-24s %-22s %8s %12s %12s\n",
		"group", "classes", "config", "slo_ms", "invocations", "cost_usd"); err != nil {
		return err
	}
	for _, g := range r.Groups {
		if _, err := fmt.Fprintf(w, "%5d %-24s %-22s %8.1f %12d %12.6f\n",
			g.Group, g.Classes, g.Config, g.SLO*1000, g.Invocations, g.CostUSD); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-12s %5s %8s %8s %8s %8s %10s %9s %9s %9s %12s\n",
		"class", "group", "slo_ms", "arrive", "served", "failed", "good_rps", "p50_ms", "p95_ms", "p99_ms", "cost_usd"); err != nil {
		return err
	}
	row := func(label string, group string, d FleetClassRow) error {
		_, err := fmt.Fprintf(w, "%-12s %5s %8.1f %8d %8d %8d %10.2f %9.2f %9.2f %9.2f %12.6f\n",
			label, group, d.SLO*1000, d.Arrivals, d.Served, d.Failed,
			d.GoodputRPS, d.P50MS, d.P95MS, d.P99MS, d.CostUSD)
		return err
	}
	for _, d := range r.Classes {
		if err := row(d.Class, fmt.Sprintf("%d", d.Group), d); err != nil {
			return err
		}
	}
	if err := row("total", "-", r.Totals); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "invocations=%d total_cost_usd=%.6f\n", r.Invocations, r.CostUSD)
	return err
}
