package replay

import (
	"bytes"
	"strings"
	"testing"

	"deepbat/internal/fleet"
	"deepbat/internal/workload"
)

func fleetTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.Spec{
		Name: "corrburst", Hours: 1, HourSeconds: 10, Seed: 3, RateRPS: 60, Classes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func fleetPlanFor(tr *workload.Trace) fleet.Plan {
	p := fleet.Plan{Merge: true}
	slo := 0.2
	for _, name := range tr.Header.Classes {
		p.Classes = append(p.Classes, fleet.ClassSpec{Name: name, SLO: slo})
		slo *= 4
	}
	return p
}

func TestRunFleetStatic(t *testing.T) {
	tr := fleetTrace(t)
	p := fleetPlanFor(tr)
	rep, err := RunFleet(FleetConfig{Trace: tr, Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(tr.Reqs) || rep.Totals.Arrivals != len(tr.Reqs) {
		t.Fatalf("requests = %d/%d, want %d", rep.Requests, rep.Totals.Arrivals, len(tr.Reqs))
	}
	if len(rep.Classes) != 2 || len(rep.Groups) != 2 {
		t.Fatalf("classes=%d groups=%d, want 2/2 (static plan, no merge_with)", len(rep.Classes), len(rep.Groups))
	}
	sum := 0
	for _, row := range rep.Classes {
		if row.Arrivals == 0 {
			t.Errorf("class %s got no traffic", row.Class)
		}
		if row.Served+row.Failed != row.Arrivals {
			t.Errorf("class %s: served %d + failed %d != arrivals %d", row.Class, row.Served, row.Failed, row.Arrivals)
		}
		sum += row.Arrivals
	}
	if sum != rep.Requests {
		t.Fatalf("per-class arrivals sum %d != %d", sum, rep.Requests)
	}
	if rep.Totals.Failed != 0 {
		t.Fatalf("clean backend failed %d requests", rep.Totals.Failed)
	}
	if rep.CostUSD <= 0 || rep.Invocations <= 0 {
		t.Fatalf("cost=%g invocations=%d, want positive", rep.CostUSD, rep.Invocations)
	}
}

// TestRunFleetDeterministic pins byte-level reproducibility: two runs of the
// same trace + plan render identical text reports, including under an
// optimizer assignment computed at different worker counts.
func TestRunFleetDeterministic(t *testing.T) {
	tr := fleetTrace(t)
	p := fleetPlanFor(tr)
	windows := make([][]float64, len(p.Classes))
	for _, rq := range tr.Reqs {
		windows[rq.Class] = append(windows[rq.Class], rq.AtS)
	}
	render := func(workers int) []byte {
		a, err := fleet.Optimize(p, windows, fleet.OptimizerConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunFleet(FleetConfig{Trace: tr, Plan: p, Assignment: a})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(1), render(4)
	if !bytes.Equal(a, b) {
		t.Errorf("fleet replay reports differ across optimizer worker counts:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), "fleet replay corrburst") {
		t.Errorf("report header missing:\n%s", a)
	}
}

// TestRunFleetMergedAssignment replays under a merged grouping and checks
// the group table reflects it.
func TestRunFleetMergedAssignment(t *testing.T) {
	tr := fleetTrace(t)
	p := fleetPlanFor(tr)
	windows := make([][]float64, len(p.Classes))
	for _, rq := range tr.Reqs {
		windows[rq.Class] = append(windows[rq.Class], rq.AtS)
	}
	a, err := fleet.Optimize(p, windows, fleet.OptimizerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFleet(FleetConfig{Trace: tr, Plan: p, Assignment: a})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != len(a.Groups) {
		t.Fatalf("report groups = %d, assignment has %d", len(rep.Groups), len(a.Groups))
	}
	if len(a.Groups) == 1 && !strings.Contains(rep.Groups[0].Classes, "+") {
		t.Errorf("merged group label = %q, want joined class names", rep.Groups[0].Classes)
	}
}

func TestRunFleetTimeScale(t *testing.T) {
	tr := fleetTrace(t)
	p := fleetPlanFor(tr)
	full, err := RunFleet(FleetConfig{Trace: tr, Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	half, err := RunFleet(FleetConfig{Trace: tr, Plan: p, TimeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if half.DurationS >= full.DurationS {
		t.Fatalf("scale 2 duration %.2f not below scale 1 duration %.2f", half.DurationS, full.DurationS)
	}
}

func TestRunFleetErrors(t *testing.T) {
	tr := fleetTrace(t)
	if _, err := RunFleet(FleetConfig{Plan: fleetPlanFor(tr)}); err == nil {
		t.Error("want error for nil trace")
	}
	empty := *tr
	empty.Reqs = nil
	if _, err := RunFleet(FleetConfig{Trace: &empty, Plan: fleetPlanFor(tr)}); err == nil {
		t.Error("want error for empty trace")
	}
	// A trace class the plan does not serve is a configuration error.
	short := fleet.Plan{Classes: []fleet.ClassSpec{{Name: tr.Header.Classes[0], SLO: 0.2}}}
	if _, err := RunFleet(FleetConfig{Trace: tr, Plan: short}); err == nil ||
		!strings.Contains(err.Error(), "not a plan class") {
		t.Errorf("missing class = %v, want routing error", err)
	}
	// An invalid plan is rejected before any replay work.
	bad := fleetPlanFor(tr)
	bad.Classes[0].SLO = -1
	if _, err := RunFleet(FleetConfig{Trace: tr, Plan: bad}); err == nil {
		t.Error("want error for invalid plan")
	}
}

func TestRunFleetWithCache(t *testing.T) {
	tr := fleetTrace(t)
	p := fleetPlanFor(tr)
	cache := workload.NewCache()
	a, err := RunFleet(FleetConfig{Trace: tr, Plan: p, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(FleetConfig{Trace: tr, Plan: p, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest || a.TraceDigest == "" {
		t.Fatalf("cached digests %q vs %q", a.TraceDigest, b.TraceDigest)
	}
}
