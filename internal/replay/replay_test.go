package replay

import (
	"bytes"
	"testing"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/workload"
)

func testTrace(t *testing.T, name string) *workload.Trace {
	t.Helper()
	spec := workload.DefaultSpec(name)
	spec.Hours, spec.HourSeconds = 2, 10
	tr, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func render(t *testing.T, r Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportByteIdentical is the core replay contract: the same trace and
// config produce byte-identical rendered reports across runs — including
// with sharding, fault injection, and retries on.
func TestReportByteIdentical(t *testing.T) {
	tr := testTrace(t, "flashcrowd")
	cfg := Config{
		Trace:      tr,
		Shards:     4,
		SLO:        0.1,
		WindowS:    5,
		Fault:      fault.Plan{Seed: 3, ErrorRate: 0.1, StragglerRate: 0.1},
		Resilience: gateway.Resilience{MaxRetries: 1},
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := render(t, r1), render(t, r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same trace + config, different reports:\n%s\n---\n%s", b1, b2)
	}
	if r1.Totals.Served+r1.Totals.Failed != len(tr.Reqs) {
		t.Fatalf("served %d + failed %d != %d requests",
			r1.Totals.Served, r1.Totals.Failed, len(tr.Reqs))
	}
	if r1.Totals.Failed == 0 {
		t.Fatal("expected some failures at 10% error rate with one retry")
	}
}

// TestVirtualTimeoutsFire pins that the virtual-timer path actually
// dispatches by timeout: sparse arrivals against a large batch size must
// produce timeout dispatches (not just the Stop flush), observable on the
// gateway_dispatch_timeout_total counter and in every request being served.
func TestVirtualTimeoutsFire(t *testing.T) {
	tr := testTrace(t, "azure")
	reg := obs.NewRegistry()
	r, err := Run(Config{
		Trace:   tr,
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 64, TimeoutS: 0.05},
		Shards:  1,
		SLO:     0.5,
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Totals.Served != len(tr.Reqs) {
		t.Fatalf("served %d of %d", r.Totals.Served, len(tr.Reqs))
	}
	timeouts := -1.0
	for _, s := range reg.Snapshot().Series {
		if s.Name == "gateway_dispatch_timeout_total" {
			timeouts = s.Value
		}
	}
	if timeouts < 0 {
		t.Fatal("snapshot missing gateway_dispatch_timeout_total")
	}
	if timeouts < 1 {
		t.Fatal("no timeout dispatches: the virtual-timer path never fired")
	}
}

// TestTimeScaleCompresses pins the -scale semantics: doubling TimeScale
// halves the replayed horizon and roughly doubles offered load.
func TestTimeScaleCompresses(t *testing.T) {
	tr := testTrace(t, "sizemix")
	base, err := Run(Config{Trace: tr, Shards: 1, SLO: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(Config{Trace: tr, Shards: 1, SLO: 0.1, TimeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Totals.EndS >= base.Totals.EndS {
		t.Fatalf("scale 2 horizon %.2fs not shorter than %.2fs", fast.Totals.EndS, base.Totals.EndS)
	}
	if fast.Totals.ThroughputRPS <= base.Totals.ThroughputRPS {
		t.Fatalf("scale 2 throughput %.2f not above %.2f",
			fast.Totals.ThroughputRPS, base.Totals.ThroughputRPS)
	}
}

// TestLatencyNonNegative guards the clock discipline: the driver moves the
// manual clock backwards after service advances, which is only sound if
// every response's latency stays non-negative.
func TestLatencyNonNegative(t *testing.T) {
	tr := testTrace(t, "corrburst")
	r, err := Run(Config{Trace: tr, Shards: 2, SLO: 0.1, WindowS: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Windows {
		if w.P50MS < 0 || w.P99MS < 0 {
			t.Fatalf("negative latency in window starting %.1fs: p50=%.3f p99=%.3f",
				w.StartS, w.P50MS, w.P99MS)
		}
	}
	if r.Totals.Served != len(tr.Reqs) {
		t.Fatalf("served %d of %d", r.Totals.Served, len(tr.Reqs))
	}
}

// TestRunValidation pins the error paths.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	empty := &workload.Trace{Header: workload.Header{
		Version: workload.Version, Name: "x",
		Spec:    workload.Spec{Name: "x", Hours: 1, HourSeconds: 1},
		Classes: []string{"a"},
	}}
	if _, err := Run(Config{Trace: empty}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
