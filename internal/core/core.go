// Package core assembles the DeepBAT framework of Fig. 2: a Workload Parser
// that observes request arrivals and maintains the recent interarrival
// window, a Buffer that accumulates requests and dispatches batches on
// count-or-timeout, a serverless Platform abstraction, pluggable controllers
// (DeepBAT's surrogate optimizer, the BATCH analytical baseline, a
// ground-truth oracle, and static configurations), and a replay Engine that
// drives full traces through the system with periodic reconfiguration while
// accounting latency, cost, SLO violations (VCR), and decision time.
package core

import (
	"errors"
	"fmt"

	"deepbat/internal/lambda"
)

// ---------------------------------------------------------------------------
// Workload Parser
// ---------------------------------------------------------------------------

// WorkloadParser collects arrival timestamps and maintains a bounded window
// of the most recent interarrival times (the model input sequence). Unlike
// BATCH it performs no distribution fitting — the raw interarrival sequence
// is the statistic.
type WorkloadParser struct {
	capacity int
	lastTS   float64
	seen     int
	// ring buffer of the most recent interarrival times
	ring []float64
	head int
	n    int
}

// NewWorkloadParser returns a parser keeping the last capacity interarrivals.
func NewWorkloadParser(capacity int) *WorkloadParser {
	if capacity <= 0 {
		panic("core: parser capacity must be positive")
	}
	return &WorkloadParser{capacity: capacity, ring: make([]float64, capacity)}
}

// Observe records an arrival at timestamp ts (nondecreasing).
func (p *WorkloadParser) Observe(ts float64) {
	if p.seen > 0 {
		d := ts - p.lastTS
		if d < 0 {
			d = 0
		}
		p.ring[p.head] = d
		p.head = (p.head + 1) % p.capacity
		if p.n < p.capacity {
			p.n++
		}
	}
	p.lastTS = ts
	p.seen++
}

// Seen returns the number of arrivals observed.
func (p *WorkloadParser) Seen() int { return p.seen }

// Full reports whether a complete window is available.
func (p *WorkloadParser) Full() bool { return p.n == p.capacity }

// Window returns the most recent interarrival times in chronological order
// (up to capacity entries).
func (p *WorkloadParser) Window() []float64 {
	out := make([]float64, p.n)
	start := (p.head - p.n + p.capacity*2) % p.capacity
	for i := 0; i < p.n; i++ {
		out[i] = p.ring[(start+i)%p.capacity]
	}
	return out
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

// Request is one inference request flowing through the framework.
type Request struct {
	ID       int
	ArriveAt float64
}

// DispatchedBatch is a batch released by the Buffer.
type DispatchedBatch struct {
	Requests   []Request
	DispatchAt float64
	// ByTimeout reports whether the timeout (rather than the batch filling)
	// triggered the dispatch.
	ByTimeout bool
}

// Buffer accumulates requests and releases batches when the batch size is
// reached or the timeout since the first buffered request expires.
// Configuration changes apply to the batch that opens next.
type Buffer struct {
	b        int
	t        float64
	pending  []Request
	deadline float64
	// batch parameters captured when the current batch opened
	curB int
	curT float64
}

// NewBuffer returns a buffer with the given initial batching parameters.
func NewBuffer(batchSize int, timeoutS float64) *Buffer {
	if batchSize < 1 || timeoutS < 0 {
		panic(fmt.Sprintf("core: invalid buffer parameters B=%d T=%g", batchSize, timeoutS))
	}
	return &Buffer{b: batchSize, t: timeoutS}
}

// SetConfig updates the batching parameters for subsequently opened batches.
func (bf *Buffer) SetConfig(batchSize int, timeoutS float64) {
	if batchSize < 1 || timeoutS < 0 {
		return
	}
	bf.b = batchSize
	bf.t = timeoutS
}

// Len returns the number of buffered requests.
func (bf *Buffer) Len() int { return len(bf.pending) }

// Deadline returns the dispatch deadline of the open batch, if any.
func (bf *Buffer) Deadline() (float64, bool) {
	if len(bf.pending) == 0 {
		return 0, false
	}
	return bf.deadline, true
}

// Add inserts a request and returns a dispatched batch if the insertion
// filled it. Callers must first drain any expired deadline via Expire.
func (bf *Buffer) Add(req Request) (DispatchedBatch, bool) {
	if len(bf.pending) == 0 {
		bf.curB = bf.b
		bf.curT = bf.t
		bf.deadline = req.ArriveAt + bf.curT
	}
	bf.pending = append(bf.pending, req)
	if len(bf.pending) >= bf.curB {
		return bf.release(req.ArriveAt, false), true
	}
	return DispatchedBatch{}, false
}

// Expire dispatches the open batch if its deadline is at or before now.
func (bf *Buffer) Expire(now float64) (DispatchedBatch, bool) {
	if len(bf.pending) == 0 || bf.deadline > now {
		return DispatchedBatch{}, false
	}
	return bf.release(bf.deadline, true), true
}

// Flush force-dispatches any buffered requests at their deadline (used at
// end of trace).
func (bf *Buffer) Flush() (DispatchedBatch, bool) {
	if len(bf.pending) == 0 {
		return DispatchedBatch{}, false
	}
	return bf.release(bf.deadline, true), true
}

func (bf *Buffer) release(at float64, byTimeout bool) DispatchedBatch {
	batch := DispatchedBatch{
		Requests:   bf.pending,
		DispatchAt: at,
		ByTimeout:  byTimeout,
	}
	bf.pending = nil
	return batch
}

// ---------------------------------------------------------------------------
// Platform
// ---------------------------------------------------------------------------

// Platform executes a dispatched batch under a configuration and reports its
// execution duration (seconds) and invocation cost (USD).
type Platform interface {
	Invoke(cfg lambda.Config, batchSize int) (duration, cost float64)
}

// SimLambda is the simulated AWS Lambda platform with deterministic service
// times and the pay-as-you-go pricing model.
type SimLambda struct {
	Profile lambda.Profile
	Pricing lambda.Pricing
}

// Invoke implements Platform.
func (s SimLambda) Invoke(cfg lambda.Config, batchSize int) (duration, cost float64) {
	duration = s.Profile.ServiceTime(cfg.MemoryMB, batchSize)
	cost = s.Pricing.InvocationCost(cfg.MemoryMB, duration)
	return duration, cost
}

// ---------------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------------

// RequestRecord is the per-request outcome of a framework run.
type RequestRecord struct {
	ID         int
	ArriveAt   float64
	DispatchAt float64
	Latency    float64
	Cost       float64 // this request's share of the invocation cost
}

// ReconfigureFunc maps the parser's recent window to a new configuration.
// Returning an error keeps the current configuration (e.g. when a baseline
// cannot fit the window yet).
type ReconfigureFunc func(window []float64) (lambda.Config, error)

// Framework wires parser, buffer, controller, and platform into the
// request/control flow of Fig. 2.
type Framework struct {
	Parser   *WorkloadParser
	Buffer   *Buffer
	Platform Platform
	// Reconfigure is invoked every DecidePeriodS seconds of trace time once
	// the parser holds a full window; nil disables reconfiguration.
	Reconfigure   ReconfigureFunc
	DecidePeriodS float64

	cfg        lambda.Config
	nextDecide float64

	// Records accumulates one entry per served request.
	Records []RequestRecord
	// Reconfigurations counts applied configuration changes.
	Reconfigurations int
}

// NewFramework assembles a framework starting from cfg.
func NewFramework(platform Platform, parserWindow int, cfg lambda.Config) (*Framework, error) {
	if !cfg.Valid() {
		return nil, errors.New("core: invalid initial configuration " + cfg.String())
	}
	return &Framework{
		Parser:        NewWorkloadParser(parserWindow),
		Buffer:        NewBuffer(cfg.BatchSize, cfg.TimeoutS),
		Platform:      platform,
		DecidePeriodS: 10,
		cfg:           cfg,
	}, nil
}

// Config returns the active configuration.
func (f *Framework) Config() lambda.Config { return f.cfg }

// applyBatch executes a dispatched batch and records per-request outcomes.
func (f *Framework) applyBatch(b DispatchedBatch) {
	if len(b.Requests) == 0 {
		return
	}
	dur, cost := f.Platform.Invoke(f.cfg, len(b.Requests))
	per := cost / float64(len(b.Requests))
	for _, r := range b.Requests {
		f.Records = append(f.Records, RequestRecord{
			ID:         r.ID,
			ArriveAt:   r.ArriveAt,
			DispatchAt: b.DispatchAt,
			Latency:    b.DispatchAt - r.ArriveAt + dur,
			Cost:       per,
		})
	}
}

// OnRequest advances simulated time to ts, processing any expired buffer
// deadline and any due reconfiguration, then admits the request.
func (f *Framework) OnRequest(req Request) {
	// Drain timeouts that fired before this arrival.
	if batch, ok := f.Buffer.Expire(req.ArriveAt); ok {
		f.applyBatch(batch)
	}
	// Periodic control.
	if f.Reconfigure != nil && req.ArriveAt >= f.nextDecide && f.Parser.Full() {
		if cfg, err := f.Reconfigure(f.Parser.Window()); err == nil && cfg.Valid() {
			f.cfg = cfg
			f.Buffer.SetConfig(cfg.BatchSize, cfg.TimeoutS)
			f.Reconfigurations++
		}
		f.nextDecide = req.ArriveAt + f.DecidePeriodS
	}
	f.Parser.Observe(req.ArriveAt)
	if batch, ok := f.Buffer.Add(req); ok {
		f.applyBatch(batch)
	}
}

// Finish flushes the buffer at end of trace.
func (f *Framework) Finish() {
	if batch, ok := f.Buffer.Flush(); ok {
		f.applyBatch(batch)
	}
}

// Run replays a full timestamp trace through the framework.
func (f *Framework) Run(arrivals []float64) {
	for i, ts := range arrivals {
		f.OnRequest(Request{ID: i, ArriveAt: ts})
	}
	f.Finish()
}

// Latencies returns the recorded per-request latencies.
func (f *Framework) Latencies() []float64 {
	out := make([]float64, len(f.Records))
	for i, r := range f.Records {
		out[i] = r.Latency
	}
	return out
}

// TotalCost returns the total USD cost across all invocations.
func (f *Framework) TotalCost() float64 {
	var s float64
	for _, r := range f.Records {
		s += r.Cost
	}
	return s
}
