package core

import (
	"math"
	"testing"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/trace"
)

func platform() SimLambda {
	return SimLambda{Profile: lambda.DefaultProfile(), Pricing: lambda.DefaultPricing()}
}

func TestWorkloadParserWindow(t *testing.T) {
	p := NewWorkloadParser(3)
	if p.Full() {
		t.Fatal("fresh parser should not be full")
	}
	for i, ts := range []float64{1, 2, 4, 7, 11} {
		p.Observe(ts)
		if p.Seen() != i+1 {
			t.Fatalf("Seen = %d", p.Seen())
		}
	}
	if !p.Full() {
		t.Fatal("parser should be full after 5 observations")
	}
	w := p.Window()
	want := []float64{2, 3, 4} // last three gaps
	if len(w) != 3 {
		t.Fatalf("window length = %d", len(w))
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window = %v, want %v", w, want)
		}
	}
}

func TestWorkloadParserPartialWindow(t *testing.T) {
	p := NewWorkloadParser(10)
	p.Observe(1)
	p.Observe(3)
	w := p.Window()
	if len(w) != 1 || w[0] != 2 {
		t.Fatalf("partial window = %v", w)
	}
}

func TestWorkloadParserClampsNegativeGap(t *testing.T) {
	p := NewWorkloadParser(2)
	p.Observe(5)
	p.Observe(4) // out of order
	if w := p.Window(); w[0] != 0 {
		t.Fatalf("negative gap not clamped: %v", w)
	}
}

func TestParserPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorkloadParser(0)
}

func TestBufferFillByCount(t *testing.T) {
	b := NewBuffer(2, 10)
	if _, ok := b.Add(Request{ID: 0, ArriveAt: 1}); ok {
		t.Fatal("batch dispatched too early")
	}
	batch, ok := b.Add(Request{ID: 1, ArriveAt: 2})
	if !ok || len(batch.Requests) != 2 || batch.DispatchAt != 2 || batch.ByTimeout {
		t.Fatalf("batch = %+v ok=%v", batch, ok)
	}
	if b.Len() != 0 {
		t.Fatal("buffer not drained")
	}
}

func TestBufferExpire(t *testing.T) {
	b := NewBuffer(5, 0.5)
	b.Add(Request{ID: 0, ArriveAt: 1})
	if _, ok := b.Expire(1.4); ok {
		t.Fatal("expired before deadline")
	}
	batch, ok := b.Expire(1.6)
	if !ok || !batch.ByTimeout || batch.DispatchAt != 1.5 {
		t.Fatalf("expire = %+v ok=%v", batch, ok)
	}
}

func TestBufferConfigAppliesToNextBatch(t *testing.T) {
	b := NewBuffer(3, 1)
	b.Add(Request{ID: 0, ArriveAt: 0})
	b.SetConfig(1, 0.1) // open batch keeps B=3, T=1
	if _, ok := b.Add(Request{ID: 1, ArriveAt: 0.2}); ok {
		t.Fatal("config change must not affect open batch")
	}
	batch, ok := b.Expire(1.0)
	if !ok || len(batch.Requests) != 2 {
		t.Fatalf("open batch = %+v", batch)
	}
	// New batch uses B=1: dispatches immediately.
	if _, ok := b.Add(Request{ID: 2, ArriveAt: 2}); !ok {
		t.Fatal("new config not applied to next batch")
	}
}

func TestBufferFlushAndDeadline(t *testing.T) {
	b := NewBuffer(4, 0.3)
	if _, ok := b.Deadline(); ok {
		t.Fatal("empty buffer has no deadline")
	}
	if _, ok := b.Flush(); ok {
		t.Fatal("empty buffer flush")
	}
	b.Add(Request{ID: 0, ArriveAt: 2})
	if d, ok := b.Deadline(); !ok || math.Abs(d-2.3) > 1e-12 {
		t.Fatalf("deadline = %v ok=%v", d, ok)
	}
	batch, ok := b.Flush()
	if !ok || len(batch.Requests) != 1 {
		t.Fatalf("flush = %+v", batch)
	}
}

func TestBufferRejectsInvalidConfig(t *testing.T) {
	b := NewBuffer(2, 1)
	b.SetConfig(0, -1) // ignored
	b.Add(Request{ID: 0, ArriveAt: 0})
	if _, ok := b.Add(Request{ID: 1, ArriveAt: 0.1}); !ok {
		t.Fatal("valid config was overwritten by invalid one")
	}
}

func TestFrameworkMatchesQsimWithStaticConfig(t *testing.T) {
	// The framework's event loop must agree exactly with the reference
	// simulator when the configuration never changes.
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 30, Seed: 9})
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	fw, err := NewFramework(platform(), 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw.Run(tr.Timestamps)

	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	ref, err := sim.Run(tr.Timestamps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Records) != len(ref.Latencies) {
		t.Fatalf("framework served %d, simulator %d", len(fw.Records), len(ref.Latencies))
	}
	// Records are in dispatch order, simulator latencies in arrival order;
	// match by request ID.
	for _, rec := range fw.Records {
		if math.Abs(rec.Latency-ref.Latencies[rec.ID]) > 1e-9 {
			t.Fatalf("request %d latency %v vs simulator %v", rec.ID, rec.Latency, ref.Latencies[rec.ID])
		}
	}
	if math.Abs(fw.TotalCost()-ref.TotalCost) > 1e-12 {
		t.Fatalf("cost %v vs simulator %v", fw.TotalCost(), ref.TotalCost)
	}
}

func TestFrameworkReconfigures(t *testing.T) {
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 30, Seed: 9})
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	fw, err := NewFramework(platform(), 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := lambda.Config{MemoryMB: 1024, BatchSize: 8, TimeoutS: 0.1}
	fw.DecidePeriodS = 5
	fw.Reconfigure = func(window []float64) (lambda.Config, error) {
		if len(window) != 16 {
			t.Errorf("reconfigure window length = %d", len(window))
		}
		return target, nil
	}
	fw.Run(tr.Timestamps)
	if fw.Reconfigurations == 0 {
		t.Fatal("no reconfigurations applied")
	}
	if fw.Config() != target {
		t.Fatalf("final config = %v", fw.Config())
	}
	if len(fw.Latencies()) != len(tr.Timestamps) {
		t.Fatal("not all requests served")
	}
}

func TestFrameworkInvalidInitialConfig(t *testing.T) {
	if _, err := NewFramework(platform(), 8, lambda.Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestEngineReplayStatic(t *testing.T) {
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 2, HourSeconds: 30, Seed: 11})
	eng := NewEngine(qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing()))
	opts := DefaultReplayOptions(0.1)
	opts.PeriodS = 5
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	res, err := eng.Replay(tr.Timestamps, StaticDecider{Cfg: cfg}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decider != "Static" {
		t.Fatalf("decider name = %q", res.Decider)
	}
	total := 0
	for _, p := range res.Periods {
		total += p.Requests
		if p.Requests > 0 && p.Config != cfg {
			t.Fatalf("period config = %v", p.Config)
		}
	}
	if total != len(tr.Timestamps) {
		t.Fatalf("served %d of %d", total, len(tr.Timestamps))
	}
	if len(res.Latencies()) != total {
		t.Fatal("latency count mismatch")
	}
	if res.TotalCost() <= 0 || res.CostPerRequest() <= 0 {
		t.Fatal("cost accounting broken")
	}
	if got := res.VCR(); got < 0 || got > 100 {
		t.Fatalf("VCR = %v", got)
	}
}

func TestEngineReplayOracleBeatsBadStatic(t *testing.T) {
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 60, Seed: 12})
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	eng := NewEngine(sim)
	opts := DefaultReplayOptions(0.1)
	opts.PeriodS = 10

	grid := lambda.Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.02, 0.08},
	}
	oracle, err := eng.Replay(tr.Timestamps, NewOracleDecider(sim, grid, 0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad static config: tiny memory, big batch, long wait.
	bad := lambda.Config{MemoryMB: 512, BatchSize: 32, TimeoutS: 0.5}
	static, err := eng.Replay(tr.Timestamps, StaticDecider{Cfg: bad}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.VCR() >= static.VCR() && static.VCR() > 0 {
		t.Fatalf("oracle VCR %v should beat bad static %v", oracle.VCR(), static.VCR())
	}
	if oracle.Decisions == 0 {
		t.Fatal("oracle made no decisions")
	}
}

func TestEngineWindowVCR(t *testing.T) {
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 2, HourSeconds: 30, Seed: 13})
	eng := NewEngine(qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing()))
	opts := DefaultReplayOptions(0.1)
	opts.PeriodS = 5
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	res, err := eng.Replay(tr.Timestamps, StaticDecider{Cfg: cfg}, opts)
	if err != nil {
		t.Fatal(err)
	}
	hourly := res.WindowVCR(30)
	if len(hourly) != 2 {
		t.Fatalf("hourly VCR buckets = %d, want 2", len(hourly))
	}
	if res.WindowVCR(0) != nil {
		t.Fatal("zero window should return nil")
	}
}

func TestEngineReplayErrors(t *testing.T) {
	eng := NewEngine(qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing()))
	opts := DefaultReplayOptions(0.1)
	if _, err := eng.Replay(nil, StaticDecider{Cfg: opts.InitialConfig}, opts); err == nil {
		t.Fatal("expected error for empty trace")
	}
	bad := opts
	bad.PeriodS = 0
	if _, err := eng.Replay([]float64{1}, StaticDecider{Cfg: opts.InitialConfig}, bad); err == nil {
		t.Fatal("expected error for zero period")
	}
	bad = opts
	bad.InitialConfig = lambda.Config{}
	if _, err := eng.Replay([]float64{1}, StaticDecider{Cfg: opts.InitialConfig}, bad); err == nil {
		t.Fatal("expected error for invalid initial config")
	}
}

func TestDeciderKeepsConfigOnError(t *testing.T) {
	tr := trace.MustGenerate(trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 20, Seed: 14})
	eng := NewEngine(qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing()))
	opts := DefaultReplayOptions(0.1)
	opts.PeriodS = 5
	res, err := eng.Replay(tr.Timestamps, failingDecider{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecisionErrors == 0 {
		t.Fatal("expected decision errors")
	}
	for _, p := range res.Periods {
		if p.Requests > 0 && p.Config != opts.InitialConfig {
			t.Fatal("config changed despite decider errors")
		}
	}
}

type failingDecider struct{}

func (failingDecider) Name() string { return "Failing" }
func (failingDecider) Decide(_, _ []float64) (lambda.Config, error) {
	return lambda.Config{}, errTest
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestLookbackInterarrivals(t *testing.T) {
	arr := []float64{1, 2, 4, 8, 9, 9.5}
	// Lookback 6 s before t=9 (index 4): arrivals >= 3 -> {4, 8}.
	got := lookbackInterarrivals(arr, 4, 9, 6)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("lookback = %v, want [4]", got)
	}
	// Too few points -> nil.
	if got := lookbackInterarrivals(arr, 1, 2, 1); got != nil {
		t.Fatalf("lookback = %v, want nil", got)
	}
}
