package core

import (
	"testing"

	"deepbat/internal/batchopt"
	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
)

func smallGrid() lambda.Grid {
	return lambda.Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4},
		TimeoutsS: []float64{0.02, 0.08},
	}
}

func TestBATCHDeciderRequiresSamples(t *testing.T) {
	pl := batchopt.NewPipeline(lambda.DefaultProfile(), lambda.DefaultPricing(), smallGrid(), 0.1)
	d := NewBATCHDecider(pl)
	if d.Name() != "BATCH" {
		t.Fatalf("name = %q", d.Name())
	}
	if _, err := d.Decide(make([]float64, d.MinSamples-1), nil); err == nil {
		t.Fatal("expected error below MinSamples")
	}
	// Enough uniform samples: a Poisson-ish fit, decision succeeds.
	past := make([]float64, 500)
	for i := range past {
		past[i] = 0.01
	}
	cfg, err := d.Decide(past, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Valid() {
		t.Fatalf("config = %v", cfg)
	}
	if d.LastReport == nil || d.LastReport.Fit == nil {
		t.Fatal("report not recorded")
	}
}

func TestOracleDeciderNeedsFuture(t *testing.T) {
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	d := NewOracleDecider(sim, smallGrid(), 0.1)
	if d.Name() != "GroundTruth" {
		t.Fatalf("name = %q", d.Name())
	}
	if _, err := d.Decide(nil, nil); err == nil {
		t.Fatal("expected error without a future window")
	}
	future := make([]float64, 200)
	for i := range future {
		future[i] = 0.01
	}
	cfg, err := d.Decide(nil, future)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Valid() {
		t.Fatalf("config = %v", cfg)
	}
}

func TestStaticDecider(t *testing.T) {
	want := lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 0.05}
	d := StaticDecider{Cfg: want}
	got, err := d.Decide(nil, nil)
	if err != nil || got != want {
		t.Fatalf("static decide = %v err %v", got, err)
	}
	if d.Name() != "Static" {
		t.Fatalf("name = %q", d.Name())
	}
}
