package core

import (
	"errors"

	"deepbat/internal/batchopt"
	"deepbat/internal/lambda"
	"deepbat/internal/optimizer"
	"deepbat/internal/qsim"
)

// Decider selects a configuration at a control point. It receives the
// interarrival times observed over the lookback history (most recent last)
// and, for oracle baselines only, the interarrivals of the upcoming control
// period.
type Decider interface {
	Name() string
	Decide(past, future []float64) (lambda.Config, error)
}

// DeepBATDecider wraps the surrogate-based optimizer: it feeds the most
// recent model-window of interarrivals to the deep surrogate and picks the
// cheapest SLO-feasible configuration.
type DeepBATDecider struct {
	Opt *optimizer.Optimizer
	// LastDecision records the most recent optimizer output.
	LastDecision optimizer.Decision
}

// NewDeepBATDecider builds the DeepBAT controller.
func NewDeepBATDecider(opt *optimizer.Optimizer) *DeepBATDecider {
	return &DeepBATDecider{Opt: opt}
}

// Name implements Decider.
func (d *DeepBATDecider) Name() string { return "DeepBAT" }

// Decide implements Decider; the future window is ignored.
func (d *DeepBATDecider) Decide(past, _ []float64) (lambda.Config, error) {
	l := d.Opt.Model.Cfg.SeqLen
	if len(past) < l {
		return lambda.Config{}, errors.New("core: not enough history for the model window")
	}
	dec, err := d.Opt.Decide(past[len(past)-l:])
	if err != nil {
		return lambda.Config{}, err
	}
	d.LastDecision = dec
	return dec.Config, nil
}

// BATCHDecider wraps the analytical baseline: it fits a MAP to the full
// lookback history (the previous control period, as the paper's hourly
// refits) and optimizes the grid against the analytical model.
type BATCHDecider struct {
	Pipeline *batchopt.Pipeline
	// MinSamples guards the MAP fit; with fewer observations the previous
	// configuration is kept (fitting "can take from a few minutes to an
	// hour depending on the workload intensity").
	MinSamples int
	// LastReport records the most recent pipeline output.
	LastReport *batchopt.Report
}

// NewBATCHDecider builds the BATCH baseline controller.
func NewBATCHDecider(pl *batchopt.Pipeline) *BATCHDecider {
	return &BATCHDecider{Pipeline: pl, MinSamples: 64}
}

// Name implements Decider.
func (b *BATCHDecider) Name() string { return "BATCH" }

// Decide implements Decider; the future window is ignored.
func (b *BATCHDecider) Decide(past, _ []float64) (lambda.Config, error) {
	if len(past) < b.MinSamples {
		return lambda.Config{}, errors.New("core: not enough samples for MAP fitting")
	}
	rep, err := b.Pipeline.Decide(past)
	if err != nil {
		return lambda.Config{}, err
	}
	b.LastReport = rep
	return rep.Config, nil
}

// OracleDecider is the ground-truth controller: it exhaustively simulates
// the upcoming window and returns the truly optimal configuration. It is the
// "ground truth" series of the paper's figures.
type OracleDecider struct {
	Sim  *qsim.Simulator
	Grid lambda.Grid
	SLO  float64
	Pct  float64
}

// NewOracleDecider builds the oracle.
func NewOracleDecider(sim *qsim.Simulator, grid lambda.Grid, slo float64) *OracleDecider {
	return &OracleDecider{Sim: sim, Grid: grid, SLO: slo, Pct: 95}
}

// Name implements Decider.
func (o *OracleDecider) Name() string { return "GroundTruth" }

// Decide implements Decider using only the future window.
func (o *OracleDecider) Decide(_, future []float64) (lambda.Config, error) {
	if len(future) == 0 {
		return lambda.Config{}, errors.New("core: oracle needs the upcoming window")
	}
	cfg, _, err := o.Sim.GroundTruthBest(qsim.Timestamps(future), o.Grid, o.SLO, o.Pct)
	return cfg, err
}

// StaticDecider always returns a fixed configuration.
type StaticDecider struct {
	Cfg lambda.Config
}

// Name implements Decider.
func (s StaticDecider) Name() string { return "Static" }

// Decide implements Decider.
func (s StaticDecider) Decide(_, _ []float64) (lambda.Config, error) { return s.Cfg, nil }
