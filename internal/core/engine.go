package core

import (
	"errors"
	"time"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/stats"
)

// ReplayOptions controls a trace replay with periodic reconfiguration.
type ReplayOptions struct {
	// PeriodS is the control period: the decider runs every DecideEvery
	// periods and the chosen configuration serves the following periods.
	PeriodS float64
	// DecideEvery is the number of periods between decisions (BATCH decides
	// hourly; DeepBAT every period). Minimum 1.
	DecideEvery int
	// LookbackS is how much arrival history (seconds) the decider sees.
	LookbackS float64
	// InitialConfig serves traffic until the first successful decision.
	InitialConfig lambda.Config
	// SLO is used for per-period VCR accounting.
	SLO float64
}

// DefaultReplayOptions returns a replay configuration matched to the scaled
// traces (10 s control periods, one paper-hour lookback at 60 s/hour).
func DefaultReplayOptions(slo float64) ReplayOptions {
	return ReplayOptions{
		PeriodS:       10,
		DecideEvery:   1,
		LookbackS:     60,
		InitialConfig: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           slo,
	}
}

// PeriodResult is the outcome of one control period.
type PeriodResult struct {
	StartS    float64
	Config    lambda.Config
	Requests  int
	Latencies []float64
	Cost      float64
	VCR       float64
	// Decided reports whether a fresh decision was applied this period.
	Decided bool
	// DecisionTime is the wall-clock cost of the decision, if one was made.
	DecisionTime time.Duration
}

// ReplayResult aggregates a full replay.
type ReplayResult struct {
	Decider string
	SLO     float64
	Periods []PeriodResult
	// Decisions counts successful decider invocations; DecisionErrors the
	// failed ones (configuration kept).
	Decisions      int
	DecisionErrors int
	TotalDecision  time.Duration
}

// Latencies concatenates every period's latencies.
func (r *ReplayResult) Latencies() []float64 {
	var out []float64
	for _, p := range r.Periods {
		out = append(out, p.Latencies...)
	}
	return out
}

// TotalCost sums invocation costs across periods.
func (r *ReplayResult) TotalCost() float64 {
	var s float64
	for _, p := range r.Periods {
		s += p.Cost
	}
	return s
}

// CostPerRequest returns the overall average cost per request.
func (r *ReplayResult) CostPerRequest() float64 {
	n := 0
	for _, p := range r.Periods {
		n += p.Requests
	}
	if n == 0 {
		return 0
	}
	return r.TotalCost() / float64(n)
}

// VCR returns the overall SLO violation count ratio (percent).
func (r *ReplayResult) VCR() float64 { return stats.VCR(r.Latencies(), r.SLO) }

// WindowVCR aggregates VCR over consecutive windows of the given length
// (e.g. one paper-hour), as plotted in Figs. 8 and 10.
func (r *ReplayResult) WindowVCR(windowS float64) []float64 {
	if windowS <= 0 || len(r.Periods) == 0 {
		return nil
	}
	last := r.Periods[len(r.Periods)-1]
	horizon := last.StartS + 1
	n := int(horizon/windowS) + 1
	buckets := make([][]float64, n)
	for _, p := range r.Periods {
		i := int(p.StartS / windowS)
		if i >= n {
			i = n - 1
		}
		buckets[i] = append(buckets[i], p.Latencies...)
	}
	out := make([]float64, 0, n)
	for _, b := range buckets {
		out = append(out, stats.VCR(b, r.SLO))
	}
	return out
}

// MeanDecisionTime returns the average wall-clock decision latency.
func (r *ReplayResult) MeanDecisionTime() time.Duration {
	if r.Decisions == 0 {
		return 0
	}
	return r.TotalDecision / time.Duration(r.Decisions)
}

// Engine replays traces against deciders using the ground-truth simulator
// for the data plane.
type Engine struct {
	Sim *qsim.Simulator
}

// NewEngine returns an engine over the simulator.
func NewEngine(sim *qsim.Simulator) *Engine { return &Engine{Sim: sim} }

// Replay partitions the arrival timestamps into control periods; before each
// decision period it hands the decider the lookback interarrivals (and the
// upcoming period, for oracles), then serves the period's traffic with the
// active configuration through the batching simulator.
//
// Batches never span period boundaries, a deliberate simplification: at the
// trace scales used here a period holds hundreds of batches, so the boundary
// effect is negligible.
func (e *Engine) Replay(arrivals []float64, dec Decider, opts ReplayOptions) (*ReplayResult, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("core: empty trace")
	}
	if opts.PeriodS <= 0 {
		return nil, errors.New("core: PeriodS must be positive")
	}
	if opts.DecideEvery < 1 {
		opts.DecideEvery = 1
	}
	if !opts.InitialConfig.Valid() {
		return nil, errors.New("core: invalid initial configuration")
	}
	res := &ReplayResult{Decider: dec.Name(), SLO: opts.SLO}
	horizon := arrivals[len(arrivals)-1]
	nPeriods := int(horizon/opts.PeriodS) + 1
	cfg := opts.InitialConfig

	idx := 0
	for p := 0; p < nPeriods; p++ {
		start := float64(p) * opts.PeriodS
		end := start + opts.PeriodS
		// Slice this period's arrivals.
		lo := idx
		for idx < len(arrivals) && arrivals[idx] < end {
			idx++
		}
		window := arrivals[lo:idx]

		pr := PeriodResult{StartS: start}
		if p%opts.DecideEvery == 0 {
			past := lookbackInterarrivals(arrivals, lo, start, opts.LookbackS)
			future := qsim.Interarrivals(rebase(window, start))
			t0 := time.Now()
			newCfg, err := dec.Decide(past, future)
			dt := time.Since(t0)
			if err == nil && newCfg.Valid() {
				cfg = newCfg
				pr.Decided = true
				pr.DecisionTime = dt
				res.Decisions++
				res.TotalDecision += dt
			} else {
				res.DecisionErrors++
			}
		}
		pr.Config = cfg
		pr.Requests = len(window)
		if len(window) > 0 {
			sim, err := e.Sim.Run(window, cfg)
			if err != nil {
				return nil, err
			}
			pr.Latencies = sim.Latencies
			pr.Cost = sim.TotalCost
			pr.VCR = stats.VCR(sim.Latencies, opts.SLO)
		}
		res.Periods = append(res.Periods, pr)
	}
	return res, nil
}

// lookbackInterarrivals returns the interarrival times of the arrivals in
// [start-lookback, start), most recent last.
func lookbackInterarrivals(arrivals []float64, hi int, start, lookback float64) []float64 {
	lo := hi
	cut := start - lookback
	for lo > 0 && arrivals[lo-1] >= cut {
		lo--
	}
	if hi-lo < 2 {
		return nil
	}
	win := arrivals[lo:hi]
	out := make([]float64, len(win)-1)
	for i := 1; i < len(win); i++ {
		out[i-1] = win[i] - win[i-1]
	}
	return out
}

// rebase shifts timestamps so the period starts at zero.
func rebase(ts []float64, start float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = t - start
	}
	return out
}
