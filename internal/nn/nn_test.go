package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepbat/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 3, 5)
	x := tensor.Randn(rng, 1, 4, 3)
	y := l.Forward(x)
	if y.Rows() != 4 || y.Cols() != 5 {
		t.Fatalf("Linear output shape = %v", y.Shape)
	}
	if len(l.Params()) != 2 {
		t.Fatal("Linear should expose W and B")
	}
	if NumParams(l) != 3*5+5 {
		t.Fatalf("NumParams = %d", NumParams(l))
	}
}

func TestLinearComputesAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 2, 2)
	copy(l.W.Data, []float64{1, 2, 3, 4})
	copy(l.B.Data, []float64{10, 20})
	x := tensor.FromData([]float64{1, 1}, 1, 2)
	y := l.Forward(x)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("Linear forward = %v", y.Data)
	}
}

func TestFeedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ff := NewFeedForward(rng, 4, 8, 2)
	x := tensor.Randn(rng, 1, 3, 4)
	y := ff.Forward(x)
	if y.Rows() != 3 || y.Cols() != 2 {
		t.Fatalf("FF output shape = %v", y.Shape)
	}
	if len(ff.Params()) != 4 {
		t.Fatal("FF should expose 4 tensors")
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	ln := NewLayerNorm(4)
	x := tensor.FromData([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 2, 4)
	y := ln.Forward(x)
	for r := 0; r < 2; r++ {
		mean, v := 0.0, 0.0
		for c := 0; c < 4; c++ {
			mean += y.At(r, c)
		}
		mean /= 4
		for c := 0; c < 4; c++ {
			d := y.At(r, c) - mean
			v += d * d
		}
		v /= 4
		if math.Abs(mean) > 1e-9 || math.Abs(v-1) > 1e-3 {
			t.Fatalf("row %d: mean=%v var=%v", r, mean, v)
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(rng, 0.5)
	x := tensor.Full(1, 100, 10)

	// Eval mode: identity (same tensor back).
	if got := d.Forward(x); got != x {
		t.Fatal("eval-mode dropout should be identity")
	}

	d.Train = true
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-2) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout did not both drop and keep: zeros=%d scaled=%d", zeros, scaled)
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction = %v, want ~0.5", frac)
	}
}

func TestDropoutZeroP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0)
	d.Train = true
	x := tensor.Full(3, 2, 2)
	if got := d.Forward(x); got != x {
		t.Fatal("p=0 dropout should be identity")
	}
}

func TestPositionalEncodingValues(t *testing.T) {
	pe := NewPositionalEncoding(16, 4)
	x := tensor.New(3, 4)
	y := pe.Forward(x)
	// Position 0: sin(0)=0, cos(0)=1 alternating.
	if y.At(0, 0) != 0 || y.At(0, 1) != 1 || y.At(0, 2) != 0 || y.At(0, 3) != 1 {
		t.Fatalf("pos 0 encoding = %v", y.Data[:4])
	}
	// Position 1, dim 0: sin(1).
	if math.Abs(y.At(1, 0)-math.Sin(1)) > 1e-12 {
		t.Fatalf("pos 1 dim 0 = %v", y.At(1, 0))
	}
	// Distinct positions should get distinct encodings.
	same := true
	for c := 0; c < 4; c++ {
		if y.At(1, c) != y.At(2, c) {
			same = false
		}
	}
	if same {
		t.Fatal("positions 1 and 2 have identical encodings")
	}
}

func TestPositionalEncodingPanics(t *testing.T) {
	pe := NewPositionalEncoding(4, 4)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("too long", func() { pe.Forward(tensor.New(5, 4)) })
	mustPanic("bad dim", func() { pe.Forward(tensor.New(2, 3)) })
}

func TestMultiHeadAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMultiHeadAttention(rng, 8, 2)
	x := tensor.Randn(rng, 1, 5, 8)
	y := m.Forward(x, x, x, nil)
	if y.Rows() != 5 || y.Cols() != 8 {
		t.Fatalf("MHA output shape = %v", y.Shape)
	}
	scores := m.LastScores()
	if len(scores) != 2 {
		t.Fatalf("LastScores heads = %d", len(scores))
	}
	for _, s := range scores {
		if s.Rows() != 5 || s.Cols() != 5 {
			t.Fatalf("score shape = %v", s.Shape)
		}
		for r := 0; r < 5; r++ {
			sum := 0.0
			for c := 0; c < 5; c++ {
				sum += s.At(r, c)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("attention row does not sum to 1: %v", sum)
			}
		}
	}
}

func TestMultiHeadAttentionMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMultiHeadAttention(rng, 4, 1)
	x := tensor.Randn(rng, 1, 3, 4)
	mask := tensor.New(3, 3)
	// Mask out attention to position 2 from everyone.
	for r := 0; r < 3; r++ {
		mask.Set(r, 2, -1e9)
	}
	m.Forward(x, x, x, mask)
	s := m.LastScores()[0]
	for r := 0; r < 3; r++ {
		if s.At(r, 2) > 1e-6 {
			t.Fatalf("masked position received attention %v", s.At(r, 2))
		}
	}
}

func TestMultiHeadAttentionCross(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMultiHeadAttention(rng, 4, 2)
	q := tensor.Randn(rng, 1, 1, 4)
	kv := tensor.Randn(rng, 1, 6, 4)
	y := m.Forward(q, kv, kv, nil)
	if y.Rows() != 1 || y.Cols() != 4 {
		t.Fatalf("cross-attention shape = %v", y.Shape)
	}
	if s := m.LastScores()[0]; s.Rows() != 1 || s.Cols() != 6 {
		t.Fatalf("cross score shape = %v", s.Shape)
	}
}

func TestMultiHeadAttentionBadHeads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim not divisible by heads")
		}
	}()
	NewMultiHeadAttention(rand.New(rand.NewSource(1)), 6, 4)
}

func TestEncoderForwardAndTrainToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := NewEncoder(rng, 2, 8, 16, 2, 0.1)
	x := tensor.Randn(rng, 1, 6, 8)
	y := enc.Forward(x)
	if y.Rows() != 6 || y.Cols() != 8 {
		t.Fatalf("encoder output shape = %v", y.Shape)
	}
	// Deterministic in eval mode.
	y2 := enc.Forward(x)
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatal("eval-mode encoder is not deterministic")
		}
	}
	enc.SetTrain(true)
	y3 := enc.Forward(x)
	diff := false
	for i := range y.Data {
		if y.Data[i] != y3.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("train-mode dropout had no effect")
	}
	enc.SetTrain(false)
}

func TestEncoderParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	enc := NewEncoder(rng, 2, 16, 32, 2, 0)
	// Per layer: MHA 4 linears (16x16+16 each) + FF (16x32+32, 32x16+16) + 2 norms (16+16 each).
	perLayer := 4*(16*16+16) + (16*32 + 32) + (32*16 + 16) + 2*(16+16)
	if got := NumParams(enc); got != 2*perLayer {
		t.Fatalf("NumParams = %d, want %d", got, 2*perLayer)
	}
}

func TestEncoderGradientFlow(t *testing.T) {
	// Every parameter should receive a gradient after a backward pass.
	rng := rand.New(rand.NewSource(11))
	enc := NewEncoder(rng, 1, 4, 8, 2, 0)
	x := tensor.Randn(rng, 1, 3, 4)
	y := enc.Forward(x)
	loss := tensor.SumAll(tensor.Mul(y, y))
	tensor.Backward(loss)
	for i, p := range enc.Params() {
		nonzero := false
		for _, g := range p.Grad {
			if g != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Fatalf("param %d received no gradient", i)
		}
	}
}

func TestMHAGradCheck(t *testing.T) {
	// Finite-difference check through the full attention block.
	rng := rand.New(rand.NewSource(12))
	m := NewMultiHeadAttention(rng, 4, 2)
	x := tensor.Randn(rng, 1, 3, 4).RequireGrad()
	build := func() *tensor.Tensor {
		y := m.Forward(x, x, x, nil)
		return tensor.SumAll(tensor.Mul(y, y))
	}
	loss := build()
	tensor.Backward(loss)
	got := append([]float64(nil), x.Grad...)
	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := build().Item()
		x.Data[i] = orig - h
		down := build().Item()
		x.Data[i] = orig
		want := (up - down) / (2 * h)
		if math.Abs(got[i]-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("MHA grad[%d] = %v, numeric %v", i, got[i], want)
		}
	}
}

func TestCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewLinear(rng, 2, 2)
	b := NewLinear(rng, 2, 2)
	if got := len(CollectParams(a, b)); got != 4 {
		t.Fatalf("CollectParams = %d", got)
	}
}

func TestEncoderReplicateSharesWeightsNotGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	enc := NewEncoder(rng, 2, 8, 16, 2, 0)
	rep := enc.Replicate()
	ps, rs := enc.Params(), rep.Params()
	if len(ps) != len(rs) {
		t.Fatalf("replica param count %d vs %d", len(rs), len(ps))
	}
	for i := range ps {
		if &ps[i].Data[0] != &rs[i].Data[0] {
			t.Fatalf("param %d does not share weight storage", i)
		}
		if &ps[i].Grad[0] == &rs[i].Grad[0] {
			t.Fatalf("param %d shares gradient storage", i)
		}
	}
	// Identical forwards from shared weights.
	x := tensor.Randn(rng, 1, 5, 8)
	y1 := enc.Forward(x)
	y2 := rep.Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("replica forward differs from original")
		}
	}
	// A backward through the replica must leave the original's grads alone.
	xr := tensor.Randn(rng, 1, 5, 8).RequireGrad()
	tensor.Backward(tensor.SumAll(tensor.Mul(rep.Forward(xr), rep.Forward(xr))))
	for i := range ps {
		for _, g := range ps[i].Grad {
			if g != 0 {
				t.Fatalf("original param %d gradient polluted by replica backward", i)
			}
		}
	}
	// A weight update through the original is visible to the replica.
	ps[0].Data[0] += 0.5
	if rs[0].Data[0] != ps[0].Data[0] {
		t.Fatal("weight update not visible through replica")
	}
}

func TestDropoutReplicateAndSetRNG(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDropout(rng, 0.5)
	d.Train = true
	rep := d.Replicate()
	if rep.P != d.P || !rep.Train {
		t.Fatalf("replica lost configuration: %+v", rep)
	}
	x := tensor.Full(1, 4, 4)
	// Same seed -> same mask; different seed -> (almost surely) different.
	rep.SetRNG(rand.New(rand.NewSource(7)))
	a := rep.Forward(x)
	rep.SetRNG(rand.New(rand.NewSource(7)))
	b := rep.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("reseeded dropout is not deterministic")
		}
	}
}

func TestMultiHeadAttentionSkipsScoreRecordingUnderNoGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := NewMultiHeadAttention(rng, 4, 2)
	x := tensor.Randn(rng, 1, 3, 4)
	m.Forward(x, x, x, nil)
	if len(m.LastScores()) != 2 {
		t.Fatalf("grad-mode forward should record scores, got %d", len(m.LastScores()))
	}
	tensor.NoGrad(func() { m.Forward(x, x, x, nil) })
	if len(m.LastScores()) != 2 {
		t.Fatal("no-grad forward must not touch recorded scores")
	}
}

// TestForwardIntoMatchesForward pins the tape-free row-batched Linear and
// FeedForward forwards to their allocating counterparts bit for bit.
func TestForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lin := NewLinear(rng, 5, 7)
	ff := NewFeedForward(rng, 5, 11, 3)
	x := tensor.Randn(rng, 1, 13, 5)

	wantLin := lin.Forward(x)
	wantFF := ff.Forward(x)
	var pool tensor.ScratchPool
	tensor.NoGrad(func() {
		gotLin := lin.ForwardInto(pool.Get(13, 7), x)
		for i := range wantLin.Data {
			if math.Float64bits(gotLin.Data[i]) != math.Float64bits(wantLin.Data[i]) {
				t.Fatalf("ForwardInto cell %d = %v, want %v (bitwise)", i, gotLin.Data[i], wantLin.Data[i])
			}
		}
		gotFF := ff.ForwardScratch(&pool, x)
		for i := range wantFF.Data {
			if math.Float64bits(gotFF.Data[i]) != math.Float64bits(wantFF.Data[i]) {
				t.Fatalf("ForwardScratch cell %d = %v, want %v (bitwise)", i, gotFF.Data[i], wantFF.Data[i])
			}
		}
		pool.Put(gotLin, gotFF)
	})
}

// TestSetCaptureScoresRecordsUnderNoGrad checks that attention maps are
// recorded tape-free only when explicitly requested.
func TestSetCaptureScoresRecordsUnderNoGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	att := NewMultiHeadAttention(rng, 8, 2)
	x := tensor.Randn(rng, 1, 4, 8)

	tensor.NoGrad(func() {
		att.Forward(x, x, x, nil)
	})
	if got := att.LastScores(); len(got) != 0 {
		t.Fatalf("NoGrad forward recorded %d score maps without capture", len(got))
	}
	tensor.NoGrad(func() {
		att.SetCaptureScores(true)
		defer att.SetCaptureScores(false)
		att.Forward(x, x, x, nil)
	})
	if got := att.LastScores(); len(got) != 2 {
		t.Fatalf("captured %d score maps, want 2", len(got))
	}
}
