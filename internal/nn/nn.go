// Package nn builds neural-network layers on top of the tensor autograd
// engine: linear layers, dropout, sinusoidal positional encoding, multi-head
// scaled-dot-product attention, and the Transformer encoder used by the
// DeepBAT deep surrogate model (Vaswani et al., as referenced by the paper).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"deepbat/internal/tensor"
)

// Module is any component with learnable parameters.
type Module interface {
	// Params returns the learnable parameter tensors of the module.
	Params() []*tensor.Tensor
}

// CollectParams flattens the parameters of several modules.
func CollectParams(ms ...Module) []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, m := range ms {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count of a module.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumEl()
	}
	return n
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

// Linear is a fully connected layer: y = x W + b.
type Linear struct {
	W *tensor.Tensor // in × out
	B *tensor.Tensor // out
}

// NewLinear returns a Linear layer with Xavier/Glorot-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: tensor.Randn(rng, scale, in, out).RequireGrad(),
		B: tensor.New(out).RequireGrad(),
	}
}

// Forward applies the layer to x (n × in) producing (n × out).
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.AddRow(tensor.MatMul(x, l.W), l.B)
}

// ForwardInto applies the layer tape-free into a preallocated dst (n × out),
// bit-identical to Forward's values row for row. NoGrad only: it writes
// through dst in place, which must never happen to a tensor on a tape.
//
//deepbat:nograd
func (l *Linear) ForwardInto(dst, x *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulInto(dst, x, l.W)
	return tensor.AddRowInPlace(dst, l.B)
}

// Params implements Module.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Replicate returns a layer sharing this layer's weights (same backing
// arrays) with private gradient buffers, for data-parallel workers.
func (l *Linear) Replicate() *Linear {
	return &Linear{W: l.W.ShareData(), B: l.B.ShareData()}
}

// ---------------------------------------------------------------------------
// FeedForward: Linear -> ReLU -> Linear (the paper's FF blocks)
// ---------------------------------------------------------------------------

// FeedForward is a two-layer perceptron with a ReLU hidden activation, the
// "FeedForward" block of the paper's architecture (hidden width 32, ReLU).
type FeedForward struct {
	In, Hidden, Out int
	L1, L2          *Linear
}

// NewFeedForward constructs a FeedForward block.
func NewFeedForward(rng *rand.Rand, in, hidden, out int) *FeedForward {
	return &FeedForward{
		In: in, Hidden: hidden, Out: out,
		L1: NewLinear(rng, in, hidden),
		L2: NewLinear(rng, hidden, out),
	}
}

// Forward applies the block row-wise.
func (f *FeedForward) Forward(x *tensor.Tensor) *tensor.Tensor {
	return f.L2.Forward(tensor.ReLU(f.L1.Forward(x)))
}

// ForwardScratch applies the block tape-free, drawing the hidden activation
// and the output from pool. The returned (n × Out) tensor is pool-owned: the
// caller must hand it back with pool.Put (after copying anything it needs)
// before the pool is reused for conflicting work. Values are bit-identical
// to Forward's. NoGrad only.
//
//deepbat:nograd
func (f *FeedForward) ForwardScratch(pool *tensor.ScratchPool, x *tensor.Tensor) *tensor.Tensor {
	n := x.Rows()
	h := pool.Get(n, f.Hidden)
	f.L1.ForwardInto(h, x)
	tensor.ReLUInPlace(h)
	out := pool.Get(n, f.Out)
	f.L2.ForwardInto(out, h)
	pool.Put(h)
	return out
}

// Params implements Module.
func (f *FeedForward) Params() []*tensor.Tensor {
	return CollectParams(f.L1, f.L2)
}

// Replicate returns a weight-sharing copy with private gradients.
func (f *FeedForward) Replicate() *FeedForward {
	return &FeedForward{
		In: f.In, Hidden: f.Hidden, Out: f.Out,
		L1: f.L1.Replicate(),
		L2: f.L2.Replicate(),
	}
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

// LayerNorm holds the learnable gain and bias of layer normalization.
type LayerNorm struct {
	Gain, Bias *tensor.Tensor
	Eps        float64
}

// NewLayerNorm returns a LayerNorm over vectors of the given dimension.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Gain: tensor.Full(1, dim).RequireGrad(),
		Bias: tensor.New(dim).RequireGrad(),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gain, l.Bias} }

// Replicate returns a weight-sharing copy with private gradients.
func (l *LayerNorm) Replicate() *LayerNorm {
	return &LayerNorm{Gain: l.Gain.ShareData(), Bias: l.Bias.ShareData(), Eps: l.Eps}
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

// Dropout zeroes a fraction P of activations during training and rescales the
// survivors by 1/(1-P) (inverted dropout). In evaluation mode it is the
// identity.
type Dropout struct {
	P     float64
	Train bool
	rng   *rand.Rand
}

// NewDropout returns a Dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies dropout to x.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.Train || d.P <= 0 {
		return x
	}
	keep := 1 - d.P
	mask := tensor.New(x.Shape...)
	for i := range mask.Data {
		if d.rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		}
	}
	return tensor.Mul(x, mask)
}

// Params implements Module (dropout has none).
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// SetRNG installs the random stream used for mask draws. Data-parallel
// training reseeds dropout deterministically per sample so mask draws depend
// only on the sample, never on which worker runs it.
func (d *Dropout) SetRNG(rng *rand.Rand) { d.rng = rng }

// Replicate returns a copy with the same drop probability and training flag
// but its own (initially nil) random stream; install one with SetRNG before
// training forward passes when P > 0.
func (d *Dropout) Replicate() *Dropout {
	return &Dropout{P: d.P, Train: d.Train}
}

// ---------------------------------------------------------------------------
// Positional encoding
// ---------------------------------------------------------------------------

// PositionalEncoding precomputes the sinusoidal position table of the
// Transformer paper for sequences up to MaxLen.
type PositionalEncoding struct {
	MaxLen, Dim int
	table       *tensor.Tensor // MaxLen × Dim, constant
}

// NewPositionalEncoding builds the encoding table.
func NewPositionalEncoding(maxLen, dim int) *PositionalEncoding {
	table := tensor.New(maxLen, dim)
	for pos := 0; pos < maxLen; pos++ {
		for i := 0; i < dim; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(dim))
			if i%2 == 0 {
				table.Set(pos, i, math.Sin(angle))
			} else {
				table.Set(pos, i, math.Cos(angle))
			}
		}
	}
	return &PositionalEncoding{MaxLen: maxLen, Dim: dim, table: table}
}

// Forward adds the positional table to x (l × dim), l <= MaxLen.
func (p *PositionalEncoding) Forward(x *tensor.Tensor) *tensor.Tensor {
	l, d := x.Rows(), x.Cols()
	if d != p.Dim {
		panic(fmt.Sprintf("nn: positional encoding dim %d vs input %d", p.Dim, d))
	}
	if l > p.MaxLen {
		panic(fmt.Sprintf("nn: sequence length %d exceeds max %d", l, p.MaxLen))
	}
	sub := tensor.FromData(p.table.Data[:l*d], l, d)
	return tensor.Add(x, sub)
}

// Params implements Module (the table is constant).
func (p *PositionalEncoding) Params() []*tensor.Tensor { return nil }

// ---------------------------------------------------------------------------
// Multi-head attention
// ---------------------------------------------------------------------------

// MultiHeadAttention implements scaled-dot-product attention with h heads:
//
//	MultiHeadAtt(Q,K,V) = Concat(H_1..H_h) W_o,  H_i = softmax(Q_i K_i^T/√d_h) V_i
//
// as in Eq. (3) of the paper. The per-head projections are stored as single
// matrices whose column blocks correspond to heads.
type MultiHeadAttention struct {
	Dim, Heads int
	headDim    int
	Wq, Wk, Wv *Linear
	Wo         *Linear

	// lastScores stores the most recent post-softmax attention weights,
	// one (lq × lk) tensor per head, for the paper's Fig. 14 attention-score
	// visualization. It is overwritten on every Forward call.
	lastScores []*tensor.Tensor
	// captureScores forces score recording even under NoGrad (see
	// SetCaptureScores).
	captureScores bool
}

// NewMultiHeadAttention builds an attention block; dim must be divisible by
// heads.
func NewMultiHeadAttention(rng *rand.Rand, dim, heads int) *MultiHeadAttention {
	if heads <= 0 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim: dim, Heads: heads, headDim: dim / heads,
		Wq: NewLinear(rng, dim, dim),
		Wk: NewLinear(rng, dim, dim),
		Wv: NewLinear(rng, dim, dim),
		Wo: NewLinear(rng, dim, dim),
	}
}

// Forward computes attention of query q (lq × dim) against keys/values
// k, v (lk × dim). mask, if non-nil, is an additive (lq × lk) bias applied to
// the attention logits (use large negative values to mask positions out).
func (m *MultiHeadAttention) Forward(q, k, v, mask *tensor.Tensor) *tensor.Tensor {
	qp := m.Wq.Forward(q)
	kp := m.Wk.Forward(k)
	vp := m.Wv.Forward(v)
	scale := 1 / math.Sqrt(float64(m.headDim))

	// Recording the attention maps mutates the module, which would race when
	// many no-grad inference goroutines share one model; skip it there unless
	// a single-goroutine caller opted in with SetCaptureScores.
	record := tensor.GradEnabled() || m.captureScores
	if record {
		m.lastScores = m.lastScores[:0]
	}
	var heads *tensor.Tensor
	for h := 0; h < m.Heads; h++ {
		off := h * m.headDim
		qh := tensor.NarrowCols(qp, off, m.headDim)
		kh := tensor.NarrowCols(kp, off, m.headDim)
		vh := tensor.NarrowCols(vp, off, m.headDim)
		logits := tensor.Scale(tensor.MatMul(qh, tensor.Transpose(kh)), scale)
		if mask != nil {
			logits = tensor.Add(logits, mask)
		}
		att := tensor.Softmax(logits)
		if record {
			m.lastScores = append(m.lastScores, att)
		}
		out := tensor.MatMul(att, vh)
		if heads == nil {
			heads = out
		} else {
			heads = tensor.ConcatCols(heads, out)
		}
	}
	return m.Wo.Forward(heads)
}

// LastScores returns the post-softmax attention matrices (one per head) from
// the most recent Forward call. The returned tensors are owned by the tape;
// callers should copy the data if they need to keep it.
func (m *MultiHeadAttention) LastScores() []*tensor.Tensor { return m.lastScores }

// SetCaptureScores toggles attention-map recording for tape-free forwards.
// Scores are always recorded in grad mode; under NoGrad they are skipped by
// default because recording mutates the module, which would race across
// concurrent inference goroutines. A single-goroutine caller that wants the
// maps without building a tape (AttentionScores) sets the flag around its
// forward pass and clears it afterwards.
func (m *MultiHeadAttention) SetCaptureScores(on bool) { m.captureScores = on }

// Params implements Module.
func (m *MultiHeadAttention) Params() []*tensor.Tensor {
	return CollectParams(m.Wq, m.Wk, m.Wv, m.Wo)
}

// Replicate returns a weight-sharing copy with private gradients and its own
// attention-score scratch state.
func (m *MultiHeadAttention) Replicate() *MultiHeadAttention {
	return &MultiHeadAttention{
		Dim: m.Dim, Heads: m.Heads, headDim: m.headDim,
		Wq: m.Wq.Replicate(), Wk: m.Wk.Replicate(),
		Wv: m.Wv.Replicate(), Wo: m.Wo.Replicate(),
	}
}

// ---------------------------------------------------------------------------
// Transformer encoder
// ---------------------------------------------------------------------------

// EncoderLayer is one pre-activation Transformer encoder block:
// self-attention and a position-wise feed-forward network, each wrapped with
// a residual connection and layer normalization.
type EncoderLayer struct {
	Att        *MultiHeadAttention
	FF         *FeedForward
	Norm1      *LayerNorm
	Norm2      *LayerNorm
	Drop1      *Dropout
	Drop2      *Dropout
	Dim, FFDim int
}

// NewEncoderLayer builds an encoder layer with model width dim, ffDim hidden
// units in the feed-forward subnetwork, and the given number of heads.
func NewEncoderLayer(rng *rand.Rand, dim, ffDim, heads int, dropout float64) *EncoderLayer {
	return &EncoderLayer{
		Att:   NewMultiHeadAttention(rng, dim, heads),
		FF:    NewFeedForward(rng, dim, ffDim, dim),
		Norm1: NewLayerNorm(dim),
		Norm2: NewLayerNorm(dim),
		Drop1: NewDropout(rng, dropout),
		Drop2: NewDropout(rng, dropout),
		Dim:   dim, FFDim: ffDim,
	}
}

// Forward applies the layer to x (l × dim).
func (e *EncoderLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	att := e.Att.Forward(x, x, x, nil)
	x = e.Norm1.Forward(tensor.Add(x, e.Drop1.Forward(att)))
	ff := e.FF.Forward(x)
	return e.Norm2.Forward(tensor.Add(x, e.Drop2.Forward(ff)))
}

// SetTrain toggles training-mode behaviour (dropout).
func (e *EncoderLayer) SetTrain(train bool) {
	e.Drop1.Train = train
	e.Drop2.Train = train
}

// SetDropoutRNG installs one shared random stream on both dropout layers
// (mirroring the constructor, where they share the model rng and draw in
// forward order).
func (e *EncoderLayer) SetDropoutRNG(rng *rand.Rand) {
	e.Drop1.SetRNG(rng)
	e.Drop2.SetRNG(rng)
}

// Params implements Module.
func (e *EncoderLayer) Params() []*tensor.Tensor {
	return CollectParams(e.Att, e.FF, e.Norm1, e.Norm2)
}

// Replicate returns a weight-sharing copy with private gradients. The copy's
// dropout layers have no random stream until SetDropoutRNG is called.
func (e *EncoderLayer) Replicate() *EncoderLayer {
	return &EncoderLayer{
		Att:   e.Att.Replicate(),
		FF:    e.FF.Replicate(),
		Norm1: e.Norm1.Replicate(),
		Norm2: e.Norm2.Replicate(),
		Drop1: e.Drop1.Replicate(),
		Drop2: e.Drop2.Replicate(),
		Dim:   e.Dim, FFDim: e.FFDim,
	}
}

// Encoder is a stack of N encoder layers (the paper uses N = 2).
type Encoder struct {
	Layers []*EncoderLayer
}

// NewEncoder builds a stack of n encoder layers.
func NewEncoder(rng *rand.Rand, n, dim, ffDim, heads int, dropout float64) *Encoder {
	layers := make([]*EncoderLayer, n)
	for i := range layers {
		layers[i] = NewEncoderLayer(rng, dim, ffDim, heads, dropout)
	}
	return &Encoder{Layers: layers}
}

// Forward applies the stack to x.
func (e *Encoder) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range e.Layers {
		x = l.Forward(x)
	}
	return x
}

// SetTrain toggles training-mode behaviour of every layer.
func (e *Encoder) SetTrain(train bool) {
	for _, l := range e.Layers {
		l.SetTrain(train)
	}
}

// SetDropoutRNG installs one shared random stream on every layer's dropout,
// so mask draws consume it in forward order exactly like the constructor's
// shared model rng.
func (e *Encoder) SetDropoutRNG(rng *rand.Rand) {
	for _, l := range e.Layers {
		l.SetDropoutRNG(rng)
	}
}

// Replicate returns a weight-sharing copy of the stack with private
// gradients (see EncoderLayer.Replicate).
func (e *Encoder) Replicate() *Encoder {
	layers := make([]*EncoderLayer, len(e.Layers))
	for i, l := range e.Layers {
		layers[i] = l.Replicate()
	}
	return &Encoder{Layers: layers}
}

// Params implements Module.
func (e *Encoder) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range e.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
