package qsim

import (
	"encoding/binary"
	"math"
	"testing"

	"deepbat/internal/fault"
	"deepbat/internal/lambda"
)

// decodeArrivals turns fuzz bytes into a nondecreasing timestamp sequence.
func decodeArrivals(data []byte) []float64 {
	var ts []float64
	t := 0.0
	for len(data) >= 2 {
		gap := float64(binary.LittleEndian.Uint16(data)) / 1e4 // 0..6.5535s
		data = data[2:]
		t += gap
		ts = append(ts, t)
	}
	return ts
}

// FuzzRun drives the simulator with arbitrary arrival gaps, grid-clamped
// configurations, and seeded fault schedules, checking structural
// invariants: every request is either served or marked failed exactly once,
// surviving latencies are at least the batch service floor, surviving costs
// are at least the per-request fee share, and failed requests are free.
func FuzzRun(f *testing.F) {
	f.Add([]byte{10, 0, 20, 0, 30, 0, 40, 0}, uint16(2048), uint8(4), uint16(50), uint8(0), uint8(0), int64(0))
	f.Add([]byte{0, 0, 0, 0}, uint16(128), uint8(1), uint16(0), uint8(0), uint8(0), int64(0))
	f.Add([]byte{255, 255, 1, 0}, uint16(10240), uint8(64), uint16(1000), uint8(0), uint8(0), int64(0))
	// Fault-schedule corpus: moderate and total error rates, with and
	// without retry budget, plus straggler/spike-heavy mixes.
	f.Add([]byte{10, 0, 20, 0, 30, 0, 40, 0}, uint16(2048), uint8(2), uint16(50), uint8(30), uint8(2), int64(7))
	f.Add([]byte{5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0}, uint16(1024), uint8(4), uint16(20), uint8(100), uint8(0), int64(1))
	f.Add([]byte{50, 0, 50, 0, 50, 0, 50, 0}, uint16(3008), uint8(8), uint16(200), uint8(55), uint8(5), int64(-3))
	f.Fuzz(func(t *testing.T, raw []byte, mem uint16, batch uint8, timeoutMS uint16,
		errPct uint8, retryMax uint8, faultSeed int64) {
		ts := decodeArrivals(raw)
		if len(ts) == 0 {
			return
		}
		cfg := lambda.Config{
			MemoryMB:  lambda.ClampMemory(float64(mem)),
			BatchSize: int(batch%64) + 1,
			TimeoutS:  float64(timeoutMS) / 1000,
		}
		s := New(lambda.DefaultProfile(), lambda.DefaultPricing())
		if errPct > 0 {
			s.Opts.Fault = &fault.Plan{
				Seed:          faultSeed,
				ErrorRate:     float64(errPct%101) / 100,
				StragglerRate: float64(errPct%7) / 10,
				ColdSpikeRate: float64(errPct%3) / 10,
			}
			s.Opts.Retry = fault.Retry{Max: int(retryMax % 8), BaseS: 0.001, CapS: 0.01}
		}
		res, err := s.Run(ts, cfg)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		if len(res.Latencies) != len(ts) {
			t.Fatalf("served %d of %d", len(res.Latencies), len(ts))
		}
		served := 0
		failedReqs := 0
		for _, b := range res.Batches {
			served += b.Size
			if b.Size < 1 || b.Size > cfg.BatchSize {
				t.Fatalf("batch size %d out of [1, %d]", b.Size, cfg.BatchSize)
			}
			if b.Failed {
				failedReqs += b.Size
				if b.Cost > 0 {
					t.Fatalf("failed batch billed: %+v", b)
				}
			}
			if b.Attempts < 1 {
				t.Fatalf("batch consumed %d attempts", b.Attempts)
			}
		}
		if served != len(ts) {
			t.Fatalf("batches cover %d of %d requests", served, len(ts))
		}
		if failedReqs != res.FailedRequests {
			t.Fatalf("failed batches cover %d requests, Result says %d", failedReqs, res.FailedRequests)
		}
		isFailed := func(i int) bool { return res.Failed != nil && res.Failed[i] }
		minSvc := s.Profile.ServiceTime(cfg.MemoryMB, 1)
		for i, lat := range res.Latencies {
			if math.IsNaN(lat) || math.IsInf(lat, 0) || lat < 0 {
				t.Fatalf("latency[%d] = %v", i, lat)
			}
			if !isFailed(i) && lat < minSvc-1e-9 {
				t.Fatalf("latency[%d] = %v below service floor %v", i, lat, minSvc)
			}
		}
		minFee := s.Pricing.PerRequestUSD / float64(cfg.BatchSize)
		for i, c := range res.PerRequestCost {
			if isFailed(i) {
				if c > 0 {
					t.Fatalf("failed request %d billed %v", i, c)
				}
				continue
			}
			if c < minFee-1e-18 {
				t.Fatalf("cost[%d] = %v below fee share %v", i, c, minFee)
			}
		}
	})
}
