package qsim

import (
	"encoding/binary"
	"math"
	"testing"

	"deepbat/internal/lambda"
)

// decodeArrivals turns fuzz bytes into a nondecreasing timestamp sequence.
func decodeArrivals(data []byte) []float64 {
	var ts []float64
	t := 0.0
	for len(data) >= 2 {
		gap := float64(binary.LittleEndian.Uint16(data)) / 1e4 // 0..6.5535s
		data = data[2:]
		t += gap
		ts = append(ts, t)
	}
	return ts
}

// FuzzRun drives the simulator with arbitrary arrival gaps and grid-clamped
// configurations, checking structural invariants: every request is served
// exactly once, latencies are at least the batch service floor, and costs
// are at least the per-request fee share.
func FuzzRun(f *testing.F) {
	f.Add([]byte{10, 0, 20, 0, 30, 0, 40, 0}, uint16(2048), uint8(4), uint16(50))
	f.Add([]byte{0, 0, 0, 0}, uint16(128), uint8(1), uint16(0))
	f.Add([]byte{255, 255, 1, 0}, uint16(10240), uint8(64), uint16(1000))
	f.Fuzz(func(t *testing.T, raw []byte, mem uint16, batch uint8, timeoutMS uint16) {
		ts := decodeArrivals(raw)
		if len(ts) == 0 {
			return
		}
		cfg := lambda.Config{
			MemoryMB:  lambda.ClampMemory(float64(mem)),
			BatchSize: int(batch%64) + 1,
			TimeoutS:  float64(timeoutMS) / 1000,
		}
		s := New(lambda.DefaultProfile(), lambda.DefaultPricing())
		res, err := s.Run(ts, cfg)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		if len(res.Latencies) != len(ts) {
			t.Fatalf("served %d of %d", len(res.Latencies), len(ts))
		}
		served := 0
		for _, b := range res.Batches {
			served += b.Size
			if b.Size < 1 || b.Size > cfg.BatchSize {
				t.Fatalf("batch size %d out of [1, %d]", b.Size, cfg.BatchSize)
			}
		}
		if served != len(ts) {
			t.Fatalf("batches cover %d of %d requests", served, len(ts))
		}
		minSvc := s.Profile.ServiceTime(cfg.MemoryMB, 1)
		for i, lat := range res.Latencies {
			if lat < minSvc-1e-9 || math.IsNaN(lat) || math.IsInf(lat, 0) {
				t.Fatalf("latency[%d] = %v below service floor %v", i, lat, minSvc)
			}
		}
		minFee := s.Pricing.PerRequestUSD / float64(cfg.BatchSize)
		for i, c := range res.PerRequestCost {
			if c < minFee-1e-18 {
				t.Fatalf("cost[%d] = %v below fee share %v", i, c, minFee)
			}
		}
	})
}
