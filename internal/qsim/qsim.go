// Package qsim is the discrete-event simulator of the serverless batching
// system that both the paper and BATCH use as ground truth. Requests arrive
// at given timestamps, accumulate in a buffer that dispatches either when the
// batch size B is reached or T seconds after the first request of the batch
// arrived, and execute on an autoscaling serverless function with
// deterministic, configuration-dependent service times. Per-request latency
// is buffering delay plus service time; cost follows the AWS Lambda pricing
// model. An optional warm-container pool models cold starts.
package qsim

import (
	"errors"
	"sort"

	"deepbat/internal/fault"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
	"deepbat/internal/sweep"
)

// Options controls optional simulator behaviour.
type Options struct {
	// EnableColdStarts charges the profile's cold-start latency whenever a
	// dispatch cannot reuse a warm container.
	EnableColdStarts bool
	// KeepAlive is how long an idle container stays warm (seconds).
	KeepAlive float64
	// MaxConcurrency caps the number of simultaneously executing
	// invocations, modeling an account concurrency limit; dispatched batches
	// queue for a free slot. 0 means unlimited (pure autoscaling, the
	// paper's assumption).
	MaxConcurrency int
	// Obs, when non-nil, accumulates per-run counters and histograms
	// (requests, dispatch causes, cold starts, latency, cost). Every value
	// derives from the trace and simulated time, so snapshots are
	// byte-identical across same-seed runs.
	Obs *obs.Registry
	// Recorder, when non-nil, receives one "dispatch" event per invocation
	// (plus "cold_start" events), stamped with simulated time.
	Recorder *obs.Recorder
	// Fault, when non-nil and active, mirrors the gateway's fault-injection
	// model in simulated time: the outcome of invocation attempt k is the
	// same pure function of (Fault.Seed, k) the live fault.FaultyBackend
	// draws, so experiments and the real-time gateway agree on one fault
	// schedule. An inactive (or nil) plan leaves Run bit-identical to a
	// fault-free simulation, including its obs snapshots.
	Fault *fault.Plan
	// Retry mirrors the gateway's retry policy in simulated time: failed
	// attempts are retried up to Retry.Max times with the deterministic
	// capped-doubling backoff (no jitter — simulated time keeps the bound
	// exact). A batch that exhausts its retries fails: its requests get a
	// time-to-failure latency, zero cost, and a Result.Failed mark.
	Retry fault.Retry
	// Workers bounds the parallel fan-out of multi-run entry points —
	// GroundTruthBest's grid search — via internal/sweep (0 = GOMAXPROCS,
	// 1 = serial). Each grid config is one independent pure Run, so results
	// and the selected config are bit-identical at any worker count. The
	// fan-out engages only when Obs and Recorder are nil: shared sinks would
	// interleave nondeterministically, so instrumented searches stay serial.
	Workers int
}

// Simulator evaluates configurations against arrival traces.
type Simulator struct {
	Profile lambda.Profile
	Pricing lambda.Pricing
	Opts    Options
}

// New returns a simulator over the given profile and pricing.
func New(p lambda.Profile, pr lambda.Pricing) *Simulator {
	return &Simulator{Profile: p, Pricing: pr, Opts: Options{KeepAlive: 600}}
}

// Batch records one dispatched invocation.
type Batch struct {
	DispatchAt float64
	// StartAt is when execution actually began: equal to DispatchAt unless
	// the batch had to queue for a concurrency slot.
	StartAt float64
	Size    int
	Service float64 // execution time, including cold start if charged
	Cost    float64 // invocation cost in USD
	Cold    bool
	// Attempts is how many invocation attempts the batch consumed (1
	// without fault injection); Failed marks a batch whose retry budget
	// was exhausted, and RetryDelayS is the cumulative backoff it waited.
	Attempts    int
	Failed      bool
	RetryDelayS float64
}

// Result holds the outcome of simulating one configuration over a trace.
type Result struct {
	Config lambda.Config
	// Latencies holds the end-to-end latency of every request, in arrival
	// order: buffering delay + service time (+ cold start when enabled).
	Latencies []float64
	// PerRequestCost holds each request's share of its invocation cost.
	PerRequestCost []float64
	// DispatchTimes holds each request's batch dispatch timestamp.
	DispatchTimes []float64
	Batches       []Batch
	TotalCost     float64
	// Failure accounting, populated only under fault injection. Failed is
	// nil until a batch fails; Failed[k] marks request k's batch as
	// retry-exhausted (its Latencies entry is then time-to-failure and its
	// PerRequestCost is zero).
	Failed         []bool
	FailedRequests int
	Retries        int
}

// ErrNoArrivals is returned when the trace is empty.
var ErrNoArrivals = errors.New("qsim: empty arrival trace")

// CostPerRequest returns the average USD cost per request.
func (r *Result) CostPerRequest() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	return r.TotalCost / float64(len(r.Latencies))
}

// LatencyPercentile returns the p-th percentile latency.
func (r *Result) LatencyPercentile(p float64) float64 {
	v, err := stats.Percentile(r.Latencies, p)
	if err != nil {
		return 0
	}
	return v
}

// MeanBatchSize returns the average number of requests per invocation.
func (r *Result) MeanBatchSize() float64 {
	if len(r.Batches) == 0 {
		return 0
	}
	total := 0
	for _, b := range r.Batches {
		total += b.Size
	}
	return float64(total) / float64(len(r.Batches))
}

// VCR returns the SLO violation count ratio of the run, in percent.
func (r *Result) VCR(slo float64) float64 { return stats.VCR(r.Latencies, slo) }

// Run simulates the trace of absolute arrival timestamps (nondecreasing)
// under cfg and returns per-request metrics.
func (s *Simulator) Run(arrivals []float64, cfg lambda.Config) (*Result, error) {
	if len(arrivals) == 0 {
		return nil, ErrNoArrivals
	}
	if !cfg.Valid() {
		return nil, errors.New("qsim: invalid configuration " + cfg.String())
	}
	n := len(arrivals)
	res := &Result{
		Config:         cfg,
		Latencies:      make([]float64, n),
		PerRequestCost: make([]float64, n),
		DispatchTimes:  make([]float64, n),
	}
	// The injector exists only for an active plan, so a zero fault rate
	// leaves every code path — and every registered metric series —
	// bit-identical to a fault-free run.
	var inj *fault.Injector
	if s.Opts.Fault != nil && s.Opts.Fault.Active() {
		inj = fault.NewInjector(*s.Opts.Fault)
	}
	met, err := newRunMetrics(s.Opts.Obs, inj != nil)
	if err != nil {
		return nil, err
	}
	var inv uint64 // invocation attempt index, mirrors FaultyBackend's counter
	// Warm-container pool: times at which containers become idle.
	var warm []float64
	// Concurrency slots: execution end times of in-flight invocations, kept
	// as a running window of the most recent MaxConcurrency batches.
	var slots *slotPool
	if s.Opts.MaxConcurrency > 0 {
		slots = newSlotPool(s.Opts.MaxConcurrency)
	}

	i := 0
	for i < n {
		first := arrivals[i]
		deadline := first + cfg.TimeoutS
		j := i + 1
		for j < n && j-i < cfg.BatchSize && arrivals[j] <= deadline {
			j++
		}
		size := j - i
		dispatch := deadline
		if size == cfg.BatchSize {
			dispatch = arrivals[j-1]
		}
		start := dispatch
		if slots != nil {
			// Wait for the earliest slot to free up, then occupy it.
			if free := slots.earliest(); free > start {
				start = free
			}
		}
		// Resolve the batch's fault outcome before it touches the warm pool
		// or a concurrency slot: a failed batch never executes, so it must
		// leave the platform state untouched.
		attempts := 1
		retryDelay := 0.0
		var outcome fault.Outcome
		failed := false
		if inj != nil {
			attempts = 0
			for {
				o := inj.Outcome(inv)
				inv++
				attempts++
				if !o.Err {
					outcome = o
					break
				}
				if attempts > s.Opts.Retry.Max {
					failed = true
					break
				}
				retryDelay += s.Opts.Retry.BackoffS(attempts - 1)
			}
			res.Retries += attempts - 1
		}
		cause := dispatchCauseTimeout
		if size == cfg.BatchSize {
			cause = dispatchCauseSize
		}
		if failed {
			failAt := start + retryDelay
			batch := Batch{
				DispatchAt: dispatch, StartAt: start, Size: size,
				Attempts: attempts, Failed: true, RetryDelayS: retryDelay,
			}
			res.Batches = append(res.Batches, batch)
			if res.Failed == nil {
				res.Failed = make([]bool, n)
			}
			res.FailedRequests += size
			for k := i; k < j; k++ {
				res.Latencies[k] = failAt - arrivals[k] // time to failure
				res.DispatchTimes[k] = dispatch
				res.Failed[k] = true
			}
			met.observeFailedBatch(batch)
			if s.Opts.Recorder != nil {
				s.Opts.Recorder.EventAt(failAt, "batch_failed",
					obs.I("size", size), obs.I("attempts", attempts))
			}
			i = j
			continue
		}
		execStart := start
		if retryDelay > 0 {
			execStart = start + retryDelay
		}
		svc := s.Profile.ServiceTime(cfg.MemoryMB, size)
		cold := false
		if s.Opts.EnableColdStarts {
			cold = !s.takeWarm(&warm, execStart)
			if cold {
				svc += s.Profile.ColdStart(cfg.MemoryMB)
			}
		}
		// Straggler factors and cold-start spikes inflate the executed
		// duration exactly like fault.FaultyBackend does on the live path,
		// and the invocation is re-billed at its inflated runtime.
		if outcome.StragglerFactor > 0 {
			svc *= outcome.StragglerFactor
		}
		if outcome.ColdSpikeS > 0 {
			svc += outcome.ColdSpikeS
		}
		if slots != nil {
			slots.occupy(execStart + svc)
		}
		cost := s.Pricing.InvocationCost(cfg.MemoryMB, svc)
		batch := Batch{
			DispatchAt: dispatch, StartAt: start, Size: size, Service: svc, Cost: cost, Cold: cold,
			Attempts: attempts, RetryDelayS: retryDelay,
		}
		res.Batches = append(res.Batches, batch)
		res.TotalCost += cost
		perReq := cost / float64(size)
		for k := i; k < j; k++ {
			res.Latencies[k] = execStart - arrivals[k] + svc
			res.PerRequestCost[k] = perReq
			res.DispatchTimes[k] = dispatch
		}
		met.observeBatch(batch, cause, res.Latencies[i:j])
		met.observeRetries(attempts - 1)
		recordDispatch(s.Opts.Recorder, batch, cause)
		if s.Opts.EnableColdStarts {
			warm = append(warm, execStart+svc)
		}
		i = j
	}
	return res, nil
}

// slotPool tracks the end times of in-flight invocations under a
// concurrency cap as a min-heap.
type slotPool struct {
	cap  int
	ends []float64 // min-heap of execution end times
}

func newSlotPool(capacity int) *slotPool { return &slotPool{cap: capacity} }

// earliest returns the time the next slot frees up (0 when a slot is idle).
func (p *slotPool) earliest() float64 {
	if len(p.ends) < p.cap {
		return 0
	}
	return p.ends[0]
}

// occupy records an execution ending at end, evicting the earliest-ending
// invocation when the pool is full (its slot is being reused).
func (p *slotPool) occupy(end float64) {
	if len(p.ends) == p.cap {
		p.popMin()
	}
	p.push(end)
}

func (p *slotPool) push(v float64) {
	p.ends = append(p.ends, v)
	i := len(p.ends) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.ends[parent] <= p.ends[i] {
			break
		}
		p.ends[parent], p.ends[i] = p.ends[i], p.ends[parent]
		i = parent
	}
}

func (p *slotPool) popMin() {
	last := len(p.ends) - 1
	p.ends[0] = p.ends[last]
	p.ends = p.ends[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(p.ends) && p.ends[l] < p.ends[small] {
			small = l
		}
		if r < len(p.ends) && p.ends[r] < p.ends[small] {
			small = r
		}
		if small == i {
			return
		}
		p.ends[i], p.ends[small] = p.ends[small], p.ends[i]
		i = small
	}
}

// takeWarm removes a warm container usable at time t from the pool, if any,
// and reports whether one was found.
func (s *Simulator) takeWarm(warm *[]float64, t float64) bool {
	pool := *warm
	for idx, free := range pool {
		if free <= t && t-free <= s.Opts.KeepAlive {
			pool[idx] = pool[len(pool)-1]
			*warm = pool[:len(pool)-1]
			return true
		}
	}
	// Garbage-collect expired containers to bound the pool.
	kept := pool[:0]
	for _, free := range pool {
		if t-free <= s.Opts.KeepAlive {
			kept = append(kept, free)
		}
	}
	*warm = kept
	return false
}

// Timestamps converts interarrival times to absolute arrival timestamps
// starting at the first interarrival.
func Timestamps(inter []float64) []float64 {
	ts := make([]float64, len(inter))
	t := 0.0
	for i, d := range inter {
		t += d
		ts[i] = t
	}
	return ts
}

// Interarrivals converts absolute timestamps to interarrival times, with the
// first entry equal to the first timestamp.
func Interarrivals(ts []float64) []float64 {
	out := make([]float64, len(ts))
	prev := 0.0
	for i, t := range ts {
		out[i] = t - prev
		prev = t
	}
	return out
}

// Target is the ground-truth label vector used to train the surrogate model:
// the per-request cost followed by the requested latency percentiles.
type Target struct {
	CostPerRequest float64
	Percentiles    []float64 // same order as the requested percentile list
}

// Vector flattens the target as [cost, p_1, ..., p_k].
func (t Target) Vector() []float64 {
	out := make([]float64, 0, 1+len(t.Percentiles))
	out = append(out, t.CostPerRequest)
	out = append(out, t.Percentiles...)
	return out
}

// Evaluate simulates cfg over the interarrival window and returns the
// training target with the given latency percentiles (e.g. 50, 75, 90, 95,
// 99 as predicted by the surrogate).
func (s *Simulator) Evaluate(inter []float64, cfg lambda.Config, percentiles []float64) (Target, error) {
	res, err := s.Run(Timestamps(inter), cfg)
	if err != nil {
		return Target{}, err
	}
	ps, err := stats.Percentiles(res.Latencies, percentiles)
	if err != nil {
		return Target{}, err
	}
	return Target{CostPerRequest: res.CostPerRequest(), Percentiles: ps}, nil
}

// GroundTruthBest exhaustively simulates every configuration in the grid and
// returns the cheapest one whose pct-percentile latency meets the SLO,
// together with its result. If no configuration is feasible it returns the
// one with the lowest tail latency. This is the paper's "ground truth"
// oracle.
func (s *Simulator) GroundTruthBest(arrivals []float64, grid lambda.Grid, slo, pct float64) (lambda.Config, *Result, error) {
	if len(arrivals) == 0 {
		return lambda.Config{}, nil, ErrNoArrivals
	}
	type scored struct {
		cfg  lambda.Config
		res  *Result
		tail float64
	}
	configs := grid.Configs()
	all := make([]scored, len(configs))
	runOne := func(i int) error {
		res, err := s.Run(arrivals, configs[i])
		if err != nil {
			return err
		}
		all[i] = scored{configs[i], res, res.LatencyPercentile(pct)}
		return nil
	}
	if s.Opts.Workers != 1 && s.Opts.Obs == nil && s.Opts.Recorder == nil {
		// Each config's Run is a pure function of (arrivals, config), so the
		// grid fans out across workers; results land at their grid index and
		// the selection below scans them in grid order, keeping the chosen
		// config bit-identical to a serial search.
		err := sweep.Run(sweep.Options{Workers: s.Opts.Workers}, len(configs), func(c *sweep.Cell) error {
			return runOne(c.Index)
		})
		if err != nil {
			return lambda.Config{}, nil, err
		}
	} else {
		for i := range configs {
			if err := runOne(i); err != nil {
				return lambda.Config{}, nil, err
			}
		}
	}
	bestIdx := -1
	for i, sc := range all {
		if sc.tail > slo {
			continue
		}
		if bestIdx < 0 || sc.res.CostPerRequest() < all[bestIdx].res.CostPerRequest() {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		// Infeasible everywhere: fall back to the lowest tail latency.
		sort.Slice(all, func(i, j int) bool { return all[i].tail < all[j].tail })
		bestIdx = 0
	}
	return all[bestIdx].cfg, all[bestIdx].res, nil
}
