package qsim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"deepbat/internal/fault"
	"deepbat/internal/obs"
)

// TestFaultRateZeroIsBitIdentical is the no-fault ⇒ no-behavior-change
// property: a nil plan, an inactive (all-zero) plan, and the pre-fault code
// path must produce bit-identical Results and byte-identical obs snapshots.
func TestFaultRateZeroIsBitIdentical(t *testing.T) {
	arrivals := obsArrivals(t, 11, 500)
	run := func(plan *fault.Plan) (*Result, []byte, []byte) {
		s := sim()
		s.Opts.EnableColdStarts = true
		s.Opts.KeepAlive = 0.1
		s.Opts.MaxConcurrency = 2
		reg := obs.NewRegistry()
		rec := obs.NewRecorder(nil, 0)
		s.Opts.Obs = reg
		s.Opts.Recorder = rec
		s.Opts.Fault = plan
		s.Opts.Retry = fault.Retry{Max: 3, BaseS: 0.01, CapS: 0.04}
		res, err := s.Run(arrivals, cfg(2048, 8, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		var metrics, events bytes.Buffer
		if err := reg.WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteEventsJSON(&events); err != nil {
			t.Fatal(err)
		}
		return res, metrics.Bytes(), events.Bytes()
	}
	base, bm, be := run(nil)
	zero, zm, ze := run(&fault.Plan{Seed: 42}) // seed set, every rate zero
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("epsilon=0 plan changed the Result:\n%+v\n%+v", base, zero)
	}
	if !bytes.Equal(bm, zm) {
		t.Fatalf("epsilon=0 plan changed the metric snapshot:\n%s\n---\n%s", bm, zm)
	}
	if !bytes.Equal(be, ze) {
		t.Fatalf("epsilon=0 plan changed the event stream:\n%s\n---\n%s", be, ze)
	}
	if bytes.Contains(zm, []byte("qsim_retries_total")) {
		t.Fatal("inactive plan registered failure series")
	}
}

// TestFaultRunDeterministic: two runs under the same active plan are
// bit-identical, and an active plan actually perturbs the fault-free run.
func TestFaultRunDeterministic(t *testing.T) {
	arrivals := obsArrivals(t, 5, 400)
	plan := &fault.Plan{Seed: 9, ErrorRate: 0.3, StragglerRate: 0.2, ColdSpikeRate: 0.1}
	run := func(p *fault.Plan) (*Result, []byte) {
		s := sim()
		reg := obs.NewRegistry()
		s.Opts.Obs = reg
		s.Opts.Fault = p
		s.Opts.Retry = fault.Retry{Max: 1, BaseS: 0.005, CapS: 0.02}
		res, err := s.Run(arrivals, cfg(1024, 4, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		var metrics bytes.Buffer
		if err := reg.WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		return res, metrics.Bytes()
	}
	a, am := run(plan)
	b, bm := run(plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-plan runs differ")
	}
	if !bytes.Equal(am, bm) {
		t.Fatalf("same-plan snapshots differ:\n%s\n---\n%s", am, bm)
	}
	clean, _ := run(nil)
	if reflect.DeepEqual(a, clean) {
		t.Fatal("active plan produced a fault-free run (injection had no effect)")
	}
	if a.FailedRequests == 0 && a.Retries == 0 {
		t.Fatalf("plan with 30%% error rate injected nothing: %+v", a)
	}
}

// TestFaultFailedBatchAccounting pins the failure semantics with a scripted
// schedule: Retry.Max=1 and three consecutive errors exhaust the first
// batch, whose requests get a time-to-failure latency and zero cost, while
// later batches are untouched.
func TestFaultFailedBatchAccounting(t *testing.T) {
	// Two batches of 2 (B=2, tight timeout): attempts 0,1 fail the first
	// batch (Max=1 -> 2 attempts); attempt 2 serves the second batch.
	arrivals := []float64{0.00, 0.01, 1.00, 1.01}
	plan := &fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}}}
	s := sim()
	reg := obs.NewRegistry()
	s.Opts.Obs = reg
	s.Opts.Fault = plan
	s.Opts.Retry = fault.Retry{Max: 1, BaseS: 0.25, CapS: 1}
	res, err := s.Run(arrivals, cfg(2048, 2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(res.Batches))
	}
	failedBatch, okBatch := res.Batches[0], res.Batches[1]
	if !failedBatch.Failed || failedBatch.Attempts != 2 || failedBatch.Cost > 0 {
		t.Fatalf("first batch = %+v, want failed after 2 attempts at zero cost", failedBatch)
	}
	if math.Abs(failedBatch.RetryDelayS-0.25) > 1e-12 {
		t.Fatalf("retry delay = %v, want 0.25 (one base backoff)", failedBatch.RetryDelayS)
	}
	if okBatch.Failed || okBatch.Attempts != 1 || okBatch.Cost <= 0 {
		t.Fatalf("second batch = %+v, want clean", okBatch)
	}
	if res.FailedRequests != 2 || res.Retries != 1 {
		t.Fatalf("failure accounting = %d failed, %d retries; want 2, 1", res.FailedRequests, res.Retries)
	}
	if res.Failed == nil || !res.Failed[0] || !res.Failed[1] || res.Failed[2] || res.Failed[3] {
		t.Fatalf("Failed marks = %v", res.Failed)
	}
	// Time to failure: dispatch at 0.01 (size dispatch) + one 0.25s backoff.
	wantFail := 0.01 + 0.25
	for k := 0; k < 2; k++ {
		if math.Abs(res.Latencies[k]-(wantFail-arrivals[k])) > 1e-12 {
			t.Fatalf("latency[%d] = %v, want time-to-failure %v", k, res.Latencies[k], wantFail-arrivals[k])
		}
		if res.PerRequestCost[k] > 0 {
			t.Fatalf("failed request %d billed %v", k, res.PerRequestCost[k])
		}
	}
	if res.TotalCost != okBatch.Cost {
		t.Fatalf("total cost %v != surviving batch cost %v", res.TotalCost, okBatch.Cost)
	}
	counter := func(name string) float64 {
		t.Helper()
		c, err := reg.Counter(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return c.Value()
	}
	if counter("qsim_failed_batches_total") != 1 || counter("qsim_failed_requests_total") != 2 ||
		counter("qsim_retries_total") != 1 {
		t.Fatal("failure counters do not match the scripted schedule")
	}
	if counter("qsim_requests_total") != 2 {
		t.Fatal("failed requests leaked into qsim_requests_total")
	}
}

// TestFaultStragglerInflatesServiceAndCost: a scripted straggler multiplies
// the executed service time and the invocation is re-billed accordingly.
func TestFaultStragglerInflatesServiceAndCost(t *testing.T) {
	arrivals := []float64{0, 0.001}
	clean := sim()
	base, err := clean.Run(arrivals, cfg(2048, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	s := sim()
	s.Opts.Fault = &fault.Plan{Script: []fault.Outcome{{StragglerFactor: 3}}}
	res, err := s.Run(arrivals, cfg(2048, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	wantSvc := 3 * base.Batches[0].Service
	if math.Abs(res.Batches[0].Service-wantSvc) > 1e-12 {
		t.Fatalf("straggler service = %v, want %v", res.Batches[0].Service, wantSvc)
	}
	if res.TotalCost <= base.TotalCost {
		t.Fatalf("straggler not re-billed: %v <= %v", res.TotalCost, base.TotalCost)
	}
	// Cold-start spike adds absolute seconds instead.
	s2 := sim()
	s2.Opts.Fault = &fault.Plan{Script: []fault.Outcome{{ColdSpikeS: 0.75}}}
	res2, err := s2.Run(arrivals, cfg(2048, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Batches[0].Service-(base.Batches[0].Service+0.75)) > 1e-12 {
		t.Fatalf("spiked service = %v, want %v", res2.Batches[0].Service, base.Batches[0].Service+0.75)
	}
}
