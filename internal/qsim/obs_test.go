package qsim

import (
	"bytes"
	"math/rand"
	"testing"

	"deepbat/internal/arrival"
	"deepbat/internal/obs"
)

// obsArrivals generates one seeded Poisson trace for the instrumentation
// tests.
func obsArrivals(t *testing.T, seed int64, n int) []float64 {
	t.Helper()
	g, err := arrival.NewGen(arrival.Poisson(100), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return Timestamps(g.Sample(n))
}

// TestRunObsCountersMatchResult cross-checks every series against the
// returned Result: instrumentation must mirror the simulation, not sample it.
func TestRunObsCountersMatchResult(t *testing.T) {
	arrivals := obsArrivals(t, 3, 400)
	s := sim()
	s.Opts.EnableColdStarts = true
	s.Opts.KeepAlive = 0.05
	s.Opts.MaxConcurrency = 2
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(nil, 0)
	s.Opts.Obs = reg
	s.Opts.Recorder = rec
	res, err := s.Run(arrivals, cfg(1024, 4, 0.02))
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) float64 {
		t.Helper()
		c, err := reg.Counter(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return c.Value()
	}
	if got := counter("qsim_requests_total"); got != float64(len(res.Latencies)) {
		t.Fatalf("requests counter = %v, want %d", got, len(res.Latencies))
	}
	if got := counter("qsim_batches_total"); got != float64(len(res.Batches)) {
		t.Fatalf("batches counter = %v, want %d", got, len(res.Batches))
	}
	if counter("qsim_dispatch_size_total")+counter("qsim_dispatch_timeout_total") != float64(len(res.Batches)) {
		t.Fatal("dispatch-cause counters do not partition the batches")
	}
	if counter("qsim_dispatch_size_total") == 0 || counter("qsim_dispatch_timeout_total") == 0 {
		t.Fatal("trace did not exercise both dispatch causes")
	}
	var colds, queued int
	for _, b := range res.Batches {
		if b.Cold {
			colds++
		}
		if b.StartAt > b.DispatchAt {
			queued++
		}
	}
	if colds == 0 || queued == 0 {
		t.Fatalf("trace did not exercise cold starts (%d) or queueing (%d)", colds, queued)
	}
	if got := counter("qsim_cold_starts_total"); got != float64(colds) {
		t.Fatalf("cold-start counter = %v, want %d", got, colds)
	}
	if got := counter("qsim_queued_batches_total"); got != float64(queued) {
		t.Fatalf("queued counter = %v, want %d", got, queued)
	}
	if got := counter("qsim_cost_usd_total"); got != res.TotalCost {
		t.Fatalf("cost counter = %v, want %v", got, res.TotalCost)
	}
	h, err := reg.Histogram("qsim_latency_seconds", "", obs.DefaultLatencyBuckets())
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != uint64(len(res.Latencies)) {
		t.Fatalf("latency observations = %d, want %d", h.Count(), len(res.Latencies))
	}

	// Event stream: one dispatch per batch plus one cold_start per cold batch.
	byName := map[string]int{}
	for _, nc := range rec.CountByName() {
		byName[nc.Name] = nc.Count
	}
	if byName["dispatch"] != len(res.Batches) || byName["cold_start"] != colds {
		t.Fatalf("event counts = %v, want dispatch=%d cold_start=%d", byName, len(res.Batches), colds)
	}
	ev := rec.Events()
	if ev[0].Time != res.Batches[0].DispatchAt {
		t.Fatalf("first event at %v, want %v", ev[0].Time, res.Batches[0].DispatchAt)
	}
}

// TestRunObsSnapshotsByteIdentical is the PR's acceptance criterion: two
// same-seed simulator runs must render byte-identical JSON metric snapshots
// and event streams.
func TestRunObsSnapshotsByteIdentical(t *testing.T) {
	render := func() ([]byte, []byte) {
		arrivals := obsArrivals(t, 11, 500)
		s := sim()
		s.Opts.EnableColdStarts = true
		s.Opts.KeepAlive = 0.1
		reg := obs.NewRegistry()
		rec := obs.NewRecorder(nil, 0)
		s.Opts.Obs = reg
		s.Opts.Recorder = rec
		if _, err := s.Run(arrivals, cfg(2048, 8, 0.05)); err != nil {
			t.Fatal(err)
		}
		var metrics, events bytes.Buffer
		if err := reg.WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteEventsJSON(&events); err != nil {
			t.Fatal(err)
		}
		return metrics.Bytes(), events.Bytes()
	}
	m1, e1 := render()
	m2, e2 := render()
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metric snapshots differ across same-seed runs:\n%s\n---\n%s", m1, m2)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatalf("event streams differ across same-seed runs:\n%s\n---\n%s", e1, e2)
	}
	if len(e1) == 0 || !bytes.Contains(e1, []byte(`"dispatch"`)) {
		t.Fatalf("event stream missing dispatches:\n%s", e1)
	}
}

// TestRunObsRegistryCollision: a colliding injected registry fails the run
// with an error, never a panic.
func TestRunObsRegistryCollision(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := reg.Gauge("qsim_requests_total", "wrong kind"); err != nil {
		t.Fatal(err)
	}
	s := sim()
	s.Opts.Obs = reg
	if _, err := s.Run([]float64{0.1, 0.2}, cfg(1024, 4, 0.1)); err == nil {
		t.Fatal("Run accepted a registry with a colliding metric name")
	}
}
