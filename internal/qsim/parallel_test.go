package qsim

import (
	"math/rand"
	"testing"

	"deepbat/internal/lambda"
)

// TestGroundTruthBestParallelMatchesSerial pins the sweep fan-out contract
// for the grid search: the selected config and its result are bit-identical
// whether the grid is evaluated serially or across workers.
func TestGroundTruthBestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := make([]float64, 400)
	at := 0.0
	for i := range ts {
		at += rng.ExpFloat64() / 80
		ts[i] = at
	}
	grid := lambda.DefaultGrid()

	serial := New(lambda.DefaultProfile(), lambda.DefaultPricing())
	serial.Opts.Workers = 1
	sCfg, sRes, err := serial.GroundTruthBest(ts, grid, 0.1, 95)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{0, 4, 8} {
		par := New(lambda.DefaultProfile(), lambda.DefaultPricing())
		par.Opts.Workers = w
		pCfg, pRes, err := par.GroundTruthBest(ts, grid, 0.1, 95)
		if err != nil {
			t.Fatal(err)
		}
		if pCfg != sCfg {
			t.Fatalf("workers=%d selected %v, serial selected %v", w, pCfg, sCfg)
		}
		if len(pRes.Latencies) != len(sRes.Latencies) {
			t.Fatalf("workers=%d: %d latencies vs %d", w, len(pRes.Latencies), len(sRes.Latencies))
		}
		for i := range pRes.Latencies {
			//lint:allow floatcompare bit-identity is the contract under test
			if pRes.Latencies[i] != sRes.Latencies[i] {
				t.Fatalf("workers=%d: latency %d = %v, want %v", w, i, pRes.Latencies[i], sRes.Latencies[i])
			}
		}
		//lint:allow floatcompare bit-identity is the contract under test
		if pRes.TotalCost != sRes.TotalCost {
			t.Fatalf("workers=%d: cost %v, want %v", w, pRes.TotalCost, sRes.TotalCost)
		}
	}
}
