package qsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepbat/internal/arrival"
	"deepbat/internal/lambda"
)

func sim() *Simulator {
	return New(lambda.DefaultProfile(), lambda.DefaultPricing())
}

func cfg(m float64, b int, t float64) lambda.Config {
	return lambda.Config{MemoryMB: m, BatchSize: b, TimeoutS: t}
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := sim().Run(nil, cfg(1024, 4, 0.1)); err != ErrNoArrivals {
		t.Fatalf("err = %v, want ErrNoArrivals", err)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if _, err := sim().Run([]float64{1}, cfg(1024, 0, 0.1)); err == nil {
		t.Fatal("expected invalid-config error")
	}
}

func TestBatchFillsByCount(t *testing.T) {
	// Four arrivals in quick succession, B=4, long timeout: one batch
	// dispatched at the 4th arrival.
	s := sim()
	ts := []float64{0.00, 0.01, 0.02, 0.03}
	res, err := s.Run(ts, cfg(2048, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || res.Batches[0].Size != 4 {
		t.Fatalf("batches = %+v", res.Batches)
	}
	if res.Batches[0].DispatchAt != 0.03 {
		t.Fatalf("dispatch at %v, want 0.03", res.Batches[0].DispatchAt)
	}
	svc := s.Profile.ServiceTime(2048, 4)
	// First request waited 0.03, then service.
	if math.Abs(res.Latencies[0]-(0.03+svc)) > 1e-12 {
		t.Fatalf("latency[0] = %v", res.Latencies[0])
	}
	// Last request waited 0.
	if math.Abs(res.Latencies[3]-svc) > 1e-12 {
		t.Fatalf("latency[3] = %v", res.Latencies[3])
	}
}

func TestBatchFlushesByTimeout(t *testing.T) {
	s := sim()
	// Two arrivals then silence; B=8 never fills, flush at T.
	ts := []float64{0.00, 0.02, 5.0}
	res, err := s.Run(ts, cfg(2048, 8, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(res.Batches))
	}
	if res.Batches[0].Size != 2 || math.Abs(res.Batches[0].DispatchAt-0.1) > 1e-12 {
		t.Fatalf("first batch = %+v", res.Batches[0])
	}
	if res.Batches[1].Size != 1 || math.Abs(res.Batches[1].DispatchAt-5.1) > 1e-12 {
		t.Fatalf("second batch = %+v", res.Batches[1])
	}
	svc1 := s.Profile.ServiceTime(2048, 2)
	if math.Abs(res.Latencies[0]-(0.1+svc1)) > 1e-12 {
		t.Fatalf("latency[0] = %v", res.Latencies[0])
	}
	if math.Abs(res.Latencies[1]-(0.08+svc1)) > 1e-12 {
		t.Fatalf("latency[1] = %v", res.Latencies[1])
	}
}

func TestZeroTimeoutServesIndividually(t *testing.T) {
	res, err := sim().Run([]float64{0, 0.5, 1.0}, cfg(2048, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("batches = %d, want 3 (one per request)", len(res.Batches))
	}
	for _, b := range res.Batches {
		if b.Size != 1 {
			t.Fatalf("batch size = %d, want 1", b.Size)
		}
	}
}

func TestBatchSizeOneIgnoresTimeout(t *testing.T) {
	res, err := sim().Run([]float64{0, 1, 2}, cfg(2048, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("B=1 should dispatch immediately; batches = %d", len(res.Batches))
	}
	for i, b := range res.Batches {
		if b.DispatchAt != float64(i) {
			t.Fatalf("dispatch[%d] = %v", i, b.DispatchAt)
		}
	}
}

func TestCostAccounting(t *testing.T) {
	s := sim()
	ts := []float64{0, 0.01, 0.02, 0.03}
	res, err := s.Run(ts, cfg(1024, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc := s.Profile.ServiceTime(1024, 4)
	wantInv := s.Pricing.InvocationCost(1024, svc)
	if math.Abs(res.TotalCost-wantInv) > 1e-15 {
		t.Fatalf("TotalCost = %v, want %v", res.TotalCost, wantInv)
	}
	if math.Abs(res.CostPerRequest()-wantInv/4) > 1e-15 {
		t.Fatalf("CostPerRequest = %v", res.CostPerRequest())
	}
	for _, c := range res.PerRequestCost {
		if math.Abs(c-wantInv/4) > 1e-15 {
			t.Fatalf("per-request cost = %v", c)
		}
	}
}

func TestBatchingReducesCostIncreasesLatency(t *testing.T) {
	// Fig. 1b/1c of the paper, reproduced in miniature: under the same
	// arrival stream, bigger batches/timeouts cut per-request cost but raise
	// latency.
	s := sim()
	rng := rand.New(rand.NewSource(1))
	g, err := arrival.NewGen(arrival.Poisson(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	ts := g.SampleUntil(60)
	small, err := s.Run(ts, cfg(2048, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Run(ts, cfg(2048, 16, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if big.CostPerRequest() >= small.CostPerRequest() {
		t.Fatalf("batching should cut cost: %v vs %v", big.CostPerRequest(), small.CostPerRequest())
	}
	if big.LatencyPercentile(95) <= small.LatencyPercentile(95) {
		t.Fatalf("batching should raise tail latency: %v vs %v",
			big.LatencyPercentile(95), small.LatencyPercentile(95))
	}
}

func TestMoreMemoryLowersLatencyRaisesCost(t *testing.T) {
	s := sim()
	rng := rand.New(rand.NewSource(2))
	g, _ := arrival.NewGen(arrival.Poisson(50), rng)
	ts := g.SampleUntil(60)
	lo, _ := s.Run(ts, cfg(512, 4, 0.05))
	hi, _ := s.Run(ts, cfg(4096, 4, 0.05))
	if hi.LatencyPercentile(95) >= lo.LatencyPercentile(95) {
		t.Fatalf("more memory should cut latency: %v vs %v",
			hi.LatencyPercentile(95), lo.LatencyPercentile(95))
	}
	// At 8x memory the GB-second bill dominates the shorter duration here.
	if hi.CostPerRequest() <= lo.CostPerRequest() {
		t.Fatalf("8x memory should cost more: %v vs %v", hi.CostPerRequest(), lo.CostPerRequest())
	}
}

func TestColdStarts(t *testing.T) {
	s := sim()
	s.Opts.EnableColdStarts = true
	s.Opts.KeepAlive = 10
	// Three widely spaced singleton batches: first is cold; second reuses the
	// warm container; third arrives after keep-alive expiry and is cold again.
	ts := []float64{0, 5, 100}
	res, err := s.Run(ts, cfg(2048, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Batches[0].Cold || res.Batches[1].Cold || !res.Batches[2].Cold {
		t.Fatalf("cold flags = %v %v %v", res.Batches[0].Cold, res.Batches[1].Cold, res.Batches[2].Cold)
	}
	if res.Latencies[0] <= res.Latencies[1] {
		t.Fatal("cold start should add latency")
	}
}

func TestConcurrentColdStarts(t *testing.T) {
	s := sim()
	s.Opts.EnableColdStarts = true
	// Two simultaneous singleton dispatches need two containers: both cold.
	ts := []float64{0, 0}
	res, err := s.Run(ts, cfg(2048, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Batches[0].Cold || !res.Batches[1].Cold {
		t.Fatalf("both dispatches should be cold: %+v", res.Batches)
	}
}

func TestTimestampsInterarrivalsRoundTrip(t *testing.T) {
	inter := []float64{0.5, 0.2, 1.3}
	ts := Timestamps(inter)
	want := []float64{0.5, 0.7, 2.0}
	for i := range want {
		if math.Abs(ts[i]-want[i]) > 1e-12 {
			t.Fatalf("Timestamps = %v", ts)
		}
	}
	back := Interarrivals(ts)
	for i := range inter {
		if math.Abs(back[i]-inter[i]) > 1e-12 {
			t.Fatalf("Interarrivals = %v", back)
		}
	}
}

func TestEvaluateTarget(t *testing.T) {
	s := sim()
	inter := make([]float64, 100)
	for i := range inter {
		inter[i] = 0.01
	}
	tgt, err := s.Evaluate(inter, cfg(2048, 4, 0.05), []float64{50, 95})
	if err != nil {
		t.Fatal(err)
	}
	if tgt.CostPerRequest <= 0 {
		t.Fatal("cost must be positive")
	}
	if len(tgt.Percentiles) != 2 || tgt.Percentiles[0] > tgt.Percentiles[1] {
		t.Fatalf("percentiles = %v", tgt.Percentiles)
	}
	v := tgt.Vector()
	if len(v) != 3 || v[0] != tgt.CostPerRequest || v[2] != tgt.Percentiles[1] {
		t.Fatalf("Vector = %v", v)
	}
}

func TestGroundTruthBestRespectsSLO(t *testing.T) {
	s := sim()
	rng := rand.New(rand.NewSource(3))
	g, _ := arrival.NewGen(arrival.Poisson(100), rng)
	ts := g.SampleUntil(30)
	grid := lambda.DefaultGrid()
	best, res, err := s.GroundTruthBest(ts, grid, 0.1, 95)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyPercentile(95) > 0.1 {
		t.Fatalf("ground truth violates SLO: %v", res.LatencyPercentile(95))
	}
	// It must be the cheapest feasible configuration: spot-check against a
	// few other feasible ones.
	for _, c := range grid.Configs() {
		r, err := s.Run(ts, c)
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencyPercentile(95) <= 0.1 && r.CostPerRequest() < res.CostPerRequest()-1e-15 {
			t.Fatalf("config %v is feasible and cheaper than chosen %v", c, best)
		}
	}
}

func TestGroundTruthBestInfeasibleFallsBack(t *testing.T) {
	s := sim()
	ts := []float64{0, 0.001, 0.002}
	// Impossible SLO: returns the configuration with the lowest tail.
	best, res, err := s.GroundTruthBest(ts, lambda.DefaultGrid(), 1e-9, 95)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Valid() || res == nil {
		t.Fatal("fallback should still return a configuration")
	}
	if _, _, err := s.GroundTruthBest(nil, lambda.DefaultGrid(), 0.1, 95); err != ErrNoArrivals {
		t.Fatal("empty trace should error")
	}
}

func TestVCRAndMeanBatch(t *testing.T) {
	s := sim()
	ts := []float64{0, 0.01, 0.02, 0.03}
	res, err := s.Run(ts, cfg(2048, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBatchSize() != 2 {
		t.Fatalf("MeanBatchSize = %v", res.MeanBatchSize())
	}
	if res.VCR(1000) != 0 {
		t.Fatal("VCR with huge SLO should be 0")
	}
	if res.VCR(0) != 100 {
		t.Fatal("VCR with zero SLO should be 100")
	}
}

func TestLatencyIsWaitPlusServiceProperty(t *testing.T) {
	// Property: every latency >= service time of its batch, and every wait
	// <= timeout unless the batch filled by count.
	s := sim()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := arrival.NewGen(arrival.MMPP2(80, 2, 0.5, 0.5), rng)
		if err != nil {
			return false
		}
		ts := g.SampleUntil(20)
		if len(ts) == 0 {
			return true
		}
		c := cfg(1024, 4, 0.08)
		res, err := s.Run(ts, c)
		if err != nil {
			return false
		}
		req := 0
		for _, b := range res.Batches {
			for k := 0; k < b.Size; k++ {
				lat := res.Latencies[req]
				wait := lat - b.Service
				if wait < -1e-9 {
					return false
				}
				if b.Size < c.BatchSize && wait > c.TimeoutS+b.Service {
					return false
				}
				req++
			}
		}
		return req == len(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrencyCapQueues(t *testing.T) {
	s := sim()
	s.Opts.MaxConcurrency = 1
	// Two simultaneous singleton dispatches with a single slot: the second
	// must wait for the first to finish.
	ts := []float64{0, 0}
	res, err := s.Run(ts, cfg(2048, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	svc := s.Profile.ServiceTime(2048, 1)
	if math.Abs(res.Latencies[0]-svc) > 1e-12 {
		t.Fatalf("first latency = %v, want %v", res.Latencies[0], svc)
	}
	if math.Abs(res.Latencies[1]-2*svc) > 1e-12 {
		t.Fatalf("queued latency = %v, want %v", res.Latencies[1], 2*svc)
	}
	if res.Batches[1].StartAt <= res.Batches[1].DispatchAt {
		t.Fatal("queued batch should start after its dispatch time")
	}
}

func TestConcurrencyCapHighEqualsUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _ := arrival.NewGen(arrival.Poisson(50), rng)
	ts := g.SampleUntil(30)
	c := cfg(2048, 4, 0.05)

	unlimited := sim()
	r1, err := unlimited.Run(ts, c)
	if err != nil {
		t.Fatal(err)
	}
	capped := sim()
	capped.Opts.MaxConcurrency = 10000
	r2, err := capped.Run(ts, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Latencies {
		if math.Abs(r1.Latencies[i]-r2.Latencies[i]) > 1e-12 {
			t.Fatalf("latency %d differs under huge cap", i)
		}
	}
}

func TestConcurrencyCapRaisesTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := arrival.NewGen(arrival.Poisson(300), rng)
	ts := g.SampleUntil(20)
	c := cfg(1024, 1, 0)

	free := sim()
	r1, err := free.Run(ts, c)
	if err != nil {
		t.Fatal(err)
	}
	tight := sim()
	tight.Opts.MaxConcurrency = 2
	r2, err := tight.Run(ts, c)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LatencyPercentile(95) <= r1.LatencyPercentile(95) {
		t.Fatalf("tight cap should raise tail latency: %v vs %v",
			r2.LatencyPercentile(95), r1.LatencyPercentile(95))
	}
}

func TestSlotPoolOrdering(t *testing.T) {
	p := newSlotPool(3)
	for _, v := range []float64{5, 1, 4, 2, 9} {
		p.occupy(v)
	}
	// After 5 occupies with cap 3, the three largest end times remain and
	// the earliest of them is the next free time.
	if got := p.earliest(); got != 4 {
		t.Fatalf("earliest = %v, want 4", got)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := sim().Evaluate(nil, cfg(1024, 2, 0.1), []float64{95}); err == nil {
		t.Fatal("expected error on empty window")
	}
}
