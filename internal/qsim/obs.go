package qsim

import "deepbat/internal/obs"

// Dispatch causes recorded by the simulator's metrics and event stream.
const (
	dispatchCauseSize    = "size"    // buffer reached cfg.BatchSize
	dispatchCauseTimeout = "timeout" // cfg.TimeoutS elapsed since the first request
)

// batchSizeBuckets covers the configuration grid's batch sizes.
func batchSizeBuckets() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64} }

// runMetrics holds the series Run maintains when Options.Obs is set. qsim is
// a deterministic-core package: every value fed into these series derives
// from simulated time and the arrival trace, never from a wall clock, so two
// same-seed runs produce byte-identical snapshots.
type runMetrics struct {
	requests    *obs.Counter
	batches     *obs.Counter
	dispSize    *obs.Counter
	dispTimeout *obs.Counter
	coldStarts  *obs.Counter
	queued      *obs.Counter
	cost        *obs.Counter
	latency     *obs.Histogram
	batchSize   *obs.Histogram
	// Failure series, registered only when fault injection is active so a
	// fault-free run's snapshot stays byte-identical to pre-fault builds.
	retries       *obs.Counter
	failedBatches *obs.Counter
	failedReqs    *obs.Counter
}

// newRunMetrics registers the run series; the failure series are added only
// for fault-injected runs.
func newRunMetrics(reg *obs.Registry, faultActive bool) (*runMetrics, error) {
	if reg == nil {
		return nil, nil
	}
	m := &runMetrics{}
	var err error
	counter := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	counter(&m.requests, "qsim_requests_total", "simulated requests completed")
	counter(&m.batches, "qsim_batches_total", "simulated invocations dispatched")
	counter(&m.dispSize, "qsim_dispatch_size_total", "dispatches triggered by a full batch")
	counter(&m.dispTimeout, "qsim_dispatch_timeout_total", "dispatches triggered by the batching timeout")
	counter(&m.coldStarts, "qsim_cold_starts_total", "dispatches that paid a cold start")
	counter(&m.queued, "qsim_queued_batches_total", "dispatches delayed waiting for a concurrency slot")
	counter(&m.cost, "qsim_cost_usd_total", "total simulated invocation cost in USD")
	if faultActive {
		counter(&m.retries, "qsim_retries_total", "simulated invocation retries")
		counter(&m.failedBatches, "qsim_failed_batches_total", "simulated batches that exhausted their retries")
		counter(&m.failedReqs, "qsim_failed_requests_total", "simulated requests lost to retry-exhausted batches")
	}
	if err == nil {
		m.latency, err = reg.Histogram("qsim_latency_seconds",
			"end-to-end simulated request latency", obs.DefaultLatencyBuckets())
	}
	if err == nil {
		m.batchSize, err = reg.Histogram("qsim_batch_size",
			"requests per simulated invocation", batchSizeBuckets())
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// observeBatch records one dispatched invocation and its per-request
// latencies (latencies[k] for requests i..i+size-1 of the trace).
func (m *runMetrics) observeBatch(b Batch, cause string, latencies []float64) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchSize.Observe(float64(b.Size))
	m.cost.Add(b.Cost)
	if cause == dispatchCauseSize {
		m.dispSize.Inc()
	} else {
		m.dispTimeout.Inc()
	}
	if b.Cold {
		m.coldStarts.Inc()
	}
	if b.StartAt > b.DispatchAt {
		m.queued.Inc()
	}
	for _, lat := range latencies {
		m.requests.Inc()
		m.latency.Observe(lat)
	}
}

// observeRetries records n retried invocation attempts (no-op outside
// fault-injected runs, where the series is not registered).
func (m *runMetrics) observeRetries(n int) {
	if m == nil || m.retries == nil || n <= 0 {
		return
	}
	m.retries.Add(float64(n))
}

// observeFailedBatch records one retry-exhausted batch and its lost
// requests (its retried attempts included).
func (m *runMetrics) observeFailedBatch(b Batch) {
	if m == nil || m.failedBatches == nil {
		return
	}
	m.failedBatches.Inc()
	m.failedReqs.Add(float64(b.Size))
	m.observeRetries(b.Attempts - 1)
}

// recordDispatch appends the batch's events to the recorder, stamped with
// simulated time via EventAt — the simulator never reads a clock. Cold starts
// get their own event so the stream can be filtered per ISSUE's "dispatches,
// cold starts" breakdown.
func recordDispatch(rec *obs.Recorder, b Batch, cause string) {
	if rec == nil {
		return
	}
	rec.EventAt(b.DispatchAt, "dispatch",
		obs.I("size", b.Size),
		obs.S("cause", cause),
		obs.F("service_s", b.Service),
		obs.F("cost_usd", b.Cost),
		obs.B("cold", b.Cold),
	)
	if b.Cold {
		rec.EventAt(b.StartAt, "cold_start", obs.F("start_s", b.StartAt))
	}
}
