//go:build !race

package tensor

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
