package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shapes that stress the row-block partitioner: fewer rows than workers,
// single-row, single-column, single-inner-dim, and odd sizes that do not
// divide evenly into chunks.
var oddShapes = []struct{ n, k, m int }{
	{1, 1, 1},
	{1, 7, 5},
	{3, 1, 9},
	{5, 4, 1},
	{2, 3, 2},
	{7, 7, 7},
	{13, 5, 11},
	{64, 3, 17},
	{31, 32, 33},
}

// TestMatMulIntoWorkersBitIdentical checks that the parallel forward kernel
// equals the serial kernel bit-for-bit for every worker count, including
// workers > n.
func TestMatMulIntoWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, s := range oddShapes {
		a := Randn(rng, 1, s.n, s.k)
		b := Randn(rng, 1, s.k, s.m)
		want := make([]float64, s.n*s.m)
		matmulRows(want, a.Data, b.Data, 0, s.n, s.k, s.m)
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			got := make([]float64, s.n*s.m)
			matmulIntoWorkers(got, a.Data, b.Data, s.n, s.k, s.m, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v workers=%d: element %d = %v, want %v (bitwise)",
						s, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMatMulBackwardWorkersBitIdentical checks the parallel dA and dB
// kernels against their single-worker runs, bit-for-bit, on the same odd
// shapes. Accumulation starts from a nonzero gradient to cover the +=
// semantics.
func TestMatMulBackwardWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, s := range oddShapes {
		a := Randn(rng, 1, s.n, s.k)
		b := Randn(rng, 1, s.k, s.m)
		g := Randn(rng, 1, s.n, s.m)
		seed := Randn(rng, 0.1, s.n, s.k)

		wantA := append([]float64(nil), seed.Data...)
		matmulBackwardAWorkers(wantA, b.Data, g.Data, s.n, s.k, s.m, 1)
		wantB := make([]float64, s.k*s.m)
		matmulBackwardBWorkers(wantB, a.Data, g.Data, s.n, s.k, s.m, 1)

		for _, workers := range []int{2, 3, 4, 8, 16} {
			gotA := append([]float64(nil), seed.Data...)
			matmulBackwardAWorkers(gotA, b.Data, g.Data, s.n, s.k, s.m, workers)
			for i := range wantA {
				if gotA[i] != wantA[i] {
					t.Fatalf("shape %v workers=%d: dA[%d] = %v, want %v (bitwise)",
						s, workers, i, gotA[i], wantA[i])
				}
			}
			gotB := make([]float64, s.k*s.m)
			matmulBackwardBWorkers(gotB, a.Data, g.Data, s.n, s.k, s.m, workers)
			for i := range wantB {
				if gotB[i] != wantB[i] {
					t.Fatalf("shape %v workers=%d: dB[%d] = %v, want %v (bitwise)",
						s, workers, i, gotB[i], wantB[i])
				}
			}
		}
	}
}

// TestMatMulBackwardMatchesNaive checks the restructured dB loop order (and
// dA) against a direct dA = g @ B^T, dB = A^T @ g computation through the
// tape on a product large enough to engage the parallel threshold.
func TestMatMulBackwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, k, m := 48, 40, 44 // n*k*m > matmulParallelThreshold
	if n*k*m < matmulParallelThreshold {
		t.Fatalf("shape too small to engage the parallel path")
	}
	a := Randn(rng, 1, n, k).RequireGrad()
	b := Randn(rng, 1, k, m).RequireGrad()
	out := MatMul(a, b)
	loss := SumAll(out)
	Backward(loss)
	// With dLoss/dOut = 1 everywhere: dA[i,j] = sum_c B[j,c], dB[j,c] = sum_i A[i,j].
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			want := 0.0
			for c := 0; c < m; c++ {
				want += b.Data[j*m+c]
			}
			got := a.Grad[i*k+j]
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("dA[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	for j := 0; j < k; j++ {
		for c := 0; c < m; c++ {
			want := 0.0
			for i := 0; i < n; i++ {
				want += a.Data[i*k+j]
			}
			got := b.Grad[j*m+c]
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("dB[%d,%d] = %v, want %v", j, c, got, want)
			}
		}
	}
}

// buildGraph exercises every forward op of the package on deterministic
// inputs and returns the flattened output values, so a grad-mode run can be
// compared against a no-grad run.
func buildGraph(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := Randn(rng, 1, 3, 4).RequireGrad()
	b := Randn(rng, 1, 3, 4).RequireGrad()
	w := Randn(rng, 1, 4, 2).RequireGrad()
	bias := Randn(rng, 1, 2).RequireGrad()
	gain := Full(1, 4).RequireGrad()
	gbias := New(4).RequireGrad()
	target := Randn(rng, 1, 1, 2)

	x := Add(a, b)
	x = Sub(x, Mul(a, b))
	x = LayerNorm(x, gain, gbias, 1e-5)
	x = Scale(AddScalar(x, 0.1), 1.3)
	h := AddRow(MatMul(x, w), bias) // (3, 2)
	h = ConcatCols(h, Tanh(h))      // (3, 4)
	h = NarrowCols(h, 1, 2)         // (3, 2)
	h = Softmax(h)                  // (3, 2)
	h = Mul(ReLU(h), Sigmoid(h))    // (3, 2)
	pooled := MeanRows(h)           // (1, 2)
	pooled = Reshape(pooled, 1, 2)  // (1, 2)
	tr := Transpose(pooled)         // (2, 1)
	flatT := Reshape(tr, 1, 2)
	hub := Huber(pooled, target, 1.0, nil)
	mape := MAPELoss(pooled, target, nil)
	mse := MSE(flatT, target)
	total := Add(Add(hub, mape), Add(mse, MeanAll(h)))
	total = Add(total, SumAll(pooled))

	var out []float64
	out = append(out, h.Data...)
	out = append(out, pooled.Data...)
	out = append(out, total.Data...)
	return out
}

// TestNoGradForwardBitIdentical fuzzes the whole op set: forward values
// computed inside NoGrad must equal grad-mode values bit-for-bit.
func TestNoGradForwardBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		want := buildGraph(seed)
		var got []float64
		NoGrad(func() { got = buildGraph(seed) })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNoGradProducesLeaves checks the tape-suppression semantics: results
// computed under NoGrad carry no parents, no gradient storage, and cannot
// backpropagate into grad-requiring inputs.
func TestNoGradProducesLeaves(t *testing.T) {
	a := FromData([]float64{1, 2}, 2).RequireGrad()
	b := FromData([]float64{3, 4}, 2).RequireGrad()
	var c *Tensor
	NoGrad(func() {
		c = Mul(Add(a, b), b)
	})
	if c.RequiresGrad() || c.Grad != nil {
		t.Fatal("NoGrad result should not require gradients")
	}
	if len(c.parents) != 0 || c.backward != nil {
		t.Fatal("NoGrad result should not be wired into the tape")
	}
	if c.Data[0] != 12 || c.Data[1] != 24 {
		t.Fatalf("NoGrad forward values wrong: %v", c.Data)
	}
}

func TestNoGradNestsAndRestores(t *testing.T) {
	if !GradEnabled() {
		t.Fatal("gradients should be enabled by default")
	}
	NoGrad(func() {
		if GradEnabled() {
			t.Fatal("GradEnabled inside NoGrad")
		}
		NoGrad(func() {
			if GradEnabled() {
				t.Fatal("GradEnabled inside nested NoGrad")
			}
		})
		if GradEnabled() {
			t.Fatal("inner scope exit re-enabled gradients too early")
		}
	})
	if !GradEnabled() {
		t.Fatal("gradients not restored after NoGrad")
	}
}

func TestShareData(t *testing.T) {
	a := FromData([]float64{1, 2, 3}, 3).RequireGrad()
	Backward(SumAll(a))
	s := a.ShareData()
	if &s.Data[0] != &a.Data[0] {
		t.Fatal("ShareData must alias the weight storage")
	}
	if s.Grad == nil || &s.Grad[0] == &a.Grad[0] {
		t.Fatal("ShareData must allocate a private gradient buffer")
	}
	if !s.RequiresGrad() {
		t.Fatal("ShareData must preserve the grad requirement")
	}
	for _, g := range s.Grad {
		if g != 0 {
			t.Fatal("ShareData gradient buffer must start zeroed")
		}
	}
	// Writes through the clone are visible to the original (weight updates
	// propagate to replicas).
	s.Data[1] = 42
	if a.Data[1] != 42 {
		t.Fatal("ShareData write did not propagate")
	}
	// Gradients stay private.
	Backward(SumAll(Mul(s, s)))
	if a.Grad[0] != 1 {
		t.Fatalf("original gradient clobbered: %v", a.Grad)
	}
}
