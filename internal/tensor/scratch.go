// Scratch-buffer reuse and in-place operations for tape-free inference.
//
// The autograd ops in tensor.go allocate a fresh output tensor per call —
// the right contract for training, where every intermediate lives on the
// tape, but pure overhead for inference loops that rebuild the same
// short-lived matrices on every request. This file provides the NoGrad-only
// complement: a ScratchPool that recycles tensor buffers across calls, and
// in-place/into variants of the ops the batched inference path needs. All
// of them refuse to run in grad mode (they panic), because a reused or
// mutated buffer would corrupt a recorded tape.
//
// Ownership rules (see DESIGN.md "Batched inference & kernel blocking"):
// a tensor obtained from ScratchPool.Get is owned by the caller until it is
// handed back with Put; after Put the buffer may be handed out again, so
// neither the tensor nor any slice of its Data may be retained. Results
// that outlive the scope must be copied out before Put. Pools are safe for
// concurrent use; individual scratch tensors are not.

package tensor

import (
	"fmt"
	"sync"
)

// ScratchPool recycles float64 buffers for NoGrad inference paths. The zero
// value is ready to use. Buffers are handed out as leaf tensors; the pool
// never inspects or clears contents, so every consumer must fully overwrite
// what it Gets (the Into/InPlace ops below do).
type ScratchPool struct {
	pool sync.Pool
}

// Get returns a leaf tensor of the given shape backed by a recycled buffer
// when one of sufficient capacity is available. It panics outside NoGrad:
// pooled storage must never be woven into an autograd tape.
func (p *ScratchPool) Get(shape ...int) *Tensor {
	if GradEnabled() {
		panic("tensor: ScratchPool.Get outside NoGrad")
	}
	s := append([]int(nil), shape...)
	n := numel(s)
	if v := p.pool.Get(); v != nil {
		buf := v.(*[]float64)
		if cap(*buf) >= n {
			return &Tensor{Data: (*buf)[:n], Shape: s}
		}
	}
	return &Tensor{Data: make([]float64, n), Shape: s}
}

// Put returns tensors obtained from Get to the pool. The tensors (and any
// aliases of their Data) must not be used afterwards.
func (p *ScratchPool) Put(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		d := t.Data
		t.Data = nil
		p.pool.Put(&d)
	}
}

// noGradOnly panics when called in grad mode; the in-place ops below mutate
// their operands, which would corrupt a recorded tape.
func noGradOnly(op string) {
	if GradEnabled() {
		panic(fmt.Sprintf("tensor: %s requires an enclosing NoGrad scope", op))
	}
}

// MatMulInto computes dst = a × b into a preallocated dst (shape n×m),
// bit-identical to MatMul's forward values, without allocating an output
// tensor. NoGrad only.
//
//deepbat:hotpath
func MatMulInto(dst, a, b *Tensor) *Tensor {
	noGradOnly("MatMulInto")
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulInto requires 2-D tensors")
	}
	n, k := a.Shape[0], a.Shape[1]
	k2, m := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dims %d vs %d", k, k2))
	}
	if dst.Dims() != 2 || dst.Shape[0] != n || dst.Shape[1] != m {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, n, m))
	}
	matmulInto(dst.Data, a.Data, b.Data, n, k, m)
	return dst
}

// AddRowInPlace adds the vector b (length m) to each row of a in place,
// bit-identical to AddRow's forward values. NoGrad only.
//
//deepbat:hotpath
func AddRowInPlace(a, b *Tensor) *Tensor {
	noGradOnly("AddRowInPlace")
	m := a.Cols()
	if b.NumEl() != m {
		panic(fmt.Sprintf("tensor: AddRowInPlace bias length %d vs cols %d", b.NumEl(), m))
	}
	n := len(a.Data) / m
	for r := 0; r < n; r++ {
		off := r * m
		for c := 0; c < m; c++ {
			a.Data[off+c] += b.Data[c]
		}
	}
	return a
}

// ReLUInPlace clamps a to max(0, a) elementwise in place, bit-identical to
// ReLU's forward values (negative zero maps to +0, exactly as ReLU's
// zero-filled output does). NoGrad only.
//
//deepbat:hotpath
func ReLUInPlace(a *Tensor) *Tensor {
	noGradOnly("ReLUInPlace")
	for i, v := range a.Data {
		if !(v > 0) {
			a.Data[i] = 0
		}
	}
	return a
}
