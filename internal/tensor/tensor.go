// Package tensor implements the dense float64 tensors and the tape-based
// reverse-mode automatic differentiation engine that back the DeepBAT deep
// surrogate model. It is intentionally small: it supports exactly the
// operations needed by a Transformer encoder (matrix multiplication,
// broadcasting adds, softmax, layer normalization, attention reshaping) plus
// the loss primitives of the paper (Huber, MAPE), all with analytically
// derived gradients that are verified against finite differences in the test
// suite.
//
// Tensors are row-major. A Tensor created by an operation records its parents
// and a backward closure; calling Backward on a scalar result propagates
// gradients through the recorded tape in reverse topological order.
//
// Inference-only code should run inside NoGrad, which suppresses tape
// recording and gradient allocation entirely: forward values are unchanged
// (bit-for-bit) but no parents, closures, or Grad buffers are created.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"deepbat/internal/gemm"
)

// noGradDepth counts the currently active NoGrad scopes across all
// goroutines. Gradients are recorded only while it is zero. A counter (rather
// than a bool) lets concurrent inference goroutines nest and overlap NoGrad
// scopes freely; mixing grad-mode training with no-grad inference at the same
// instant is not supported (the training loop joins its workers before any
// evaluation runs).
var noGradDepth atomic.Int32

// NoGrad runs fn with tape recording disabled: every tensor produced inside
// the scope is a leaf with no parents, no backward closure, and no Grad
// buffer. Forward values are identical to grad mode. Scopes nest and may be
// entered concurrently from multiple goroutines.
func NoGrad(fn func()) {
	noGradDepth.Add(1)
	defer noGradDepth.Add(-1)
	fn()
}

// GradEnabled reports whether operations currently record the tape (no
// NoGrad scope is active).
func GradEnabled() bool { return noGradDepth.Load() == 0 }

// Tensor is a dense row-major float64 tensor with optional gradient storage.
type Tensor struct {
	Data  []float64
	Shape []int
	Grad  []float64

	requiresGrad bool
	op           string
	parents      []*Tensor
	backward     func()
}

// numel returns the product of dims.
func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return n
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	return &Tensor{Data: make([]float64, numel(s)), Shape: s}
}

// FromData wraps data (not copied) in a tensor of the given shape.
// It panics if the element count does not match.
func FromData(data []float64, shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	if len(data) != numel(s) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{Data: data, Shape: s}
}

// FromScalar returns a 1-element tensor holding v.
func FromScalar(v float64) *Tensor {
	return FromData([]float64{v}, 1)
}

// Randn returns a tensor with N(0, scale^2) entries drawn from rng.
func Randn(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Clone returns a deep copy of t's data and shape. The clone does not share
// the tape: it is a leaf.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	c.requiresGrad = t.requiresGrad
	if t.requiresGrad {
		c.Grad = make([]float64, len(c.Data))
	}
	return c
}

// ShareData returns a tensor that aliases t's Data (writes through either are
// visible to both) but owns a separate gradient buffer. It is the building
// block of data-parallel training replicas: each worker gets parameter
// tensors backed by the same weights with private gradient accumulators.
func (t *Tensor) ShareData() *Tensor {
	c := &Tensor{Data: t.Data, Shape: append([]int(nil), t.Shape...), requiresGrad: t.requiresGrad}
	if t.requiresGrad {
		c.Grad = make([]float64, len(t.Data))
	}
	return c
}

// RequireGrad marks t as a differentiable leaf and allocates gradient
// storage. It returns t for chaining.
func (t *Tensor) RequireGrad() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// RequiresGrad reports whether t participates in gradient computation.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// Op returns the name of the operation that produced t ("" for leaves).
func (t *Tensor) Op() string { return t.op }

// NumEl returns the number of elements.
func (t *Tensor) NumEl() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Rows returns the first dimension of a 2-D tensor (or 1 for 1-D).
func (t *Tensor) Rows() int {
	if len(t.Shape) == 1 {
		return 1
	}
	return t.Shape[0]
}

// Cols returns the last dimension.
func (t *Tensor) Cols() int {
	if len(t.Shape) == 0 {
		return 0
	}
	return t.Shape[len(t.Shape)-1]
}

// At returns the element at (i, j) of a 2-D tensor, or Data[j] for 1-D with
// i==0.
func (t *Tensor) At(i, j int) float64 {
	if len(t.Shape) == 1 {
		if i != 0 {
			panic("tensor: row index out of range for 1-D tensor")
		}
		return t.Data[j]
	}
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns the element at (i, j).
func (t *Tensor) Set(i, j int, v float64) {
	if len(t.Shape) == 1 {
		if i != 0 {
			panic("tensor: row index out of range for 1-D tensor")
		}
		t.Data[j] = v
		return
	}
	t.Data[i*t.Shape[1]+j] = v
}

// ZeroGrad clears the gradient buffer (if any).
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Item returns the single element of a scalar tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.Data)))
	}
	return t.Data[0]
}

// String implements fmt.Stringer with a compact shape/op description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(shape=%v, op=%q, grad=%v)", t.Shape, t.op, t.requiresGrad)
}

// sameShape panics unless a and b have identical shapes.
func sameShape(op string, a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// result builds a child tensor wired into the tape. Under NoGrad it returns
// a bare leaf instead: same data, no parents, no gradient storage.
func result(op string, data []float64, shape []int, parents ...*Tensor) *Tensor {
	if noGradDepth.Load() != 0 {
		return &Tensor{Data: data, Shape: append([]int(nil), shape...), op: op}
	}
	out := &Tensor{Data: data, Shape: append([]int(nil), shape...), op: op, parents: parents}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.Grad = make([]float64, len(data))
	}
	return out
}

// ---------------------------------------------------------------------------
// Elementwise binary operations
// ---------------------------------------------------------------------------

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape("Add", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + b.Data[i]
	}
	out := result("add", data, a.Shape, a, b)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				for i := range b.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Tensor) *Tensor {
	sameShape("Sub", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] - b.Data[i]
	}
	out := result("sub", data, a.Shape, a, b)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				for i := range b.Grad {
					b.Grad[i] -= out.Grad[i]
				}
			}
		}
	}
	return out
}

// Mul returns the elementwise product a * b (same shape).
func Mul(a, b *Tensor) *Tensor {
	sameShape("Mul", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * b.Data[i]
	}
	out := result("mul", data, a.Shape, a, b)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				for i := range b.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// AddRow adds the vector b (length m) to each row of the n-by-m tensor a.
func AddRow(a, b *Tensor) *Tensor {
	m := a.Cols()
	if b.NumEl() != m {
		panic(fmt.Sprintf("tensor: AddRow bias length %d vs cols %d", b.NumEl(), m))
	}
	n := len(a.Data) / m
	data := make([]float64, len(a.Data))
	for r := 0; r < n; r++ {
		off := r * m
		for c := 0; c < m; c++ {
			data[off+c] = a.Data[off+c] + b.Data[c]
		}
	}
	out := result("addrow", data, a.Shape, a, b)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				for r := 0; r < n; r++ {
					off := r * m
					for c := 0; c < m; c++ {
						b.Grad[c] += out.Grad[off+c]
					}
				}
			}
		}
	}
	return out
}

// Scale returns a * s for a scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * s
	}
	out := result("scale", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		}
	}
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + s
	}
	out := result("addscalar", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Matrix multiplication (row-parallel for large products)
// ---------------------------------------------------------------------------

// matmulParallelThreshold is the minimum number of multiply-adds before the
// forward pass is split across goroutines.
const matmulParallelThreshold = 1 << 16

// MatMul returns the matrix product of 2-D tensors a (n×k) and b (k×m).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	n, k := a.Shape[0], a.Shape[1]
	k2, m := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	data := make([]float64, n*m)
	matmulInto(data, a.Data, b.Data, n, k, m)
	out := result("matmul", data, []int{n, m}, a, b)
	if out.requiresGrad {
		out.backward = func() {
			// dA = dOut @ B^T ; dB = A^T @ dOut
			if a.requiresGrad {
				matmulBackwardA(a.Grad, b.Data, out.Grad, n, k, m)
			}
			if b.requiresGrad {
				matmulBackwardB(b.Grad, a.Data, out.Grad, n, k, m)
			}
		}
	}
	return out
}

// matmulWorkers picks the goroutine count for a kernel of the given
// multiply-add volume whose output has rows independent rows.
func matmulWorkers(work, rows int) int {
	if work < matmulParallelThreshold {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// rowBlocks partitions [0, rows) into worker contiguous blocks and calls
// fn(lo, hi) for each, concurrently when workers > 1. Each block is computed
// by exactly one goroutine with the same inner loop order as the serial code,
// so results are bit-identical for any worker count.
func rowBlocks(rows, workers int, fn func(lo, hi int)) {
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:allow hotpath-alloc worker goroutines are amortized over an entire n×k×m product and joined before return; serial callers take the workers<=1 branch
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulInto computes dst = A (n×k) × B (k×m) with row-block parallelism for
// large products.
func matmulInto(dst, a, b []float64, n, k, m int) {
	matmulIntoWorkers(dst, a, b, n, k, m, matmulWorkers(n*k*m, n))
}

// packPool recycles the scratch buffers the blocked kernel packs B into.
// Buffers are fully overwritten by gemm.Pack before any read, so reuse can
// never leak stale values into a product.
var packPool sync.Pool

func getPackBuf(n int) *[]float64 {
	if v := packPool.Get(); v != nil {
		buf := v.(*[]float64)
		if cap(*buf) >= n {
			*buf = (*buf)[:n]
			return buf
		}
	}
	//lint:allow hotpath-alloc pack-buffer pool miss: first large product per size class allocates, sync.Pool reuses thereafter
	buf := make([]float64, n)
	return &buf
}

// matmulIntoWorkers is matmulInto with an explicit worker count (exposed
// for the parallel-vs-serial property tests). Large products route through
// the packed blocked kernel (gemm.Blocked), small ones through the naive
// reference kernel (gemm.Naive); the two are bit-identical, so the dispatch
// threshold affects speed only. The packed copy of B is shared read-only
// across the row-range workers and pooled across calls.
func matmulIntoWorkers(dst, a, b []float64, n, k, m, workers int) {
	if n*k*m >= gemm.BlockedThreshold {
		buf := getPackBuf(gemm.PackedLen(k, m))
		gemm.Pack(*buf, b, k, m)
		//lint:allow hotpath-alloc one worker closure per large product, amortized over its n×k×m flops
		rowBlocks(n, workers, func(lo, hi int) {
			gemm.Blocked(dst, a, *buf, lo, hi, k, m)
		})
		packPool.Put(buf)
		return
	}
	//lint:allow hotpath-alloc one worker closure per product, amortized over its n×k×m flops
	rowBlocks(n, workers, func(lo, hi int) {
		matmulRows(dst, a, b, lo, hi, k, m)
	})
}

// matmulBackwardA accumulates dA += dOut @ B^T, parallel over the rows of A.
// Row blocks write disjoint slices of aGrad and every (i, j) cell sums over c
// in ascending order, exactly as the serial loop.
func matmulBackwardA(aGrad, b, outGrad []float64, n, k, m int) {
	matmulBackwardAWorkers(aGrad, b, outGrad, n, k, m, matmulWorkers(n*k*m, n))
}

func matmulBackwardAWorkers(aGrad, b, outGrad []float64, n, k, m, workers int) {
	rowBlocks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gOff := i * m
			aOff := i * k
			for j := 0; j < k; j++ {
				bOff := j * m
				s := 0.0
				for c := 0; c < m; c++ {
					s += outGrad[gOff+c] * b[bOff+c]
				}
				aGrad[aOff+j] += s
			}
		}
	})
}

// matmulBackwardB accumulates dB += A^T @ dOut, parallel over the rows of B
// (the k dimension) so each goroutine owns a disjoint block of bGrad. For a
// fixed (j, c) cell the i-summation order matches the serial i-outer loop, so
// the result is bit-identical for any worker count.
func matmulBackwardB(bGrad, a, outGrad []float64, n, k, m int) {
	matmulBackwardBWorkers(bGrad, a, outGrad, n, k, m, matmulWorkers(n*k*m, k))
}

func matmulBackwardBWorkers(bGrad, a, outGrad []float64, n, k, m, workers int) {
	rowBlocks(k, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			bOff := j * m
			for i := 0; i < n; i++ {
				av := a[i*k+j]
				if av == 0 {
					continue
				}
				gOff := i * m
				for c := 0; c < m; c++ {
					bGrad[bOff+c] += av * outGrad[gOff+c]
				}
			}
		}
	})
}

// matmulRows computes rows [lo, hi) of the product with the retained naive
// reference kernel (ikj loop order, streaming B row-wise). It defines the
// bit pattern every faster kernel must reproduce.
func matmulRows(dst, a, b []float64, lo, hi, k, m int) {
	gemm.Naive(dst, a, b, lo, hi, k, m)
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose requires 2-D tensor")
	}
	n, m := a.Shape[0], a.Shape[1]
	data := make([]float64, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			data[j*n+i] = a.Data[i*m+j]
		}
	}
	out := result("transpose", data, []int{m, n}, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					a.Grad[i*m+j] += out.Grad[j*n+i]
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Nonlinearities and normalization
// ---------------------------------------------------------------------------

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		}
	}
	out := result("relu", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = 1 / (1 + math.Exp(-v))
	}
	out := result("sigmoid", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				s := data[i]
				a.Grad[i] += out.Grad[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Tanh(v)
	}
	out := result("tanh", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * (1 - data[i]*data[i])
			}
		}
	}
	return out
}

// Softmax applies a numerically stable softmax along the last dimension of a
// 2-D tensor, row by row.
func Softmax(a *Tensor) *Tensor {
	m := a.Cols()
	n := len(a.Data) / m
	data := make([]float64, len(a.Data))
	for r := 0; r < n; r++ {
		off := r * m
		maxV := math.Inf(-1)
		for c := 0; c < m; c++ {
			if a.Data[off+c] > maxV {
				maxV = a.Data[off+c]
			}
		}
		sum := 0.0
		for c := 0; c < m; c++ {
			e := math.Exp(a.Data[off+c] - maxV)
			data[off+c] = e
			sum += e
		}
		inv := 1 / sum
		for c := 0; c < m; c++ {
			data[off+c] *= inv
		}
	}
	out := result("softmax", data, a.Shape, a)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < n; r++ {
				off := r * m
				dot := 0.0
				for c := 0; c < m; c++ {
					dot += out.Grad[off+c] * data[off+c]
				}
				for c := 0; c < m; c++ {
					a.Grad[off+c] += data[off+c] * (out.Grad[off+c] - dot)
				}
			}
		}
	}
	return out
}

// LayerNorm normalizes each row of x to zero mean and unit variance (with
// epsilon eps), then applies the learnable per-column gain and bias.
func LayerNorm(x, gain, bias *Tensor, eps float64) *Tensor {
	m := x.Cols()
	if gain.NumEl() != m || bias.NumEl() != m {
		panic("tensor: LayerNorm gain/bias length mismatch")
	}
	n := len(x.Data) / m
	data := make([]float64, len(x.Data))
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, n)
	for r := 0; r < n; r++ {
		off := r * m
		mean := 0.0
		for c := 0; c < m; c++ {
			mean += x.Data[off+c]
		}
		mean /= float64(m)
		v := 0.0
		for c := 0; c < m; c++ {
			d := x.Data[off+c] - mean
			v += d * d
		}
		v /= float64(m)
		is := 1 / math.Sqrt(v+eps)
		invStd[r] = is
		for c := 0; c < m; c++ {
			h := (x.Data[off+c] - mean) * is
			xhat[off+c] = h
			data[off+c] = h*gain.Data[c] + bias.Data[c]
		}
	}
	out := result("layernorm", data, x.Shape, x, gain, bias)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < n; r++ {
				off := r * m
				is := invStd[r]
				// dxhat = dOut * gain
				var sumD, sumDX float64
				dxhat := make([]float64, m)
				for c := 0; c < m; c++ {
					d := out.Grad[off+c] * gain.Data[c]
					dxhat[c] = d
					sumD += d
					sumDX += d * xhat[off+c]
				}
				if x.requiresGrad {
					fm := float64(m)
					for c := 0; c < m; c++ {
						x.Grad[off+c] += is / fm * (fm*dxhat[c] - sumD - xhat[off+c]*sumDX)
					}
				}
				if gain.requiresGrad {
					for c := 0; c < m; c++ {
						gain.Grad[c] += out.Grad[off+c] * xhat[off+c]
					}
				}
				if bias.requiresGrad {
					for c := 0; c < m; c++ {
						bias.Grad[c] += out.Grad[off+c]
					}
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Reductions and shape manipulation
// ---------------------------------------------------------------------------

// SumAll returns the scalar sum of all elements.
func SumAll(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out := result("sumall", []float64{s}, []int{1}, a)
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// MeanAll returns the scalar mean of all elements.
func MeanAll(a *Tensor) *Tensor {
	n := float64(len(a.Data))
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out := result("meanall", []float64{s / n}, []int{1}, a)
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0] / n
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// MeanRows returns the column-wise mean of a 2-D tensor as a 1×m tensor
// (mean pooling over the sequence dimension).
func MeanRows(a *Tensor) *Tensor {
	m := a.Cols()
	n := len(a.Data) / m
	data := make([]float64, m)
	for r := 0; r < n; r++ {
		off := r * m
		for c := 0; c < m; c++ {
			data[c] += a.Data[off+c]
		}
	}
	inv := 1 / float64(n)
	for c := range data {
		data[c] *= inv
	}
	out := result("meanrows", data, []int{1, m}, a)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < n; r++ {
				off := r * m
				for c := 0; c < m; c++ {
					a.Grad[off+c] += out.Grad[c] * inv
				}
			}
		}
	}
	return out
}

// ConcatCols concatenates two tensors with the same number of rows along the
// last dimension.
func ConcatCols(a, b *Tensor) *Tensor {
	na, ma := a.Rows(), a.Cols()
	nb, mb := b.Rows(), b.Cols()
	if na != nb {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", na, nb))
	}
	m := ma + mb
	data := make([]float64, na*m)
	for r := 0; r < na; r++ {
		copy(data[r*m:r*m+ma], a.Data[r*ma:(r+1)*ma])
		copy(data[r*m+ma:(r+1)*m], b.Data[r*mb:(r+1)*mb])
	}
	out := result("concatcols", data, []int{na, m}, a, b)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < na; r++ {
				if a.requiresGrad {
					for c := 0; c < ma; c++ {
						a.Grad[r*ma+c] += out.Grad[r*m+c]
					}
				}
				if b.requiresGrad {
					for c := 0; c < mb; c++ {
						b.Grad[r*mb+c] += out.Grad[r*m+ma+c]
					}
				}
			}
		}
	}
	return out
}

// NarrowCols returns columns [start, start+width) of a 2-D tensor.
func NarrowCols(a *Tensor, start, width int) *Tensor {
	n, m := a.Rows(), a.Cols()
	if start < 0 || start+width > m {
		panic(fmt.Sprintf("tensor: NarrowCols [%d,%d) out of %d columns", start, start+width, m))
	}
	data := make([]float64, n*width)
	for r := 0; r < n; r++ {
		copy(data[r*width:(r+1)*width], a.Data[r*m+start:r*m+start+width])
	}
	out := result("narrowcols", data, []int{n, width}, a)
	if out.requiresGrad {
		out.backward = func() {
			for r := 0; r < n; r++ {
				for c := 0; c < width; c++ {
					a.Grad[r*m+start+c] += out.Grad[r*width+c]
				}
			}
		}
	}
	return out
}

// Reshape returns a view-copy of a with a new shape of equal element count.
func Reshape(a *Tensor, shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	if numel(s) != len(a.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v element mismatch", a.Shape, s))
	}
	data := make([]float64, len(a.Data))
	copy(data, a.Data)
	out := result("reshape", data, s, a)
	if out.requiresGrad {
		out.backward = func() {
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Loss primitives
// ---------------------------------------------------------------------------

// Huber returns the mean Huber loss between pred and the constant target,
// optionally weighted per element (weights may be nil for uniform weights).
//
//	HL_delta(y, yhat) = 0.5*(y-yhat)^2          if |y-yhat| <= delta
//	                    delta*(|y-yhat|-delta/2) otherwise
func Huber(pred, target *Tensor, delta float64, weights []float64) *Tensor {
	sameShape("Huber", pred, target)
	n := len(pred.Data)
	var sum, wsum float64
	diffs := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		d := pred.Data[i] - target.Data[i]
		diffs[i] = d
		ad := math.Abs(d)
		var l float64
		if ad <= delta {
			l = 0.5 * d * d
		} else {
			l = delta * (ad - 0.5*delta)
		}
		sum += w * l
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	out := result("huber", []float64{sum / wsum}, []int{1}, pred)
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0] / wsum
			for i := 0; i < n; i++ {
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				d := diffs[i]
				var dl float64
				if math.Abs(d) <= delta {
					dl = d
				} else if d > 0 {
					dl = delta
				} else {
					dl = -delta
				}
				pred.Grad[i] += g * w * dl
			}
		}
	}
	return out
}

// MAPELoss returns the mean absolute percentage error (as a fraction, not
// percent) between pred and the constant target, optionally weighted.
// Elements whose target is zero are skipped.
func MAPELoss(pred, target *Tensor, weights []float64) *Tensor {
	sameShape("MAPELoss", pred, target)
	n := len(pred.Data)
	var sum, wsum float64
	for i := 0; i < n; i++ {
		if target.Data[i] == 0 {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		sum += w * math.Abs(pred.Data[i]-target.Data[i]) / math.Abs(target.Data[i])
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	out := result("mape", []float64{sum / wsum}, []int{1}, pred)
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0] / wsum
			for i := 0; i < n; i++ {
				if target.Data[i] == 0 {
					continue
				}
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				sign := 1.0
				if pred.Data[i] < target.Data[i] {
					sign = -1
				}
				pred.Grad[i] += g * w * sign / math.Abs(target.Data[i])
			}
		}
	}
	return out
}

// MSE returns the mean squared error between pred and the constant target.
func MSE(pred, target *Tensor) *Tensor {
	sameShape("MSE", pred, target)
	n := len(pred.Data)
	sum := 0.0
	for i := 0; i < n; i++ {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
	}
	fn := float64(n)
	out := result("mse", []float64{sum / fn}, []int{1}, pred)
	if out.requiresGrad {
		out.backward = func() {
			g := out.Grad[0] * 2 / fn
			for i := 0; i < n; i++ {
				pred.Grad[i] += g * (pred.Data[i] - target.Data[i])
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Backward pass
// ---------------------------------------------------------------------------

// Backward seeds the gradient of the scalar tensor t with 1 and propagates
// gradients through the tape in reverse topological order. It panics if t is
// not a scalar or does not require gradients.
func Backward(t *Tensor) {
	if len(t.Data) != 1 {
		panic("tensor: Backward requires a scalar tensor")
	}
	if !t.requiresGrad {
		panic("tensor: Backward on tensor without gradient")
	}
	order := topoSort(t)
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// topoSort returns the tensors reachable from root in topological order
// (parents before children).
func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	seen := make(map[*Tensor]bool)
	var visit func(*Tensor)
	visit = func(t *Tensor) {
		if seen[t] {
			return
		}
		seen[t] = true
		for _, p := range t.parents {
			visit(p)
		}
		order = append(order, t)
	}
	visit(root)
	return order
}
