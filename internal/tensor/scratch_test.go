package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatMulBlockedDispatchBitIdentical drives MatMul through the blocked
// kernel (sizes above gemm.BlockedThreshold) and checks the result against
// the retained naive reference kernel bit for bit, on shapes whose column
// count leaves a ragged panel.
func TestMatMulBlockedDispatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, s := range []struct{ n, k, m int }{
		{40, 40, 40},   // full + ragged tiles, just above threshold
		{33, 65, 31},   // every dimension odd
		{128, 16, 128}, // wide, small inner dim
		{64, 64, 64},
	} {
		a := Randn(rng, 1, s.n, s.k)
		b := Randn(rng, 1, s.k, s.m)
		// Sparsify to exercise the skip-on-zero contract.
		for i := range a.Data {
			if rng.Float64() < 0.25 {
				a.Data[i] = 0
			}
		}
		want := make([]float64, s.n*s.m)
		matmulRows(want, a.Data, b.Data, 0, s.n, s.k, s.m)
		got := MatMul(a, b)
		for i := range want {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %v: cell %d = %v, want %v (bitwise)", s, i, got.Data[i], want[i])
			}
		}
	}
}

// TestInPlaceOpsMatchAllocatingOps pins the forward-value bit-identity of
// the NoGrad in-place ops against their tape-recording counterparts.
func TestInPlaceOpsMatchAllocatingOps(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := Randn(rng, 1, 7, 5)
	b := Randn(rng, 1, 5, 9)
	bias := Randn(rng, 1, 9)
	// Include a negative zero and a negative entry for the ReLU edge cases.
	a.Data[0] = math.Copysign(0, -1)
	a.Data[1] = -2.5

	var gotMM, gotAdd, gotRelu []float64
	NoGrad(func() {
		dst := New(7, 9)
		MatMulInto(dst, a, b)
		gotMM = append([]float64(nil), dst.Data...)
		AddRowInPlace(dst, bias)
		gotAdd = append([]float64(nil), dst.Data...)
		ReLUInPlace(dst)
		gotRelu = append([]float64(nil), dst.Data...)
	})

	wantMM := MatMul(a, b)
	wantAdd := AddRow(wantMM, bias)
	wantRelu := ReLU(wantAdd)
	check := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: cell %d = %v, want %v (bitwise)", name, i, got[i], want[i])
			}
		}
	}
	check("MatMulInto", gotMM, wantMM.Data)
	check("AddRowInPlace", gotAdd, wantAdd.Data)
	check("ReLUInPlace", gotRelu, wantRelu.Data)
}

// TestInPlaceOpsPanicInGradMode pins the guard that keeps mutating ops off
// the tape.
func TestInPlaceOpsPanicInGradMode(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	for name, fn := range map[string]func(){
		"MatMulInto":    func() { MatMulInto(New(2, 2), a, b) },
		"AddRowInPlace": func() { AddRowInPlace(a, New(2)) },
		"ReLUInPlace":   func() { ReLUInPlace(a) },
		"ScratchGet":    func() { var p ScratchPool; p.Get(2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic outside NoGrad", name)
				}
			}()
			fn()
		}()
	}
}

// TestScratchPoolReuse checks that Put-then-Get hands the same backing
// buffer out again (for equal sizes) and that shapes are respected.
func TestScratchPoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; reuse is not guaranteed")
	}
	var p ScratchPool
	NoGrad(func() {
		t1 := p.Get(4, 3)
		if t1.Rows() != 4 || t1.Cols() != 3 || len(t1.Data) != 12 {
			t.Fatalf("bad scratch shape %v len %d", t1.Shape, len(t1.Data))
		}
		first := &t1.Data[0]
		p.Put(t1)
		t2 := p.Get(3, 4)
		if len(t2.Data) != 12 {
			t.Fatalf("bad reshaped scratch len %d", len(t2.Data))
		}
		if &t2.Data[0] != first {
			t.Fatalf("scratch buffer was not reused")
		}
		p.Put(t2)
	})
}

// TestMatMulAllocBudget guards the allocation profile of the hot kernel: a
// steady-state 256x256 NoGrad MatMul must stay within a small constant
// number of allocations per op (output data + tensor bookkeeping; the pack
// scratch is pooled). Regressions here silently erode the grid-sweep wins.
func TestMatMulAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc budget is not meaningful")
	}
	rng := rand.New(rand.NewSource(53))
	a := Randn(rng, 1, 256, 256)
	b := Randn(rng, 1, 256, 256)
	var allocs float64
	NoGrad(func() {
		allocs = testing.AllocsPerRun(10, func() {
			MatMul(a, b)
		})
	})
	// 1 output data slice + tensor struct + shape slice, plus pool slack.
	const budget = 8
	if allocs > budget {
		t.Fatalf("MatMul(256x256) allocates %.1f/op, budget %d", allocs, budget)
	}
}
