package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numGrad numerically estimates d f / d leaf[i] using central differences,
// where f rebuilds the scalar loss from scratch each call.
func numGrad(leaf *Tensor, i int, f func() float64) float64 {
	const h = 1e-6
	orig := leaf.Data[i]
	leaf.Data[i] = orig + h
	up := f()
	leaf.Data[i] = orig - h
	down := f()
	leaf.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies the analytic gradient of every element of each leaf
// against a numerical estimate.
func checkGrads(t *testing.T, leaves []*Tensor, build func() *Tensor, tol float64) {
	t.Helper()
	loss := build()
	Backward(loss)
	f := func() float64 { return build().Item() }
	for li, leaf := range leaves {
		for i := range leaf.Data {
			want := numGrad(leaf, i, f)
			got := leaf.Grad[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("leaf %d elem %d: grad = %v, numeric = %v", li, i, got, want)
			}
		}
	}
}

func randLeaf(rng *rand.Rand, shape ...int) *Tensor {
	return Randn(rng, 1, shape...).RequireGrad()
}

func TestShapeHelpers(t *testing.T) {
	a := New(2, 3)
	if a.NumEl() != 6 || a.Rows() != 2 || a.Cols() != 3 || a.Dims() != 2 {
		t.Fatalf("shape helpers broken: %v", a)
	}
	a.Set(1, 2, 7)
	if a.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	v := FromData([]float64{1, 2, 3}, 3)
	if v.Rows() != 1 || v.Cols() != 3 || v.At(0, 1) != 2 {
		t.Fatal("1-D accessors broken")
	}
	s := FromScalar(5)
	if s.Item() != 5 {
		t.Fatal("FromScalar/Item broken")
	}
	if Full(2, 2, 2).Data[3] != 2 {
		t.Fatal("Full broken")
	}
}

func TestClone(t *testing.T) {
	a := FromData([]float64{1, 2}, 2).RequireGrad()
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
	if !c.RequiresGrad() || c.Grad == nil {
		t.Fatal("Clone should preserve grad requirement")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("FromData", func() { FromData([]float64{1}, 2) })
	mustPanic("Add", func() { Add(New(2), New(3)) })
	mustPanic("MatMul dims", func() { MatMul(New(2), New(2, 2)) })
	mustPanic("MatMul inner", func() { MatMul(New(2, 3), New(2, 2)) })
	mustPanic("Item", func() { New(2).Item() })
	mustPanic("Backward nonscalar", func() { Backward(New(2).RequireGrad()) })
	mustPanic("Backward nograd", func() { Backward(New(1)) })
	mustPanic("NarrowCols", func() { NarrowCols(New(2, 3), 2, 2) })
	mustPanic("Reshape", func() { Reshape(New(2, 3), 7) })
	mustPanic("AddRow", func() { AddRow(New(2, 3), New(2)) })
	mustPanic("ConcatCols", func() { ConcatCols(New(2, 3), New(3, 3)) })
}

func TestAddSubMulForward(t *testing.T) {
	a := FromData([]float64{1, 2, 3}, 3)
	b := FromData([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data[1]; got != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b).Data[2]; got != -3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data[0]; got != 4 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestMatMulForward(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	b := FromData([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Big enough to trigger the parallel path.
	n, k, m := 128, 64, 64
	a := Randn(rng, 1, n, k)
	b := Randn(rng, 1, k, m)
	got := MatMul(a, b)
	serial := make([]float64, n*m)
	matmulRows(serial, a.Data, b.Data, 0, n, k, m)
	for i := range serial {
		if math.Abs(serial[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("parallel matmul mismatch at %d", i)
		}
	}
}

func TestTransposeForward(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose(a)
	if b.Shape[0] != 3 || b.Shape[1] != 2 || b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v %v", b.Shape, b.Data)
	}
}

func TestSoftmaxForward(t *testing.T) {
	a := FromData([]float64{1, 1, 1, 1000, 0, -1000}, 2, 3)
	s := Softmax(a)
	for c := 0; c < 3; c++ {
		if math.Abs(s.At(0, c)-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", s.Data[:3])
		}
	}
	if s.At(1, 0) < 0.999 { // numerically stable at extreme logits
		t.Fatalf("stable softmax = %v", s.Data[3:])
	}
	sum := s.At(1, 0) + s.At(1, 1) + s.At(1, 2)
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax row sum = %v", sum)
	}
}

func TestReLUForward(t *testing.T) {
	r := ReLU(FromData([]float64{-1, 0, 2}, 3))
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 {
		t.Fatalf("ReLU = %v", r.Data)
	}
}

func TestMeanRowsForward(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 5}, 2, 2)
	m := MeanRows(a)
	if m.Shape[0] != 1 || m.Shape[1] != 2 || m.Data[0] != 2 || m.Data[1] != 3.5 {
		t.Fatalf("MeanRows = %v %v", m.Shape, m.Data)
	}
}

func TestConcatNarrow(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	b := FromData([]float64{5, 6}, 2, 1)
	c := ConcatCols(a, b)
	if c.Cols() != 3 || c.At(0, 2) != 5 || c.At(1, 2) != 6 || c.At(1, 0) != 3 {
		t.Fatalf("ConcatCols = %v", c.Data)
	}
	n := NarrowCols(c, 1, 2)
	if n.Cols() != 2 || n.At(0, 0) != 2 || n.At(1, 1) != 6 {
		t.Fatalf("NarrowCols = %v", n.Data)
	}
}

// --- Gradient checks ---

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randLeaf(rng, 3, 2)
	b := randLeaf(rng, 3, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return SumAll(Mul(Add(a, b), Sub(a, b)))
	}, 1e-4)
}

func TestGradScaleAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randLeaf(rng, 4)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return MeanAll(Scale(AddScalar(a, 3), -2.5))
	}, 1e-4)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randLeaf(rng, 3, 4)
	b := randLeaf(rng, 4, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return SumAll(Mul(MatMul(a, b), MatMul(a, b)))
	}, 1e-3)
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randLeaf(rng, 2, 3)
	b := randLeaf(rng, 2, 3)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return SumAll(MatMul(Transpose(a), b))
	}, 1e-4)
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randLeaf(rng, 3, 2)
	b := randLeaf(rng, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return SumAll(Mul(AddRow(a, b), AddRow(a, b)))
	}, 1e-4)
}

func TestGradReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randLeaf(rng, 5)
	// Keep values away from the kink at 0 for a clean numeric estimate.
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.1 {
			a.Data[i] += 0.5
		}
	}
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(ReLU(a), ReLU(a)))
	}, 1e-4)
}

func TestGradSigmoidTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randLeaf(rng, 4)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumAll(Add(Sigmoid(a), Tanh(a)))
	}, 1e-4)
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randLeaf(rng, 2, 4)
	w := Randn(rng, 1, 2, 4)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(Softmax(a), w))
	}, 1e-4)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randLeaf(rng, 3, 4)
	g := randLeaf(rng, 4)
	b := randLeaf(rng, 4)
	w := Randn(rng, 1, 3, 4)
	checkGrads(t, []*Tensor{x, g, b}, func() *Tensor {
		return SumAll(Mul(LayerNorm(x, g, b, 1e-5), w))
	}, 1e-3)
}

func TestGradMeanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randLeaf(rng, 4, 3)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(MeanRows(a), MeanRows(a)))
	}, 1e-4)
}

func TestGradConcatNarrowReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randLeaf(rng, 2, 3)
	b := randLeaf(rng, 2, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		c := ConcatCols(a, b)
		n := NarrowCols(c, 1, 3)
		r := Reshape(n, 3, 2)
		return SumAll(Mul(r, r))
	}, 1e-4)
}

func TestGradHuber(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pred := randLeaf(rng, 6)
	target := Randn(rng, 1, 6)
	// Spread predictions so both quadratic and linear regions are hit.
	pred.Data[0] = target.Data[0] + 5
	pred.Data[1] = target.Data[1] - 5
	pred.Data[2] = target.Data[2] + 0.3
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return Huber(pred, target, 1.0, nil)
	}, 1e-4)
}

func TestGradHuberWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pred := randLeaf(rng, 4)
	target := Randn(rng, 1, 4)
	w := []float64{1, 2, 0.5, 3}
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return Huber(pred, target, 1.0, w)
	}, 1e-4)
}

func TestGradMAPE(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pred := randLeaf(rng, 5)
	target := FromData([]float64{1.5, -2, 0.7, 3, 0}, 5) // last is skipped
	for i := range pred.Data {
		pred.Data[i] = target.Data[i] + 0.3 // keep away from |pred-target|=0 kink
	}
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return MAPELoss(pred, target, nil)
	}, 1e-4)
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pred := randLeaf(rng, 5)
	target := Randn(rng, 1, 5)
	checkGrads(t, []*Tensor{pred}, func() *Tensor {
		return MSE(pred, target)
	}, 1e-4)
}

func TestHuberForwardValues(t *testing.T) {
	pred := FromData([]float64{0, 3}, 2)
	target := FromData([]float64{0.5, 0}, 2)
	// |d|=0.5 <= 1: 0.5*0.25 = 0.125 ; |d|=3 > 1: 1*(3-0.5) = 2.5
	l := Huber(pred, target, 1.0, nil)
	if math.Abs(l.Item()-(0.125+2.5)/2) > 1e-12 {
		t.Fatalf("Huber = %v", l.Item())
	}
}

func TestMAPEForwardValues(t *testing.T) {
	pred := FromData([]float64{110, 90}, 2)
	target := FromData([]float64{100, 100}, 2)
	l := MAPELoss(pred, target, nil)
	if math.Abs(l.Item()-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v, want 0.1", l.Item())
	}
}

func TestBackwardAccumulatesThroughSharedNodes(t *testing.T) {
	a := FromData([]float64{2}, 1).RequireGrad()
	// loss = a*a + a  => d/da = 2a + 1 = 5
	loss := Add(Mul(a, a), a)
	Backward(loss)
	if math.Abs(a.Grad[0]-5) > 1e-12 {
		t.Fatalf("shared-node grad = %v, want 5", a.Grad[0])
	}
}

func TestZeroGrad(t *testing.T) {
	a := FromData([]float64{2}, 1).RequireGrad()
	Backward(Mul(a, a))
	if a.Grad[0] == 0 {
		t.Fatal("expected nonzero grad")
	}
	a.ZeroGrad()
	if a.Grad[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestNoGradPath(t *testing.T) {
	a := FromData([]float64{1, 2}, 2) // no grad
	b := FromData([]float64{3, 4}, 2)
	c := Add(a, b)
	if c.RequiresGrad() || c.Grad != nil {
		t.Fatal("grad should not propagate from non-grad leaves")
	}
}

func TestMatMulLinearityProperty(t *testing.T) {
	// (alpha*A) @ B == alpha * (A @ B)
	f := func(seed int64, alphaRaw float64) bool {
		alpha := math.Mod(alphaRaw, 10)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 4, 2)
		left := MatMul(Scale(a, alpha), b)
		right := Scale(MatMul(a, b), alpha)
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 3, 4, 5)
		s := Softmax(a)
		for r := 0; r < 4; r++ {
			sum := 0.0
			for c := 0; c < 5; c++ {
				sum += s.At(r, c)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1, 3, 5)
		b := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
