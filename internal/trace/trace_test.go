package trace

import (
	"math"
	"sort"
	"testing"

	"deepbat/internal/stats"
)

func gen(t *testing.T, name string) *Trace {
	t.Helper()
	tr, err := Generate(DefaultSpec(name))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUnknownTrace(t *testing.T) {
	if _, err := Generate(DefaultSpec("nope")); err == nil {
		t.Fatal("expected error for unknown trace")
	}
}

func TestAllTracesGenerate(t *testing.T) {
	for _, name := range Names() {
		tr := gen(t, name)
		if len(tr.Timestamps) < 1000 {
			t.Fatalf("%s: only %d arrivals", name, len(tr.Timestamps))
		}
		if len(tr.HourlyRate) != 24 {
			t.Fatalf("%s: hourly rates = %d", name, len(tr.HourlyRate))
		}
		if !sort.Float64sAreSorted(tr.Timestamps) {
			t.Fatalf("%s: timestamps not sorted", name)
		}
		last := tr.Timestamps[len(tr.Timestamps)-1]
		if last > tr.Duration() {
			t.Fatalf("%s: timestamp %v beyond duration %v", name, last, tr.Duration())
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := MustGenerate(DefaultSpec("azure"))
	b := MustGenerate(DefaultSpec("azure"))
	if len(a.Timestamps) != len(b.Timestamps) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Timestamps {
		if a.Timestamps[i] != b.Timestamps[i] {
			t.Fatal("same seed produced different timestamps")
		}
	}
	spec := DefaultSpec("azure")
	spec.Seed = 2
	c := MustGenerate(spec)
	if len(a.Timestamps) == len(c.Timestamps) {
		same := true
		for i := range a.Timestamps {
			if a.Timestamps[i] != c.Timestamps[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestAzureDiurnalShape(t *testing.T) {
	tr := gen(t, "azure")
	// The sinusoid peaks near hour 0 and dips near hour 12 with phase +18.
	maxR, minR := 0.0, math.Inf(1)
	maxH, minH := -1, -1
	for h, r := range tr.HourlyRate {
		if r > maxR {
			maxR, maxH = r, h
		}
		if r < minR {
			minR, minH = r, h
		}
	}
	if maxR < 1.5*minR {
		t.Fatalf("azure should vary diurnally: max %v min %v", maxR, minR)
	}
	_ = maxH
	_ = minH
}

func TestTwitterSteadyRate(t *testing.T) {
	tr := gen(t, "twitter")
	m := stats.Mean(tr.HourlyRate)
	for h, r := range tr.HourlyRate {
		if math.Abs(r-m)/m > 0.10 {
			t.Fatalf("twitter hour %d rate %v deviates from mean %v", h, r, m)
		}
	}
}

func TestAlibabaHasSharpPeaks(t *testing.T) {
	tr := gen(t, "alibaba")
	base := tr.HourlyRate[0]
	for _, h := range []int{4, 6, 20} {
		if tr.HourlyRate[h] < 5*base {
			t.Fatalf("alibaba hour %d rate %v should spike above flat %v", h, tr.HourlyRate[h], base)
		}
	}
	// The hour before the first peak is flat (this is what breaks BATCH).
	if tr.HourlyRate[3] > 2*base {
		t.Fatalf("alibaba hour 3 should be flat, got %v", tr.HourlyRate[3])
	}
}

func TestIDCOrdering(t *testing.T) {
	// Fig. 5: twitter mild (~4), azure above twitter on average, alibaba and
	// synthetic much burstier.
	idc := map[string]float64{}
	for _, name := range Names() {
		tr := gen(t, name)
		vals := tr.HourlyIDC(200)
		idc[name] = stats.Mean(vals)
	}
	if idc["twitter"] < 1.5 || idc["twitter"] > 12 {
		t.Fatalf("twitter IDC = %v, want mild (~4)", idc["twitter"])
	}
	if idc["azure"] <= idc["twitter"] {
		t.Fatalf("azure IDC %v should exceed twitter %v", idc["azure"], idc["twitter"])
	}
	if idc["alibaba"] < 2*idc["twitter"] {
		t.Fatalf("alibaba IDC %v should far exceed twitter %v", idc["alibaba"], idc["twitter"])
	}
	if idc["synthetic"] < 2*idc["twitter"] {
		t.Fatalf("synthetic IDC %v should far exceed twitter %v", idc["synthetic"], idc["twitter"])
	}
}

func TestWindowAndHour(t *testing.T) {
	tr := gen(t, "twitter")
	h0 := tr.Hour(0)
	for _, ts := range h0 {
		if ts >= tr.Spec.HourSeconds {
			t.Fatalf("hour 0 contains timestamp %v", ts)
		}
	}
	h5 := tr.Hour(5)
	lo, hi := 5*tr.Spec.HourSeconds, 6*tr.Spec.HourSeconds
	for _, ts := range h5 {
		if ts < lo || ts >= hi {
			t.Fatalf("hour 5 contains timestamp %v", ts)
		}
	}
	// Windows partition the trace.
	total := 0
	for h := 0; h < tr.Spec.Hours; h++ {
		total += len(tr.Hour(h))
	}
	if total != len(tr.Timestamps) {
		t.Fatalf("hours partition %d of %d arrivals", total, len(tr.Timestamps))
	}
}

func TestRateSeries(t *testing.T) {
	tr := gen(t, "twitter")
	pts := tr.RateSeries(10)
	if len(pts) != int(tr.Duration()/10) {
		t.Fatalf("rate series length = %d", len(pts))
	}
	var sum float64
	for _, p := range pts {
		sum += p.Rate * 10
	}
	if math.Abs(sum-float64(len(tr.Timestamps))) > 1 {
		t.Fatalf("rate series mass %v vs %d arrivals", sum, len(tr.Timestamps))
	}
	if tr.RateSeries(0) != nil {
		t.Fatal("zero bin should return nil")
	}
}

func TestSlidingWindows(t *testing.T) {
	tr := gen(t, "twitter")
	ws := tr.SlidingWindows(256, 0)
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	for _, w := range ws {
		if len(w) != 256 {
			t.Fatalf("window length = %d", len(w))
		}
	}
	want := len(tr.Interarrivals()) / 256
	if len(ws) != want {
		t.Fatalf("windows = %d, want %d", len(ws), want)
	}
	// Overlapping stride produces more windows.
	ws2 := tr.SlidingWindows(256, 64)
	if len(ws2) <= len(ws) {
		t.Fatal("smaller stride should yield more windows")
	}
}

func TestFirstLastHours(t *testing.T) {
	tr := gen(t, "azure")
	first := tr.FirstHours(12)
	last := tr.LastHours(12)
	if first.Spec.Hours != 12 || last.Spec.Hours != 12 {
		t.Fatal("split hours wrong")
	}
	if len(first.Timestamps)+len(last.Timestamps) != len(tr.Timestamps) {
		t.Fatalf("split loses arrivals: %d + %d != %d",
			len(first.Timestamps), len(last.Timestamps), len(tr.Timestamps))
	}
	// LastHours re-bases to zero.
	if len(last.Timestamps) > 0 && last.Timestamps[0] > last.Spec.HourSeconds {
		t.Fatalf("last hours not re-based: first ts %v", last.Timestamps[0])
	}
	if last.Timestamps[len(last.Timestamps)-1] > last.Duration() {
		t.Fatal("re-based timestamps exceed duration")
	}
	// Clamping.
	if tr.FirstHours(99).Spec.Hours != 24 {
		t.Fatal("FirstHours should clamp")
	}
	if tr.LastHours(99).Spec.Hours != 24 {
		t.Fatal("LastHours should clamp")
	}
}

func TestAzureTwitterStatisticallySimilar(t *testing.T) {
	// The paper trains on Azure and tests on Twitter without fine-tuning;
	// our generators must keep them within the same statistical family
	// (similar mean rates, overlapping IDC range) while alibaba is OOD.
	az := gen(t, "azure")
	tw := gen(t, "twitter")
	al := gen(t, "alibaba")
	azRate := stats.Mean(az.HourlyRate)
	twRate := stats.Mean(tw.HourlyRate)
	if azRate/twRate > 2 || twRate/azRate > 2 {
		t.Fatalf("azure %v and twitter %v rates should be comparable", azRate, twRate)
	}
	// Alibaba's rate variance dwarfs both.
	if stats.StdDev(al.HourlyRate) < 3*stats.StdDev(tw.HourlyRate) {
		t.Fatalf("alibaba rate variability should dwarf twitter: %v vs %v",
			stats.StdDev(al.HourlyRate), stats.StdDev(tw.HourlyRate))
	}
}
