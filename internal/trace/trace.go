// Package trace synthesizes the four evaluation workloads of the paper:
//
//   - "azure":   the Azure Functions trace — diurnal arrival rate with
//     moderate, time-varying burstiness;
//   - "twitter": the Twitter stream trace — near-constant rate with mild
//     burstiness (IDC around 4);
//   - "alibaba": the Alibaba PAI MLaaS trace — highly dynamic, with flat
//     periods followed by sharp peaks (e.g. hours 4, 6 and 20);
//   - "synthetic": the paper's MAP-generated workload — 24 unique MMPP
//     streams, one per hour, with strong on-off behaviour.
//
// The proprietary originals are unavailable offline; these generators are
// tuned to reproduce the arrival-rate shapes (Fig. 4) and the index-of-
// dispersion bands (Fig. 5) that drive the paper's conclusions. Traces are
// deterministic given a seed. Paper "hours" are generated at a configurable
// scale (HourSeconds of simulated time per hour) — the system under study is
// event-driven, so shapes are preserved while experiments stay fast.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"deepbat/internal/arrival"
	"deepbat/internal/qsim"
	"deepbat/internal/stats"
)

// Spec configures a trace synthesis.
type Spec struct {
	Name        string
	Hours       int
	HourSeconds float64
	Seed        int64
}

// Default spec parameters — the single source of truth for per-workload
// defaults. cmd/tracegen's flags, cmd/replay's -name path, the experiments
// lab, and workload.DefaultSpec all derive from these; change them here and
// every consumer (and every doc table) moves together.
const (
	DefaultHours       = 24
	DefaultHourSeconds = 60.0
	DefaultSeed        = int64(1)
)

// DefaultSpec returns a DefaultHours-hour spec at DefaultHourSeconds
// simulated seconds per hour with the default seed.
func DefaultSpec(name string) Spec {
	return Spec{Name: name, Hours: DefaultHours, HourSeconds: DefaultHourSeconds, Seed: DefaultSeed}
}

// Trace is a generated workload: absolute arrival timestamps spanning
// Hours * HourSeconds seconds.
type Trace struct {
	Spec       Spec
	Timestamps []float64
	// HourlyRate records the nominal mean arrival rate of each hour
	// (requests per second), before burst modulation.
	HourlyRate []float64
}

// Names lists the supported trace names.
func Names() []string { return []string{"azure", "twitter", "alibaba", "synthetic"} }

// Generate synthesizes the named trace.
func Generate(spec Spec) (*Trace, error) {
	switch spec.Name {
	case "azure":
		return genModulated(spec, azureHourParams), nil
	case "twitter":
		return genModulated(spec, twitterHourParams), nil
	case "alibaba":
		return genModulated(spec, alibabaHourParams), nil
	case "synthetic":
		return genModulated(spec, syntheticHourParams), nil
	default:
		return nil, fmt.Errorf("trace: unknown trace %q (want one of %v)", spec.Name, Names())
	}
}

// MustGenerate is Generate for known-good specs; it panics on error.
func MustGenerate(spec Spec) *Trace {
	tr, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return tr
}

// hourParams describes the MMPP of one hour: the nominal mean rate and the
// burst structure (ratio of the fast state to the mean, share of the slow
// state, and mode-switching rate).
type hourParams struct {
	rate      float64 // mean requests/second
	burst     float64 // lambda_fast / mean rate, > 1
	slowShare float64 // lambda_slow / mean rate, in [0, 1)
	switchHz  float64 // total mode switching rate (1/s)
}

// mmpp builds the hour's arrival process with the exact mean rate.
func (h hourParams) mmpp() *arrival.MAP {
	if h.burst <= 1.01 {
		return arrival.Poisson(h.rate)
	}
	a, b := h.burst, h.slowShare
	p := (1 - b) / (a - b) // stationary share of the fast state
	r21 := p * h.switchHz
	r12 := (1 - p) * h.switchHz
	return arrival.MMPP2(a*h.rate, b*h.rate, r12, r21)
}

// genModulated generates one hour at a time from per-hour MMPPs.
func genModulated(spec Spec, params func(h int, rng *rand.Rand) hourParams) *Trace {
	rng := rand.New(rand.NewSource(spec.Seed))
	tr := &Trace{Spec: spec}
	for h := 0; h < spec.Hours; h++ {
		p := params(h, rng)
		tr.HourlyRate = append(tr.HourlyRate, p.rate)
		g, err := arrival.NewGen(p.mmpp(), rng)
		if err != nil {
			// The constructions above always yield valid processes.
			panic(err)
		}
		base := float64(h) * spec.HourSeconds
		for _, t := range g.SampleUntil(spec.HourSeconds) {
			tr.Timestamps = append(tr.Timestamps, base+t)
		}
	}
	return tr
}

// azureHourParams: diurnal rate with moderate, varying burstiness.
func azureHourParams(h int, rng *rand.Rand) hourParams {
	diurnal := 1 + 0.45*math.Sin(2*math.Pi*float64(h+18)/24)
	jitter := 1 + 0.2*(rng.Float64()*2-1)
	return hourParams{
		rate:      80 * diurnal * jitter,
		burst:     2.5 + 1.5*rng.Float64(), // IDC above Twitter's, variable
		slowShare: 0.4,
		switchHz:  4 + 8*rng.Float64(),
	}
}

// twitterHourParams: steady rate, mild burstiness (IDC ~ 4).
func twitterHourParams(_ int, rng *rand.Rand) hourParams {
	jitter := 1 + 0.05*(rng.Float64()*2-1)
	return hourParams{
		rate:      100 * jitter,
		burst:     1.8,
		slowShare: 0.6,
		switchHz:  20,
	}
}

// alibabaHourParams: long flat stretches punctuated by sharp peaks at hours
// 4, 6, 12 and 20 (mod 24), with strong on-off burstiness throughout.
func alibabaHourParams(h int, rng *rand.Rand) hourParams {
	rate := 18 + 6*rng.Float64()
	switch h % 24 {
	case 4, 6, 20:
		rate = 240 + 40*rng.Float64()
	case 12:
		rate = 140 + 30*rng.Float64()
	}
	return hourParams{
		rate:      rate,
		burst:     8 + 6*rng.Float64(),
		slowShare: 0.05,
		switchHz:  0.15 + 0.15*rng.Float64(),
	}
}

// syntheticHourParams: the paper's MAP-generated workload — 24 unique,
// strongly varying MMPP streams with on-off behaviour.
func syntheticHourParams(_ int, rng *rand.Rand) hourParams {
	return hourParams{
		rate:      20 + 260*rng.Float64(),
		burst:     5 + 35*rng.Float64(),
		slowShare: 0.02 + 0.1*rng.Float64(),
		switchHz:  0.1 + 0.5*rng.Float64(),
	}
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(t.Spec.Hours) * t.Spec.HourSeconds }

// Window returns the timestamps in [from, to).
func (t *Trace) Window(from, to float64) []float64 {
	lo := searchTS(t.Timestamps, from)
	hi := searchTS(t.Timestamps, to)
	return t.Timestamps[lo:hi]
}

func searchTS(ts []float64, x float64) int {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Hour returns the timestamps of paper-hour h (0-based).
func (t *Trace) Hour(h int) []float64 {
	return t.Window(float64(h)*t.Spec.HourSeconds, float64(h+1)*t.Spec.HourSeconds)
}

// Interarrivals returns the full interarrival sequence.
func (t *Trace) Interarrivals() []float64 { return qsim.Interarrivals(t.Timestamps) }

// RatePoint is one sample of the arrival-rate time series (Fig. 4).
type RatePoint struct {
	TimeS float64 // window start
	Rate  float64 // requests/second
}

// RateSeries bins the trace into windows of binS seconds and returns the
// arrival rate per bin.
func (t *Trace) RateSeries(binS float64) []RatePoint {
	if binS <= 0 || len(t.Timestamps) == 0 {
		return nil
	}
	n := int(math.Ceil(t.Duration() / binS))
	counts := make([]float64, n)
	for _, ts := range t.Timestamps {
		i := int(ts / binS)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	out := make([]RatePoint, n)
	for i := range counts {
		out[i] = RatePoint{TimeS: float64(i) * binS, Rate: counts[i] / binS}
	}
	return out
}

// HourlyIDC returns the empirical index of dispersion of each hour's
// interarrival times (Fig. 5), truncating the autocorrelation sum at maxLag.
func (t *Trace) HourlyIDC(maxLag int) []float64 {
	out := make([]float64, t.Spec.Hours)
	for h := range out {
		out[h] = stats.IDC(diffs(t.Hour(h)), maxLag)
	}
	return out
}

// diffs returns consecutive differences of a timestamp slice (the
// interarrival times strictly inside the window, without an artificial gap
// back to the window start).
func diffs(ts []float64) []float64 {
	if len(ts) < 2 {
		return nil
	}
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i] - ts[i-1]
	}
	return out
}

// SlidingWindows cuts the interarrival sequence into consecutive windows of
// the given length (the model input sequences). Stride defaults to length
// when <= 0. Windows that would run past the end are dropped.
func (t *Trace) SlidingWindows(length, stride int) [][]float64 {
	inter := t.Interarrivals()
	if stride <= 0 {
		stride = length
	}
	var out [][]float64
	for start := 0; start+length <= len(inter); start += stride {
		out = append(out, inter[start:start+length])
	}
	return out
}

// FirstHours returns a shallow trace view containing only hours [0, h).
func (t *Trace) FirstHours(h int) *Trace {
	if h > t.Spec.Hours {
		h = t.Spec.Hours
	}
	spec := t.Spec
	spec.Hours = h
	return &Trace{
		Spec:       spec,
		Timestamps: t.Window(0, float64(h)*t.Spec.HourSeconds),
		HourlyRate: t.HourlyRate[:h],
	}
}

// LastHours returns a trace view of the final h hours, re-based to time 0.
func (t *Trace) LastHours(h int) *Trace {
	if h > t.Spec.Hours {
		h = t.Spec.Hours
	}
	from := float64(t.Spec.Hours-h) * t.Spec.HourSeconds
	win := t.Window(from, t.Duration())
	shifted := make([]float64, len(win))
	for i, ts := range win {
		shifted[i] = ts - from
	}
	spec := t.Spec
	spec.Hours = h
	return &Trace{
		Spec:       spec,
		Timestamps: shifted,
		HourlyRate: t.HourlyRate[t.Spec.Hours-h:],
	}
}
