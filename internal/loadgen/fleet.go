// The fleet open loop: one seeded Poisson process per plan class, k-way
// merged into a single arrival stream and driven through the fleet front
// door on a manual clock. Per-class goodput is judged against each class's
// own SLO — the multi-SLO figure the fleet experiment tabulates.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"

	"deepbat/internal/fleet"
	"deepbat/internal/gateway"
	"deepbat/internal/obs"
	"deepbat/internal/sweep"
)

// FleetResult is the outcome of one fleet open-loop run: one report per plan
// class (in plan order) plus the fleet-wide total.
type FleetResult struct {
	PerClass []Report `json:"per_class"`
	Total    Report   `json:"total"`
}

// RunFleetOpen drives a fleet with per-class Poisson arrivals on a manual
// clock. Each class i draws interarrivals at its plan RateRPS from its own
// rng seeded sweep.CellSeed(c.Seed, i); the streams are merged by arrival
// time (ties to the lower class index) and submitted single-threaded, with
// due batch timeouts flushed in virtual time before each arrival. The run is
// fully deterministic: same plan + Config, byte-identical FleetResult.
//
// Config fields used: Requests (total across classes, required), Seed, and
// Assignment-free plan defaults; Clients, Duration, RateRPS, FaultErrorRate,
// and Legacy do not apply to the fleet loop.
func RunFleetOpen(p fleet.Plan, c Config) (FleetResult, error) {
	if c.Requests <= 0 {
		return FleetResult{}, errors.New("loadgen: fleet open loop needs Requests")
	}
	if err := p.Validate(); err != nil {
		return FleetResult{}, fmt.Errorf("loadgen: %w", err)
	}
	anyRate := false
	for _, spec := range p.Classes {
		if spec.RateRPS > 0 {
			anyRate = true
		}
	}
	if !anyRate {
		return FleetResult{}, errors.New("loadgen: fleet open loop needs at least one class with rate_rps > 0")
	}
	clock := &obs.ManualClock{}
	f, err := fleet.New(p, fleet.Options{Clock: clock, VirtualTimers: true})
	if err != nil {
		return FleetResult{}, fmt.Errorf("loadgen: %w", err)
	}

	// Per-class next-arrival heads; +Inf-free: idle classes get ok=false.
	n := len(p.Classes)
	rngs := make([]*rand.Rand, n)
	next := make([]float64, n)
	live := make([]bool, n)
	for i, spec := range p.Classes {
		if spec.RateRPS <= 0 {
			continue
		}
		rngs[i] = rand.New(rand.NewSource(sweep.CellSeed(c.Seed, i)))
		next[i] = rngs[i].ExpFloat64() / spec.RateRPS
		live[i] = true
	}
	handles := make([]gateway.Handle, 0, c.Requests)
	classes := make([]int, 0, c.Requests)
	for issued := 0; issued < c.Requests; issued++ {
		ci := -1
		for i := 0; i < n; i++ {
			if live[i] && (ci < 0 || next[i] < next[ci]) {
				ci = i
			}
		}
		at := next[ci]
		flushFleetUntil(f, clock, at)
		clock.Set(at)
		handles = append(handles, f.Submit(ci))
		classes = append(classes, ci)
		next[ci] = at + rngs[ci].ExpFloat64()/p.Classes[ci].RateRPS
	}
	elapsed := clock.Now()
	f.Stop() // flush partial batches

	parts := make([]tally, n)
	costs := make([]float64, n)
	var total tally
	for i, h := range handles {
		resp := h.Wait()
		ci := classes[i]
		parts[ci].observe(resp, p.Classes[ci].SLO*1000)
		total.observe(resp, p.Classes[ci].SLO*1000)
		if resp.Error == "" {
			costs[ci] += resp.CostUSD
		}
	}
	if elapsed <= 0 {
		elapsed = 1
	}
	res := FleetResult{}
	for ci := range parts {
		r := parts[ci].report("open", c, f.GatewayFor(ci).Shards(), elapsed, costs[ci])
		r.Class = p.Classes[ci].Name
		r.Legacy = false
		res.PerClass = append(res.PerClass, r)
	}
	res.Total = total.report("open", c, 0, elapsed, f.Stats().TotalCostUSD)
	res.Total.Legacy = false
	return res, nil
}

// flushFleetUntil dispatches every virtual batch timeout due at or before t,
// in deadline order across the fleet's groups.
func flushFleetUntil(f *fleet.Fleet, clock *obs.ManualClock, t float64) {
	for {
		d, ok := f.NextFlushDeadline()
		if !ok || d > t {
			return
		}
		clock.Set(d)
		f.FlushDue()
	}
}
