// Package loadgen drives an in-process gateway with synthetic traffic and
// reports throughput, tail latency, and goodput — the SLO-satisfying
// request rate, which is the figure DeepBAT actually optimizes for (a
// gateway that answers fast but past its SLO earns no goodput).
//
// Two loops are provided. The closed loop runs C concurrent clients on the
// wall clock, each issuing its next request as soon as the previous one
// completes — the classic saturation benchmark, and the mode the
// loadgen-smoke CI check runs. The open loop replays a seeded Poisson
// arrival process on a manual clock, single-threaded and fully
// deterministic: the same seed produces byte-identical reports across runs
// and machines, which is what makes the shard-sweep tables reproducible.
//
// In keeping with the noprint rule, this package only returns Report
// values; rendering belongs to cmd/loadgen.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
)

// Config parameterizes one load run against a fresh gateway.
type Config struct {
	// Initial is the serving configuration (zero value: 2048 MB, B=1).
	Initial lambda.Config
	// Shards is the gateway shard count (0 = GOMAXPROCS).
	Shards int
	// SLO is the latency objective goodput is judged against, in seconds.
	SLO float64
	// Clients is the closed-loop concurrency (0 = 1).
	Clients int
	// Requests is the request budget: per client for the closed loop
	// (0 = until Duration), total for the open loop (required there).
	Requests int
	// Duration bounds the closed loop in wall time (0 = until Requests).
	// At least one of Requests/Duration must be set for the closed loop.
	Duration time.Duration
	// RateRPS is the open-loop Poisson arrival rate (required there).
	RateRPS float64
	// Seed drives the open-loop arrival process and any fault injection.
	Seed int64
	// FaultErrorRate injects backend failures at this rate (0 = none),
	// seeded by Seed, through a fault.FaultyBackend.
	FaultErrorRate float64
	// Legacy drives the channel-per-request Enqueue path instead of the
	// pooled Submit/Do path — the baseline the sharded zero-alloc path is
	// compared against.
	Legacy bool
}

// Report is the outcome of one run. All latency figures are milliseconds on
// the gateway's clock (wall for closed loop, virtual for open loop).
type Report struct {
	Mode string `json:"mode"` // "closed" | "open"
	// Class labels per-class rows in fleet runs (empty for single-gateway
	// runs and for fleet totals).
	Class         string  `json:"class,omitempty"`
	Shards        int     `json:"shards"`
	Legacy        bool    `json:"legacy"`
	Requests      int     `json:"requests"` // issued
	Served        int     `json:"served"`   // answered without error
	Failed        int     `json:"failed"`   // answered with an error
	ElapsedS      float64 `json:"elapsed_s"`
	ThroughputRPS float64 `json:"throughput_rps"` // served / elapsed
	GoodputRPS    float64 `json:"goodput_rps"`    // served within SLO / elapsed
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	TotalCostUSD  float64 `json:"total_cost_usd"`
}

func (c Config) initial() lambda.Config {
	if c.Initial.Valid() {
		return c.Initial
	}
	return lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0}
}

// build constructs the gateway under test on the given clock.
func (c Config) build(clock obs.Clock, initial lambda.Config) (*gateway.Gateway, error) {
	var backend gateway.Backend = gateway.SimulatedBackend{
		Profile: lambda.DefaultProfile(),
		Pricing: lambda.DefaultPricing(),
	}
	if c.FaultErrorRate > 0 {
		backend = &fault.FaultyBackend{
			Inner: backend,
			Inj:   fault.NewInjector(fault.Plan{Seed: c.Seed, ErrorRate: c.FaultErrorRate}),
		}
	}
	return gateway.New(backend, nil, gateway.Config{
		Initial: initial,
		SLO:     c.SLO,
		Clock:   clock,
		Shards:  c.Shards,
	})
}

// tally folds one run's responses into the report skeleton.
type tally struct {
	latMS  []float64
	served int
	failed int
	good   int
}

// observe runs once per response on the driver goroutine, between a
// request completing and the next being issued — measurement overhead that
// must not pollute the latencies it records.
//
//deepbat:hotpath
func (t *tally) observe(resp gateway.Response, sloMS float64) {
	if resp.Error != "" {
		t.failed++
		return
	}
	t.served++
	//lint:allow hotpath-alloc amortized growth of the per-run latency sample; doubling keeps steady-state appends in-capacity
	t.latMS = append(t.latMS, resp.LatencyMS)
	if sloMS <= 0 || resp.LatencyMS <= sloMS {
		t.good++
	}
}

func (t *tally) report(mode string, c Config, shards int, elapsedS, costUSD float64) Report {
	r := Report{
		Mode:         mode,
		Shards:       shards,
		Legacy:       c.Legacy,
		Requests:     t.served + t.failed,
		Served:       t.served,
		Failed:       t.failed,
		ElapsedS:     elapsedS,
		TotalCostUSD: costUSD,
	}
	if elapsedS > 0 {
		r.ThroughputRPS = float64(t.served) / elapsedS
		r.GoodputRPS = float64(t.good) / elapsedS
	}
	r.P50MS, _ = stats.Percentile(t.latMS, 50)
	r.P95MS, _ = stats.Percentile(t.latMS, 95)
	r.P99MS, _ = stats.Percentile(t.latMS, 99)
	return r
}

// RunClosed runs the closed loop: Clients workers on the wall clock, each
// issuing its next request the moment the previous one returns, until the
// per-client request budget or the duration budget is exhausted.
func RunClosed(c Config) (Report, error) {
	if c.Requests <= 0 && c.Duration <= 0 {
		return Report{}, errors.New("loadgen: closed loop needs Requests or Duration")
	}
	clients := c.Clients
	if clients <= 0 {
		clients = 1
	}
	g, err := c.build(nil, c.initial())
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}
	var deadline time.Time
	if c.Duration > 0 {
		deadline = time.Now().Add(c.Duration)
	}
	// Per-worker tallies, merged in worker order after the join.
	parts := make([]tally, clients)
	sloMS := c.SLO * 1000
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(t *tally) {
			defer wg.Done()
			for n := 0; c.Requests <= 0 || n < c.Requests; n++ {
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				var resp gateway.Response
				if c.Legacy {
					resp = <-g.Enqueue()
				} else {
					resp = g.Do()
				}
				t.observe(resp, sloMS)
			}
		}(&parts[w])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	g.Stop()
	var merged tally
	for i := range parts {
		merged.latMS = append(merged.latMS, parts[i].latMS...)
		merged.served += parts[i].served
		merged.failed += parts[i].failed
		merged.good += parts[i].good
	}
	return merged.report("closed", c, g.Shards(), elapsed, g.Stats().TotalCostUSD), nil
}

// RunOpen replays a seeded Poisson arrival process on a manual clock:
// Requests arrivals at RateRPS, submitted single-threaded in arrival order,
// with batches dispatching synchronously by size and the final partial
// batch flushed at Stop. The run is fully deterministic — same Config,
// same Report — across runs, machines, and GOMAXPROCS values, which is
// what makes shard-sweep tables comparable.
func RunOpen(c Config) (Report, error) {
	if c.Requests <= 0 {
		return Report{}, errors.New("loadgen: open loop needs Requests")
	}
	if c.RateRPS <= 0 {
		return Report{}, errors.New("loadgen: open loop needs RateRPS")
	}
	initial := c.initial()
	if initial.BatchSize > 1 {
		// Virtual time cannot drive wall-clock batch timers; park the
		// timeout far out so dispatch is by size (plus the Stop flush),
		// keeping the run deterministic.
		initial.TimeoutS = 3600
	}
	clock := &obs.ManualClock{}
	g, err := c.build(clock, initial)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	handles := make([]gateway.Handle, 0, c.Requests)
	var legacy []<-chan gateway.Response
	for i := 0; i < c.Requests; i++ {
		if i > 0 {
			clock.Advance(rng.ExpFloat64() / c.RateRPS)
		}
		if c.Legacy {
			legacy = append(legacy, g.Enqueue())
		} else {
			handles = append(handles, g.Submit())
		}
	}
	elapsed := clock.Now()
	g.Stop() // flush partial batches; joins the legacy path's executors
	var merged tally
	sloMS := c.SLO * 1000
	for _, h := range handles {
		merged.observe(h.Wait(), sloMS)
	}
	for _, ch := range legacy {
		merged.observe(<-ch, sloMS)
	}
	if elapsed <= 0 {
		// Degenerate single-arrival runs: report over one interarrival so
		// rates stay finite.
		elapsed = 1 / c.RateRPS
	}
	return merged.report("open", c, g.Shards(), elapsed, g.Stats().TotalCostUSD), nil
}
