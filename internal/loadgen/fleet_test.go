package loadgen

import (
	"encoding/json"
	"testing"

	"deepbat/internal/fleet"
)

func fleetRatePlan() fleet.Plan {
	return fleet.Plan{Classes: []fleet.ClassSpec{
		{Name: "premium", SLO: 0.15, RateRPS: 200, Shards: 1},
		{Name: "standard", SLO: 0.5, RateRPS: 100, Shards: 1},
	}}
}

func TestRunFleetOpen(t *testing.T) {
	res, err := RunFleetOpen(fleetRatePlan(), Config{Requests: 600, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("per-class rows = %d, want 2", len(res.PerClass))
	}
	total := 0
	for _, r := range res.PerClass {
		if r.Mode != "open" || r.Class == "" {
			t.Errorf("row = %+v, want labeled open-loop row", r)
		}
		if r.Failed != 0 {
			t.Errorf("class %s failed %d requests on a clean backend", r.Class, r.Failed)
		}
		if r.Requests > 0 && r.GoodputRPS <= 0 {
			t.Errorf("class %s has traffic but no goodput", r.Class)
		}
		total += r.Requests
	}
	if total != 600 || res.Total.Requests != 600 {
		t.Fatalf("requests: per-class %d, total %d, want 600", total, res.Total.Requests)
	}
	// The heavier class draws roughly twice the traffic.
	if res.PerClass[0].Requests <= res.PerClass[1].Requests {
		t.Errorf("premium (200 rps) drew %d <= standard (100 rps) %d",
			res.PerClass[0].Requests, res.PerClass[1].Requests)
	}
	if res.Total.TotalCostUSD <= 0 {
		t.Errorf("total cost = %g, want positive", res.Total.TotalCostUSD)
	}
}

// TestRunFleetOpenDeterministic pins the byte-reproducibility contract:
// same plan + Config, byte-identical FleetResult document.
func TestRunFleetOpenDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunFleetOpen(fleetRatePlan(), Config{Requests: 400, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("fleet open-loop results differ across same-seed runs:\n%s\n%s", a, b)
	}
}

// TestRunFleetOpenBatchedFlushes exercises the virtual batch-timeout path:
// a batched class must have its partial batches flushed in virtual time, not
// parked until Stop.
func TestRunFleetOpenBatchedFlushes(t *testing.T) {
	p := fleet.Plan{Classes: []fleet.ClassSpec{{
		Name: "batched", SLO: 0.5, RateRPS: 50, Shards: 1,
		Initial: &fleet.ConfigSpec{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.05},
	}}}
	res, err := RunFleetOpen(p, Config{Requests: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := res.PerClass[0]
	if r.Served != 200 || r.Failed != 0 {
		t.Fatalf("row = %+v, want all 200 served", r)
	}
	// At 50 rps with an 8-deep batch and a 50 ms timer, most batches flush by
	// timeout — latencies must reflect the timer, not a 1-hour parking.
	if r.P95MS > 1000 {
		t.Errorf("p95 = %.1fms, want timer-bounded latency", r.P95MS)
	}
}

func TestRunFleetOpenErrors(t *testing.T) {
	if _, err := RunFleetOpen(fleetRatePlan(), Config{}); err == nil {
		t.Error("want error without Requests")
	}
	idle := fleet.Plan{Classes: []fleet.ClassSpec{{Name: "a", SLO: 0.1}}}
	if _, err := RunFleetOpen(idle, Config{Requests: 10}); err == nil {
		t.Error("want error with no positive-rate class")
	}
	bad := fleetRatePlan()
	bad.Classes[1].Name = bad.Classes[0].Name
	if _, err := RunFleetOpen(bad, Config{Requests: 10}); err == nil {
		t.Error("want error for invalid plan")
	}
}
