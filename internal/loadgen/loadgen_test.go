package loadgen

import (
	"testing"
	"time"

	"deepbat/internal/lambda"
)

func TestClosedLoopServesEverything(t *testing.T) {
	r, err := RunClosed(Config{
		Shards:   2,
		SLO:      1,
		Clients:  4,
		Requests: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "closed" || r.Shards != 2 {
		t.Fatalf("report header wrong: %+v", r)
	}
	if r.Served != 200 || r.Failed != 0 {
		t.Fatalf("served %d failed %d, want 200/0", r.Served, r.Failed)
	}
	if r.ThroughputRPS <= 0 || r.GoodputRPS <= 0 {
		t.Fatalf("non-positive rates: %+v", r)
	}
	if r.GoodputRPS > r.ThroughputRPS {
		t.Fatalf("goodput %v exceeds throughput %v", r.GoodputRPS, r.ThroughputRPS)
	}
	if r.TotalCostUSD <= 0 {
		t.Fatalf("no cost accounted: %+v", r)
	}
}

func TestClosedLoopLegacyPath(t *testing.T) {
	r, err := RunClosed(Config{SLO: 1, Clients: 2, Requests: 25, Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legacy || r.Served != 50 || r.Failed != 0 {
		t.Fatalf("legacy run wrong: %+v", r)
	}
}

func TestClosedLoopDurationBound(t *testing.T) {
	r, err := RunClosed(Config{SLO: 1, Clients: 2, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Served == 0 {
		t.Fatal("duration-bounded run served nothing")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	cfg := Config{
		Initial:  lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.1},
		Shards:   4,
		SLO:      0.5,
		Requests: 500,
		RateRPS:  200,
		Seed:     42,
	}
	a, err := RunOpen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed open-loop runs diverge:\n%+v\n%+v", a, b)
	}
	if a.Served+a.Failed != 500 || a.Failed != 0 {
		t.Fatalf("request conservation broken: %+v", a)
	}
	if a.GoodputRPS <= 0 {
		t.Fatalf("no goodput: %+v", a)
	}
}

func TestOpenLoopSweepConserves(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		r, err := RunOpen(Config{Shards: p, SLO: 1, Requests: 300, RateRPS: 1000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r.Served != 300 || r.Failed != 0 {
			t.Fatalf("P=%d: served %d failed %d, want 300/0", p, r.Served, r.Failed)
		}
		if r.Shards != p {
			t.Fatalf("P=%d: report says %d shards", p, r.Shards)
		}
	}
}

func TestOpenLoopFaultInjection(t *testing.T) {
	r, err := RunOpen(Config{SLO: 1, Requests: 400, RateRPS: 1000, Seed: 3, FaultErrorRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed == 0 {
		t.Fatalf("error rate 0.5 produced no failures: %+v", r)
	}
	if r.Served+r.Failed != 400 {
		t.Fatalf("request conservation broken: %+v", r)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunClosed(Config{}); err == nil {
		t.Error("closed loop without budget should error")
	}
	if _, err := RunOpen(Config{Requests: 10}); err == nil {
		t.Error("open loop without rate should error")
	}
	if _, err := RunOpen(Config{RateRPS: 10}); err == nil {
		t.Error("open loop without requests should error")
	}
}
