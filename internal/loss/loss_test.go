package loss

import (
	"math"
	"testing"

	"deepbat/internal/tensor"
)

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.Alpha != 0.05 || cfg.Delta != 1 {
		t.Fatalf("Default = %+v, paper uses alpha=0.05 delta=1", cfg)
	}
	if cfg.SLOPenalty <= 1 {
		t.Fatalf("SLOPenalty = %v, must amplify violating samples", cfg.SLOPenalty)
	}
}

func TestCombinedValue(t *testing.T) {
	pred := tensor.FromData([]float64{1.2}, 1)
	target := tensor.FromData([]float64{1.0}, 1)
	cfg := Config{Alpha: 0.05, Delta: 1}
	got := Combined(pred, target, cfg, nil).Item()
	// MAPE fraction = 0.2, Huber = 0.5*0.04 = 0.02.
	want := 0.05*0.2 + 0.95*0.02
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Combined = %v, want %v", got, want)
	}
}

func TestCombinedGradientFlows(t *testing.T) {
	pred := tensor.FromData([]float64{1.5, 0.4}, 2).RequireGrad()
	target := tensor.FromData([]float64{1.0, 0.5}, 2)
	l := Combined(pred, target, Default(), nil)
	tensor.Backward(l)
	if pred.Grad[0] == 0 || pred.Grad[1] == 0 {
		t.Fatalf("combined loss produced zero gradients: %v", pred.Grad)
	}
	// Over-prediction should push down, under-prediction up.
	if pred.Grad[0] <= 0 {
		t.Fatalf("grad sign for over-prediction: %v", pred.Grad[0])
	}
	if pred.Grad[1] >= 0 {
		t.Fatalf("grad sign for under-prediction: %v", pred.Grad[1])
	}
}

func TestSLOWeightsPenalizesViolatingEntries(t *testing.T) {
	cfg := Default()
	slo := 0.1
	// Layout [cost, p50, p95]; only p95 violates.
	w := SLOWeights([]float64{0.01, 0.05, 0.2}, slo, cfg)
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("non-violating entries reweighted: %v", w)
	}
	if w[2] != cfg.SLOPenalty {
		t.Fatalf("violating entry weight = %v, want %v", w[2], cfg.SLOPenalty)
	}
	// Non-violating sample gets uniform weights.
	w = SLOWeights([]float64{0.01, 0.05, 0.08}, slo, cfg)
	for i, v := range w {
		if v != 1 {
			t.Fatalf("weight[%d] = %v, want 1", i, v)
		}
	}
}

func TestSLOWeightsIgnoresCostElement(t *testing.T) {
	// A huge cost (element 0) alone should not trigger the latency penalty.
	w := SLOWeights([]float64{99, 0.01}, 0.1, Default())
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("weights = %v, cost must not trigger penalty", w)
	}
}

func TestViolates(t *testing.T) {
	if !Violates([]float64{0.01, 0.05, 0.2}, 0.1) {
		t.Fatal("violating sample not detected")
	}
	if Violates([]float64{0.01, 0.05, 0.08}, 0.1) {
		t.Fatal("feasible sample flagged")
	}
	if Violates([]float64{99}, 0.1) {
		t.Fatal("cost-only vector cannot violate")
	}
}

func TestSampleWeight(t *testing.T) {
	cfg := Default()
	if got := SampleWeight([]float64{0.01, 0.2}, 0.1, cfg); got != cfg.SLOPenalty {
		t.Fatalf("violating sample weight = %v, want %v", got, cfg.SLOPenalty)
	}
	if got := SampleWeight([]float64{0.01, 0.05}, 0.1, cfg); got != 1 {
		t.Fatalf("feasible sample weight = %v, want 1", got)
	}
	cfg.SLOPenalty = 0
	if got := SampleWeight([]float64{0.01, 0.2}, 0.1, cfg); got != 1 {
		t.Fatalf("disabled penalty weight = %v, want 1", got)
	}
}

func TestSampleLevelPenaltyChangesLoss(t *testing.T) {
	// The element weights alone normalize away when uniform; the sample
	// weight is what makes violating samples matter more. Check the
	// composition behaves: a violating tail entry is up-weighted within the
	// sample, so its error dominates.
	cfg := Default()
	target := tensor.FromData([]float64{0.01, 0.05, 0.2}, 3)
	pred := tensor.FromData([]float64{0.011, 0.055, 0.3}, 3)
	w := SLOWeights(target.Data, 0.1, cfg)
	weighted := Combined(pred, target, cfg, w).Item()
	plain := Combined(pred, target, cfg, nil).Item()
	if weighted <= plain {
		t.Fatalf("violating-entry weighting should emphasize the tail: %v vs %v", weighted, plain)
	}
}

func TestExplicitTailWeighting(t *testing.T) {
	cfg := Default()
	pred := tensor.FromData([]float64{0.011, 0.055, 0.3}, 3)
	target := tensor.FromData([]float64{0.01, 0.05, 0.2}, 3)
	plain := Combined(pred, target, cfg, nil).Item()
	// Emphasizing the violating tail element raises the weighted mean when
	// the tail error dominates.
	mixed := Combined(pred, target, cfg, []float64{1, 1, 8}).Item()
	if mixed <= plain {
		t.Fatalf("tail-weighted loss %v should exceed plain %v", mixed, plain)
	}
}
