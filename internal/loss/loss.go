// Package loss implements the training loss of the DeepBAT surrogate model
// (Eqs. 7–9 of the paper): a weighted combination of Huber loss and mean
// absolute percentage error,
//
//	L(y, yhat) = alpha*MAPE(y, yhat) + (1-alpha)*Huber_delta(y, yhat)
//
// with per-element weights that penalize configurations whose true latency
// violates the SLO more heavily, as the paper's loss is "intentionally
// defined to penalize more for those configurations that violate the SLO".
package loss

import (
	"deepbat/internal/tensor"
)

// Config holds the hyperparameters of the combined loss. The paper uses
// Alpha = 0.05 and Delta = 1.
type Config struct {
	// Alpha weighs MAPE against Huber in the combination.
	Alpha float64
	// Delta is the Huber transition point.
	Delta float64
	// SLOPenalty multiplies the per-element weight of outputs belonging to
	// SLO-violating configurations. 1 disables the penalty.
	SLOPenalty float64
}

// Default returns the paper's loss configuration.
func Default() Config {
	return Config{Alpha: 0.05, Delta: 1, SLOPenalty: 4}
}

// Combined computes the weighted loss between the model output pred and the
// constant target. weights may be nil for uniform weighting; otherwise it
// must have one entry per output element (see SLOWeights).
func Combined(pred, target *tensor.Tensor, cfg Config, weights []float64) *tensor.Tensor {
	ml := tensor.MAPELoss(pred, target, weights)
	hl := tensor.Huber(pred, target, cfg.Delta, weights)
	return tensor.Add(tensor.Scale(ml, cfg.Alpha), tensor.Scale(hl, 1-cfg.Alpha))
}

// Violates reports whether a target vector [cost, p_1, ..., p_k] belongs to
// an SLO-violating configuration — any latency percentile above the SLO.
func Violates(target []float64, slo float64) bool {
	for i := 1; i < len(target); i++ {
		if target[i] > slo {
			return true
		}
	}
	return false
}

// SampleWeight returns the loss multiplier for one training sample: the
// SLOPenalty for configurations whose true latency violates the SLO
// ("the loss function is intentionally defined to penalize more for those
// configurations that violate the SLO, both for latency and cost
// prediction"), 1 otherwise. The multiplier scales the sample's whole
// combined loss; per-element weights inside Combined are normalized by their
// sum and therefore cannot express a sample-level penalty.
func SampleWeight(target []float64, slo float64, cfg Config) float64 {
	if Violates(target, slo) && cfg.SLOPenalty > 0 {
		return cfg.SLOPenalty
	}
	return 1
}

// SLOWeights builds the per-element weight vector for one training sample:
// latency entries above the SLO get the penalty weight, sharpening the fit
// exactly where the constraint binds; the cost element and feasible latency
// entries keep weight 1. Combine with SampleWeight for the sample-level
// penalty.
func SLOWeights(target []float64, slo float64, cfg Config) []float64 {
	w := make([]float64, len(target))
	for i := range w {
		w[i] = 1
		if i >= 1 && target[i] > slo && cfg.SLOPenalty > 0 {
			w[i] = cfg.SLOPenalty
		}
	}
	return w
}
