// Package obs is DeepBAT's observability substrate: a stdlib-only registry
// of named counters, gauges, and fixed-bucket histograms, plus a structured
// span/event recorder, with two exposition formats (Prometheus text and a
// deterministic JSON snapshot).
//
// The closed loop the repo implements — gateway watches interarrivals,
// surrogate predicts tails, optimizer reconfigures (M, B, T) — is invisible
// without first-class telemetry, and the noprint lint rule deliberately
// forbids ad-hoc output from internal/. obs is the sanctioned sink: library
// code records into an injected *Registry / *Recorder, and only the edges
// (cmd/, HTTP handlers, experiment reports) decide where the data goes.
//
// Two contracts shape the design:
//
//   - Determinism. The same instrumentation must work on qsim's simulated
//     time and the gateway's wall clock. All timestamps are float64 seconds;
//     the Recorder runs on an injected Clock (Manual for simulations, Wall
//     for serving), and simulation code stamps events explicitly with
//     EventAt — never time.Now. Snapshots are sorted by series name and
//     rendered with canonical float formatting, so two runs that observe
//     identical values produce byte-identical JSON.
//
//   - Race safety. Metric updates are lock-free (atomic CAS on float64
//     bits); a Registry may be hammered from many goroutines while another
//     snapshots it. Histograms with equal bucket bounds are mergeable.
//
// Registration is get-or-create and returns an error — never panics — when
// a name is reused with a different kind or bucket layout; the Must*
// variants exist for cmd/, examples, and tests only (the obs-register lint
// rule keeps them out of library code).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered series.
type Kind string

// The three series kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing series (callers must not Add
// negative deltas; the registry does not police it).
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds delta.
func (c *Counter) Add(delta float64) { c.v.add(delta) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a series that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram counts observations into fixed buckets with upper bounds
// `bounds` (ascending; an implicit +Inf bucket catches the rest) and tracks
// the sum and count of all observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Merge adds other's observations into h. The bucket layouts must be
// identical.
func (h *Histogram) Merge(other *Histogram) error {
	if !equalBounds(h.bounds, other.bounds) {
		return fmt.Errorf("obs: merging histograms with different bucket bounds")
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.sum.add(other.sum.load())
	h.n.Add(other.n.Load())
	return nil
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:allow floatcompare bucket bounds are configuration constants; layouts must match bit-for-bit to be mergeable
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LogBuckets returns perDecade log-spaced bucket upper bounds from min up to
// and including the first bound >= max. It is the bucket generator for
// latency-style long-tailed series.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		return []float64{min, max}
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := min; ; v *= ratio {
		out = append(out, v)
		if v >= max {
			break
		}
	}
	return out
}

// DefaultLatencyBuckets spans 1 ms to 10 s at 5 buckets per decade — the
// range serverless inference latencies and SLOs live in.
func DefaultLatencyBuckets() []float64 { return LogBuckets(0.001, 10, 5) }

// series is one registered metric.
type series struct {
	name string
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named set of metric series. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*series)}
}

// lookup returns the existing series of the given name and kind, erroring on
// a kind collision, or (nil, nil) when the name is free.
func (r *Registry) lookup(name string, kind Kind) (*series, error) {
	s, ok := r.byName[name]
	if !ok {
		return nil, nil
	}
	if s.kind != kind {
		return nil, fmt.Errorf("obs: series %q already registered as %s, requested %s", name, s.kind, kind)
	}
	return s, nil
}

// Counter returns the counter with the given name, creating it on first use.
// It errors — it never panics — when the name is already registered as a
// different kind. The help string of the first registration wins.
func (r *Registry) Counter(name, help string) (*Counter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.lookup(name, KindCounter)
	if err != nil {
		return nil, err
	}
	if s == nil {
		s = &series{name: name, help: help, kind: KindCounter, c: &Counter{}}
		r.byName[name] = s
	}
	return s.c, nil
}

// Gauge returns the gauge with the given name, creating it on first use.
// Kind collisions error, never panic.
func (r *Registry) Gauge(name, help string) (*Gauge, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.lookup(name, KindGauge)
	if err != nil {
		return nil, err
	}
	if s == nil {
		s = &series{name: name, help: help, kind: KindGauge, g: &Gauge{}}
		r.byName[name] = s
	}
	return s.g, nil
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use. Re-registration with a different kind or
// a different bucket layout errors, never panics.
func (r *Registry) Histogram(name, help string, bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram %q needs at least one bucket bound", name)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram %q bucket bounds must be strictly ascending", name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.lookup(name, KindHistogram)
	if err != nil {
		return nil, err
	}
	if s == nil {
		b := append([]float64(nil), bounds...)
		h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		s = &series{name: name, help: help, kind: KindHistogram, h: h}
		r.byName[name] = s
		return h, nil
	}
	if !equalBounds(s.h.bounds, bounds) {
		return nil, fmt.Errorf("obs: histogram %q already registered with different bucket bounds", name)
	}
	return s.h, nil
}

// MustCounter is Counter but panics on error. For cmd/, examples, and tests
// only — library code must propagate the registration error (enforced by the
// obs-register lint rule).
func (r *Registry) MustCounter(name, help string) *Counter {
	c, err := r.Counter(name, help)
	if err != nil {
		panic(err)
	}
	return c
}

// MustGauge is Gauge but panics on error. Same scope rule as MustCounter.
func (r *Registry) MustGauge(name, help string) *Gauge {
	g, err := r.Gauge(name, help)
	if err != nil {
		panic(err)
	}
	return g
}

// MustHistogram is Histogram but panics on error. Same scope rule as
// MustCounter.
func (r *Registry) MustHistogram(name, help string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, help, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// sortedSeries returns the registered series sorted by name.
func (r *Registry) sortedSeries() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.byName))
	for _, s := range r.byName {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
