package obs

import (
	"sort"
	"strconv"
	"sync"
)

// Attr is one key/value annotation on an event. Values are pre-rendered
// strings so the event stream serializes identically on every run; use the
// F/I/S helpers for canonical formatting.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// F formats a float attribute canonically (shortest round-trip form).
func F(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// I formats an integer attribute.
func I(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// S wraps a string attribute.
func S(key, value string) Attr { return Attr{Key: key, Value: value} }

// B formats a bool attribute.
func B(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// Event is one recorded occurrence. DurS is non-zero only for span-end
// events.
type Event struct {
	Time  float64 `json:"t"`
	Name  string  `json:"name"`
	DurS  float64 `json:"dur_s,omitempty"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// Recorder accumulates a bounded structured event stream on an injected
// clock. Events beyond the capacity are counted as dropped rather than
// grown without bound; the stream stays in record order. Safe for
// concurrent use — though deterministic output naturally requires the
// recording order itself to be deterministic, as it is in simulation code.
type Recorder struct {
	mu      sync.Mutex
	clock   Clock
	max     int
	events  []Event
	dropped uint64
}

// DefaultRecorderCap bounds a Recorder when NewRecorder is given max <= 0.
const DefaultRecorderCap = 4096

// NewRecorder returns a recorder on the given clock, keeping at most max
// events (<= 0 means DefaultRecorderCap). A nil clock installs a ManualClock
// pinned at 0 — the right default for simulation code, which stamps every
// event explicitly with EventAt.
func NewRecorder(clock Clock, max int) *Recorder {
	if clock == nil {
		clock = &ManualClock{}
	}
	if max <= 0 {
		max = DefaultRecorderCap
	}
	return &Recorder{clock: clock, max: max}
}

// Event records an event stamped with the recorder's clock.
func (r *Recorder) Event(name string, attrs ...Attr) {
	r.record(Event{Time: r.clock.Now(), Name: name, Attrs: attrs})
}

// EventAt records an event with an explicit timestamp — the entry point for
// simulated time, where the caller owns the clock.
func (r *Recorder) EventAt(t float64, name string, attrs ...Attr) {
	r.record(Event{Time: t, Name: name, Attrs: attrs})
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	if len(r.events) >= r.max {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// ActiveSpan is an in-flight span started by StartSpan.
type ActiveSpan struct {
	r     *Recorder
	name  string
	start float64
	attrs []Attr
}

// StartSpan opens a span at the clock's current time. End records it as a
// single event stamped with the start time and the measured duration.
func (r *Recorder) StartSpan(name string, attrs ...Attr) *ActiveSpan {
	return &ActiveSpan{r: r, name: name, start: r.clock.Now(), attrs: attrs}
}

// SpanAt opens a span at an explicit start time (simulated-time variant).
func (r *Recorder) SpanAt(t float64, name string, attrs ...Attr) *ActiveSpan {
	return &ActiveSpan{r: r, name: name, start: t, attrs: attrs}
}

// End closes the span at the clock's current time.
func (s *ActiveSpan) End() {
	s.EndAt(s.r.clock.Now())
}

// EndAt closes the span at an explicit end time.
func (s *ActiveSpan) EndAt(t float64) {
	s.r.record(Event{Time: s.start, Name: s.name, DurS: t - s.start, Attrs: s.attrs})
}

// Events returns a copy of the recorded stream in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dropped reports how many events were discarded at the capacity bound.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears the stream and the drop counter.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.dropped = 0
	r.mu.Unlock()
}

// CountByName returns event counts grouped by name, sorted by name — the
// summary experiment reports print.
func (r *Recorder) CountByName() []NameCount {
	r.mu.Lock()
	counts := make(map[string]int)
	for _, e := range r.events {
		counts[e.Name]++
	}
	r.mu.Unlock()
	out := make([]NameCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, NameCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NameCount is one (event name, occurrence count) pair.
type NameCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}
