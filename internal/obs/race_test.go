package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives one Registry from many goroutines —
// counter adds, gauge sets, histogram observes, get-or-create registration,
// and concurrent snapshots/expositions — as a race-detector target
// (`make race` includes internal/obs). The final totals are also checked:
// lock-free CAS updates must not lose increments.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	rec := NewRecorder(&ManualClock{}, 1<<15)
	const (
		goroutines = 16
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Re-registration from every goroutine exercises the
				// get-or-create path under contention.
				c, err := r.Counter("hammer_total", "")
				if err != nil {
					t.Error(err)
					return
				}
				c.Inc()
				gauge, err := r.Gauge("hammer_gauge", "")
				if err != nil {
					t.Error(err)
					return
				}
				gauge.Set(float64(i))
				h, err := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75})
				if err != nil {
					t.Error(err)
					return
				}
				h.Observe(float64(i%100) / 100)
				rec.Event("tick", I("g", g))
			}
		}(g)
	}
	// Snapshot concurrently with the writers.
	var snapWG sync.WaitGroup
	for s := 0; s < 4; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := rec.WriteEventsJSON(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	snapWG.Wait()

	const total = goroutines * perG
	c, _ := r.Counter("hammer_total", "")
	if got := c.Value(); got != total {
		t.Fatalf("counter lost updates: %v, want %d", got, total)
	}
	h, _ := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75})
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observes: %d, want %d", got, total)
	}
	if got := len(rec.Events()); got != total {
		t.Fatalf("recorder lost events: %d, want %d", got, total)
	}
}
