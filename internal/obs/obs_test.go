package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("reqs_total", "requests")
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g, err := r.Gauge("depth", "queue depth")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Counter("x_total", "first help wins")
	b, err := r.Counter("x_total", "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverged")
	}
}

func TestDuplicateRegistrationErrorsNotPanics(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("dup", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("dup", ""); err == nil {
		t.Fatal("counter re-registered as gauge did not error")
	}
	if _, err := r.Histogram("dup", "", []float64{1}); err == nil {
		t.Fatal("counter re-registered as histogram did not error")
	}
	if _, err := r.Histogram("h", "", []float64{0.1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Histogram("h", "", []float64{0.2, 1}); err == nil {
		t.Fatal("histogram re-registered with different bounds did not error")
	}
	if _, err := r.Histogram("h", "", []float64{0.1, 1}); err != nil {
		t.Fatalf("identical histogram re-registration errored: %v", err)
	}
	if _, err := r.Histogram("bad", "", nil); err == nil {
		t.Fatal("empty bucket list accepted")
	}
	if _, err := r.Histogram("bad", "", []float64{2, 1}); err == nil {
		t.Fatal("descending bucket list accepted")
	}
}

func TestMustVariantsPanicOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("ok", "")
	defer func() {
		if recover() == nil {
			t.Fatal("MustGauge on a counter name did not panic")
		}
	}()
	r.MustGauge("ok", "")
}

func TestHistogramObserveAndMerge(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("lat", "", []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// Buckets (non-cumulative): <=0.01 -> 2 (0.005 and the boundary 0.01),
	// <=0.1 -> 1, <=1 -> 1, +Inf -> 1.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}

	other := NewRegistry()
	h2, _ := other.Histogram("lat", "", []float64{0.01, 0.1, 1})
	h2.Observe(0.2)
	if err := h.Merge(h2); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 6 || h.counts[2].Load() != 2 {
		t.Fatal("merge did not add observations")
	}
	h3, _ := other.Histogram("lat2", "", []float64{0.5})
	if err := h.Merge(h3); err == nil {
		t.Fatal("merging different bucket layouts did not error")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 10, 5)
	if b[0] != 0.001 {
		t.Fatalf("first bound = %v", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %v does not cover max", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	if len(DefaultLatencyBuckets()) != len(b) {
		t.Fatal("DefaultLatencyBuckets changed unexpectedly")
	}
}

func TestRecorderEventsAndSpans(t *testing.T) {
	clk := &ManualClock{}
	rec := NewRecorder(clk, 8)
	clk.Set(1.5)
	rec.Event("arrive", I("id", 1))
	sp := rec.StartSpan("work", S("kind", "batch"))
	clk.Advance(0.25)
	sp.End()
	rec.EventAt(9, "explicit")

	ev := rec.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Time != 1.5 || ev[0].Name != "arrive" || ev[0].Attrs[0].Value != "1" {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].DurS != 0.25 || ev[1].Time != 1.5 {
		t.Fatalf("span event = %+v", ev[1])
	}
	if ev[2].Time != 9 {
		t.Fatalf("explicit event = %+v", ev[2])
	}
}

func TestRecorderDropsAtCapacity(t *testing.T) {
	rec := NewRecorder(nil, 2)
	for i := 0; i < 5; i++ {
		rec.EventAt(float64(i), "e")
	}
	if len(rec.Events()) != 2 || rec.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(rec.Events()), rec.Dropped())
	}
	rec.Reset()
	if len(rec.Events()) != 0 || rec.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCountByName(t *testing.T) {
	rec := NewRecorder(nil, 0)
	rec.EventAt(0, "b")
	rec.EventAt(1, "a")
	rec.EventAt(2, "b")
	got := rec.CountByName()
	if len(got) != 2 || got[0].Name != "a" || got[0].Count != 1 || got[1].Count != 2 {
		t.Fatalf("counts = %+v", got)
	}
}

// fillRegistry populates a registry with one series of each kind.
func fillRegistry(t *testing.T, r *Registry) {
	t.Helper()
	c, err := r.Counter("z_total", "a counter")
	if err != nil {
		t.Fatal(err)
	}
	c.Add(3)
	g, err := r.Gauge("a_gauge", "a gauge\nwith newline")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(-1.25)
	h, err := r.Histogram("m_hist", "a histogram", []float64{0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	fillRegistry(t, r)
	snap := r.Snapshot()
	if len(snap.Series) != 3 {
		t.Fatalf("series = %d", len(snap.Series))
	}
	names := []string{snap.Series[0].Name, snap.Series[1].Name, snap.Series[2].Name}
	if names[0] != "a_gauge" || names[1] != "m_hist" || names[2] != "z_total" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	hist := snap.Series[1]
	if hist.Count != 3 || len(hist.Buckets) != 3 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
	// Buckets are cumulative; the last is +Inf and equals the count.
	if hist.Buckets[2].UpperBound != "+Inf" || hist.Buckets[2].Count != 3 {
		t.Fatalf("+Inf bucket = %+v", hist.Buckets[2])
	}
	if hist.Buckets[0].Count != 1 || hist.Buckets[1].Count != 2 {
		t.Fatalf("cumulative buckets = %+v", hist.Buckets)
	}
}

func TestJSONSnapshotByteIdenticalAcrossRuns(t *testing.T) {
	render := func() []byte {
		r := NewRegistry()
		fillRegistry(t, r)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	fillRegistry(t, r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_gauge a gauge\\nwith newline\n",
		"# TYPE a_gauge gauge\na_gauge -1.25\n",
		"# TYPE m_hist histogram\n",
		"m_hist_bucket{le=\"0.1\"} 1\n",
		"m_hist_bucket{le=\"1\"} 2\n",
		"m_hist_bucket{le=\"+Inf\"} 3\n",
		"m_hist_sum 2.55\n",
		"m_hist_count 3\n",
		"# TYPE z_total counter\nz_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Series order follows name order.
	if strings.Index(out, "a_gauge") > strings.Index(out, "z_total") {
		t.Fatal("series not sorted by name")
	}
}

func TestWriteEventsJSONDeterministic(t *testing.T) {
	render := func() []byte {
		rec := NewRecorder(nil, 0)
		rec.EventAt(0.5, "dispatch", I("size", 4), S("cause", "size"))
		rec.SpanAt(0.5, "exec").EndAt(0.75)
		var buf bytes.Buffer
		if err := rec.WriteEventsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("event streams differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), `"dur_s": 0.25`) {
		t.Fatalf("span duration missing:\n%s", a)
	}
}
