package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations <= UpperBound. The final bucket has UpperBound = +Inf
// (rendered "+Inf" in both formats, since JSON has no infinity literal).
type BucketSnapshot struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// SeriesSnapshot is the point-in-time state of one series.
type SeriesSnapshot struct {
	Name    string           `json:"name"`
	Kind    Kind             `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Value   float64          `json:"value,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is the full registry state, series sorted by name. Encoding the
// same observed values always yields the same bytes: map iteration never
// leaks into the output and floats use encoding/json's canonical shortest
// form.
type Snapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// fmtFloat renders a float in the canonical shortest round-trip form shared
// by both exposition formats.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot captures the current state of every registered series.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, s := range r.sortedSeries() {
		ss := SeriesSnapshot{Name: s.name, Kind: s.kind, Help: s.help}
		switch s.kind {
		case KindCounter:
			ss.Value = s.c.Value()
		case KindGauge:
			ss.Value = s.g.Value()
		case KindHistogram:
			h := s.h
			cum := uint64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				ss.Buckets = append(ss.Buckets, BucketSnapshot{UpperBound: le, Count: cum})
			}
			ss.Sum = h.Sum()
			ss.Count = h.Count()
		}
		snap.Series = append(snap.Series, ss)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON. Output is byte-identical
// across runs that observed identical values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON is shorthand for Snapshot().WriteJSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative `le`-labeled
// histogram buckets, and `_sum`/`_count` series. Series appear sorted by
// name, so the output is deterministic for identical observed values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.sortedSeries() {
		if s.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(s.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
			return err
		}
		var err error
		switch s.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %s\n", s.name, fmtFloat(s.c.Value()))
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", s.name, fmtFloat(s.g.Value()))
		case KindHistogram:
			h := s.h
			cum := uint64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.name, le, cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", s.name, fmtFloat(h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", s.name, h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsJSON writes the recorder's event stream (plus the drop counter)
// as indented JSON, byte-identical across runs that recorded identical
// events.
func (r *Recorder) WriteEventsJSON(w io.Writer) error {
	r.mu.Lock()
	doc := struct {
		Events  []Event `json:"events"`
		Dropped uint64  `json:"dropped,omitempty"`
	}{Events: append([]Event(nil), r.events...), Dropped: r.dropped}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
