package obs

// Merge folds every series of src into r, creating series on first sight:
// counter and gauge values add, histograms merge bucket-wise (layouts must
// match), and the help string of the first registration wins. Source series
// are visited in name order, so merging the same registries in the same
// sequence always performs the identical float additions — the property the
// sweep engine relies on to make fan-in byte-deterministic regardless of
// worker count. It errors, never panics, on kind or bucket-layout
// collisions. src is read via the same snapshot path exposition uses and is
// not modified.
func (r *Registry) Merge(src *Registry) error {
	for _, s := range src.sortedSeries() {
		switch s.kind {
		case KindCounter:
			c, err := r.Counter(s.name, s.help)
			if err != nil {
				return err
			}
			c.Add(s.c.Value())
		case KindGauge:
			g, err := r.Gauge(s.name, s.help)
			if err != nil {
				return err
			}
			g.Add(s.g.Value())
		case KindHistogram:
			h, err := r.Histogram(s.name, s.help, s.h.Bounds())
			if err != nil {
				return err
			}
			if err := h.Merge(s.h); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append appends src's event stream onto r in record order, respecting r's
// capacity bound (overflow counts as dropped, as with live recording) and
// carrying src's own drop count over. It is the recorder half of the sweep
// fan-in: per-cell streams appended in cell-index order yield one
// deterministic merged stream.
func (r *Recorder) Append(src *Recorder) {
	events := src.Events()
	dropped := src.Dropped()
	r.mu.Lock()
	for _, e := range events {
		if len(r.events) >= r.max {
			r.dropped++
		} else {
			r.events = append(r.events, e)
		}
	}
	r.dropped += dropped
	r.mu.Unlock()
}
