package obs

import (
	"sync"
	"time"
)

// Clock supplies timestamps in float64 seconds. The origin is the clock's
// own — qsim time starts at the first arrival, a WallClock at its creation —
// so instrumentation written against Clock works unchanged on simulated and
// real time.
type Clock interface {
	Now() float64
}

// WallClock reads the process monotonic clock, reporting seconds since the
// clock was created. It is the clock for the real-time gateway; never inject
// it into simulation code (the determinism lint rule keeps time.Now out of
// the numeric core, and the obs determinism contract depends on it).
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock with its origin at the call.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() float64 { return time.Since(w.epoch).Seconds() }

// ManualClock is an explicitly driven clock for simulations and tests. The
// zero value reads 0; it is safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  float64
}

// Now implements Clock.
func (m *ManualClock) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Set moves the clock to t.
func (m *ManualClock) Set(t float64) {
	m.mu.Lock()
	m.t = t
	m.mu.Unlock()
}

// Advance moves the clock forward by d seconds.
func (m *ManualClock) Advance(d float64) {
	m.mu.Lock()
	m.t += d
	m.mu.Unlock()
}
