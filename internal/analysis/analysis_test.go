package analysis_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"deepbat/internal/analysis"
)

// moduleRoot returns the repo root (two levels up from this package).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// expectation is one expected finding: (file base name, line, rule).
type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string { return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.rule) }

var (
	wantTrailing = regexp.MustCompile(`// want ([a-z-]+)\s*$`)
	wantNextLine = regexp.MustCompile(`^\s*// want-next ([a-z-]+)\s*$`)
)

// scanExpectations reads every .go file in dir and collects `// want <rule>`
// trailing markers (expected finding on the same line) and standalone
// `// want-next <rule>` lines (expected finding on the following line).
func scanExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			if m := wantNextLine.FindStringSubmatch(sc.Text()); m != nil {
				out = append(out, expectation{e.Name(), line + 1, m[1]})
				continue
			}
			if m := wantTrailing.FindStringSubmatch(sc.Text()); m != nil {
				out = append(out, expectation{e.Name(), line, m[1]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

// runFixture lints one fixture package and returns its findings as
// expectations for comparison.
func runFixture(t *testing.T, root, name string) []expectation {
	t.Helper()
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
	prog, err := analysis.LoadDirs(root, []string{dir})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	var got []expectation
	for _, f := range analysis.Run(prog, analysis.Analyzers()) {
		got = append(got, expectation{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule})
	}
	return got
}

func sortedKeys(es []expectation) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}

// TestFixtures checks, for every analyzer fixture, that the findings match
// the `// want` annotations exactly — no missing findings, no extras, and
// //lint:allow suppression honored.
func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	fixtures := []string{
		"determinism", "nograd", "floatcompare", "goroutine", "noprint",
		"obsregister", "badallow", "hotpathalloc", "poolownership", "atomicsdiscipline",
	}
	for _, name := range fixtures {
		name := name
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
			want := sortedKeys(scanExpectations(t, dir))
			got := sortedKeys(runFixture(t, root, name))
			if len(want) == 0 {
				t.Fatalf("fixture %s declares no expectations", name)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("findings mismatch\n got:\n  %s\nwant:\n  %s",
					strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}
		})
	}
}

// TestRepoClean asserts the real repository lints clean — the gate that
// keeps every future PR honest about the invariants.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	prog, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := analysis.Run(prog, analysis.Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("repository is not lint-clean: %d finding(s)", len(findings))
	}
}

// TestRuleTimings runs the full rule suite over the whole module once and
// asserts the analysis phase fits a total wall-time budget. The budget
// excludes loading: the Program is type-checked once and shared, so each
// rule is a plain AST/type-info walk — if a rule starts re-parsing or
// walking superlinearly, this trips long before CI times out.
func TestRuleTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	prog, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	_, times := analysis.RunTimed(prog, analysis.Analyzers())
	if len(times) != len(analysis.Analyzers()) {
		t.Fatalf("got %d rule timings, want %d", len(times), len(analysis.Analyzers()))
	}
	var total time.Duration
	for _, rt := range times {
		if rt.Duration < 0 {
			t.Errorf("rule %s reports negative duration %v", rt.Rule, rt.Duration)
		}
		t.Logf("%-22s %v", rt.Rule, rt.Duration)
		total += rt.Duration
	}
	const budget = 5 * time.Second
	if total > budget {
		t.Errorf("full rule suite took %v over the shared Program, budget %v", total, budget)
	}
}

// TestFixtureViolationsAreLineAccurate spot-checks that findings carry real
// positions (file:line pointing inside the fixture), which cmd/lint prints.
func TestFixtureViolationsAreLineAccurate(t *testing.T) {
	root := moduleRoot(t)
	prog, err := analysis.LoadDirs(root, []string{
		filepath.Join(root, "internal", "analysis", "testdata", "src", "determinism"),
	})
	if err != nil {
		t.Fatal(err)
	}
	findings := analysis.Run(prog, analysis.Analyzers())
	if len(findings) == 0 {
		t.Fatal("expected findings in determinism fixture")
	}
	for _, f := range findings {
		if f.Pos.Line <= 0 || !strings.HasSuffix(f.Pos.Filename, "determinism.go") {
			t.Errorf("finding has bad position: %s", f)
		}
		if !strings.Contains(f.String(), "determinism.go") {
			t.Errorf("String() lacks filename: %s", f)
		}
	}
}
