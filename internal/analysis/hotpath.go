package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-alloc serving discipline statically: a
// function annotated `//deepbat:hotpath` promises that its whole statically
// resolvable call closure performs no heap allocation on the paths it owns.
// The dynamic counterparts — testing.AllocsPerRun gates in cmd/bench and
// the poolcheck poisoner — only see the branches a benchmark happens to
// execute; this rule also covers cold branches (retry loops, pool misses,
// deadline sweeps), which is where allocation regressions hide.
//
// Flagged inside the closure:
//
//   - make / new builtins, and append (which may grow beyond capacity)
//   - slice and map literals, and composite literals that escape via &
//   - func literals (closure headers), goroutine launches, sort.Slice-style
//     closure takers
//   - interface boxing of non-pointer-shaped arguments at call sites, and
//     variadic calls (the argument slice is allocated per call)
//   - fmt.*, errors.New, string concatenation and string<->[]byte/[]rune
//     conversions, and a curated set of allocating stdlib constructors
//     (time.NewTimer/AfterFunc/NewTicker/After/Tick, strings/strconv
//     builders)
//   - map reads/writes/iteration and channel sends/receives — not
//     allocations, but synchronization and hashing hops the zero-alloc
//     serving path is designed around avoiding
//
// Allocations inside a panic(...) argument are exempt: the crash path has
// already left the hot path, and shape-check panics are how the kernels
// report contract violations.
//
// A `//lint:allow hotpath-alloc <reason>` directive at a call site both
// suppresses the line and cuts traversal into the callee — the waiver
// vouches for the subtree (e.g. a breaker-transition obs event on a cold
// branch), keeping waiver noise out of packages that are allowed to
// allocate in general. Dynamic calls (interface methods, func values) are
// not traversed: the rule is deliberately intraprocedural across such
// edges, and the AllocsPerRun benches remain the dynamic backstop.
type HotPathAlloc struct {
	facts map[*types.Func]*hotFact
	built bool
	// seen dedupes alloc findings by file:line — one offending line
	// produces one finding (and needs one waiver) even when several
	// detectors fire on it or several annotated roots reach it.
	seen map[string]bool
}

// hotFact summarizes one function body: its direct allocation sites and its
// unwaived, statically resolved call edges.
type hotFact struct {
	allocs  []allocSite
	callees []*types.Func
}

type allocSite struct {
	pos  token.Pos
	what string
}

func (*HotPathAlloc) Name() string { return "hotpath-alloc" }

// allocStdlib is the curated set of always-allocating stdlib functions the
// rule names explicitly (beyond package fmt, which is flagged wholesale).
var allocStdlib = map[string]map[string]bool{
	"errors": {"New": true, "Join": true},
	"time":   {"NewTimer": true, "NewTicker": true, "AfterFunc": true, "After": true, "Tick": true},
	"sort":   {"Slice": true, "SliceStable": true, "SliceIsSorted": true},
	"strings": {
		"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
		"Split": true, "SplitN": true, "Fields": true, "Map": true,
		"ToUpper": true, "ToLower": true, "Clone": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "AppendInt": true,
		"AppendFloat": true, "AppendQuote": true,
	},
}

// pointerShaped reports whether values of t fit in an interface's data word
// without allocating (pointers, channels, maps, funcs, unsafe.Pointer).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isInterface reports whether t is an interface type.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// buildFacts computes per-function allocation summaries for every declared
// function in the program, honoring waived call sites (the edge is cut and
// the line suppressed) and panic arguments (crash path, exempt).
func (hp *HotPathAlloc) buildFacts(prog *Program) {
	hp.built = true
	hp.facts = make(map[*types.Func]*hotFact, len(prog.decls))
	hp.seen = make(map[string]bool)
	for fn, fd := range prog.decls {
		if fd.Body == nil {
			continue
		}
		hp.facts[fn] = hp.summarize(prog, prog.declPkg[fn], fd)
	}
}

// summarize builds the hotFact for one function body.
func (hp *HotPathAlloc) summarize(prog *Program, pkg *Package, fd *ast.FuncDecl) *hotFact {
	fact := &hotFact{}
	info := pkg.Info

	// Pass 1: source intervals exempt from the scan — waived call
	// expressions (the directive vouches for the whole call, including
	// multi-line argument lists) and panic arguments.
	type interval struct{ lo, hi token.Pos }
	var exempt []interval
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				exempt = append(exempt, interval{call.Pos(), call.End()})
				return true
			}
		}
		if prog.allowedAt(prog.Fset.Position(call.Pos()), "hotpath-alloc") {
			exempt = append(exempt, interval{call.Pos(), call.End()})
		}
		return true
	})
	exempted := func(pos token.Pos) bool {
		for _, iv := range exempt {
			if iv.lo <= pos && pos < iv.hi {
				return true
			}
		}
		return false
	}
	flag := func(pos token.Pos, what string) {
		if !exempted(pos) {
			fact.allocs = append(fact.allocs, allocSite{pos, what})
		}
	}

	// Pass 2: direct allocation sites and call edges.
	seenCallee := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			hp.scanCall(prog, info, n, flag, func(callee *types.Func) {
				if !exempted(n.Pos()) && !seenCallee[callee] {
					seenCallee[callee] = true
					fact.callees = append(fact.callees, callee)
				}
			})
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(n.Pos(), "composite literal escapes to the heap via &")
				}
			}
			if n.Op == token.ARROW {
				flag(n.Pos(), "channel receive is a synchronization hop the zero-alloc path avoids")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				flag(n.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			flag(n.Pos(), "func literal allocates a closure when it captures or escapes")
			return false // inner body is the closure's problem, not this frame's
		case *ast.GoStmt:
			flag(n.Pos(), "goroutine launch allocates a stack")
		case *ast.SendStmt:
			flag(n.Pos(), "channel send is a synchronization hop the zero-alloc path avoids")
		case *ast.IndexExpr:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				flag(n.Pos(), "map access hashes on the hot path")
			}
		case *ast.RangeStmt:
			switch info.TypeOf(n.X).Underlying().(type) {
			case *types.Map:
				flag(n.Pos(), "map iteration on the hot path")
			case *types.Chan:
				flag(n.Pos(), "channel range is a synchronization hop the zero-alloc path avoids")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				t := info.TypeOf(n)
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv, ok := info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
						flag(n.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		return true
	})
	return fact
}

// scanCall handles one call expression: builtin allocators, conversions,
// curated stdlib allocators, variadic argument slices, interface boxing,
// and the static call edge.
func (hp *HotPathAlloc) scanCall(prog *Program, info *types.Info, call *ast.CallExpr,
	flag func(token.Pos, string), edge func(*types.Func)) {
	// Type conversions: string <-> []byte/[]rune copy their contents.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		from := info.TypeOf(call.Args[0])
		to := tv.Type
		if from != nil && isStringByteConv(from, to) {
			flag(call.Pos(), "string/byte-slice conversion copies and allocates")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may grow beyond capacity and allocate")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch path := fn.Pkg().Path(); {
		case path == "fmt":
			flag(call.Pos(), "fmt."+fn.Name()+" formats through reflection and allocates")
		case allocStdlib[path] != nil && allocStdlib[path][fn.Name()]:
			flag(call.Pos(), path+"."+fn.Name()+" allocates")
		}
	}
	// Variadic calls allocate the argument slice unless spread (xs...).
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig != nil {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			flag(call.Pos(), "variadic call allocates its argument slice")
		}
		// Interface boxing: a non-pointer-shaped concrete argument passed to
		// an interface parameter is boxed on the heap.
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var param types.Type
			switch {
			case i < np-1 || (!sig.Variadic() && i < np):
				param = sig.Params().At(i).Type()
			case sig.Variadic() && call.Ellipsis == token.NoPos:
				if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
					param = s.Elem()
				}
			}
			at := info.TypeOf(arg)
			if param != nil && at != nil && isInterface(param) && !isInterface(at) &&
				!pointerShaped(at) && !types.Identical(at, types.Typ[types.UntypedNil]) {
				flag(arg.Pos(), "interface boxing of a non-pointer value allocates")
			}
		}
	}
	// The static call edge, for closure traversal.
	if fn != nil {
		if _, ok := prog.decls[fn]; ok {
			edge(fn)
		}
	}
}

// isStringByteConv reports whether the conversion from -> to copies between
// string and []byte/[]rune representations.
func isStringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
			e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(from) && isBytes(to)) || (isBytes(from) && isStr(to))
}

func (hp *HotPathAlloc) Analyze(prog *Program, pkg *Package) []Finding {
	if !hp.built {
		hp.buildFacts(prog)
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !funcHasAnnotation(fd, "deepbat:hotpath") {
				continue
			}
			root, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if root == nil {
				continue
			}
			findings = append(findings, hp.check(prog, root)...)
		}
	}
	return findings
}

// check walks the unwaived call closure from the annotated root and reports
// every reachable allocation site, with the call path that reaches it.
func (hp *HotPathAlloc) check(prog *Program, root *types.Func) []Finding {
	var findings []Finding
	parent := map[*types.Func]*types.Func{root: nil}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fact := hp.facts[fn]
		if fact == nil {
			continue
		}
		for _, a := range fact.allocs {
			pos := prog.Fset.Position(a.pos)
			lineKey := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if hp.seen[lineKey] {
				continue
			}
			hp.seen[lineKey] = true
			via := ""
			if fn != root {
				via = " (reached via " + callPath(parent, fn) + ")"
			}
			findings = append(findings, Finding{
				Pos:  pos,
				Rule: "hotpath-alloc",
				Msg: fmt.Sprintf("%s, inside the //deepbat:hotpath closure of %s%s",
					a.what, root.Name(), via),
			})
		}
		for _, callee := range fact.callees {
			if _, ok := parent[callee]; !ok {
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return findings
}

// callPath renders the BFS path root -> ... -> fn (root excluded).
func callPath(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil && parent[f] != nil; f = parent[f] {
		names = append(names, f.Name())
	}
	out := ""
	for i := len(names) - 1; i >= 0; i-- {
		if out != "" {
			out += " -> "
		}
		out += names[i]
	}
	return out
}
