package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoGrad enforces tape-free inference: a function annotated
// `//deepbat:nograd` promises that no autograd tape is built while it runs.
// The analyzer walks the module-wide static call graph from every annotated
// function and reports each tape-building tensor operation that is reachable
// without passing through a tensor.NoGrad closure. Calls lexically inside a
// `tensor.NoGrad(func() { ... })` literal are dynamically guarded (the tape
// is disabled for everything beneath them), so traversal does not descend
// through them.
//
// The rule catches both the direct mistake (an annotated function calling
// tensor.MatMul outside NoGrad) and the indirect one (an annotated function
// calling an unannotated helper that builds graph nodes).
type NoGrad struct {
	facts map[*types.Func]*nogradFact // lazily built per program
	built bool
}

// graphOps are the tensor-package entry points that allocate tape state
// (parents, backward closures, Grad buffers) when called in grad mode.
// tensor.New/FromData/FromScalar/Randn/Full/Clone/ShareData construct leaf
// tensors with no tape and are deliberately absent.
var graphOps = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "AddRow": true, "Scale": true,
	"AddScalar": true, "MatMul": true, "Transpose": true, "ReLU": true,
	"Sigmoid": true, "Tanh": true, "Softmax": true, "LayerNorm": true,
	"SumAll": true, "MeanAll": true, "MeanRows": true, "ConcatCols": true,
	"NarrowCols": true, "Reshape": true, "Huber": true, "MAPELoss": true,
	"MSE": true, "Backward": true,
	// Methods that arm gradient storage on a tensor.
	"RequireGrad": true,
}

// nogradFact summarizes one function body for the reachability pass.
type nogradFact struct {
	// graphCalls are tape-building tensor calls NOT guarded by an enclosing
	// tensor.NoGrad closure within this function.
	graphCalls []graphCall
	// callees are statically resolved calls (with bodies in the program)
	// NOT guarded by an enclosing tensor.NoGrad closure.
	callees []*types.Func
}

type graphCall struct {
	pos  token.Pos
	name string
}

func (*NoGrad) Name() string { return "nograd-hygiene" }

// tensorPath returns the import path of the tensor package for this module.
func tensorPath(prog *Program) string { return prog.Module + "/internal/tensor" }

// isNoGradCall reports whether call invokes tensor.NoGrad.
func isNoGradCall(prog *Program, info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == tensorPath(prog) && fn.Name() == "NoGrad"
}

// buildFacts computes per-function summaries for every declared function in
// the program.
func (ng *NoGrad) buildFacts(prog *Program) {
	ng.facts = make(map[*types.Func]*nogradFact)
	tpath := tensorPath(prog)
	for fn, fd := range prog.decls {
		if fd.Body == nil {
			continue
		}
		pkg := prog.declPkg[fn]
		fact := &nogradFact{}

		// Pass 1: the source intervals of func literals passed to
		// tensor.NoGrad — everything inside them is dynamically guarded.
		type interval struct{ lo, hi token.Pos }
		var guarded []interval
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isNoGradCall(prog, pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					guarded = append(guarded, interval{lit.Pos(), lit.End()})
				}
			}
			return true
		})
		inGuard := func(pos token.Pos) bool {
			for _, iv := range guarded {
				if iv.lo <= pos && pos < iv.hi {
					return true
				}
			}
			return false
		}

		// Pass 2: unguarded graph ops and call edges.
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || inGuard(call.Pos()) {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == tpath && graphOps[callee.Name()] {
				fact.graphCalls = append(fact.graphCalls, graphCall{call.Pos(), callee.Name()})
				return true
			}
			if _, ok := prog.decls[callee]; ok && !seen[callee] {
				seen[callee] = true
				fact.callees = append(fact.callees, callee)
			}
			return true
		})
		ng.facts[fn] = fact
	}
	ng.built = true
}

func (ng *NoGrad) Analyze(prog *Program, pkg *Package) []Finding {
	if !ng.built {
		ng.buildFacts(prog)
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !funcHasAnnotation(fd, "deepbat:nograd") {
				continue
			}
			root, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if root == nil {
				continue
			}
			findings = append(findings, ng.check(prog, root)...)
		}
	}
	return findings
}

// check walks the unguarded call graph from the annotated root and reports
// every reachable tape-building operation.
func (ng *NoGrad) check(prog *Program, root *types.Func) []Finding {
	var findings []Finding
	visited := map[*types.Func]bool{root: true}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fact := ng.facts[fn]
		if fact == nil {
			continue
		}
		for _, gc := range fact.graphCalls {
			via := ""
			if fn != root {
				via = fmt.Sprintf(" (reached via %s)", fn.Name())
			}
			findings = append(findings, Finding{
				Pos:  prog.Fset.Position(gc.pos),
				Rule: "nograd-hygiene",
				Msg: fmt.Sprintf("tensor.%s builds the autograd tape but is reachable from //deepbat:nograd function %s outside tensor.NoGrad%s",
					gc.name, root.Name(), via),
			})
		}
		for _, callee := range fact.callees {
			if !visited[callee] {
				visited[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return findings
}
