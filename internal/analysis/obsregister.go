package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ObsRegister enforces the metric-registration contract of internal/obs in
// library code: a name collision (same series name registered at a different
// kind or bucket layout) must surface as an error the caller can return, not
// a panic. The Must* convenience wrappers panic on misuse and are therefore
// reserved for cmd/, examples/, and test code — library packages must use
// the error-returning Counter/Gauge/Histogram methods.
type ObsRegister struct{}

func (*ObsRegister) Name() string { return "obs-register" }

func (or *ObsRegister) Analyze(prog *Program, pkg *Package) []Finding {
	if !prog.inLibraryScope(pkg) {
		return nil
	}
	obsPath := prog.Module + "/internal/obs"
	if pkg.Path == obsPath {
		// internal/obs declares the wrappers; their doc comments state the
		// contract this rule enforces everywhere else.
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "Must") {
				return true
			}
			findings = append(findings, Finding{
				Pos:  prog.Fset.Position(call.Pos()),
				Rule: "obs-register",
				Msg: fmt.Sprintf("obs.Registry.%s panics on registration misuse; library code must use the error-returning %s",
					fn.Name(), strings.TrimPrefix(fn.Name(), "Must")),
			})
			return true
		})
	}
	return findings
}
