// Package analysis implements deepbatlint, the repo-specific static-analysis
// pass that machine-checks the invariants the reproduction depends on:
// bit-determinism of the numeric core, tape-free inference, exact-float
// hygiene, goroutine join discipline, and silence of library packages. It is
// built entirely on the standard library (go/parser, go/ast, go/types) —
// honoring the repo's stdlib-only rule — and is driven by cmd/lint, which is
// wired into `make lint` / `make verify`.
//
// Rules (see DESIGN.md "Enforced invariants" for the rationale):
//
//   - determinism: no wall-clock reads or global math/rand in the numeric
//     core packages (tensor, nn, opt, surrogate, qsim, trace, arrival,
//     stats, batchopt).
//   - nograd-hygiene: no autograd-tape-building tensor operation reachable
//     from a function annotated `//deepbat:nograd` outside a tensor.NoGrad
//     scope.
//   - floatcompare: no ==/!= between floating-point operands outside
//     approved tolerance helpers (comparison against an exact constant zero
//     is permitted — it guards divisions, not numeric equality).
//   - goroutine-discipline: every `go` statement in a library package must
//     be joined (sync.WaitGroup.Wait, channel receive/range, or select) in
//     the same function.
//   - noprint: library packages under internal/ never write to the
//     process-global streams (fmt.Print*, package-level log, os.Stdout/err,
//     builtin print/println); telemetry belongs in internal/obs.
//   - obs-register: library code registers internal/obs metrics through the
//     error-returning methods, never the panicking Must* wrappers —
//     duplicate registration must error, not crash the process.
//
// Deliberate exceptions are documented in the source with
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line directly above it. A directive without
// both a rule and a reason is itself reported (rule "directive"), so
// exemptions can never be silent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. deepbat/internal/tensor
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages loaded for one lint run, plus the
// indexes analyzers share (function declarations across the whole module).
type Program struct {
	Fset     *token.FileSet
	Module   string // module path from go.mod
	Packages []*Package

	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package
}

// Analyzer is one lint rule. Analyze is called once per loaded package and
// may consult the whole Program (the nograd-hygiene rule walks the
// module-wide call graph).
type Analyzer interface {
	Name() string
	Analyze(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full deepbatlint rule set.
func Analyzers() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&NoGrad{},
		&FloatCompare{},
		&Goroutine{},
		&NoPrint{},
		&ObsRegister{},
	}
}

// buildIndexes populates the cross-package function-declaration maps.
func (p *Program) buildIndexes() {
	p.decls = make(map[*types.Func]*ast.FuncDecl)
	p.declPkg = make(map[*types.Func]*Package)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = fd
					p.declPkg[fn] = pkg
				}
			}
		}
	}
}

// FuncDecl returns the syntax and owning package for a function object
// declared anywhere in the loaded program, or (nil, nil) for functions
// outside it (stdlib, interface methods).
func (p *Program) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return p.decls[fn], p.declPkg[fn]
}

// inLibraryScope reports whether pkg is library code: the module root
// facade or anything under internal/. cmd/ and examples/ are user-facing
// and exempt from the library-only rules.
func (p *Program) inLibraryScope(pkg *Package) bool {
	return pkg.Path == p.Module || strings.HasPrefix(pkg.Path, p.Module+"/internal/")
}

// calleeFunc resolves the static callee of a call expression, or nil when
// the callee is not a plain function or method (conversion, func value,
// builtin, interface method lookup still yields the interface *types.Func —
// callers that need a body must check FuncDecl).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// hasFileDirective reports whether any comment in any file of the package
// is exactly the given directive (e.g. "deepbat:deterministic").
func (pkg *Package) hasFileDirective(directive string) bool {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
					return true
				}
			}
		}
	}
	return false
}

// funcHasAnnotation reports whether the declaration's doc comment carries
// the given directive (e.g. "deepbat:nograd").
func funcHasAnnotation(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// allowKey identifies one (file, line, rule) suppression.
type allowKey struct {
	file string
	line int
	rule string
}

// collectAllows parses every //lint:allow directive in the program. It
// returns the suppression set and findings for malformed directives (missing
// rule or reason).
func collectAllows(prog *Program) (map[allowKey]bool, []Finding) {
	allows := make(map[allowKey]bool)
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:  pos,
							Rule: "directive",
							Msg:  "malformed //lint:allow: need `//lint:allow <rule> <reason>`",
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// Run executes the analyzers over every loaded package, filters findings
// through //lint:allow directives, and returns the survivors sorted by
// position. Malformed directives are themselves findings.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	allows, findings := collectAllows(prog)
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			for _, f := range a.Analyze(prog, pkg) {
				// A directive on the finding's line or the line directly
				// above suppresses it.
				if allows[allowKey{f.Pos.Filename, f.Pos.Line, f.Rule}] ||
					allows[allowKey{f.Pos.Filename, f.Pos.Line - 1, f.Rule}] {
					continue
				}
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}
