// Package analysis implements deepbatlint, the repo-specific static-analysis
// pass that machine-checks the invariants the reproduction depends on:
// bit-determinism of the numeric core, tape-free inference, exact-float
// hygiene, goroutine join discipline, and silence of library packages. It is
// built entirely on the standard library (go/parser, go/ast, go/types) —
// honoring the repo's stdlib-only rule — and is driven by cmd/lint, which is
// wired into `make lint` / `make verify`.
//
// Rules (see DESIGN.md "Enforced invariants" for the rationale):
//
//   - determinism: no wall-clock reads or global math/rand in the numeric
//     core packages (tensor, nn, opt, surrogate, qsim, trace, arrival,
//     stats, batchopt).
//   - nograd-hygiene: no autograd-tape-building tensor operation reachable
//     from a function annotated `//deepbat:nograd` outside a tensor.NoGrad
//     scope.
//   - floatcompare: no ==/!= between floating-point operands outside
//     approved tolerance helpers (comparison against an exact constant zero
//     is permitted — it guards divisions, not numeric equality).
//   - goroutine-discipline: every `go` statement in a library package must
//     be joined (sync.WaitGroup.Wait, channel receive/range, or select) in
//     the same function.
//   - noprint: library packages under internal/ never write to the
//     process-global streams (fmt.Print*, package-level log, os.Stdout/err,
//     builtin print/println); telemetry belongs in internal/obs.
//   - obs-register: library code registers internal/obs metrics through the
//     error-returning methods, never the panicking Must* wrappers —
//     duplicate registration must error, not crash the process.
//   - hotpath-alloc: the call closure of a function annotated
//     `//deepbat:hotpath` must be allocation-free: no make/new, no append,
//     no escaping composite literals, no closures or goroutine launches, no
//     interface boxing, no fmt/string building, no map or channel
//     operations. The dynamic counterpart is the AllocsPerRun gates in
//     cmd/bench; this rule also covers the cold branches a benchmark never
//     exercises.
//   - pool-ownership: values obtained from a pool Get (tensor.ScratchPool,
//     the gateway waiter/batch free-lists) are tracked through the
//     function: double-Put, use-after-Put, and storing a live pooled value
//     to the heap are errors — the static counterpart of the poolcheck
//     build tag's runtime poisoning.
//   - atomics-discipline: a struct field touched through function-style
//     sync/atomic calls anywhere in the module must never be read or
//     written plainly elsewhere; structs containing sync/atomic state must
//     not be copied; and `//deepbat:hotpath` code must not acquire a lock
//     its non-hotpath caller already holds (two-level lock-order check).
//
// Deliberate exceptions are documented in the source with
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line directly above it. A directive without
// both a rule and a reason is itself reported (rule "directive"), as is a
// directive naming a rule that does not exist — exemptions can never be
// silent or silently stale. One comment may carry several directives
// (`//lint:allow ruleA why //lint:allow ruleB why`).
//
// For the call-graph rules (hotpath-alloc), an allow directive at a call
// site both suppresses findings on that line and cuts traversal into the
// callee: the waiver vouches for the whole subtree behind the call, which
// keeps waiver noise out of callee packages (internal/obs may allocate;
// the hot path documents, at its own call sites, why calling into it is
// acceptable).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. deepbat/internal/tensor
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages loaded for one lint run, plus the
// indexes analyzers share (function declarations across the whole module).
// A Program is loaded and type-checked once and then shared by every rule
// in the run — rules must not re-parse (see LoadModule / LoadDirs).
type Program struct {
	Fset     *token.FileSet
	Module   string // module path from go.mod
	Packages []*Package

	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package

	// allows is the parsed //lint:allow suppression set, built once per
	// program by buildAllows (Run does it; analyzers that cut call-graph
	// edges at waived call sites query it through allowedAt).
	allows        map[allowKey]bool
	badDirectives []Finding
	allowsBuilt   bool
}

// Analyzer is one lint rule. Analyze is called once per loaded package and
// may consult the whole Program (the nograd-hygiene rule walks the
// module-wide call graph).
type Analyzer interface {
	Name() string
	Analyze(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full deepbatlint rule set.
func Analyzers() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&NoGrad{},
		&FloatCompare{},
		&Goroutine{},
		&NoPrint{},
		&ObsRegister{},
		&HotPathAlloc{},
		&PoolOwnership{},
		&AtomicsDiscipline{},
	}
}

// buildIndexes populates the cross-package function-declaration maps.
func (p *Program) buildIndexes() {
	p.decls = make(map[*types.Func]*ast.FuncDecl)
	p.declPkg = make(map[*types.Func]*Package)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = fd
					p.declPkg[fn] = pkg
				}
			}
		}
	}
}

// FuncDecl returns the syntax and owning package for a function object
// declared anywhere in the loaded program, or (nil, nil) for functions
// outside it (stdlib, interface methods).
func (p *Program) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return p.decls[fn], p.declPkg[fn]
}

// inLibraryScope reports whether pkg is library code: the module root
// facade or anything under internal/. cmd/ and examples/ are user-facing
// and exempt from the library-only rules.
func (p *Program) inLibraryScope(pkg *Package) bool {
	return pkg.Path == p.Module || strings.HasPrefix(pkg.Path, p.Module+"/internal/")
}

// calleeFunc resolves the static callee of a call expression, or nil when
// the callee is not a plain function or method (conversion, func value,
// builtin, interface method lookup still yields the interface *types.Func —
// callers that need a body must check FuncDecl).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// hasFileDirective reports whether any comment in any file of the package
// is exactly the given directive (e.g. "deepbat:deterministic").
func (pkg *Package) hasFileDirective(directive string) bool {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
					return true
				}
			}
		}
	}
	return false
}

// funcHasAnnotation reports whether the declaration's doc comment carries
// the given directive (e.g. "deepbat:nograd").
func funcHasAnnotation(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// allowKey identifies one (file, line, rule) suppression.
type allowKey struct {
	file string
	line int
	rule string
}

// KnownRules returns the names every //lint:allow directive may legally
// reference: the full rule set plus "directive" itself. Validation always
// uses the full set, even when a run selects a rule subset — a waiver for an
// unselected rule is not an unknown rule.
func KnownRules() map[string]bool {
	known := map[string]bool{"directive": true}
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	return known
}

// buildAllows parses every //lint:allow directive in the program into the
// suppression set, recording malformed directives (missing rule or reason)
// and directives naming unknown rules as findings. One comment may carry
// several directives; each needs its own rule and reason. Idempotent.
func (p *Program) buildAllows() {
	if p.allowsBuilt {
		return
	}
	p.allowsBuilt = true
	p.allows = make(map[allowKey]bool)
	known := KnownRules()
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					// Only a comment that starts with the marker is a
					// directive; prose that merely mentions //lint:allow
					// mid-sentence is not parsed.
					if !strings.HasPrefix(c.Text, "//lint:allow") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					// Split the comment on directive markers: the text after
					// each marker up to the next marker is one directive.
					parts := strings.Split(c.Text, "//lint:allow")
					for _, part := range parts[1:] {
						fields := strings.Fields(part)
						if len(fields) < 2 {
							p.badDirectives = append(p.badDirectives, Finding{
								Pos:  pos,
								Rule: "directive",
								Msg:  "malformed //lint:allow: need `//lint:allow <rule> <reason>`",
							})
							continue
						}
						if !known[fields[0]] {
							p.badDirectives = append(p.badDirectives, Finding{
								Pos:  pos,
								Rule: "directive",
								Msg:  fmt.Sprintf("//lint:allow names unknown rule %q; a stale or misspelled waiver would silently suppress nothing", fields[0]),
							})
							continue
						}
						p.allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
					}
				}
			}
		}
	}
}

// allowedAt reports whether a finding of the given rule at pos is waived by
// a directive on its line or the line directly above. Analyzers that walk
// call graphs use this to cut traversal at waived call sites.
func (p *Program) allowedAt(pos token.Position, rule string) bool {
	p.buildAllows()
	return p.allows[allowKey{pos.Filename, pos.Line, rule}] ||
		p.allows[allowKey{pos.Filename, pos.Line - 1, rule}]
}

// RuleTime is the wall time one rule spent analyzing the whole program
// (type-checking is shared and excluded — the program is loaded once per
// run, not once per rule).
type RuleTime struct {
	Rule     string
	Duration time.Duration
}

// Run executes the analyzers over every loaded package, filters findings
// through //lint:allow directives, and returns the survivors sorted by
// position. Malformed directives are themselves findings.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	findings, _ := RunTimed(prog, analyzers)
	return findings
}

// RunTimed is Run plus a per-rule wall-time report, in analyzer order.
func RunTimed(prog *Program, analyzers []Analyzer) ([]Finding, []RuleTime) {
	prog.buildAllows()
	findings := append([]Finding(nil), prog.badDirectives...)
	times := make([]RuleTime, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range prog.Packages {
			for _, f := range a.Analyze(prog, pkg) {
				if prog.allowedAt(f.Pos, f.Rule) {
					continue
				}
				findings = append(findings, f)
			}
		}
		times = append(times, RuleTime{Rule: a.Name(), Duration: time.Since(start)})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, times
}
