package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the bit-reproducibility contract of the numeric
// core: training and evaluation must be pure functions of their inputs and
// seeds. Wall-clock reads and the global math/rand source both smuggle in
// ambient state — one stray call silently breaks the cross-worker-count
// determinism PR 1 established and the paper's calibration claims rest on.
//
// Scope: packages whose import path contains one of the core package names
// (tensor, nn, opt, surrogate, qsim, trace, arrival, stats, batchopt) as a
// path element, plus any package carrying a `//deepbat:deterministic` file
// directive. The real-time gateway and the cmd/ layer are deliberately out
// of scope: they exist to bridge wall-clock traffic into the deterministic
// core.
type Determinism struct{}

// deterministicCore names the numeric-core packages (matched as path
// elements, so internal/opt is covered but internal/optimizer is not —
// the optimizer searches over already-deterministic predictions).
var deterministicCore = map[string]bool{
	"tensor":    true,
	"nn":        true,
	"opt":       true,
	"surrogate": true,
	"qsim":      true,
	"trace":     true,
	"arrival":   true,
	"stats":     true,
	"batchopt":  true,
}

// bannedTimeFuncs are the package time functions that read or schedule
// against the wall clock.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// allowedRandFuncs are the package-level math/rand functions that do NOT
// touch the global source: they construct explicit, seedable generators.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipfV2":  true, // defensive; v2 keeps the name NewZipf
}

func (*Determinism) Name() string { return "determinism" }

func (d *Determinism) inScope(pkg *Package) bool {
	for _, elem := range strings.Split(pkg.Path, "/") {
		if deterministicCore[elem] {
			return true
		}
	}
	return pkg.hasFileDirective("deepbat:deterministic")
}

func (d *Determinism) Analyze(prog *Program, pkg *Package) []Finding {
	if !d.inScope(pkg) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					findings = append(findings, Finding{
						Pos:  prog.Fset.Position(sel.Pos()),
						Rule: "determinism",
						Msg:  fmt.Sprintf("time.%s reads the wall clock; deterministic packages must take time as data (pass timestamps/durations in)", fn.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && !allowedRandFuncs[fn.Name()] {
					findings = append(findings, Finding{
						Pos:  prog.Fset.Position(sel.Pos()),
						Rule: "determinism",
						Msg:  fmt.Sprintf("rand.%s uses the shared global source; thread a seeded *rand.Rand instead", fn.Name()),
					})
				}
			}
			return true
		})
	}
	return findings
}
