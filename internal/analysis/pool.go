package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolOwnership tracks values obtained from pool Get calls through an
// abstract interpretation of each function body: every local bound to a
// pooled value carries a state (live or released), branches fork and merge
// the state, and loops run their body twice so cross-iteration misuse is
// seen. Three classes of misuse are errors:
//
//   - double Put: releasing the same pooled value twice (including a
//     deferred Put racing an explicit one);
//   - use after Put: reading, passing, or storing through a pooled value
//     after it was returned to its pool;
//   - heap store: assigning a live pooled value to a field, global, map or
//     slice element, or sending it on a channel — pooled storage must not
//     outlive its Put, so escapes must either transfer ownership via
//     return or carry a reasoned //lint:allow waiver.
//
// Pools are recognized structurally: Get/Put methods on a named type whose
// name ends in "Pool" (tensor.ScratchPool, sync.Pool, fixture pools), plus
// the gateway free-list functions by name (getWaiterLocked/grabSliceLocked
// acquire; putWaiter/recycleBatch/recycleBatchLocked release). Function
// parameters are not tracked — pool internals and helpers that receive a
// pooled value from their caller manage lifetimes the caller owns.
// Returning a pooled value transfers ownership out of the function and ends
// tracking, as does capture by a closure or wrapping in a composite
// literal (ownership is then too indirect for an intraprocedural check).
type PoolOwnership struct{}

// Name implements Analyzer.
func (*PoolOwnership) Name() string { return "pool-ownership" }

// poolGetFuncs and poolPutFuncs name the gateway free-list helpers that act
// as pool operations without living on a *Pool-suffixed type.
var poolGetFuncs = map[string]bool{
	"getWaiterLocked": true,
	"grabSliceLocked": true,
}

var poolPutFuncs = map[string]bool{
	"putWaiter":          true,
	"recycleBatch":       true,
	"recycleBatchLocked": true,
}

const (
	poolNone = iota
	poolGet
	poolPut
)

// classifyPoolCall reports whether call is a pool acquire, a pool release,
// or neither.
func classifyPoolCall(info *types.Info, call *ast.CallExpr) int {
	fn := calleeFunc(info, call)
	if fn == nil {
		return poolNone
	}
	name := fn.Name()
	if poolGetFuncs[name] {
		return poolGet
	}
	if poolPutFuncs[name] {
		return poolPut
	}
	if name != "Get" && name != "Put" {
		return poolNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return poolNone
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Pool") {
		return poolNone
	}
	if name == "Get" {
		return poolGet
	}
	return poolPut
}

const (
	cellLive int8 = iota
	cellReleased
)

// pstate is the abstract state at one program point: which locals hold
// pooled values (vars maps each to a cell id; aliases share a cell) and
// each cell's lifecycle state.
type pstate struct {
	vars   map[*types.Var]int
	status map[int]int8
}

func newPstate() *pstate {
	return &pstate{vars: make(map[*types.Var]int), status: make(map[int]int8)}
}

func (s *pstate) clone() *pstate {
	c := newPstate()
	for v, id := range s.vars {
		c.vars[v] = id
	}
	for id, st := range s.status {
		c.status[id] = st
	}
	return c
}

// merge folds another branch's state into s: tracked vars are unioned and a
// cell released on any path is treated as released (conservative for
// use-after-put, which is the dangerous direction).
func (s *pstate) merge(o *pstate) {
	for v, id := range o.vars {
		if _, ok := s.vars[v]; !ok {
			s.vars[v] = id
		}
	}
	for id, st := range o.status {
		if st == cellReleased || s.status[id] == cellReleased {
			s.status[id] = cellReleased
		} else {
			s.status[id] = st
		}
	}
}

// deferredPut is a pool release registered with defer, applied when the
// function body has been walked.
type deferredPut struct {
	pos  token.Pos
	args []*types.Var
}

// poolWalker interprets one function body.
type poolWalker struct {
	prog     *Program
	pkg      *Package
	nextCell int
	deferred []deferredPut
	seen     map[string]bool // file:line:kind dedupe (loops walk bodies twice)
	findings []Finding
}

// Analyze implements Analyzer.
func (r *PoolOwnership) Analyze(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &poolWalker{prog: prog, pkg: pkg, seen: make(map[string]bool)}
			st := newPstate()
			w.stmts(fd.Body.List, st)
			// Deferred puts run at return, in LIFO order, after every
			// explicit statement: an explicit Put of the same value is a
			// double release.
			for i := len(w.deferred) - 1; i >= 0; i-- {
				d := w.deferred[i]
				for _, v := range d.args {
					w.putVar(v, d.pos, st)
				}
			}
			out = append(out, w.findings...)
		}
	}
	return out
}

func (w *poolWalker) report(pos token.Pos, kind, format string, args ...interface{}) {
	p := w.prog.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, kind)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.findings = append(w.findings, Finding{
		Pos:  p,
		Rule: "pool-ownership",
		Msg:  fmt.Sprintf(format, args...),
	})
}

// localVar resolves an identifier defined or used as a local variable.
func (w *poolWalker) localVar(id *ast.Ident) *types.Var {
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		obj = w.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// tracked returns the variable behind id if it currently holds a pooled
// value.
func (w *poolWalker) tracked(id *ast.Ident, st *pstate) (*types.Var, bool) {
	v := w.localVar(id)
	if v == nil {
		return nil, false
	}
	_, ok := st.vars[v]
	return v, ok
}

// useCheck flags a read of a pooled value after its Put.
func (w *poolWalker) useCheck(id *ast.Ident, st *pstate) {
	if v, ok := w.tracked(id, st); ok && st.status[st.vars[v]] == cellReleased {
		w.report(id.Pos(), "use", "pooled value %q used after Put", v.Name())
	}
}

// putVar transitions a variable's cell to released, flagging a double Put.
func (w *poolWalker) putVar(v *types.Var, pos token.Pos, st *pstate) {
	id, ok := st.vars[v]
	if !ok {
		return
	}
	if st.status[id] == cellReleased {
		w.report(pos, "double", "double Put of pooled value %q", v.Name())
		return
	}
	st.status[id] = cellReleased
}

// bind starts tracking v as a fresh live pooled value.
func (w *poolWalker) bind(v *types.Var, st *pstate) {
	w.nextCell++
	st.vars[v] = w.nextCell
	st.status[w.nextCell] = cellLive
}

// unbind stops tracking v (ownership transferred or obscured).
func (w *poolWalker) unbind(v *types.Var, st *pstate) {
	delete(st.vars, v)
}

// releaseAndUnbind use-checks then unbinds every tracked identifier inside
// e — for returns, composite-literal wrapping, and closure capture, where
// ownership leaves the intraprocedural frame.
func (w *poolWalker) releaseAndUnbind(e ast.Node, st *pstate) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, tracked := w.tracked(id, st); tracked {
				w.useCheck(id, st)
				w.unbind(v, st)
			}
		}
		return true
	})
}

// scanExpr walks an expression for pool releases, use-after-put reads,
// closure captures, and composite-literal wrapping.
func (w *poolWalker) scanExpr(e ast.Expr, st *pstate) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if classifyPoolCall(w.pkg.Info, n) == poolPut {
				w.handlePut(n, st)
				return false
			}
			return true
		case *ast.FuncLit:
			// A closure capturing a pooled value may use or release it on
			// any schedule; tracking ends at the capture.
			w.releaseAndUnbind(n.Body, st)
			return false
		case *ast.CompositeLit:
			w.releaseAndUnbind(n, st)
			return false
		case *ast.Ident:
			w.useCheck(n, st)
		}
		return true
	})
}

// handlePut processes one pool release call: tracked argument identifiers
// transition to released (double release is flagged), everything else is
// scanned normally.
func (w *poolWalker) handlePut(call *ast.CallExpr, st *pstate) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X, st)
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, tracked := w.tracked(id, st); tracked {
				if st.status[st.vars[v]] == cellReleased {
					w.report(call.Pos(), "double", "double Put of pooled value %q", v.Name())
				} else {
					st.status[st.vars[v]] = cellReleased
				}
				continue
			}
		}
		w.scanExpr(arg, st)
	}
}

// heapLHS reports whether an assignment target lives beyond the current
// frame: a field, dereference, element, or package-level variable.
func (w *poolWalker) heapLHS(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		v := w.localVar(lhs)
		return v != nil && v.Parent() == v.Pkg().Scope()
	}
	return false
}

// assign handles one assignment or short declaration.
func (w *poolWalker) assign(lhs, rhs []ast.Expr, pos token.Pos, st *pstate) {
	if len(lhs) == 1 && len(rhs) == 1 {
		l, r := ast.Unparen(lhs[0]), ast.Unparen(rhs[0])
		if call, ok := r.(*ast.CallExpr); ok && classifyPoolCall(w.pkg.Info, call) == poolGet {
			w.scanExpr(call, st)
			if id, ok := l.(*ast.Ident); ok {
				if v := w.localVar(id); v != nil {
					w.bind(v, st)
					return
				}
				return // blank identifier: result dropped back to the pool's problem
			}
			w.scanExpr(l, st)
			if w.heapLHS(l) {
				w.report(pos, "store", "pool Get result stored directly to a heap location; pooled storage must stay frame-local until Put")
			}
			return
		}
		if rid, ok := r.(*ast.Ident); ok {
			if v, tracked := w.tracked(rid, st); tracked {
				w.useCheck(rid, st)
				if id, ok := l.(*ast.Ident); ok {
					if lv := w.localVar(id); lv != nil {
						st.vars[lv] = st.vars[v] // alias: same cell
					}
					return
				}
				w.scanExpr(l, st)
				if w.heapLHS(l) && st.status[st.vars[v]] == cellLive {
					w.report(pos, "store", "live pooled value %q stored to the heap; it would outlive its Put", v.Name())
				}
				return
			}
		}
	}
	// General form: scan all sides; reassigned locals stop being tracked.
	for _, r := range rhs {
		w.scanExpr(r, st)
	}
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if v := w.localVar(id); v != nil {
				w.unbind(v, st)
			}
			continue
		}
		w.scanExpr(l, st)
	}
}

// stmts interprets a statement list, returning whether every path through
// it terminates (return or panic-like branch), so callers can exclude dead
// branch states from merges.
func (w *poolWalker) stmts(list []ast.Stmt, st *pstate) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *poolWalker) stmt(s ast.Stmt, st *pstate) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s.Lhs, s.Rhs, s.Pos(), st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				w.assign(lhs, vs.Values, vs.Pos(), st)
			}
		}
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
	case *ast.SendStmt:
		w.scanExpr(s.Value, st)
		if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
			if v, tracked := w.tracked(id, st); tracked && st.status[st.vars[v]] == cellLive {
				w.report(s.Pos(), "store", "live pooled value %q sent on a channel; the receiver outlives this frame's Put", v.Name())
				w.unbind(v, st)
			}
		}
		w.scanExpr(s.Chan, st)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanExpr(res, st)
			w.releaseAndUnbind(res, st)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto: path leaves this statement list.
		return true
	case *ast.DeferStmt:
		if classifyPoolCall(w.pkg.Info, s.Call) == poolPut {
			d := deferredPut{pos: s.Pos()}
			for _, arg := range s.Call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v, tracked := w.tracked(id, st); tracked {
						d.args = append(d.args, v)
						continue
					}
				}
				w.scanExpr(arg, st)
			}
			w.deferred = append(w.deferred, d)
			return false
		}
		w.scanExpr(s.Call, st)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own schedule: captured pooled
		// values leave this frame's custody.
		w.releaseAndUnbind(s.Call, st)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.stmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		// Two passes over the body: the second sees state the first
		// produced, which surfaces cross-iteration use-after-put.
		for i := 0; i < 2; i++ {
			bs := st.clone()
			w.stmts(s.Body.List, bs)
			if s.Post != nil {
				w.stmt(s.Post, bs)
			}
			st.merge(bs)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		for i := 0; i < 2; i++ {
			bs := st.clone()
			w.stmts(s.Body.List, bs)
			st.merge(bs)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExpr(s.Tag, st)
		w.branches(clauseBodies(s.Body), st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		w.branches(clauseBodies(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				w.stmt(cc.Comm, st)
			}
			bodies = append(bodies, cc.Body)
		}
		w.branches(bodies, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	}
	return false
}

// branches runs each alternative body from a copy of the incoming state
// and merges the survivors (plus the fall-through pre-state, since no
// alternative may match).
func (w *poolWalker) branches(bodies [][]ast.Stmt, st *pstate) {
	pre := st.clone()
	for _, body := range bodies {
		bs := pre.clone()
		if !w.stmts(body, bs) {
			st.merge(bs)
		}
	}
}

func clauseBodies(block *ast.BlockStmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, c := range block.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			bodies = append(bodies, cc.Body)
		}
	}
	return bodies
}
