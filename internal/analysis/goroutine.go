package analysis

import (
	"go/ast"
	"go/types"
)

// Goroutine enforces join discipline in library packages: a function that
// launches a goroutine must also contain the machinery that bounds its
// lifetime — a sync.WaitGroup.Wait, a channel receive or range, or a select.
// A fire-and-forget `go` statement in library code leaks work past the
// caller's frame: it races with test teardown, defeats the race detector's
// happens-before edges, and (in the numeric core) destroys the deterministic
// scheduling the reproduction depends on.
//
// Long-lived daemons that are genuinely joined elsewhere (the gateway's
// control loop, joined in Close) must say so with
// //lint:allow goroutine-discipline <reason>.
type Goroutine struct{}

func (*Goroutine) Name() string { return "goroutine-discipline" }

// isWaitGroupWait reports whether call is (*sync.WaitGroup).Wait.
func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Wait" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func (g *Goroutine) Analyze(prog *Program, pkg *Package) []Finding {
	if !prog.inLibraryScope(pkg) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var goStmts []*ast.GoStmt
			joined := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					goStmts = append(goStmts, n)
				case *ast.CallExpr:
					if isWaitGroupWait(pkg.Info, n) {
						joined = true
					}
				case *ast.UnaryExpr:
					// A channel receive anywhere in the function counts as a
					// join point (completion-channel pattern).
					if n.Op.String() == "<-" {
						joined = true
					}
				case *ast.RangeStmt:
					if isChanType(pkg.Info.TypeOf(n.X)) {
						joined = true
					}
				case *ast.SelectStmt:
					joined = true
				}
				return true
			})
			if joined {
				continue
			}
			for _, gs := range goStmts {
				findings = append(findings, Finding{
					Pos:  prog.Fset.Position(gs.Pos()),
					Rule: "goroutine-discipline",
					Msg:  "goroutine launched without a WaitGroup.Wait, channel receive/range, or select join in the same function",
				})
			}
		}
	}
	return findings
}
