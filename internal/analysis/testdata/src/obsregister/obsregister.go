// Package obsregister is a deepbatlint fixture: library code reaching for
// the panicking Must* registration helpers of internal/obs. Duplicate metric
// registration must surface as an error, never a panic.
package obsregister

import "deepbat/internal/obs"

// Bad registers series through the panicking convenience wrappers.
func Bad(r *obs.Registry) {
	r.MustCounter("x_total", "")               // want obs-register
	r.MustGauge("depth", "")                   // want obs-register
	r.MustHistogram("lat", "", []float64{0.1}) // want obs-register
}

// Good uses the error-returning registration, so an injected registry with a
// colliding name fails the call instead of crashing the process.
func Good(r *obs.Registry) error {
	c, err := r.Counter("x_total", "")
	if err != nil {
		return err
	}
	c.Inc()
	if _, err := r.Gauge("depth", ""); err != nil {
		return err
	}
	_, err = r.Histogram("lat", "", []float64{0.1})
	return err
}

// Exempted documents a deliberate panic-on-misuse.
func Exempted(r *obs.Registry) {
	//lint:allow obs-register fixture exercising the allow directive
	r.MustGauge("exempt", "")
}
