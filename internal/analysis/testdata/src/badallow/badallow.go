// Package badallow is a deepbatlint fixture: a //lint:allow directive
// missing its reason is itself a finding (rule "directive").
package badallow

func F() int {
	// want-next directive
	//lint:allow noprint
	return 1
}
