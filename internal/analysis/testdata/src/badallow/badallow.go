// Package badallow is a deepbatlint fixture for //lint:allow parsing edge
// cases: a directive missing its reason is itself a finding (rule
// "directive"), as is a directive naming a rule that does not exist; one
// comment may chain several directives and each is validated on its own.
package badallow

func F() int {
	// want-next directive
	//lint:allow noprint
	return 1
}

func G() int {
	// want-next directive
	//lint:allow no-such-rule this waiver would silently suppress nothing
	return 2
}

// H chains two directives in one comment: the first is well-formed (and
// suppresses nothing here, which is fine), the second has no reason.
func H() int {
	// want-next directive
	//lint:allow noprint suppresses nothing on this line //lint:allow floatcompare
	return 3
}

// I chains a well-formed directive with one naming an unknown rule: the
// unknown name must error even though its sibling parses.
func I() int {
	// want-next directive
	//lint:allow determinism chained waiver, validated independently //lint:allow hotpathalloc misspelled rule, reason present
	return 4
}
