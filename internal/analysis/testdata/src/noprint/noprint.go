// Package noprint is a deepbatlint fixture: seeded violations of the
// noprint rule.
package noprint

import (
	"bytes"
	"fmt"
	"log"
	"os"
)

// Noisy writes to the process-global streams.
func Noisy(v int) {
	fmt.Println("value", v)               // want noprint
	fmt.Printf("value %d\n", v)           // want noprint
	log.Printf("value %d", v)             // want noprint
	fmt.Fprintf(os.Stderr, "value %d", v) // want noprint
	println(v)                            // want noprint
}

// Quiet uses only approved sinks.
func Quiet(v int) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "value %d", v)
	logger := log.New(&buf, "", 0)
	logger.Printf("value %d", v)
	return fmt.Sprintf("%s", buf.String())
}

// Exempted documents a deliberate diagnostic print.
func Exempted(v int) {
	//lint:allow noprint fixture exercising the allow directive
	fmt.Println(v)
}
