// Package hotpathalloc is a deepbatlint fixture: seeded violations of the
// hotpath-alloc rule, including a cold-branch allocation an AllocsPerRun
// bench would never see (the benchmark drives the happy path only).
package hotpathalloc

import "fmt"

type ring struct {
	buf []float64
	n   int
}

// Observe is hot and clean: a fixed-capacity ring write.
//
//deepbat:hotpath
func (r *ring) Observe(v float64) {
	r.buf[r.n%len(r.buf)] = v
	r.n++
}

// Admit allocates directly on the hot path.
//
//deepbat:hotpath
func Admit(ids []int) []int {
	out := make([]int, 0, len(ids)) // want hotpath-alloc
	for _, id := range ids {
		out = append(out, id) // want hotpath-alloc
	}
	return out
}

// Dispatch is clean on the happy path a benchmark measures: AllocsPerRun
// over fail=false reports 0 allocs/op. The cold error branch formats — the
// allocation the dynamic gate can never see.
//
//deepbat:hotpath
func Dispatch(r *ring, v float64, fail bool) error {
	r.Observe(v)
	if fail {
		return fmt.Errorf("dispatch rejected %v", v) // want hotpath-alloc
	}
	return nil
}

// record is an unannotated helper: the violation is indirect, reached
// through Route's call closure.
func record(m map[string]int, k string) {
	m[k]++ // want hotpath-alloc
}

//deepbat:hotpath
func Route(m map[string]int, k string) {
	record(m, k)
}

// Fanout builds a closure and hops through a channel.
//
//deepbat:hotpath
func Fanout(ch chan int, v int) {
	fn := func() int { return v } // want hotpath-alloc
	ch <- fn()                    // want hotpath-alloc
}

func sink(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

// Box passes a non-pointer value to an interface parameter: boxed on the
// heap at the call site.
//
//deepbat:hotpath
func Box(x int) int {
	return sink(x) // want hotpath-alloc
}
