// Clean and waived hotpath-alloc cases: allocation-free closures pass
// untouched, cold-path allocations carry mandatory-reason waivers, and a
// waived call site cuts traversal into the callee.
package hotpathalloc

import "fmt"

// SumAbs is hot and allocation-free: pure arithmetic over caller-owned
// storage.
//
//deepbat:hotpath
func SumAbs(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		total += v
	}
	return total
}

// Refill documents its pool-miss allocation with a reasoned waiver.
//
//deepbat:hotpath
func Refill(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//lint:allow hotpath-alloc cold path: first call grows the reusable buffer
		buf = make([]float64, n)
	}
	return buf[:n]
}

type events struct{ names []string }

func (e *events) add(name string, n int) {
	// No marker here: the waived call site in Emit cuts traversal, so this
	// append is never reached from a hotpath root.
	e.names = append(e.names, name)
	_ = n
}

// Emit vouches for the telemetry subtree at its own call site instead of
// polluting the events helper with waivers.
//
//deepbat:hotpath
func Emit(evs *events, n int) {
	//lint:allow hotpath-alloc cold-branch telemetry; the event sink may allocate
	evs.add("dispatch", n)
}

// MustIndex panics with a formatted message on contract violation: the
// crash path has left the hot path, so panic arguments are exempt.
//
//deepbat:hotpath
func MustIndex(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		panic(fmt.Sprintf("hotpathalloc: index %d out of range", i))
	}
	return xs[i]
}
