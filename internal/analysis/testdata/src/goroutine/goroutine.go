// Package goroutine is a deepbatlint fixture: seeded violations of the
// goroutine-discipline rule.
package goroutine

import "sync"

func work() {}

// Leak launches a goroutine with no join in the same function.
func Leak() {
	go work() // want goroutine-discipline
}

// WaitGroupJoin is clean: joined through wg.Wait.
func WaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ChannelJoin is clean: joined through a completion-channel receive.
func ChannelJoin() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// RangeJoin is clean: results are drained by ranging over a channel.
func RangeJoin() {
	out := make(chan int, 1)
	go func() {
		out <- 1
		close(out)
	}()
	for range out {
	}
}

// SelectJoin is clean: joined through select.
func SelectJoin() {
	done := make(chan struct{})
	go func() { close(done) }()
	select {
	case <-done:
	}
}

// Exempted documents a deliberately detached goroutine.
func Exempted() {
	//lint:allow goroutine-discipline fixture exercising the allow directive
	go work()
}
