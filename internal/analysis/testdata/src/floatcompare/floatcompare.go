// Package floatcompare is a deepbatlint fixture: seeded violations of the
// floatcompare rule.
package floatcompare

import "math"

// Compare exercises flagged and approved comparisons.
func Compare(a, b float64, c float32) bool {
	if a == b { // want floatcompare
		return true
	}
	if c != 1.5 { // want floatcompare
		return false
	}
	if a == 0 { // constant zero: approved (division guard)
		return false
	}
	if 0.0 != b { // constant zero on the left: approved
		return true
	}
	n := 3
	return n == 4 // integers: out of scope
}

// approxEqual is an approved tolerance helper: exact equality inside is the
// infinity fast path.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// Exempted documents an intended bit-equality check.
func Exempted(a, b float64) bool {
	//lint:allow floatcompare determinism regression check requires bit equality
	return a == b
}

var _ = approxEqual
