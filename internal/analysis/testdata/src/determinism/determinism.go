// Package determinism is a deepbatlint fixture: seeded violations of the
// determinism rule, with expected findings marked by `// want <rule>`
// trailing comments.
//
//deepbat:deterministic
package determinism

import (
	"math/rand"
	"time"
)

// WallClock reads the wall clock in a deterministic package.
func WallClock() float64 {
	start := time.Now()          // want determinism
	elapsed := time.Since(start) // want determinism
	_ = elapsed
	return rand.Float64() // want determinism
}

// GlobalRand mixes global and seeded sources.
func GlobalRand(n int) int {
	rng := rand.New(rand.NewSource(42)) // seeded generator: allowed
	_ = rng.Intn(n)                     // method on *rand.Rand: allowed
	return rand.Intn(n)                 // want determinism
}

// Exempted documents a deliberate wall-clock read.
func Exempted() time.Time {
	//lint:allow determinism fixture exercising the allow directive
	return time.Now()
}
