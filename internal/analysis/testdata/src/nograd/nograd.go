// Package nograd is a deepbatlint fixture: seeded violations of the
// nograd-hygiene rule against the real tensor package.
package nograd

import "deepbat/internal/tensor"

// BadDirect builds tape nodes directly in an annotated function.
//
//deepbat:nograd
func BadDirect(a, b *tensor.Tensor) *tensor.Tensor {
	return tensor.MatMul(a, b) // want nograd-hygiene
}

// BadTransitive reaches a tape-building helper through a call edge.
//
//deepbat:nograd
func BadTransitive(a, b *tensor.Tensor) *tensor.Tensor {
	return helper(a, b)
}

func helper(a, b *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(a, b) // want nograd-hygiene
}

// Good wraps all graph work in tensor.NoGrad: clean.
//
//deepbat:nograd
func Good(a, b *tensor.Tensor) *tensor.Tensor {
	var out *tensor.Tensor
	tensor.NoGrad(func() {
		out = tensor.Mul(a, b)
	})
	return out
}

// GoodIndirect calls a guarded helper through NoGrad: traversal must not
// descend into calls inside the closure.
//
//deepbat:nograd
func GoodIndirect(a, b *tensor.Tensor) *tensor.Tensor {
	var out *tensor.Tensor
	tensor.NoGrad(func() {
		out = helper2(a, b)
	})
	return out
}

func helper2(a, b *tensor.Tensor) *tensor.Tensor {
	return tensor.Sub(a, b)
}

// unannotated may build tape nodes freely: clean.
func unannotated(a, b *tensor.Tensor) *tensor.Tensor {
	return tensor.Scale(tensor.Add(a, b), 0.5)
}

var _ = unannotated
