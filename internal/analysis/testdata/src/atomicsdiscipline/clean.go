// Clean and waived atomics-discipline cases: consistently atomic access,
// pointer sharing, a reasoned waiver for a cold-path debug copy, and a
// hotpath call made without holding its lock.
package atomicsdiscipline

import (
	"sync"
	"sync/atomic"
)

type gauge struct{ v int64 }

// Bump and Load agree: v is touched only through sync/atomic.
func Bump(g *gauge) {
	atomic.AddInt64(&g.v, 1)
}

func Load(g *gauge) int64 {
	return atomic.LoadInt64(&g.v)
}

// Borrow shares the counter by pointer: no copy, no race.
func Borrow(c *counter) *counter {
	return c
}

type meta struct {
	mu   sync.Mutex
	name string
}

// NameOf copies a sync-bearing struct on a cold debug path and says why
// that is acceptable.
func NameOf(m *meta) string {
	//lint:allow atomics-discipline cold debug snapshot; the copy is read-only and discarded
	cp := *m
	return cp.name
}

// coldScale calls into the hot closure without holding any lock it
// acquires: the lock-order check passes.
func coldScale(e *engine) {
	hotBump(e)
	e.mu.Lock()
	e.v--
	e.mu.Unlock()
}
