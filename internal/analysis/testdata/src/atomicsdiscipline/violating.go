// Package atomicsdiscipline is a deepbatlint fixture: seeded violations of
// the atomics-discipline rule — plain access of atomically-touched fields,
// by-value copies of sync-bearing structs, and a hotpath call made under a
// lock the hot closure re-acquires.
package atomicsdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int64
}

// IncAtomic is the sanctioning access: from here on, n is atomic-only.
func IncAtomic(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

// ReadPlain races IncAtomic: an unsynchronized read of an atomic field.
func ReadPlain(c *counter) int64 {
	return c.n // want atomics-discipline
}

// WritePlain is the same race in the store direction.
func WritePlain(c *counter, v int64) {
	c.n = v // want atomics-discipline
}

// Snapshot copies a struct holding a Mutex and an atomic field: the copy
// forks the lock.
func Snapshot(c *counter) counter {
	return *c // want atomics-discipline
}

// Held has a value receiver on a sync-bearing type: every call copies the
// mutex.
func (c counter) Held() bool { // want atomics-discipline
	return true
}

type engine struct {
	mu sync.Mutex
	v  int64
}

// hotBump acquires e.mu inside the hot closure.
//
//deepbat:hotpath
func hotBump(e *engine) {
	e.mu.Lock()
	e.v++
	e.mu.Unlock()
}

// coldCaller enters the hot path while already holding the lock hotBump
// takes: instant self-deadlock.
func coldCaller(e *engine) {
	e.mu.Lock()
	hotBump(e) // want atomics-discipline
	e.mu.Unlock()
}
