// Package poolownership is a deepbatlint fixture: seeded violations of the
// pool-ownership rule — double Put, use after Put (including across branch
// merges and deferred releases), and pooled values escaping to the heap.
package poolownership

// BufPool is recognized structurally: Get/Put methods on a *Pool-suffixed
// named type.
type BufPool struct{ free [][]float64 }

func (p *BufPool) Get(n int) []float64 {
	if len(p.free) == 0 {
		return make([]float64, n)
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b[:n]
}

func (p *BufPool) Put(b []float64) {
	p.free = append(p.free, b)
}

// DoubleRelease returns the same buffer to the pool twice.
func DoubleRelease(p *BufPool, n int) {
	b := p.Get(n)
	b[0] = 1
	p.Put(b)
	p.Put(b) // want pool-ownership
}

// ReadAfterRelease touches a buffer the pool may already have handed to
// another caller.
func ReadAfterRelease(p *BufPool, n int) float64 {
	b := p.Get(n)
	p.Put(b)
	return b[0] // want pool-ownership
}

// MaybeReleased puts on one branch only: any later use races the pool.
func MaybeReleased(p *BufPool, n int, done bool) {
	b := p.Get(n)
	if done {
		p.Put(b)
	}
	b[0] = 2 // want pool-ownership
}

// DeferredDouble registers a deferred Put and then releases explicitly: at
// return the deferred Put runs against an already-recycled buffer.
func DeferredDouble(p *BufPool, n int) {
	b := p.Get(n)
	defer p.Put(b) // want pool-ownership
	b[0] = 3
	p.Put(b)
}

type server struct{ scratch []float64 }

// StoreDirect parks a pool Get result in a long-lived field without an
// ownership handoff.
func StoreDirect(s *server, p *BufPool, n int) {
	s.scratch = p.Get(n) // want pool-ownership
}

// StoreLive stores a live pooled value to the heap: the field outlives the
// frame that owes the Put.
func StoreLive(s *server, p *BufPool, n int) {
	b := p.Get(n)
	s.scratch = b // want pool-ownership
	p.Put(b)
}

// SendLive hands a live pooled value to another goroutine via a channel.
func SendLive(p *BufPool, ch chan []float64, n int) {
	b := p.Get(n)
	ch <- b // want pool-ownership
}
