// Clean and waived pool-ownership cases: balanced Get/Put in straight-line
// code, loops, and defers; ownership transfer by return; and a reasoned
// waiver for a deliberate long-lived cache.
package poolownership

// Balanced acquires, uses, and releases in order.
func Balanced(p *BufPool, n int) float64 {
	b := p.Get(n)
	b[0] = 1
	total := b[0]
	p.Put(b)
	return total
}

// DeferBalanced releases via defer exactly once.
func DeferBalanced(p *BufPool, n int) float64 {
	b := p.Get(n)
	defer p.Put(b)
	b[0] = 2
	return b[0]
}

// Transfer hands ownership to the caller: returning a pooled value ends
// this frame's obligation.
func Transfer(p *BufPool, n int) []float64 {
	b := p.Get(n)
	b[0] = 3
	return b
}

// LoopFresh acquires a fresh buffer each iteration and releases it before
// the next: the rebind must not be confused with reuse of the released one.
func LoopFresh(p *BufPool, rows int, n int) float64 {
	total := 0.0
	for i := 0; i < rows; i++ {
		b := p.Get(n)
		b[0] = float64(i)
		total += b[0]
		p.Put(b)
	}
	return total
}

type cache struct{ hot []float64 }

// Warm deliberately parks a pooled buffer in a long-lived cache that owns
// it from here on; the waiver documents the ownership handoff.
func Warm(c *cache, p *BufPool, n int) {
	//lint:allow pool-ownership the cache becomes the owner and Puts on eviction
	c.hot = p.Get(n)
}
