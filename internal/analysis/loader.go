package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks module packages on demand. Stdlib imports
// are resolved from $GOROOT/src by the go/importer source importer (with
// cgo disabled so pure-Go fallbacks are used); module-internal imports are
// resolved recursively by the loader itself, so the whole pipeline works
// offline with nothing but the Go toolchain installed.
type loader struct {
	fset    *token.FileSet
	root    string // module root (absolute)
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package // by import path, fully checked
	loading map[string]bool     // cycle detection
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks stdlib packages from $GOROOT/src.
	// Disable cgo so packages with C dependencies (net, via net/http) fall
	// back to their pure-Go implementations instead of failing to parse.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    abs,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath reads the module declaration from go.mod in dir.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", dir)
}

// Import implements types.Importer: module-internal paths are loaded from
// source inside the module; everything else is delegated to the stdlib
// source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks the package in dir (identified by its import
// path), memoizing the result. Test files are not part of the lint surface.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir (not recursive), with
// comments retained for directive handling. Build constraints are honoured
// under the default tag set, so tag-gated file pairs (poolcheck on/off)
// contribute exactly one declaration each — the same view `go build` sees.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs walks the module tree and returns every directory containing
// buildable Go files, skipping testdata (lint fixtures contain deliberate
// violations), hidden directories, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// Deduplicate (one entry per .go file above).
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// LoadModule loads every package of the module rooted at root (the
// `./...` pattern), excluding testdata fixtures.
func LoadModule(root string) (*Program, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	return LoadDirs(root, dirs)
}

// LoadDirs loads the given package directories (absolute or relative to
// root) within the module rooted at root. Directories under testdata are
// accepted — this is how fixture packages are loaded explicitly.
func LoadDirs(root string, dirs []string) (*Program, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, Module: l.module}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.root, dir)
		}
		dir = filepath.Clean(dir)
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	prog.buildIndexes()
	return prog, nil
}
