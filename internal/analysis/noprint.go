package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NoPrint keeps library packages silent: code under internal/ (and the
// module-root facade) must never write to the process-global streams.
// Reports and traces are returned as values or written to injected
// io.Writers, and runtime telemetry goes through internal/obs — the
// sanctioned sink — as registry metrics or recorder events. Flagged:
// fmt.Print/Printf/Println, every package-level log function except
// log.New, direct references to os.Stdout/os.Stderr, and the print/println
// builtins. Methods on an injected *log.Logger are fine — the caller chose
// the sink.
type NoPrint struct{}

// bannedFmtFuncs are the fmt functions hard-wired to os.Stdout.
var bannedFmtFuncs = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func (*NoPrint) Name() string { return "noprint" }

func (np *NoPrint) Analyze(prog *Program, pkg *Package) []Finding {
	if !prog.inLibraryScope(pkg) {
		return nil
	}
	var findings []Finding
	flag := func(n ast.Node, what string) {
		findings = append(findings, Finding{
			Pos:  prog.Fset.Position(n.Pos()),
			Rule: "noprint",
			Msg:  fmt.Sprintf("%s writes to a process-global stream; library code must return values, write to an injected io.Writer, or emit telemetry via internal/obs", what),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch obj := pkg.Info.Uses[n.Sel].(type) {
				case *types.Func:
					if obj.Pkg() == nil {
						return true
					}
					sig, _ := obj.Type().(*types.Signature)
					pkgLevel := sig != nil && sig.Recv() == nil
					if obj.Pkg().Path() == "fmt" && bannedFmtFuncs[obj.Name()] {
						flag(n, "fmt."+obj.Name())
					}
					if obj.Pkg().Path() == "log" && pkgLevel && obj.Name() != "New" {
						flag(n, "log."+obj.Name())
					}
				case *types.Var:
					if obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
						(obj.Name() == "Stdout" || obj.Name() == "Stderr") {
						flag(n, "os."+obj.Name())
					}
				}
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[n].(*types.Builtin); ok &&
					(b.Name() == "print" || b.Name() == "println") {
					flag(n, "builtin "+b.Name())
				}
			}
			return true
		})
	}
	return findings
}
