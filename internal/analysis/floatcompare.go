package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point operands in library
// packages. Exact float equality is almost always a latent bug in numeric
// code (two mathematically equal computations need not be bit-equal), and
// where it IS intended — determinism regression tests, sentinel encodings —
// the intent must be spelled out.
//
// Two escapes are approved:
//
//   - comparison against an exact constant zero. `x == 0` guards divisions
//     and skip-sentinels (e.g. MAPE skipping zero targets); zero is exactly
//     representable and the comparison is well-defined.
//   - the body of a tolerance helper: a function named ApproxEqual,
//     approxEqual, AlmostEqual, almostEqual, or EqualWithin. Helpers need a
//     bit-equality fast path (it is the only correct way to treat equal
//     infinities).
//
// Anything else needs a //lint:allow floatcompare <reason> directive.
type FloatCompare struct{}

// toleranceHelpers are function names whose bodies may compare floats
// exactly (the approved helpers the rest of the code is steered toward).
var toleranceHelpers = map[string]bool{
	"ApproxEqual": true,
	"approxEqual": true,
	"AlmostEqual": true,
	"almostEqual": true,
	"EqualWithin": true,
}

func (*FloatCompare) Name() string { return "floatcompare" }

// isFloat reports whether t is (or is an untyped constant convertible to) a
// floating-point type.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the expression is a compile-time constant
// with value exactly zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
}

func (fc *FloatCompare) Analyze(prog *Program, pkg *Package) []Finding {
	if !prog.inLibraryScope(pkg) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if toleranceHelpers[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := pkg.Info.TypeOf(be.X), pkg.Info.TypeOf(be.Y)
				if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
					return true
				}
				if isZeroConst(pkg.Info, be.X) || isZeroConst(pkg.Info, be.Y) {
					return true
				}
				findings = append(findings, Finding{
					Pos:  prog.Fset.Position(be.OpPos),
					Rule: "floatcompare",
					Msg: fmt.Sprintf("%s between floating-point operands; use stats.ApproxEqual (or //lint:allow floatcompare <reason> if bit equality is intended)",
						be.Op),
				})
				return true
			})
		}
	}
	return findings
}
