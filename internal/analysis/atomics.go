package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicsDiscipline enforces three memory-model disciplines over the whole
// module:
//
//  1. Mixed access: a variable or struct field whose address is passed to a
//     function-style sync/atomic call anywhere in the module must never be
//     read or written plainly elsewhere — a single plain access next to
//     atomic ones is a data race the race detector only catches when the
//     interleaving happens to occur.
//  2. Copies: a struct containing sync or sync/atomic state (Mutex,
//     WaitGroup, atomic.Int64, atomic.Pointer, ...) must not be copied by
//     value — the copy shares nothing with the original and silently forks
//     the lock or counter. Value receivers on such types are the same bug
//     at declaration time.
//  3. Lock order: a function annotated `//deepbat:hotpath` (or anything in
//     its call closure) must not acquire a lock that a non-hotpath caller
//     already holds at the call site — the two-level check that keeps the
//     latency-critical path from deadlocking behind slow-path critical
//     sections.
//
// Facts (atomic variables, per-function lock acquisitions, call edges,
// hotpath annotations) are collected once per Program and shared across the
// per-package Analyze calls.
type AtomicsDiscipline struct {
	prog *Program

	atomicVars map[*types.Var]bool // address taken by a sync/atomic function
	sanctioned map[token.Pos]bool  // ident positions inside atomic call args
	atomicSite map[*types.Var]token.Position

	acquires map[*types.Func]map[*types.Var]bool // direct lock acquisitions
	calls    map[*types.Func][]*types.Func       // static call edges
	hot      map[*types.Func]bool                // //deepbat:hotpath roots
	closure  map[*types.Func]map[*types.Var]bool // memoized acquire closures
}

// Name implements Analyzer.
func (*AtomicsDiscipline) Name() string { return "atomics-discipline" }

// isSyncPkg reports whether pkg is sync or sync/atomic.
func isSyncPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// containsSyncState reports whether t is, or holds by value, a struct type
// from sync or sync/atomic. Interfaces (sync.Locker) are not state and do
// not count; pointers break containment.
func containsSyncState(t types.Type, depth int) bool {
	if depth > 8 || t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Named:
		if isSyncPkg(t.Obj().Pkg()) {
			_, isIface := t.Underlying().(*types.Interface)
			return !isIface
		}
		return containsSyncState(t.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsSyncState(t.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsSyncState(t.Elem(), depth+1)
	}
	return false
}

// addrVarIdent unwraps `&x` or `&s.f` to the identifier naming the variable
// whose address is taken, or nil.
func addrVarIdent(arg ast.Expr) *ast.Ident {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// lockCallVar resolves x in `x.Lock()` / `x.RLock()` (and the Unlock pair)
// to the mutex variable, returning the variable and the method name.
func lockCallVar(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || !isSyncPkg(fn.Pkg()) {
		return nil, ""
	}
	var id *ast.Ident
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, ""
	}
	v, _ := info.Uses[id].(*types.Var)
	return v, sel.Sel.Name
}

// build collects the module-wide facts once per Program.
func (r *AtomicsDiscipline) build(prog *Program) {
	if r.prog == prog {
		return
	}
	r.prog = prog
	r.atomicVars = make(map[*types.Var]bool)
	r.sanctioned = make(map[token.Pos]bool)
	r.atomicSite = make(map[*types.Var]token.Position)
	r.acquires = make(map[*types.Func]map[*types.Var]bool)
	r.calls = make(map[*types.Func][]*types.Func)
	r.hot = make(map[*types.Func]bool)
	r.closure = make(map[*types.Func]map[*types.Var]bool)

	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if funcHasAnnotation(fd, "deepbat:hotpath") {
					r.hot[fn] = true
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					// Function-style sync/atomic call: the addressed
					// variable becomes atomic-only everywhere.
					if callee := calleeFunc(info, call); callee != nil {
						if isSyncPkg(callee.Pkg()) && callee.Type().(*types.Signature).Recv() == nil {
							for _, arg := range call.Args {
								id := addrVarIdent(arg)
								if id == nil {
									continue
								}
								if v, ok := info.Uses[id].(*types.Var); ok {
									r.atomicVars[v] = true
									r.sanctioned[id.Pos()] = true
									if _, seen := r.atomicSite[v]; !seen {
										r.atomicSite[v] = prog.Fset.Position(call.Pos())
									}
								}
							}
						}
						if decl, _ := prog.FuncDecl(callee); decl != nil {
							r.calls[fn] = append(r.calls[fn], callee)
						}
					}
					if v, method := lockCallVar(info, call); v != nil && (method == "Lock" || method == "RLock") {
						if r.acquires[fn] == nil {
							r.acquires[fn] = make(map[*types.Var]bool)
						}
						r.acquires[fn][v] = true
					}
					return true
				})
			}
		}
	}
}

// acquireClosure returns every lock fn or its static callees may acquire.
func (r *AtomicsDiscipline) acquireClosure(fn *types.Func) map[*types.Var]bool {
	if c, ok := r.closure[fn]; ok {
		return c
	}
	out := make(map[*types.Var]bool)
	r.closure[fn] = out // cycle guard: fixpoint over-approximates to the partial set
	for v := range r.acquires[fn] {
		out[v] = true
	}
	for _, callee := range r.calls[fn] {
		for v := range r.acquireClosure(callee) {
			out[v] = true
		}
	}
	return out
}

// Analyze implements Analyzer.
func (r *AtomicsDiscipline) Analyze(prog *Program, pkg *Package) []Finding {
	r.build(prog)
	var out []Finding
	info := pkg.Info
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Part 2 (declaration form): a value receiver on a type
			// holding sync/atomic state copies it on every call.
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if t := info.TypeOf(fd.Recv.List[0].Type); t != nil {
					if _, isPtr := t.(*types.Pointer); !isPtr && containsSyncState(t, 0) {
						out = append(out, Finding{
							Pos:  prog.Fset.Position(fd.Recv.Pos()),
							Rule: "atomics-discipline",
							Msg:  fmt.Sprintf("value receiver copies %s, which contains sync/atomic state; use a pointer receiver", types.TypeString(t, types.RelativeTo(pkg.Types))),
						})
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			out = append(out, r.checkBody(prog, pkg, fd)...)
		}
	}
	return out
}

// checkBody walks one function for plain accesses of atomic variables,
// by-value copies of sync-bearing structs, and hotpath calls made under a
// held lock.
func (r *AtomicsDiscipline) checkBody(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	info := pkg.Info
	held := make(map[*types.Var]bool)
	deferred := make(map[*ast.CallExpr]bool)

	copyCheck := func(e ast.Expr) {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return
		}
		t := info.TypeOf(e)
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if containsSyncState(t, 0) {
			out = append(out, Finding{
				Pos:  prog.Fset.Position(e.Pos()),
				Rule: "atomics-discipline",
				Msg:  fmt.Sprintf("copies a value of type %s, which contains sync/atomic state; share it by pointer", types.TypeString(t, types.RelativeTo(pkg.Types))),
			})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at return, not here: the lock
			// stays lexically held for the rest of the body.
			deferred[n.Call] = true
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				copyCheck(rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				copyCheck(v)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				copyCheck(res)
			}
		case *ast.SendStmt:
			copyCheck(n.Value)
		case *ast.CallExpr:
			if v, method := lockCallVar(info, n); v != nil {
				switch method {
				case "Lock", "RLock":
					held[v] = true
				case "Unlock", "RUnlock":
					if !deferred[n] {
						delete(held, v)
					}
				}
				return true
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			if !isSyncPkg(callee.Pkg()) {
				for _, arg := range n.Args {
					copyCheck(arg)
				}
			}
			// Part 3: calling into a hotpath closure while holding a lock
			// that closure also acquires.
			if r.hot[callee] && !r.hot[funcOf(info, fd)] {
				for v := range r.acquireClosure(callee) {
					if held[v] {
						out = append(out, Finding{
							Pos:  prog.Fset.Position(n.Pos()),
							Rule: "atomics-discipline",
							Msg:  fmt.Sprintf("calls //deepbat:hotpath function %s while holding %q, a lock its closure acquires; the hot path would deadlock behind this slow-path critical section", callee.Name(), v.Name()),
						})
					}
				}
			}
		case *ast.Ident:
			// Part 1: plain access of an atomically-accessed variable.
			if v, ok := info.Uses[n].(*types.Var); ok && r.atomicVars[v] && !r.sanctioned[n.Pos()] {
				site := r.atomicSite[v]
				out = append(out, Finding{
					Pos:  prog.Fset.Position(n.Pos()),
					Rule: "atomics-discipline",
					Msg:  fmt.Sprintf("plain access of %q, which is accessed via sync/atomic at %s:%d; mixing plain and atomic access is a data race", v.Name(), site.Filename, site.Line),
				})
			}
		}
		return true
	})
	return out
}

// funcOf resolves the *types.Func a declaration defines.
func funcOf(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}
