// Package arrival implements Markovian Arrival Processes (MAPs), the workload
// model the paper uses both to generate its bursty synthetic traces and as
// the fitted arrival model inside the BATCH baseline. It provides process
// construction (Poisson, 2-state MMPP, on-off), exact simulation, analytic
// interarrival moments and autocorrelation, the analytic index of dispersion,
// and a moment/autocorrelation-matching fitting procedure for empirical
// traces (a compact stand-in for the KPC-toolbox fitting pipeline that BATCH
// depends on).
package arrival

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"deepbat/internal/linalg"
	"deepbat/internal/stats"
)

// MAP is a Markovian Arrival Process with hidden-transition generator D0 and
// arrival-transition matrix D1; D0+D1 is the generator of the phase CTMC.
type MAP struct {
	D0, D1 *linalg.Mat
}

// ErrInvalid reports a malformed MAP.
var ErrInvalid = errors.New("arrival: invalid MAP")

// New constructs a MAP from D0 and D1 and validates it.
func New(d0, d1 *linalg.Mat) (*MAP, error) {
	m := &MAP{D0: d0, D1: d1}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Order returns the number of phases.
func (m *MAP) Order() int { return m.D0.R }

// Validate checks the MAP structural constraints: D1 >= 0 elementwise,
// off-diagonal D0 >= 0, negative D0 diagonal, and zero row sums of D0+D1.
func (m *MAP) Validate() error {
	n := m.D0.R
	if m.D0.C != n || m.D1.R != n || m.D1.C != n {
		return fmt.Errorf("%w: dimension mismatch", ErrInvalid)
	}
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			d0 := m.D0.At(i, j)
			d1 := m.D1.At(i, j)
			if d1 < 0 {
				return fmt.Errorf("%w: negative D1[%d][%d]", ErrInvalid, i, j)
			}
			if i != j && d0 < 0 {
				return fmt.Errorf("%w: negative off-diagonal D0[%d][%d]", ErrInvalid, i, j)
			}
			if i == j && d0 >= 0 {
				return fmt.Errorf("%w: non-negative diagonal D0[%d][%d]", ErrInvalid, i, j)
			}
			row += d0 + d1
		}
		if math.Abs(row) > 1e-9 {
			return fmt.Errorf("%w: row %d of D0+D1 sums to %g", ErrInvalid, i, row)
		}
	}
	return nil
}

// Poisson returns the order-1 MAP of a Poisson process with the given rate.
func Poisson(rate float64) *MAP {
	return &MAP{
		D0: linalg.FromRows([][]float64{{-rate}}),
		D1: linalg.FromRows([][]float64{{rate}}),
	}
}

// MMPP2 returns a two-state Markov-modulated Poisson process. State 1 emits
// at rate lambda1 and switches to state 2 at rate r12; state 2 emits at rate
// lambda2 and switches back at rate r21.
func MMPP2(lambda1, lambda2, r12, r21 float64) *MAP {
	return &MAP{
		D0: linalg.FromRows([][]float64{
			{-(lambda1 + r12), r12},
			{r21, -(lambda2 + r21)},
		}),
		D1: linalg.FromRows([][]float64{
			{lambda1, 0},
			{0, lambda2},
		}),
	}
}

// OnOff returns an on-off MMPP: bursts at rateOn, silent otherwise. meanOn
// and meanOff are the mean sojourn times of the two modes.
func OnOff(rateOn, meanOn, meanOff float64) *MAP {
	return MMPP2(rateOn, 0, 1/meanOn, 1/meanOff)
}

// Erlang returns the renewal MAP whose interarrival times are Erlang-k with
// the given overall rate (k exponential stages each at rate k*rate). Erlang
// arrivals are smoother than Poisson (SCV = 1/k).
func Erlang(k int, rate float64) *MAP {
	if k < 1 {
		panic("arrival: Erlang requires k >= 1")
	}
	stage := float64(k) * rate
	d0 := linalg.NewMat(k, k)
	d1 := linalg.NewMat(k, k)
	for i := 0; i < k; i++ {
		d0.Set(i, i, -stage)
		if i+1 < k {
			d0.Set(i, i+1, stage)
		} else {
			d1.Set(i, 0, stage) // completing the last stage is an arrival
		}
	}
	return &MAP{D0: d0, D1: d1}
}

// HyperExp returns the renewal MAP whose interarrival times are a two-branch
// hyperexponential: with probability p an Exp(r1) gap, otherwise Exp(r2).
// Hyperexponential arrivals are burstier than Poisson (SCV > 1) but carry no
// autocorrelation.
func HyperExp(p, r1, r2 float64) *MAP {
	if p < 0 || p > 1 || r1 <= 0 || r2 <= 0 {
		panic("arrival: HyperExp requires p in [0,1] and positive rates")
	}
	d0 := linalg.FromRows([][]float64{{-r1, 0}, {0, -r2}})
	d1 := linalg.FromRows([][]float64{
		{p * r1, (1 - p) * r1},
		{p * r2, (1 - p) * r2},
	})
	return &MAP{D0: d0, D1: d1}
}

// Superpose returns the superposition of two independent MAPs — the process
// of their merged arrival streams — via Kronecker sums:
// D0 = A0 ⊕ B0, D1 = A1 ⊕ B1. The order is the product of the orders.
func Superpose(a, b *MAP) (*MAP, error) {
	return New(linalg.KronSum(a.D0, b.D0), linalg.KronSum(a.D1, b.D1))
}

// Generator returns D0 + D1, the phase-process CTMC generator.
func (m *MAP) Generator() *linalg.Mat { return linalg.Add(m.D0, m.D1) }

// StationaryPhase returns the stationary distribution of the phase CTMC.
func (m *MAP) StationaryPhase() ([]float64, error) {
	return linalg.StationaryVector(m.Generator())
}

// Rate returns the long-run arrival rate lambda = pi D1 1.
func (m *MAP) Rate() (float64, error) {
	pi, err := m.StationaryPhase()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(linalg.VecMat(pi, m.D1), linalg.Ones(m.Order())), nil
}

// ArrivalPhase returns the stationary phase distribution embedded at arrival
// instants, phi = pi D1 / lambda.
func (m *MAP) ArrivalPhase() ([]float64, error) {
	pi, err := m.StationaryPhase()
	if err != nil {
		return nil, err
	}
	v := linalg.VecMat(pi, m.D1)
	lambda := 0.0
	for _, x := range v {
		lambda += x
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("%w: zero arrival rate", ErrInvalid)
	}
	for i := range v {
		v[i] /= lambda
	}
	return v, nil
}

// negD0Inv returns (-D0)^{-1}, the fundamental matrix of the interarrival
// phase-type distribution.
func (m *MAP) negD0Inv() (*linalg.Mat, error) {
	return linalg.Inverse(linalg.Scale(m.D0, -1))
}

// Moments returns the first two moments of the stationary interarrival time.
func (m *MAP) Moments() (m1, m2 float64, err error) {
	phi, err := m.ArrivalPhase()
	if err != nil {
		return 0, 0, err
	}
	inv, err := m.negD0Inv()
	if err != nil {
		return 0, 0, err
	}
	ones := linalg.Ones(m.Order())
	mv := linalg.MatVec(inv, ones) // conditional means per phase
	m1 = linalg.Dot(phi, mv)
	m2 = 2 * linalg.Dot(phi, linalg.MatVec(inv, mv))
	return m1, m2, nil
}

// SCV returns the squared coefficient of variation of interarrival times.
func (m *MAP) SCV() (float64, error) {
	m1, m2, err := m.Moments()
	if err != nil {
		return 0, err
	}
	if m1 == 0 {
		return 0, fmt.Errorf("%w: zero mean interarrival", ErrInvalid)
	}
	return m2/(m1*m1) - 1, nil
}

// LagCorrelation returns the lag-k autocorrelation of the interarrival
// sequence, rho_k = (E[X_0 X_k] - mu^2) / sigma^2, using the standard MAP
// result E[X_0 X_k] = phi (-D0)^{-1} P^k m with P = (-D0)^{-1} D1.
func (m *MAP) LagCorrelation(k int) (float64, error) {
	if k <= 0 {
		return 1, nil
	}
	phi, err := m.ArrivalPhase()
	if err != nil {
		return 0, err
	}
	inv, err := m.negD0Inv()
	if err != nil {
		return 0, err
	}
	p := linalg.Mul(inv, m.D1)
	ones := linalg.Ones(m.Order())
	mv := linalg.MatVec(inv, ones)
	m1 := linalg.Dot(phi, mv)
	m2 := 2 * linalg.Dot(phi, linalg.MatVec(inv, mv))
	variance := m2 - m1*m1
	if variance <= 0 {
		return 0, nil
	}
	// phi (-D0)^{-1} P^k m
	v := linalg.VecMat(phi, inv)
	for i := 0; i < k; i++ {
		v = linalg.VecMat(v, p)
	}
	joint := linalg.Dot(v, mv)
	return (joint - m1*m1) / variance, nil
}

// IDC returns the analytic index of dispersion truncated at maxLag,
// IDC = SCV * (1 + 2 sum_{k=1..maxLag} rho_k), matching the paper's
// definition of trace burstiness.
func (m *MAP) IDC(maxLag int) (float64, error) {
	scv, err := m.SCV()
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for k := 1; k <= maxLag; k++ {
		r, err := m.LagCorrelation(k)
		if err != nil {
			return 0, err
		}
		sum += r
		if math.Abs(r) < 1e-12 {
			break
		}
	}
	return scv * (1 + 2*sum), nil
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

// Gen draws interarrival times from a MAP, maintaining the hidden phase
// between calls.
type Gen struct {
	m     *MAP
	rng   *rand.Rand
	phase int
}

// NewGen returns a generator starting from the stationary arrival phase.
func NewGen(m *MAP, rng *rand.Rand) (*Gen, error) {
	phi, err := m.ArrivalPhase()
	if err != nil {
		return nil, err
	}
	g := &Gen{m: m, rng: rng}
	g.phase = samplePhase(phi, rng)
	return g, nil
}

func samplePhase(dist []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}

// Phase returns the current hidden phase.
func (g *Gen) Phase() int { return g.phase }

// Next returns the next interarrival time.
func (g *Gen) Next() float64 {
	t := 0.0
	n := g.m.Order()
	for {
		out := -g.m.D0.At(g.phase, g.phase)
		t += g.rng.ExpFloat64() / out
		// Decide which transition fired.
		u := g.rng.Float64() * out
		acc := 0.0
		// Arrival transitions first.
		for j := 0; j < n; j++ {
			acc += g.m.D1.At(g.phase, j)
			if u < acc {
				g.phase = j
				return t
			}
		}
		// Hidden transitions.
		for j := 0; j < n; j++ {
			if j == g.phase {
				continue
			}
			acc += g.m.D0.At(g.phase, j)
			if u < acc {
				g.phase = j
				break
			}
		}
	}
}

// Sample draws n interarrival times.
func (g *Gen) Sample(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// SampleUntil draws interarrival times until their sum exceeds horizon,
// returning the absolute arrival timestamps in (0, horizon].
func (g *Gen) SampleUntil(horizon float64) []float64 {
	var ts []float64
	t := 0.0
	for {
		t += g.Next()
		if t > horizon {
			return ts
		}
		ts = append(ts, t)
	}
}

// ---------------------------------------------------------------------------
// Fitting (the BATCH front-end)
// ---------------------------------------------------------------------------

// FitResult describes a fitted MAP and the matching quality.
type FitResult struct {
	MAP *MAP
	// Empirical targets.
	Mean, SCV, Rho1 float64
	// Objective value at the optimum (sum of squared relative errors).
	Objective float64
	// Evaluations counts how many candidate processes were scored; it is a
	// proxy for the computational cost that the paper attributes to the
	// fitting step of BATCH.
	Evaluations int
}

// FitMMPP2 fits a 2-state MMPP to an interarrival-time trace by matching the
// mean rate exactly and searching (burst ratio, low-rate ratio, switching
// time scale) to match the SCV and the autocorrelation at small lags. Traces
// with SCV <= 1.05 degenerate to a Poisson fit.
//
// The search is an exhaustive logarithmic grid followed by multiplicative
// coordinate descent — intentionally similar in spirit (and cost profile) to
// moment-matching MAP fitting tools.
func FitMMPP2(inter []float64) (*FitResult, error) {
	if len(inter) < 8 {
		return nil, errors.New("arrival: too few samples to fit")
	}
	m1 := stats.Mean(inter)
	if m1 <= 0 {
		return nil, errors.New("arrival: non-positive mean interarrival")
	}
	lambda := 1 / m1
	scv := stats.SCV(inter)
	rho1 := stats.Autocorrelation(inter, 1)
	rho5 := stats.Autocorrelation(inter, 5)

	res := &FitResult{Mean: m1, SCV: scv, Rho1: rho1}
	if scv <= 1.05 {
		res.MAP = Poisson(lambda)
		res.Evaluations = 1
		return res, nil
	}

	// Candidate builder: a = lambda1/lambda (burst ratio > 1),
	// b = lambda2/lambda in [0, 1), s = total switching rate scale.
	build := func(a, b, s float64) *MAP {
		// Stationary share of the fast state so the overall rate is lambda:
		// p*a + (1-p)*b = 1  =>  p = (1-b)/(a-b).
		p := (1 - b) / (a - b)
		if p <= 0 || p >= 1 {
			return nil
		}
		r21 := p * s
		r12 := (1 - p) * s
		return MMPP2(a*lambda, b*lambda, r12, r21)
	}
	score := func(cand *MAP) float64 {
		cs, err := cand.SCV()
		if err != nil {
			return math.Inf(1)
		}
		c1, err := cand.LagCorrelation(1)
		if err != nil {
			return math.Inf(1)
		}
		c5, err := cand.LagCorrelation(5)
		if err != nil {
			return math.Inf(1)
		}
		es := (cs - scv) / scv
		e1 := c1 - rho1
		e5 := c5 - rho5
		return es*es + 4*(e1*e1) + e5*e5
	}

	best := math.Inf(1)
	var bestA, bestB, bestS float64
	evals := 0
	as := []float64{1.5, 2, 3, 5, 8, 12, 20, 32, 50}
	bs := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	ss := []float64{lambda / 1000, lambda / 300, lambda / 100, lambda / 30, lambda / 10, lambda / 3, lambda}
	for _, a := range as {
		for _, b := range bs {
			if b >= 1 || b >= a {
				continue
			}
			for _, s := range ss {
				cand := build(a, b, s)
				if cand == nil {
					continue
				}
				evals++
				if v := score(cand); v < best {
					best, bestA, bestB, bestS = v, a, b, s
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		res.MAP = Poisson(lambda)
		res.Evaluations = evals
		return res, nil
	}

	// Multiplicative coordinate descent refinement.
	step := 1.3
	for iter := 0; iter < 40; iter++ {
		improved := false
		for dim := 0; dim < 3; dim++ {
			for _, f := range []float64{step, 1 / step} {
				a, b, s := bestA, bestB, bestS
				switch dim {
				case 0:
					a *= f
					if a <= 1.01 {
						continue
					}
				case 1:
					if b == 0 {
						b = 0.01 * f
					} else {
						b *= f
					}
					if b >= 0.95 {
						continue
					}
				case 2:
					s *= f
				}
				cand := build(a, b, s)
				if cand == nil {
					continue
				}
				evals++
				if v := score(cand); v < best {
					best, bestA, bestB, bestS = v, a, b, s
					improved = true
				}
			}
		}
		if !improved {
			step = math.Sqrt(step)
			if step < 1.01 {
				break
			}
		}
	}
	res.MAP = build(bestA, bestB, bestS)
	res.Objective = best
	res.Evaluations = evals
	return res, nil
}
