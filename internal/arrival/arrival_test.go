package arrival

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepbat/internal/linalg"
	"deepbat/internal/stats"
)

func TestValidate(t *testing.T) {
	if err := Poisson(2).Validate(); err != nil {
		t.Fatalf("Poisson invalid: %v", err)
	}
	if err := MMPP2(5, 0.5, 0.1, 0.2).Validate(); err != nil {
		t.Fatalf("MMPP2 invalid: %v", err)
	}
	// Broken row sums.
	bad := &MAP{
		D0: linalg.FromRows([][]float64{{-1}}),
		D1: linalg.FromRows([][]float64{{2}}),
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected invalid MAP")
	}
	// Negative D1.
	bad2 := &MAP{
		D0: linalg.FromRows([][]float64{{1}}),
		D1: linalg.FromRows([][]float64{{-1}}),
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected invalid MAP (negative D1)")
	}
	if _, err := New(bad.D0, bad.D1); err == nil {
		t.Fatal("New should validate")
	}
	if m, err := New(Poisson(1).D0, Poisson(1).D1); err != nil || m == nil {
		t.Fatal("New on valid MAP failed")
	}
}

func TestPoissonAnalytics(t *testing.T) {
	p := Poisson(4)
	rate, err := p.Rate()
	if err != nil || math.Abs(rate-4) > 1e-12 {
		t.Fatalf("rate = %v err %v", rate, err)
	}
	m1, m2, err := p.Moments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1-0.25) > 1e-12 || math.Abs(m2-2.0/16) > 1e-12 {
		t.Fatalf("moments = %v %v", m1, m2)
	}
	scv, _ := p.SCV()
	if math.Abs(scv-1) > 1e-12 {
		t.Fatalf("SCV(poisson) = %v", scv)
	}
	for _, k := range []int{1, 3, 10} {
		r, _ := p.LagCorrelation(k)
		if math.Abs(r) > 1e-10 {
			t.Fatalf("rho_%d(poisson) = %v", k, r)
		}
	}
	idc, _ := p.IDC(50)
	if math.Abs(idc-1) > 1e-9 {
		t.Fatalf("IDC(poisson) = %v", idc)
	}
}

func TestMMPP2Rate(t *testing.T) {
	// Symmetric switching: half time at 10, half at 2 -> rate 6.
	m := MMPP2(10, 2, 0.5, 0.5)
	rate, err := m.Rate()
	if err != nil || math.Abs(rate-6) > 1e-10 {
		t.Fatalf("rate = %v err %v", rate, err)
	}
}

func TestMMPP2BurstyHasHighSCVAndPositiveACF(t *testing.T) {
	m := MMPP2(50, 0.5, 0.05, 0.05)
	scv, err := m.SCV()
	if err != nil {
		t.Fatal(err)
	}
	if scv < 2 {
		t.Fatalf("SCV = %v, want bursty >> 1", scv)
	}
	r1, _ := m.LagCorrelation(1)
	r5, _ := m.LagCorrelation(5)
	if r1 <= 0 || r5 <= 0 {
		t.Fatalf("autocorrelations = %v %v, want positive", r1, r5)
	}
	if r5 >= r1 {
		t.Fatalf("ACF should decay: rho1=%v rho5=%v", r1, r5)
	}
	idc, _ := m.IDC(2000)
	if idc < scv {
		t.Fatalf("IDC %v should exceed SCV %v for positively correlated process", idc, scv)
	}
}

func TestLagZeroIsOne(t *testing.T) {
	m := MMPP2(5, 1, 0.1, 0.1)
	r, err := m.LagCorrelation(0)
	if err != nil || r != 1 {
		t.Fatalf("rho_0 = %v err %v", r, err)
	}
}

func TestArrivalPhaseSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l1 := 1 + rng.Float64()*20
		l2 := rng.Float64() * l1
		r12 := 0.01 + rng.Float64()
		r21 := 0.01 + rng.Float64()
		m := MMPP2(l1, l2, r12, r21)
		phi, err := m.ArrivalPhase()
		if err != nil {
			return l2 == 0 // zero-rate corner may legitimately fail
		}
		sum := 0.0
		for _, p := range phi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPoissonStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := NewGen(Poisson(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := g.Sample(100000)
	if m := stats.Mean(xs); math.Abs(m-0.2) > 0.01 {
		t.Fatalf("sampled mean = %v, want 0.2", m)
	}
	if s := stats.SCV(xs); math.Abs(s-1) > 0.05 {
		t.Fatalf("sampled SCV = %v, want 1", s)
	}
}

func TestGenMMPP2MatchesAnalytics(t *testing.T) {
	m := MMPP2(20, 1, 0.2, 0.2)
	rng := rand.New(rand.NewSource(12))
	g, err := NewGen(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := g.Sample(300000)
	wantMean, _, _ := m.Moments()
	if got := stats.Mean(xs); math.Abs(got-wantMean)/wantMean > 0.05 {
		t.Fatalf("sampled mean %v vs analytic %v", got, wantMean)
	}
	wantSCV, _ := m.SCV()
	if got := stats.SCV(xs); math.Abs(got-wantSCV)/wantSCV > 0.15 {
		t.Fatalf("sampled SCV %v vs analytic %v", got, wantSCV)
	}
	wantR1, _ := m.LagCorrelation(1)
	if got := stats.Autocorrelation(xs, 1); math.Abs(got-wantR1) > 0.05 {
		t.Fatalf("sampled rho1 %v vs analytic %v", got, wantR1)
	}
}

func TestGenPhaseTracked(t *testing.T) {
	m := MMPP2(100, 0.1, 1, 1)
	rng := rand.New(rand.NewSource(13))
	g, err := NewGen(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		g.Next()
		seen[g.Phase()] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("phases visited = %v, want both", seen)
	}
}

func TestSampleUntil(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g, err := NewGen(Poisson(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	ts := g.SampleUntil(50)
	if len(ts) < 300 || len(ts) > 700 {
		t.Fatalf("got %d arrivals in 50s at rate 10, want ~500", len(ts))
	}
	for i, v := range ts {
		if v <= 0 || v > 50 {
			t.Fatalf("timestamp out of range: %v", v)
		}
		if i > 0 && v < ts[i-1] {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestOnOff(t *testing.T) {
	m := OnOff(100, 1, 9)
	rate, err := m.Rate()
	if err != nil {
		t.Fatal(err)
	}
	// On 10% of the time at rate 100 -> average 10.
	if math.Abs(rate-10) > 1e-9 {
		t.Fatalf("OnOff rate = %v, want 10", rate)
	}
	scv, _ := m.SCV()
	if scv < 3 {
		t.Fatalf("OnOff SCV = %v, want bursty", scv)
	}
}

func TestFitPoissonTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 8
	}
	res, err := FitMMPP2(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAP.Order() != 1 {
		t.Fatalf("Poisson trace should fit order-1, got %d", res.MAP.Order())
	}
	rate, _ := res.MAP.Rate()
	if math.Abs(rate-8)/8 > 0.05 {
		t.Fatalf("fitted rate = %v, want ~8", rate)
	}
}

func TestFitBurstyTraceRecoversStatistics(t *testing.T) {
	truth := MMPP2(30, 1, 0.05, 0.05)
	rng := rand.New(rand.NewSource(22))
	g, err := NewGen(truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := g.Sample(100000)
	res, err := FitMMPP2(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAP.Order() != 2 {
		t.Fatalf("bursty trace should fit MMPP2, got order %d", res.MAP.Order())
	}
	// Rate matched exactly by construction.
	wantRate := 1 / stats.Mean(xs)
	rate, _ := res.MAP.Rate()
	if math.Abs(rate-wantRate)/wantRate > 1e-6 {
		t.Fatalf("fitted rate %v vs empirical %v", rate, wantRate)
	}
	// SCV in the right ballpark.
	fitSCV, _ := res.MAP.SCV()
	empSCV := stats.SCV(xs)
	if math.Abs(fitSCV-empSCV)/empSCV > 0.5 {
		t.Fatalf("fitted SCV %v vs empirical %v", fitSCV, empSCV)
	}
	// Positive autocorrelation captured.
	r1, _ := res.MAP.LagCorrelation(1)
	if r1 <= 0 {
		t.Fatalf("fitted rho1 = %v, want positive", r1)
	}
	if res.Evaluations < 50 {
		t.Fatalf("fit evaluated only %d candidates; expected an expensive search", res.Evaluations)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitMMPP2([]float64{1, 2}); err == nil {
		t.Fatal("expected error for tiny trace")
	}
	if _, err := FitMMPP2(make([]float64, 100)); err == nil {
		t.Fatal("expected error for zero-mean trace")
	}
}

func TestErlangAnalytics(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		m := Erlang(k, 5)
		if err := m.Validate(); err != nil {
			t.Fatalf("Erlang(%d) invalid: %v", k, err)
		}
		rate, err := m.Rate()
		if err != nil || math.Abs(rate-5) > 1e-9 {
			t.Fatalf("Erlang(%d) rate = %v err %v", k, rate, err)
		}
		scv, err := m.SCV()
		if err != nil || math.Abs(scv-1/float64(k)) > 1e-9 {
			t.Fatalf("Erlang(%d) SCV = %v, want %v", k, scv, 1/float64(k))
		}
		// Renewal process: no interarrival autocorrelation.
		r1, _ := m.LagCorrelation(1)
		if math.Abs(r1) > 1e-9 {
			t.Fatalf("Erlang(%d) rho1 = %v, want 0", k, r1)
		}
	}
}

func TestErlangPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Erlang(0, 1)
}

func TestHyperExpAnalytics(t *testing.T) {
	m := HyperExp(0.2, 20, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("HyperExp invalid: %v", err)
	}
	// Mean interarrival: p/r1 + (1-p)/r2 = 0.2/20 + 0.8/1 = 0.81.
	m1, _, err := m.Moments()
	if err != nil || math.Abs(m1-0.81) > 1e-9 {
		t.Fatalf("HyperExp mean = %v err %v", m1, err)
	}
	scv, _ := m.SCV()
	if scv <= 1 {
		t.Fatalf("HyperExp SCV = %v, want > 1", scv)
	}
	r1, _ := m.LagCorrelation(1)
	if math.Abs(r1) > 1e-9 {
		t.Fatalf("HyperExp rho1 = %v, want 0 (renewal)", r1)
	}
}

func TestHyperExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HyperExp(2, 1, 1)
}

func TestSuperposeRatesAdd(t *testing.T) {
	a := Poisson(3)
	b := MMPP2(10, 2, 0.5, 0.5)
	sup, err := Superpose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sup.Order() != 2 {
		t.Fatalf("superposed order = %d, want 2", sup.Order())
	}
	ra, _ := a.Rate()
	rb, _ := b.Rate()
	rs, err := sup.Rate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs-(ra+rb)) > 1e-9 {
		t.Fatalf("superposed rate %v, want %v", rs, ra+rb)
	}
}

func TestSuperposePoissonIsPoisson(t *testing.T) {
	sup, err := Superpose(Poisson(2), Poisson(5))
	if err != nil {
		t.Fatal(err)
	}
	scv, err := sup.SCV()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scv-1) > 1e-9 {
		t.Fatalf("superposed Poisson SCV = %v, want 1", scv)
	}
	r1, _ := sup.LagCorrelation(1)
	if math.Abs(r1) > 1e-9 {
		t.Fatalf("superposed Poisson rho1 = %v, want 0", r1)
	}
}

func TestSuperposeSimulationMatches(t *testing.T) {
	a := MMPP2(30, 1, 0.2, 0.2)
	b := Poisson(10)
	sup, err := Superpose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantMean, _, err := sup.Moments()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	g, err := NewGen(sup, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := g.Sample(200000)
	if got := stats.Mean(xs); math.Abs(got-wantMean)/wantMean > 0.05 {
		t.Fatalf("superposed sampled mean %v vs analytic %v", got, wantMean)
	}
}

func TestIDCAnalyticVsEmpirical(t *testing.T) {
	m := MMPP2(20, 0.5, 0.1, 0.1)
	ana, err := m.IDC(5000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	g, _ := NewGen(m, rng)
	xs := g.Sample(400000)
	emp := stats.IDC(xs, 2000)
	if emp < ana/4 || emp > ana*4 {
		t.Fatalf("empirical IDC %v far from analytic %v", emp, ana)
	}
}
