// Pre-shard bit-identity goldens: the byte-exact obs snapshot and event
// stream the single-queue gateway produced for a fixed set of chaos-harness
// scenarios, captured in testdata/preshard/ BEFORE the intake was sharded.
// The sharded gateway at P=1 must reproduce these bytes exactly — that is
// the contract that lets every pre-shard golden test keep passing.
//
// Regenerate (only when a PR deliberately changes gateway observability):
//
//	UPDATE_PRESHARD_GOLDEN=1 go test -run TestPreShardGoldenBytes ./internal/gateway/
package gateway_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"deepbat/internal/fault"
	"deepbat/internal/fault/faulttest"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
)

// goldenScenarios pins the scenario set. Everything here is deterministic:
// manual clock, scripted or seeded fault plans, seeded backoff jitter.
func goldenScenarios() []faulttest.Scenario {
	initial := lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 60}
	fallback := lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0}
	one := lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0}
	return []faulttest.Scenario{
		{
			Name:    "golden-retry-success",
			Plan:    fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}}},
			Initial: initial,
			Resilience: gateway.Resilience{
				MaxRetries: 2,
				RetryBase:  time.Millisecond,
				RetryMax:   4 * time.Millisecond,
			},
			JitterSeed: 1,
			SLO:        0.1,
			Steps:      []faulttest.Step{{Enqueue: 2, Await: 2}},
		},
		{
			Name:    "golden-breaker-lifecycle",
			Plan:    fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}, {}}},
			Initial: one,
			Resilience: gateway.Resilience{
				BreakerThreshold: 2,
				BreakerCooldownS: 5,
				Fallback:         fallback,
			},
			SLO: 0.1,
			Steps: []faulttest.Step{
				{Enqueue: 1, Await: 1},
				{Enqueue: 1, Await: 1},
				{Enqueue: 1, Await: 1},
				{AdvanceS: 6, Enqueue: 1, Await: 1},
			},
		},
		{
			Name:    "golden-deadline-expiry",
			Plan:    fault.Plan{},
			Initial: initial,
			Resilience: gateway.Resilience{
				RequestTimeoutS: 1,
			},
			SLO: 0.1,
			Steps: []faulttest.Step{
				{Enqueue: 1},
				{AdvanceS: 2, Enqueue: 1, Await: 2},
			},
		},
		{
			Name: "golden-mixed-chaos",
			Plan: fault.Plan{
				Seed:            7,
				ErrorRate:       0.3,
				StragglerRate:   0.3,
				StragglerFactor: 3,
				ColdSpikeRate:   0.2,
				ColdSpikeS:      0.5,
			},
			Initial: initial,
			Resilience: gateway.Resilience{
				MaxRetries: 5,
				RetryBase:  100 * time.Microsecond,
				RetryMax:   time.Millisecond,
			},
			JitterSeed: 99,
			SLO:        0.1,
			Steps: []faulttest.Step{
				{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
				{AdvanceS: 0.5, Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
				{AdvanceS: 0.5, Enqueue: 2, Await: 2},
			},
		},
	}
}

// TestPreShardGoldenBytes replays every golden scenario and byte-compares
// the obs snapshot and event stream against the pre-shard captures. With
// UPDATE_PRESHARD_GOLDEN=1 it rewrites the captures instead.
func TestPreShardGoldenBytes(t *testing.T) {
	update := os.Getenv("UPDATE_PRESHARD_GOLDEN") != ""
	dir := filepath.Join("testdata", "preshard")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range goldenScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r := faulttest.Run(t, s)
			snapPath := filepath.Join(dir, s.Name+".snapshot.json")
			evPath := filepath.Join(dir, s.Name+".events.json")
			if update {
				if err := os.WriteFile(snapPath, r.Snapshot, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(evPath, r.Events, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantSnap, err := os.ReadFile(snapPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_PRESHARD_GOLDEN=1): %v", err)
			}
			wantEv, err := os.ReadFile(evPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r.Snapshot, wantSnap) {
				t.Errorf("snapshot diverged from pre-shard bytes:\n got: %s\nwant: %s", r.Snapshot, wantSnap)
			}
			if !bytes.Equal(r.Events, wantEv) {
				t.Errorf("events diverged from pre-shard bytes:\n got: %s\nwant: %s", r.Events, wantEv)
			}
		})
	}
}
