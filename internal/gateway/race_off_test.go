//go:build !race

package gateway

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
