package gateway_test

import (
	"testing"
	"time"

	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

// instantBackend returns immediately with a fixed duration and cost, so
// virtual-timer tests control time exclusively through the manual clock.
type instantBackend struct{}

func (instantBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	return 10 * time.Millisecond, 1e-6 * float64(batchSize), nil
}

func newVirtualGateway(t *testing.T, clock *obs.ManualClock, cfg lambda.Config) *gateway.Gateway {
	t.Helper()
	g, err := gateway.New(instantBackend{}, nil, gateway.Config{
		Initial:       cfg,
		Clock:         clock,
		Shards:        1,
		VirtualTimers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestVirtualTimerFlushDue drives the full virtual-timeout lifecycle: a
// partial batch opens a virtual deadline at open-stamp + T, FlushDue is a
// no-op before the deadline, and at the deadline it dispatches the batch
// with timeout accounting — all without any wall timer.
func TestVirtualTimerFlushDue(t *testing.T) {
	clock := &obs.ManualClock{}
	g := newVirtualGateway(t, clock, lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 2})
	defer g.Stop()

	if _, ok := g.NextFlushDeadline(); ok {
		t.Fatal("deadline reported with no open batch")
	}
	clock.Set(1)
	h1 := g.Submit()
	h2 := g.Submit()
	d, ok := g.NextFlushDeadline()
	if !ok {
		t.Fatal("open partial batch reported no deadline")
	}
	if d < 2.999 || d > 3.001 {
		t.Fatalf("deadline = %v, want open stamp 1 + T 2 = 3", d)
	}

	clock.Set(2.5)
	if n := g.FlushDue(); n != 0 {
		t.Fatalf("FlushDue before the deadline dispatched %d batches", n)
	}
	clock.Set(d)
	if n := g.FlushDue(); n != 1 {
		t.Fatalf("FlushDue at the deadline dispatched %d batches, want 1", n)
	}
	r1, r2 := h1.Wait(), h2.Wait()
	if r1.BatchSize != 2 || r2.BatchSize != 2 {
		t.Fatalf("batch sizes %d/%d, want 2/2", r1.BatchSize, r2.BatchSize)
	}
	// Latency for the first request: dispatched at 3, served after the
	// 10ms backend -> 2s of batching delay on the virtual clock (the
	// manual clock is not advanced by the instant backend).
	if r1.LatencyMS < 1999 || r1.LatencyMS > 2001 {
		t.Fatalf("first request latency %.3fms, want ~2000ms", r1.LatencyMS)
	}
	if _, ok := g.NextFlushDeadline(); ok {
		t.Fatal("deadline still reported after the flush")
	}
}

// TestVirtualTimerSizeDispatchClearsDeadline pins that a size-triggered
// dispatch cancels the batch's virtual deadline just as Timer.Stop cancels
// the wall timer.
func TestVirtualTimerSizeDispatchClearsDeadline(t *testing.T) {
	clock := &obs.ManualClock{}
	g := newVirtualGateway(t, clock, lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 5})
	defer g.Stop()

	h1 := g.Submit()
	if _, ok := g.NextFlushDeadline(); !ok {
		t.Fatal("no deadline for the open batch")
	}
	h2 := g.Submit() // fills the batch: synchronous size dispatch
	if r := h2.Wait(); r.BatchSize != 2 {
		t.Fatalf("batch size %d, want 2", r.BatchSize)
	}
	h1.Wait()
	if _, ok := g.NextFlushDeadline(); ok {
		t.Fatal("stale deadline survived the size dispatch")
	}
	clock.Set(100)
	if n := g.FlushDue(); n != 0 {
		t.Fatalf("FlushDue flushed %d batches after a size dispatch", n)
	}
}

// TestVirtualTimersStopStillFlushes pins that Stop's closing flush drains a
// partial batch whose virtual deadline never arrived.
func TestVirtualTimersStopStillFlushes(t *testing.T) {
	clock := &obs.ManualClock{}
	g := newVirtualGateway(t, clock, lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 60})
	h := g.Submit()
	g.Stop()
	if r := h.Wait(); r.Error != "" || r.BatchSize != 1 {
		t.Fatalf("stop flush response = %+v", r)
	}
}
