// Chaos tests: the gateway's resilience layer driven by the deterministic
// fault-injection harness. Every scenario is run twice by
// faulttest.AssertDeterministic, which fails unless the two same-seed runs
// are bit-identical down to the obs JSON snapshot and event-stream bytes.
package gateway_test

import (
	"bytes"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"deepbat/internal/fault"
	"deepbat/internal/fault/faulttest"
	"deepbat/internal/gateway"
	"deepbat/internal/lambda"
)

// invocationCost is the clean-path cost of one batched invocation under the
// default profile and pricing — the golden Stats below are computed from it.
func invocationCost(memoryMB float64, batchSize int) float64 {
	p := lambda.DefaultProfile()
	return lambda.DefaultPricing().InvocationCost(memoryMB, p.ServiceTime(memoryMB, batchSize))
}

func TestChaosScenarios(t *testing.T) {
	initial := lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 60}
	fallback := lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0}
	one := lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0}

	cases := []struct {
		s     faulttest.Scenario
		check func(t *testing.T, r faulttest.Result)
	}{
		{
			// Two injected failures, then success: the batch survives on
			// its retry budget and every request is answered cleanly.
			s: faulttest.Scenario{
				Name:    "retry-success",
				Plan:    fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}}},
				Initial: initial,
				Resilience: gateway.Resilience{
					MaxRetries: 2,
					RetryBase:  time.Millisecond,
					RetryMax:   4 * time.Millisecond,
				},
				JitterSeed: 1,
				SLO:        0.1,
				Steps:      []faulttest.Step{{Enqueue: 2, Await: 2}},
			},
			check: func(t *testing.T, r faulttest.Result) {
				if len(r.Responses) != 2 {
					t.Fatalf("responses = %d", len(r.Responses))
				}
				for _, resp := range r.Responses {
					if resp.Error != "" || resp.BatchSize != 2 {
						t.Fatalf("response = %+v", resp)
					}
				}
				want := gateway.Stats{
					Served: 2, Invocations: 1,
					Retries: 2, BackendFailures: 2,
					TotalCostUSD: invocationCost(2048, 2),
					Config:       initial,
					BreakerState: "closed",
				}
				if r.Stats != want {
					t.Fatalf("stats = %+v, want %+v", r.Stats, want)
				}
				if r.Invocations != 3 {
					t.Fatalf("backend consumed %d invocations, want 3", r.Invocations)
				}
			},
		},
		{
			// Three injected failures exhaust MaxRetries=2: the whole batch
			// fails with the typed terminal error and nothing is billed.
			s: faulttest.Scenario{
				Name:    "retry-exhaustion",
				Plan:    fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {Err: true}}},
				Initial: initial,
				Resilience: gateway.Resilience{
					MaxRetries: 2,
					RetryBase:  time.Millisecond,
					RetryMax:   4 * time.Millisecond,
				},
				JitterSeed: 1,
				SLO:        0.1,
				Steps:      []faulttest.Step{{Enqueue: 2, Await: 2}},
			},
			check: func(t *testing.T, r faulttest.Result) {
				for _, resp := range r.Responses {
					if resp.Error != gateway.ErrBackendFailed.Error() {
						t.Fatalf("response error = %q", resp.Error)
					}
					if resp.CostUSD > 0 {
						t.Fatalf("failed request billed: %+v", resp)
					}
				}
				want := gateway.Stats{
					Retries: 2, BackendFailures: 3, FailedRequests: 2,
					Config:       initial,
					BreakerState: "closed",
				}
				if r.Stats != want {
					t.Fatalf("stats = %+v, want %+v", r.Stats, want)
				}
			},
		},
		{
			// Breaker lifecycle: two consecutive failures open it, the next
			// batch is shed to the fallback configuration, and after the
			// cooldown a successful half-open probe closes it again.
			s: faulttest.Scenario{
				Name:    "breaker-open-half-open-close",
				Plan:    fault.Plan{Script: []fault.Outcome{{Err: true}, {Err: true}, {}, {}}},
				Initial: one,
				Resilience: gateway.Resilience{
					BreakerThreshold: 2,
					BreakerCooldownS: 5,
					Fallback:         fallback,
				},
				SLO: 0.1,
				Steps: []faulttest.Step{
					{Enqueue: 1, Await: 1},              // fail 1
					{Enqueue: 1, Await: 1},              // fail 2 -> breaker opens
					{Enqueue: 1, Await: 1},              // open -> shed to fallback
					{AdvanceS: 6, Enqueue: 1, Await: 1}, // half-open probe -> close
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				shedResp, probeResp := r.Responses[2], r.Responses[3]
				if shedResp.Config != fallback.String() {
					t.Fatalf("shed response served under %q, want fallback %q",
						shedResp.Config, fallback.String())
				}
				if probeResp.Config != one.String() {
					t.Fatalf("probe response served under %q, want active %q",
						probeResp.Config, one.String())
				}
				want := gateway.Stats{
					Served: 2, Invocations: 2,
					BackendFailures: 2, FailedRequests: 2,
					Shed: 1, BreakerOpens: 1,
					TotalCostUSD: invocationCost(1024, 1) + invocationCost(2048, 1),
					Config:       one,
					BreakerState: "closed",
				}
				if r.Stats != want {
					t.Fatalf("stats = %+v, want %+v", r.Stats, want)
				}
				for _, ev := range []string{"breaker_open", "breaker_half_open", "breaker_close"} {
					if !bytes.Contains(r.Events, []byte(ev)) {
						t.Fatalf("event stream missing %q:\n%s", ev, r.Events)
					}
				}
			},
		},
		{
			// Deadline expiry: the first request waits past its 1s deadline
			// while the batch is open; when the second arrival dispatches
			// the batch, the stale request fails fast and only the fresh
			// one reaches the backend.
			s: faulttest.Scenario{
				Name:    "deadline-partial-expiry",
				Plan:    fault.Plan{},
				Initial: initial,
				Resilience: gateway.Resilience{
					RequestTimeoutS: 1,
				},
				SLO: 0.1,
				Steps: []faulttest.Step{
					{Enqueue: 1},
					{AdvanceS: 2, Enqueue: 1, Await: 2},
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				expired, served := r.Responses[0], r.Responses[1]
				if expired.Error != gateway.ErrDeadlineExceeded.Error() {
					t.Fatalf("first response = %+v, want deadline error", expired)
				}
				if expired.LatencyMS <= 1999 || expired.LatencyMS >= 2001 {
					t.Fatalf("expired latency = %gms, want ~2000", expired.LatencyMS)
				}
				if served.Error != "" || served.BatchSize != 1 {
					t.Fatalf("second response = %+v, want clean singleton", served)
				}
				want := gateway.Stats{
					Served: 1, Invocations: 1, DeadlineExpired: 1,
					TotalCostUSD: invocationCost(2048, 1),
					Config:       initial,
					BreakerState: "closed",
				}
				if r.Stats != want {
					t.Fatalf("stats = %+v, want %+v", r.Stats, want)
				}
			},
		},
		{
			// Full expiry on the closing flush: both buffered requests are
			// past their deadline when Stop flushes the open batch, so the
			// backend is never invoked.
			s: faulttest.Scenario{
				Name:    "deadline-full-expiry-on-flush",
				Plan:    fault.Plan{},
				Initial: lambda.Config{MemoryMB: 2048, BatchSize: 3, TimeoutS: 60},
				Resilience: gateway.Resilience{
					RequestTimeoutS: 1,
				},
				SLO: 0.1,
				Steps: []faulttest.Step{
					{Enqueue: 2},
					{AdvanceS: 2},
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				for _, resp := range r.Responses {
					if resp.Error != gateway.ErrDeadlineExceeded.Error() {
						t.Fatalf("response = %+v, want deadline error", resp)
					}
				}
				want := gateway.Stats{
					DeadlineExpired: 2,
					Config:          lambda.Config{MemoryMB: 2048, BatchSize: 3, TimeoutS: 60},
					BreakerState:    "closed",
				}
				if r.Stats != want {
					t.Fatalf("stats = %+v, want %+v", r.Stats, want)
				}
				if r.Invocations != 0 {
					t.Fatalf("backend invoked %d times for fully expired batch", r.Invocations)
				}
			},
		},
		{
			// Decide errors degrade gracefully: the injected controller
			// failure keeps the last good configuration active and is
			// counted, and the next request still serves under it.
			s: faulttest.Scenario{
				Name:      "decide-error-keeps-last-good",
				Plan:      fault.Plan{DecideErrorRate: 1},
				Initial:   one,
				SLO:       0.1,
				WindowLen: 2,
				Decide: func(window []float64) (lambda.Config, error) {
					return lambda.Config{MemoryMB: 1024, BatchSize: 2, TimeoutS: 0.01}, nil
				},
				Steps: []faulttest.Step{
					{Enqueue: 3, Await: 3},
					{Decide: true},
					{Enqueue: 1, Await: 1},
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				last := r.Responses[len(r.Responses)-1]
				if last.Config != one.String() {
					t.Fatalf("post-error request served under %q, want last-good %q",
						last.Config, one.String())
				}
				if r.Stats.DecideErrors != 1 || r.Stats.Reconfigurations != 0 {
					t.Fatalf("stats = %+v, want 1 decide error and 0 reconfigurations", r.Stats)
				}
				if r.Stats.Config != one {
					t.Fatalf("config drifted to %+v", r.Stats.Config)
				}
				if !bytes.Contains(r.Events, []byte("decide_error")) {
					t.Fatalf("event stream missing decide_error:\n%s", r.Events)
				}
			},
		},
		{
			// Control: with no injected decide error the same scenario
			// reconfigures — proving the degradation path above is the
			// injection, not a broken controller.
			s: faulttest.Scenario{
				Name:      "decide-applies-without-fault",
				Plan:      fault.Plan{},
				Initial:   one,
				SLO:       0.1,
				WindowLen: 2,
				Decide: func(window []float64) (lambda.Config, error) {
					return lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0}, nil
				},
				Steps: []faulttest.Step{
					{Enqueue: 3, Await: 3},
					{Decide: true},
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				want := lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0}
				if r.Stats.Reconfigurations != 1 || r.Stats.Config != want {
					t.Fatalf("stats = %+v, want reconfigured to %+v", r.Stats, want)
				}
			},
		},
		{
			// Seeded mixed chaos: errors, stragglers, and cold-start spikes
			// drawn from the hash streams. The exact outcome is whatever the
			// seed dictates — the assertions are the conservation laws and
			// the bit-determinism check AssertDeterministic applies.
			s: faulttest.Scenario{
				Name: "seeded-mixed-chaos",
				Plan: fault.Plan{
					Seed:            7,
					ErrorRate:       0.3,
					StragglerRate:   0.3,
					StragglerFactor: 3,
					ColdSpikeRate:   0.2,
					ColdSpikeS:      0.5,
				},
				Initial: initial,
				Resilience: gateway.Resilience{
					MaxRetries: 5,
					RetryBase:  100 * time.Microsecond,
					RetryMax:   time.Millisecond,
				},
				JitterSeed: 99,
				SLO:        0.1,
				Steps: []faulttest.Step{
					{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
					{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
					{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
					{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
					{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
				},
			},
			check: func(t *testing.T, r faulttest.Result) {
				if got := r.Stats.Served + r.Stats.FailedRequests; got != 20 {
					t.Fatalf("served %d + failed %d != 20 enqueued",
						r.Stats.Served, r.Stats.FailedRequests)
				}
				if r.Stats.BackendFailures != r.Stats.Retries+r.Stats.FailedRequests/2 {
					t.Fatalf("failure accounting inconsistent: %+v", r.Stats)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.s.Name, func(t *testing.T) {
			r := faulttest.AssertDeterministic(t, tc.s)
			tc.check(t, r)
		})
	}
}

// TestChaosNoLeakedGoroutines extends the goroutine-leak regression to the
// resilience machinery: retry backoff timers and breaker bookkeeping must
// all be joined by Stop, even when batches fail mid-retry.
func TestChaosNoLeakedGoroutines(t *testing.T) {
	s := faulttest.Scenario{
		Name:    "leak-probe",
		Plan:    fault.Plan{Seed: 3, ErrorRate: 0.5},
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 60},
		Resilience: gateway.Resilience{
			MaxRetries:       3,
			RetryBase:        time.Millisecond,
			RetryMax:         4 * time.Millisecond,
			RequestTimeoutS:  10,
			BreakerThreshold: 2,
			BreakerCooldownS: 1,
			Fallback:         lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0},
		},
		JitterSeed: 5,
		SLO:        0.1,
		Steps: []faulttest.Step{
			{Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2}, {Enqueue: 2, Await: 2},
		},
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		faulttest.Run(t, s)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestChaosSoak hammers a real-time gateway (wall clock, live batch timers)
// with concurrent clients against a seeded faulty backend. Bounded: ~1s by
// default, CHAOS_SOAK_S seconds under `make chaos`. It asserts conservation
// (every request answered exactly once) and clean shutdown under fire.
func TestChaosSoak(t *testing.T) {
	dur := time.Second
	if v := os.Getenv("CHAOS_SOAK_S"); v != "" {
		s, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_SOAK_S = %q: %v", v, err)
		}
		dur = time.Duration(s) * time.Second
	}
	inj := fault.NewInjector(fault.Plan{
		Seed:          11,
		ErrorRate:     0.2,
		StragglerRate: 0.1,
		ColdSpikeRate: 0.05,
		ColdSpikeS:    0.001,
	})
	backend := &fault.FaultyBackend{
		Inner: gateway.SimulatedBackend{
			Profile: lambda.DefaultProfile(),
			Pricing: lambda.DefaultPricing(),
		},
		Inj: inj,
	}
	g, err := gateway.New(backend, nil, gateway.Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.002},
		SLO:     0.1,
		Resilience: gateway.Resilience{
			MaxRetries:       2,
			RetryBase:        200 * time.Microsecond,
			RetryMax:         time.Millisecond,
			Jitter:           rand.New(rand.NewSource(13)),
			RequestTimeoutS:  0.25,
			BreakerThreshold: 5,
			BreakerCooldownS: 0.01,
			Fallback:         lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	var sent, answered, errored int64
	var mu sync.Mutex
	stopAt := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				ch := g.Enqueue()
				mu.Lock()
				sent++
				mu.Unlock()
				select {
				case resp := <-ch:
					mu.Lock()
					answered++
					if resp.Error != "" {
						errored++
					}
					mu.Unlock()
				case <-time.After(5 * time.Second):
					t.Error("request never answered")
					return
				}
			}
		}()
	}
	wg.Wait()
	g.Stop()
	mu.Lock()
	defer mu.Unlock()
	if answered != sent {
		t.Fatalf("answered %d of %d requests", answered, sent)
	}
	st := g.Stats()
	if int64(st.Served+st.FailedRequests+st.DeadlineExpired) != sent {
		t.Fatalf("conservation violated: stats %+v vs %d sent", st, sent)
	}
	if int64(st.FailedRequests+st.DeadlineExpired) != errored {
		t.Fatalf("error accounting: stats %+v vs %d errored responses", st, errored)
	}
	if sent == 0 {
		t.Fatal("soak sent no requests")
	}
	t.Logf("soak: %d requests, %d served, %d failed, %d expired, %d retries, %d breaker opens",
		sent, st.Served, st.FailedRequests, st.DeadlineExpired, st.Retries, st.BreakerOpens)
}
