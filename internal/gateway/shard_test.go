package gateway

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

// immediateConfig is the B = 1 steady-state serving configuration the pooled
// admit-path tests run under: every Submit dispatches synchronously.
func immediateConfig(shards int) Config {
	return Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
		Shards:  shards,
	}
}

// TestShardOfFrozen pins the hash: shardOf is a pure function of the request
// ID and the published splitmix64 constants, so these routings must never
// change — a silent change would re-route live traffic and break the
// reproducibility contract of the loadgen sweep tables.
func TestShardOfFrozen(t *testing.T) {
	frozen := map[int][]int{
		2: {1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 1},
		4: {1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1, 3, 3, 2, 1, 3},
		8: {1, 6, 5, 2, 2, 0, 7, 6, 4, 2, 5, 3, 7, 6, 5, 7},
	}
	for p, want := range frozen {
		for i, w := range want {
			if got := shardOf(uint64(i+1), p); got != w {
				t.Errorf("shardOf(%d, %d) = %d, want %d", i+1, p, got, w)
			}
		}
	}
}

// TestShardOfIgnoresGOMAXPROCS proves routing is independent of the
// scheduler configuration: the same IDs map to the same shards whatever
// GOMAXPROCS is while the process runs.
func TestShardOfIgnoresGOMAXPROCS(t *testing.T) {
	const shards = 8
	baseline := make([]int, 256)
	for id := range baseline {
		baseline[id] = shardOf(uint64(id), shards)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for id := range baseline {
			if got := shardOf(uint64(id), shards); got != baseline[id] {
				t.Fatalf("GOMAXPROCS=%d: shardOf(%d, %d) = %d, want %d",
					procs, id, shards, got, baseline[id])
			}
		}
	}
}

// TestShardOfCoversAllShards checks the hash actually spreads: over a modest
// ID range every shard receives traffic, and single-shard routing is always
// shard 0.
func TestShardOfCoversAllShards(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		hit := make([]int, p)
		for id := uint64(1); id <= 4096; id++ {
			hit[shardOf(id, p)]++
		}
		for sh, n := range hit {
			if n == 0 {
				t.Errorf("P=%d: shard %d received no traffic over 4096 ids", p, sh)
			}
		}
	}
	for id := uint64(0); id < 1000; id++ {
		if shardOf(id, 1) != 0 {
			t.Fatalf("shardOf(%d, 1) != 0", id)
		}
	}
}

// TestDoZeroAllocSteadyState is the tentpole acceptance check in test form:
// once the pools are warm, a full admit→enqueue→dispatch→respond cycle on
// the pooled path performs zero heap allocations.
func TestDoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	for _, shards := range []int{1, 4} {
		g, err := New(fastBackend(), nil, immediateConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			g.Do() // warm the per-shard pools
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if resp := g.Do(); resp.Error != "" {
				t.Fatalf("request failed: %s", resp.Error)
			}
		})
		g.Stop()
		if allocs != 0 {
			t.Errorf("P=%d: Do allocates %.1f objects/op at steady state, want 0", shards, allocs)
		}
	}
}

// TestPooledResponsesNeverAlias hammers the pooled path from concurrent
// clients and checks conservation and identity: every response carries the
// ID of a real request, no ID is answered twice, and the merged Stats agree
// with the totals. Run with -tags poolcheck (make race does) for the
// poison-on-put variant of the same guarantee.
func TestPooledResponsesNeverAlias(t *testing.T) {
	const clients, perClient = 8, 200
	g, err := New(fastBackend(), nil, immediateConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(chan int, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp := g.Do()
				if resp.Error != "" {
					t.Errorf("request failed: %s", resp.Error)
					return
				}
				seen <- resp.ID
			}
		}()
	}
	wg.Wait()
	g.Stop()
	close(seen)
	ids := make(map[int]bool)
	for id := range seen {
		if id < 1 || id > clients*perClient {
			t.Fatalf("response carries impossible id %d", id)
		}
		if ids[id] {
			t.Fatalf("id %d answered twice — recycled waiter aliased a previous request", id)
		}
		ids[id] = true
	}
	if len(ids) != clients*perClient {
		t.Fatalf("answered %d distinct requests, want %d", len(ids), clients*perClient)
	}
	if st := g.Stats(); st.Served != clients*perClient {
		t.Fatalf("Stats.Served = %d, want %d", st.Served, clients*perClient)
	}
}

// TestPoolsRecycleWaiters is the white-box half of the pool story: after
// traffic drains, the shards hold recycled waiters (the steady state reuses
// instead of allocating), and the free-lists never exceed their bounds.
func TestPoolsRecycleWaiters(t *testing.T) {
	g, err := New(fastBackend(), nil, immediateConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	for i := 0; i < 100; i++ {
		g.Do()
	}
	recycled := 0
	for _, s := range g.shards {
		s.mu.Lock()
		recycled += len(s.freeW)
		if s.freeSlot.Load() != nil {
			// A serial request loop parks its waiter in the lock-free
			// exchange slot rather than the list.
			recycled++
		}
		if len(s.freeW) > maxFreeWaiters || len(s.freeB) > maxFreeBatches {
			t.Errorf("shard %d free-lists exceed bounds: %d waiters, %d batches",
				s.idx, len(s.freeW), len(s.freeB))
		}
		s.mu.Unlock()
	}
	if recycled == 0 {
		t.Fatal("no waiters recycled after 100 pooled requests")
	}
}

// TestPerShardBreakerIsolation drives one shard's breaker open and checks
// isolation semantics: the open shard sheds to the fallback configuration
// while other shards keep serving the active one, and the merged state
// reported by Breaker()/Stats is Open as long as any shard is open.
func TestPerShardBreakerIsolation(t *testing.T) {
	fallback := lambda.Config{MemoryMB: 512, BatchSize: 1, TimeoutS: 0}
	fb := &flakyBackend{inner: fastBackend()}
	g, err := New(fb, nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
		Shards:  2,
		Resilience: Resilience{
			BreakerThreshold: 1,
			BreakerCooldownS: 1e9, // never half-opens during the test
			Fallback:         fallback,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	// IDs are assigned sequentially from 1; precompute each one's route.
	route := func(id int) int { return shardOf(uint64(id), 2) }
	next := 1
	// Fail exactly one request routed to shard 0 — its breaker (threshold
	// 1, no retries) opens.
	for route(next) != 0 {
		g.Do()
		next++
	}
	fb.fail.Store(true)
	if resp := g.Do(); resp.Error == "" {
		t.Fatal("expected the tripping request to fail")
	}
	fb.fail.Store(false)
	next++

	if got := g.Breaker(); got != BreakerOpen {
		t.Fatalf("merged breaker = %v, want open", got)
	}
	if st := g.Stats(); st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("stats breaker = %q opens = %d, want open/1", st.BreakerState, st.BreakerOpens)
	}
	if s1 := g.shards[1]; BreakerState(s1.brMirror.Load()) != BreakerClosed {
		t.Fatal("shard 1's breaker tripped from shard 0's failures")
	}

	// Shard 1 still serves the active configuration; shard 0 sheds to the
	// fallback.
	sawActive, sawShed := false, false
	for i := 0; i < 16 && !(sawActive && sawShed); i++ {
		sh := route(next)
		resp := g.Do()
		next++
		if resp.Error != "" {
			t.Fatalf("request on shard %d failed: %s", sh, resp.Error)
		}
		switch sh {
		case 0:
			if resp.Config != fallback.String() {
				t.Fatalf("open shard served %q, want fallback %q", resp.Config, fallback.String())
			}
			sawShed = true
		case 1:
			if resp.Config != g.initial.str {
				t.Fatalf("healthy shard served %q, want active %q", resp.Config, g.initial.str)
			}
			sawActive = true
		}
	}
	if !sawActive || !sawShed {
		t.Fatalf("route coverage incomplete: active=%v shed=%v", sawActive, sawShed)
	}
}

// flakyBackend fails invocations while fail is set.
type flakyBackend struct {
	inner SimulatedBackend
	fail  atomic.Bool
}

func (f *flakyBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	if f.fail.Load() {
		return 0, 0, ErrBackendFailed
	}
	return f.inner.Execute(cfg, batchSize)
}

// TestMultiShardTimersFlushIndependently checks each shard runs its own
// timeout batcher: with B > 1 and a short T, requests scattered across
// shards are all answered by per-shard timer flushes.
func TestMultiShardTimersFlushIndependently(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.01},
		SLO:     1,
		Shards:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	var chans []<-chan Response
	for i := 0; i < 9; i++ {
		chans = append(chans, g.Enqueue())
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Error != "" {
				t.Fatalf("request %d failed: %s", i, resp.Error)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never flushed", i)
		}
	}
	if st := g.Stats(); st.Served != 9 {
		t.Fatalf("served %d, want 9", st.Served)
	}
}

// TestEnqueueAndDoAgreeAtP1 runs the same traffic through the legacy
// channel path and the pooled path on single-shard gateways and checks the
// externally visible accounting is identical — the pooled path changes
// mechanics, not semantics.
func TestEnqueueAndDoAgreeAtP1(t *testing.T) {
	run := func(pooled bool) Stats {
		conf := immediateConfig(1)
		conf.Clock = &obs.ManualClock{} // freeze latency so runs compare exactly
		g, err := New(fastBackend(), nil, conf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if pooled {
				g.Do()
			} else {
				<-g.Enqueue()
			}
		}
		g.Stop()
		return g.Stats()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("legacy and pooled paths diverge:\nlegacy: %+v\npooled: %+v", a, b)
	}
}
