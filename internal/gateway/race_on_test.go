//go:build race

package gateway

// raceEnabled reports that this binary was built with -race. The race
// detector adds bookkeeping allocations, so allocation-budget tests must
// skip under it.
const raceEnabled = true
