//go:build !poolcheck

package gateway

// Pool-hygiene instrumentation is compiled out unless the poolcheck build
// tag is set; pool_check_on.go holds the poison-on-put variants that
// `make race` runs against the gateway tests.

func poisonWaiter(w *waiter) {}

func checkWaiterClean(w *waiter) {}
