// Package gateway is a real-time HTTP front-end for DeepBAT: the
// On-Top-of-Platform deployment of Fig. 2 running on the wall clock instead
// of simulated time. Inference requests POSTed to /infer are accumulated in
// a batching buffer (dispatch on batch size B or timeout T), executed on a
// pluggable serverless backend, and answered individually; a background
// control loop feeds the recent interarrival window to a decision function
// (the DeepBAT optimizer, or any other controller) and live-reconfigures
// (M, B, T).
package gateway

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/stats"
)

// Backend executes one batched invocation under a configuration and returns
// its duration and USD cost. Implementations may block for the duration
// (real platforms) or return immediately (simulations).
type Backend interface {
	Execute(cfg lambda.Config, batchSize int) (time.Duration, float64)
}

// SimulatedBackend models AWS Lambda: deterministic service times from a
// profile, the pay-as-you-go pricing, and an optional wall-clock scale (1.0
// sleeps for the real duration; 0 returns instantly).
type SimulatedBackend struct {
	Profile   lambda.Profile
	Pricing   lambda.Pricing
	TimeScale float64
}

// Execute implements Backend.
func (s SimulatedBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64) {
	svc := s.Profile.ServiceTime(cfg.MemoryMB, batchSize)
	if s.TimeScale > 0 {
		time.Sleep(time.Duration(svc * s.TimeScale * float64(time.Second)))
	}
	return time.Duration(svc * float64(time.Second)), s.Pricing.InvocationCost(cfg.MemoryMB, svc)
}

// DecideFunc maps the recent interarrival window (seconds) to a new
// configuration.
type DecideFunc func(window []float64) (lambda.Config, error)

// Config parameterizes a Gateway.
type Config struct {
	// Initial is the configuration served before the first decision.
	Initial lambda.Config
	// SLO is the latency objective used for violation accounting.
	SLO float64
	// DecideEvery is the control period; zero disables reconfiguration.
	DecideEvery time.Duration
	// WindowLen is the number of interarrivals handed to Decide.
	WindowLen int
}

// Stats is the JSON document served at /stats.
type Stats struct {
	Served           int           `json:"served"`
	Invocations      int           `json:"invocations"`
	Reconfigurations int           `json:"reconfigurations"`
	VCRPercent       float64       `json:"vcr_percent"`
	P95LatencyMS     float64       `json:"p95_latency_ms"`
	TotalCostUSD     float64       `json:"total_cost_usd"`
	Config           lambda.Config `json:"config"`
}

// inferResponse is the JSON answer to one inference request.
type inferResponse struct {
	ID        int     `json:"id"`
	BatchSize int     `json:"batch_size"`
	LatencyMS float64 `json:"latency_ms"`
	CostUSD   float64 `json:"cost_usd"`
	Config    string  `json:"config"`
}

type waiter struct {
	id       int
	arriveAt time.Time
	done     chan inferResponse
}

// Gateway is the running front-end. Create with New, expose via Handler,
// stop with Close.
type Gateway struct {
	backend Backend
	decide  DecideFunc
	conf    Config

	mu        sync.Mutex
	cfg       lambda.Config
	pending   []waiter
	batchCfg  lambda.Config // parameters captured when the open batch started
	timer     *time.Timer
	parser    *core.WorkloadParser
	lastID    int
	served    int
	invoked   int
	reconfigs int
	latencies []float64
	totalCost float64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds and starts a gateway. decide may be nil (static configuration).
func New(backend Backend, decide DecideFunc, conf Config) (*Gateway, error) {
	if !conf.Initial.Valid() {
		return nil, errors.New("gateway: invalid initial configuration")
	}
	if conf.WindowLen <= 0 {
		conf.WindowLen = 64
	}
	g := &Gateway{
		backend: backend,
		decide:  decide,
		conf:    conf,
		cfg:     conf.Initial,
		parser:  core.NewWorkloadParser(conf.WindowLen),
		stop:    make(chan struct{}),
	}
	if decide != nil && conf.DecideEvery > 0 {
		g.wg.Add(1)
		//lint:allow goroutine-discipline long-lived control loop; joined via g.wg.Wait in Close
		go g.controlLoop()
	}
	return g, nil
}

// Close stops the control loop and flushes any buffered requests.
func (g *Gateway) Close() {
	g.mu.Lock()
	select {
	case <-g.stop:
		g.mu.Unlock()
		return
	default:
	}
	close(g.stop)
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg)
	}
	g.wg.Wait()
}

// controlLoop periodically re-optimizes from the parser's window.
func (g *Gateway) controlLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.conf.DecideEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.mu.Lock()
		full := g.parser.Full()
		window := g.parser.Window()
		g.mu.Unlock()
		if !full {
			continue
		}
		cfg, err := g.decide(window)
		if err != nil || !cfg.Valid() {
			continue
		}
		g.mu.Lock()
		if cfg != g.cfg {
			g.cfg = cfg
			g.reconfigs++
		}
		g.mu.Unlock()
	}
}

// Config returns the active configuration.
func (g *Gateway) Config() lambda.Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// Handler returns the HTTP mux: POST /infer, GET /stats, GET /config.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", g.handleInfer)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/config", g.handleConfig)
	return mux
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	done := g.enqueue(time.Now())
	select {
	case resp := <-done:
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The response was already committed; nothing sensible to do.
			return
		}
	case <-r.Context().Done():
		// Client went away; the batch result is discarded for this waiter.
		http.Error(w, "client cancelled", http.StatusRequestTimeout)
	}
}

// enqueue registers an arrival and returns its completion channel.
func (g *Gateway) enqueue(now time.Time) chan inferResponse {
	g.mu.Lock()
	g.lastID++
	g.parser.Observe(float64(now.UnixNano()) / 1e9)
	wtr := waiter{id: g.lastID, arriveAt: now, done: make(chan inferResponse, 1)}
	if len(g.pending) == 0 {
		// Opening a new batch: snapshot the active parameters and arm the
		// timeout.
		g.batchCfg = g.cfg
		g.pending = append(g.pending, wtr)
		if g.batchCfg.BatchSize > 1 && g.batchCfg.TimeoutS > 0 {
			g.timer = time.AfterFunc(time.Duration(g.batchCfg.TimeoutS*float64(time.Second)), g.flushTimeout)
		} else {
			// B = 1 or T = 0: serve immediately, no accumulation.
			batch, cfg := g.takeBatchLocked()
			g.mu.Unlock()
			//lint:allow goroutine-discipline request-scoped batch execution; each waiter is joined on its done channel by handleInfer
			go g.execute(batch, cfg)
			return wtr.done
		}
		g.mu.Unlock()
		return wtr.done
	}
	g.pending = append(g.pending, wtr)
	if len(g.pending) >= g.batchCfg.BatchSize {
		batch, cfg := g.takeBatchLocked()
		g.mu.Unlock()
		//lint:allow goroutine-discipline request-scoped batch execution; each waiter is joined on its done channel by handleInfer
		go g.execute(batch, cfg)
		return wtr.done
	}
	g.mu.Unlock()
	return wtr.done
}

// flushTimeout dispatches the open batch when its timer fires.
func (g *Gateway) flushTimeout() {
	g.mu.Lock()
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg)
	}
}

// takeBatchLocked removes and returns the pending batch together with the
// parameters it was opened under. Callers hold mu.
func (g *Gateway) takeBatchLocked() ([]waiter, lambda.Config) {
	batch := g.pending
	g.pending = nil
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	return batch, g.batchCfg
}

// execute runs a batch on the backend and resolves every waiter.
func (g *Gateway) execute(batch []waiter, cfg lambda.Config) {
	if cfg.BatchSize == 0 {
		cfg = g.conf.Initial
	}
	dur, cost := g.backend.Execute(cfg, len(batch))
	finished := time.Now()
	per := cost / float64(len(batch))
	g.mu.Lock()
	g.invoked++
	g.totalCost += cost
	for _, wtr := range batch {
		lat := finished.Sub(wtr.arriveAt)
		g.served++
		g.latencies = append(g.latencies, lat.Seconds())
		wtr.done <- inferResponse{
			ID:        wtr.id,
			BatchSize: len(batch),
			LatencyMS: float64(lat) / float64(time.Millisecond),
			CostUSD:   per,
			Config:    cfg.String(),
		}
	}
	_ = dur
	g.mu.Unlock()
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	p95, _ := stats.Percentile(g.latencies, 95)
	s := Stats{
		Served:           g.served,
		Invocations:      g.invoked,
		Reconfigurations: g.reconfigs,
		VCRPercent:       stats.VCR(g.latencies, g.conf.SLO),
		P95LatencyMS:     p95 * 1000,
		TotalCostUSD:     g.totalCost,
		Config:           g.cfg,
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) handleConfig(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Config()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
