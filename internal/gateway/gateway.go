// Package gateway is a real-time HTTP front-end for DeepBAT: the
// On-Top-of-Platform deployment of Fig. 2 running on the wall clock instead
// of simulated time. Inference requests POSTed to /infer are accumulated in
// a batching buffer (dispatch on batch size B or timeout T), executed on a
// pluggable serverless backend, and answered individually; a background
// control loop feeds the recent interarrival window to a decision function
// (the DeepBAT optimizer, or any other controller) and live-reconfigures
// (M, B, T).
//
// Intake is sharded: request IDs hash (seed-stable splitmix64) onto P
// independent batcher shards, each with its own queue, batch timer, circuit
// breaker, and object pools, so admission never funnels through one mutex.
// The optimizer's configuration fans out to shards through an atomic
// pointer; per-shard tallies merge in shard order, so deterministic drivers
// see deterministic merged figures, and P = 1 reproduces the single-queue
// gateway bit for bit (see testdata/preshard). The pooled Submit/Do path is
// allocation-free at steady state; Enqueue keeps the original
// channel-per-request contract for the HTTP handler and as the baseline the
// gateway benchmarks compare against.
//
// The serving path is resilient to backend and controller faults
// (internal/fault is the matching injection layer): failed invocations are
// retried with capped exponential backoff and jitter from an injected PRNG,
// per-request deadlines fail fast with a typed error, a consecutive-failure
// circuit breaker sheds to a configurable safe fallback configuration, and
// Decide errors degrade gracefully to the last good configuration. All
// latency, deadline, and breaker accounting reads an injected obs.Clock, so
// the chaos-test harness (internal/fault/faulttest) can drive the gateway on
// a manual clock and assert bit-identical behaviour across same-seed runs.
//
// Every gateway carries an obs.Registry and obs.Recorder: per-request
// latency/cost/violation series, dispatch-cause counters, retry/shed/breaker
// series, and reconfiguration events, exposed in Prometheus text format at
// /metrics and as a JSON snapshot at /metrics.json (see the README metric
// reference).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
)

// Backend executes one batched invocation under a configuration and returns
// its duration, USD cost, and an error when the invocation failed.
// Implementations may block for the duration (real platforms) or return
// immediately (simulations). A returned error counts as a failed attempt
// against the gateway's retry budget and circuit breaker.
type Backend interface {
	Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error)
}

// SimulatedBackend models AWS Lambda: deterministic service times from a
// profile, the pay-as-you-go pricing, and an optional wall-clock scale (1.0
// sleeps for the real duration; 0 returns instantly). It never fails; wrap
// it in a fault.FaultyBackend to inject errors.
type SimulatedBackend struct {
	Profile   lambda.Profile
	Pricing   lambda.Pricing
	TimeScale float64
}

// Execute implements Backend.
func (s SimulatedBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	svc := s.Profile.ServiceTime(cfg.MemoryMB, batchSize)
	if s.TimeScale > 0 {
		time.Sleep(time.Duration(svc * s.TimeScale * float64(time.Second)))
	}
	return time.Duration(svc * float64(time.Second)), s.Pricing.InvocationCost(cfg.MemoryMB, svc), nil
}

// DecideFunc maps the recent interarrival window (seconds) to a new
// configuration.
type DecideFunc func(window []float64) (lambda.Config, error)

// Typed serving errors, surfaced to clients in Response.Error (and mapped to
// HTTP 504/502 by the /infer handler).
var (
	// ErrDeadlineExceeded fails a request whose per-request deadline
	// passed before its batch executed.
	ErrDeadlineExceeded = errors.New("gateway: request deadline exceeded")
	// ErrBackendFailed fails a batch whose retry budget was exhausted.
	ErrBackendFailed = errors.New("gateway: backend failed after retries")
)

// BreakerState enumerates the circuit-breaker states, in the order the
// gateway_breaker_state gauge reports them.
type BreakerState int

// The breaker state machine: Closed --threshold consecutive failures-->
// Open --cooldown--> HalfOpen --probe success--> Closed (probe failure
// reopens).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Resilience configures the gateway's failure handling. The zero value
// disables everything: no retries, no deadlines, no breaker — the behaviour
// of the pre-resilience gateway.
type Resilience struct {
	// MaxRetries is how many times a failed batch invocation is retried
	// before the batch fails with ErrBackendFailed (0 = no retries).
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// retry and is capped at RetryMax. Zero retries immediately.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Jitter, when non-nil, is the PRNG backoff jitter is drawn from:
	// each wait is scaled by a uniform factor in [0.5, 1). nil disables
	// jitter, making backoff fully deterministic.
	Jitter *rand.Rand
	// RequestTimeoutS is the per-request deadline in clock seconds
	// (0 = none). A request whose deadline passes before its batch
	// executes — or between retries — fails fast with ErrDeadlineExceeded
	// instead of holding the batch.
	RequestTimeoutS float64
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed invocation attempts (0 = breaker disabled).
	// With sharded intake each shard runs its own breaker; the threshold
	// counts consecutive failures per shard.
	BreakerThreshold int
	// BreakerCooldownS is how long (clock seconds) the breaker stays open
	// before admitting a half-open probe on the active configuration.
	BreakerCooldownS float64
	// Fallback is the safe configuration batches are served under while
	// the breaker is open; the zero value falls back to Config.Initial.
	Fallback lambda.Config
}

// Config parameterizes a Gateway.
type Config struct {
	// Initial is the configuration served before the first decision.
	Initial lambda.Config
	// SLO is the latency objective used for violation accounting.
	SLO float64
	// DecideEvery is the control period; zero disables the periodic loop
	// (decisions can still be forced with DecideNow).
	DecideEvery time.Duration
	// WindowLen is the number of interarrivals handed to Decide.
	WindowLen int
	// Obs, when non-nil, is the metric registry the gateway records into;
	// nil creates a private one. Injecting a shared registry lets one
	// /metrics page aggregate several components.
	Obs *obs.Registry
	// EventCap bounds the reconfiguration/error event stream
	// (0 = obs.DefaultRecorderCap).
	EventCap int
	// Clock supplies the timestamps used for latency, deadline, and
	// breaker accounting (nil = wall clock). The chaos harness injects an
	// obs.ManualClock to make whole runs bit-deterministic.
	Clock obs.Clock
	// Resilience configures retries, deadlines, and the circuit breaker.
	Resilience Resilience
	// Shards is the number of independent batcher shards intake is hashed
	// across (0 = GOMAXPROCS). Shards = 1 reproduces the single-queue
	// gateway bit for bit; batching-sensitive tests pin it. Each shard
	// accumulates its own batches, so with P shards a size-B dispatch
	// needs B same-shard arrivals, not B total.
	Shards int
	// VirtualTimers disables the wall-clock batch timeout timers. Instead
	// of arming time.AfterFunc per opened batch, shards record the batch's
	// virtual flush deadline (open stamp + TimeoutS on the injected Clock),
	// and a serialized driver honours it with NextFlushDeadline/FlushDue.
	// This is how internal/replay runs trace time through the real batching
	// hot path deterministically: timeouts fire exactly at their modeled
	// instant, in shard order, on the driver's goroutine. Leave false for
	// wall-clock serving.
	VirtualTimers bool
}

// Stats is the JSON document served at /stats.
type Stats struct {
	Served           int           `json:"served"`
	Invocations      int           `json:"invocations"`
	Reconfigurations int           `json:"reconfigurations"`
	VCRPercent       float64       `json:"vcr_percent"`
	P95LatencyMS     float64       `json:"p95_latency_ms"`
	TotalCostUSD     float64       `json:"total_cost_usd"`
	Config           lambda.Config `json:"config"`
	// Resilience accounting. Served counts successfully answered
	// requests only; failures and deadline expiries are broken out here.
	Retries         int    `json:"retries"`
	BackendFailures int    `json:"backend_failures"`
	FailedRequests  int    `json:"failed_requests"`
	DeadlineExpired int    `json:"deadline_expired"`
	Shed            int    `json:"shed"`
	BreakerOpens    int    `json:"breaker_opens"`
	BreakerState    string `json:"breaker_state"`
	DecideErrors    int    `json:"decide_errors"`
}

// Response is the JSON answer to one inference request. Error is empty on
// success; on failure it carries the typed error string
// (ErrDeadlineExceeded, ErrBackendFailed) and the latency/cost fields
// reflect the time spent before giving up.
type Response struct {
	ID        int     `json:"id"`
	BatchSize int     `json:"batch_size"`
	LatencyMS float64 `json:"latency_ms"`
	CostUSD   float64 `json:"cost_usd"`
	Config    string  `json:"config"`
	Error     string  `json:"error,omitempty"`
}

// activeCfg pairs a serving configuration with its pre-rendered String() so
// the steady-state dispatch path never formats (= never allocates) a config
// label per response. Instances are immutable and fan out to shards through
// the gateway's atomic pointer.
type activeCfg struct {
	cfg lambda.Config
	str string
}

// dispatch causes, as recorded in the gateway_dispatch_*_total counters.
const (
	causeSize      = "size"      // batch reached B
	causeTimeout   = "timeout"   // batch timer fired
	causeImmediate = "immediate" // B = 1 or T = 0: no accumulation
	causeFlush     = "flush"     // Stop drained the open batch
)

// metrics holds the gateway's registered series; names are documented in
// the README metric reference table. All series are gateway-wide: shards
// update them directly (counters and the pending gauge commute, so merged
// values are exact at any shard count).
type metrics struct {
	requests    *obs.Counter
	latency     *obs.Histogram
	batchSize   *obs.Histogram
	cost        *obs.Counter
	violations  *obs.Counter
	invocations *obs.Counter
	dispatch    map[string]*obs.Counter // by cause
	// Pre-bound dispatch-cause counters so the per-batch hot path resolves
	// its counter with a switch on the cause constant instead of a map
	// lookup. Same counters as the map entries.
	dSize      *obs.Counter
	dTimeout   *obs.Counter
	dImmediate *obs.Counter
	dFlush     *obs.Counter
	reconfigs  *obs.Counter
	decideErrs *obs.Counter
	retries    *obs.Counter
	failures   *obs.Counter
	failedReqs *obs.Counter
	expired    *obs.Counter
	shed       *obs.Counter
	brOpens    *obs.Counter
	pending    *obs.Gauge
	brState    *obs.Gauge
	cfgMemory  *obs.Gauge
	cfgBatch   *obs.Gauge
	cfgTimeout *obs.Gauge
}

// newMetrics registers the gateway series on reg. Registration errors (name
// collisions from an injected registry) propagate to New.
func newMetrics(reg *obs.Registry) (*metrics, error) {
	m := &metrics{dispatch: make(map[string]*obs.Counter)}
	var err error
	register := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	register(&m.requests, "gateway_requests_total", "inference requests served")
	register(&m.cost, "gateway_cost_usd_total", "cumulative invocation cost in USD")
	register(&m.violations, "gateway_slo_violations_total", "requests whose latency exceeded the SLO")
	register(&m.invocations, "gateway_invocations_total", "backend invocations executed")
	register(&m.reconfigs, "gateway_reconfigurations_total", "control-loop configuration changes applied")
	register(&m.decideErrs, "gateway_decide_errors_total", "control-loop decisions that failed or were invalid")
	register(&m.retries, "gateway_retries_total", "backend invocation retries")
	register(&m.failures, "gateway_backend_failures_total", "failed backend invocation attempts")
	register(&m.failedReqs, "gateway_failed_requests_total", "requests answered with an error after retry exhaustion")
	register(&m.expired, "gateway_deadline_expired_total", "requests failed fast at their per-request deadline")
	register(&m.shed, "gateway_shed_total", "requests served under the fallback configuration while the breaker was open")
	register(&m.brOpens, "gateway_breaker_opens_total", "circuit-breaker open transitions")
	for _, cause := range []string{causeSize, causeTimeout, causeImmediate, causeFlush} {
		c := cause
		var dst *obs.Counter
		register(&dst, "gateway_dispatch_"+c+"_total", "batches dispatched because of "+c)
		m.dispatch[c] = dst
	}
	m.dSize = m.dispatch[causeSize]
	m.dTimeout = m.dispatch[causeTimeout]
	m.dImmediate = m.dispatch[causeImmediate]
	m.dFlush = m.dispatch[causeFlush]
	if err != nil {
		return nil, err
	}
	if m.latency, err = reg.Histogram("gateway_request_latency_seconds",
		"end-to-end request latency", obs.DefaultLatencyBuckets()); err != nil {
		return nil, err
	}
	if m.batchSize, err = reg.Histogram("gateway_batch_size",
		"requests per dispatched batch", []float64{1, 2, 4, 8, 16, 32, 64}); err != nil {
		return nil, err
	}
	gauge := func(dst **obs.Gauge, name, help string) {
		if err == nil {
			*dst, err = reg.Gauge(name, help)
		}
	}
	gauge(&m.pending, "gateway_pending_requests", "requests waiting in the open batch")
	gauge(&m.brState, "gateway_breaker_state", "circuit breaker state (0 closed, 1 open, 2 half-open)")
	gauge(&m.cfgMemory, "gateway_config_memory_mb", "active configuration: function memory (MB)")
	gauge(&m.cfgBatch, "gateway_config_batch_size", "active configuration: batch size B")
	gauge(&m.cfgTimeout, "gateway_config_timeout_seconds", "active configuration: batch timeout T (s)")
	if err != nil {
		return nil, err
	}
	return m, nil
}

// setConfig mirrors the active configuration into the config gauges.
func (m *metrics) setConfig(cfg lambda.Config) {
	m.cfgMemory.Set(cfg.MemoryMB)
	m.cfgBatch.Set(float64(cfg.BatchSize))
	m.cfgTimeout.Set(cfg.TimeoutS)
}

// Gateway is the running front-end. Create with New (which also starts the
// control loop), expose via Handler, stop with Stop (or its alias Close).
type Gateway struct {
	backend Backend
	decide  DecideFunc
	conf    Config
	clock   obs.Clock
	obs     *obs.Registry
	rec     *obs.Recorder
	met     *metrics

	// Immutable after New.
	initial  *activeCfg
	fallback *activeCfg // breaker fallback, resolved (zero value -> initial)
	shards   []*shard

	// active is the configuration shards capture when opening a batch;
	// decideOnce swaps it atomically so admission never takes a lock to
	// read it.
	active atomic.Pointer[activeCfg]
	lastID atomic.Int64

	// jmu guards the backoff jitter PRNG (conf.Resilience.Jitter), which
	// concurrent batch executions share.
	jmu sync.Mutex

	// pmu guards the interarrival parser, fed by every admitted request
	// and read by the control loop.
	pmu    sync.Mutex
	parser *core.WorkloadParser

	// smu guards lifecycle flags and control-loop tallies.
	smu        sync.Mutex
	started    bool
	stopped    bool
	reconfigs  int
	decideErrs int

	stop    chan struct{}
	loopWG  sync.WaitGroup // control loop
	execWG  sync.WaitGroup // spawned batch executions
	timerWG sync.WaitGroup // armed batch timers (fired or cancelled)
}

// New builds and starts a gateway. decide may be nil (static configuration).
func New(backend Backend, decide DecideFunc, conf Config) (*Gateway, error) {
	if !conf.Initial.Valid() {
		return nil, errors.New("gateway: invalid initial configuration")
	}
	if conf.WindowLen <= 0 {
		conf.WindowLen = 64
	}
	if conf.Shards < 0 {
		return nil, errors.New("gateway: negative shard count")
	}
	nShards := conf.Shards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	reg := conf.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met, err := newMetrics(reg)
	if err != nil {
		return nil, fmt.Errorf("gateway: registering metrics: %w", err)
	}
	clock := conf.Clock
	if clock == nil {
		clock = obs.NewWallClock()
	}
	g := &Gateway{
		backend: backend,
		decide:  decide,
		conf:    conf,
		clock:   clock,
		obs:     reg,
		rec:     obs.NewRecorder(clock, conf.EventCap),
		met:     met,
		initial: &activeCfg{cfg: conf.Initial, str: conf.Initial.String()},
		parser:  core.NewWorkloadParser(conf.WindowLen),
		stop:    make(chan struct{}),
	}
	fb := conf.Resilience.Fallback
	if !fb.Valid() {
		fb = conf.Initial
	}
	g.fallback = &activeCfg{cfg: fb, str: fb.String()}
	g.active.Store(g.initial)
	g.shards = make([]*shard, nShards)
	for i := range g.shards {
		g.shards[i] = newShard(g, i)
	}
	met.setConfig(conf.Initial)
	g.Start()
	return g, nil
}

// Start launches the control loop. It is called by New; calling it again is
// a no-op, as is calling it after Stop.
func (g *Gateway) Start() {
	g.smu.Lock()
	defer g.smu.Unlock()
	if g.started || g.stopped {
		return
	}
	g.started = true
	if g.decide != nil && g.conf.DecideEvery > 0 {
		g.loopWG.Add(1)
		//lint:allow goroutine-discipline long-lived control loop; joined via g.loopWG.Wait in Stop
		go g.controlLoop()
	}
}

// Stop shuts the gateway down: it stops the control loop, flushes any
// buffered requests (shard by shard, in shard order), and joins every
// goroutine the gateway spawned — the control loop, in-flight batch
// executions (whose remaining retry backoffs are skipped once stop is
// signalled), and armed batch timers. It is idempotent. Callers should drain
// their HTTP server first, so no new requests arrive concurrently with the
// shutdown.
func (g *Gateway) Stop() {
	g.smu.Lock()
	if g.stopped {
		g.smu.Unlock()
		return
	}
	g.stopped = true
	g.smu.Unlock()
	close(g.stop)
	for _, s := range g.shards {
		s.mu.Lock()
		batch, ac := s.takeBatchLocked()
		s.mu.Unlock()
		if len(batch) > 0 {
			s.execute(batch, ac, causeFlush, nil)
		}
	}
	g.loopWG.Wait()
	g.timerWG.Wait()
	g.execWG.Wait()
	served := 0
	for _, s := range g.shards {
		s.mu.Lock()
		served += s.served
		s.mu.Unlock()
	}
	g.rec.Event("stop", obs.I("served", served))
}

// Close is an alias for Stop, kept for io.Closer-style call sites.
func (g *Gateway) Close() { g.Stop() }

// Obs returns the gateway's metric registry (for embedding in a larger
// exposition page or asserting on in tests).
func (g *Gateway) Obs() *obs.Registry { return g.obs }

// Events returns the gateway's event recorder (reconfigurations, decide
// errors, retries, breaker transitions, stop).
func (g *Gateway) Events() *obs.Recorder { return g.rec }

// Shards returns the number of batcher shards intake hashes across.
func (g *Gateway) Shards() int { return len(g.shards) }

// controlLoop periodically re-optimizes from the parser's window.
func (g *Gateway) controlLoop() {
	defer g.loopWG.Done()
	ticker := time.NewTicker(g.conf.DecideEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.decideOnce()
	}
}

// DecideNow forces one synchronous control decision outside the periodic
// loop — an operational hook, and the chaos harness's deterministic way to
// drive the controller. It is a no-op without a decide function or before
// the interarrival window has filled.
func (g *Gateway) DecideNow() {
	if g.decide != nil {
		g.decideOnce()
	}
}

// decideOnce runs one decision cycle. Decide errors degrade gracefully: the
// last good configuration stays active, the failure is counted, and a
// decide_error event carries the reason. A configuration change swaps the
// atomic pointer; shards pick it up when they open their next batch.
func (g *Gateway) decideOnce() {
	g.pmu.Lock()
	full := g.parser.Full()
	window := g.parser.Window()
	g.pmu.Unlock()
	if !full {
		return
	}
	cfg, err := g.decide(window)
	if err != nil || !cfg.Valid() {
		reason := "invalid configuration " + cfg.String()
		if err != nil {
			reason = err.Error()
		}
		g.met.decideErrs.Inc()
		g.smu.Lock()
		g.decideErrs++
		g.smu.Unlock()
		g.rec.Event("decide_error", obs.S("error", reason))
		return
	}
	g.smu.Lock()
	g.applyLocked(cfg)
	g.smu.Unlock()
}

// applyLocked installs cfg as the active configuration (no-op when it is
// already active), with the same accounting the control loop performs:
// reconfiguration counters, config gauges, and a reconfigure event. The
// caller holds g.smu.
func (g *Gateway) applyLocked(cfg lambda.Config) {
	cur := g.active.Load()
	if cfg == cur.cfg {
		return
	}
	g.active.Store(&activeCfg{cfg: cfg, str: cfg.String()})
	g.reconfigs++
	g.met.reconfigs.Inc()
	g.met.setConfig(cfg)
	g.rec.Event("reconfigure",
		obs.S("from", cur.str), obs.S("to", cfg.String()))
}

// Reconfigure applies cfg as the active serving configuration outside the
// control loop — the hook an external controller (the fleet planner) uses to
// push a decision onto a running gateway. Shards pick the configuration up
// when they open their next batch, exactly as for a control-loop decision.
func (g *Gateway) Reconfigure(cfg lambda.Config) error {
	if !cfg.Valid() {
		return errors.New("gateway: invalid configuration " + cfg.String())
	}
	g.smu.Lock()
	g.applyLocked(cfg)
	g.smu.Unlock()
	return nil
}

// Config returns the active configuration.
func (g *Gateway) Config() lambda.Config {
	return g.active.Load().cfg
}

// Stats returns the current stats document (the body of GET /stats).
// Per-shard tallies are merged in shard order — a deterministic reduction,
// so a serialized driver sees identical merged figures run to run.
func (g *Gateway) Stats() Stats {
	var st Stats
	merged := BreakerClosed
	var lat []float64
	for _, s := range g.shards {
		s.mu.Lock()
		st.Served += s.served
		st.Invocations += s.invoked
		st.TotalCostUSD += s.totalCost
		st.Retries += s.retries
		st.BackendFailures += s.failures
		st.FailedRequests += s.failed
		st.DeadlineExpired += s.expired
		st.Shed += s.shedCount
		st.BreakerOpens += s.brOpens
		lat = append(lat, s.lat.buf...)
		switch s.brState {
		case BreakerOpen:
			merged = BreakerOpen
		case BreakerHalfOpen:
			if merged != BreakerOpen {
				merged = BreakerHalfOpen
			}
		}
		s.mu.Unlock()
	}
	p95, _ := stats.Percentile(lat, 95)
	st.VCRPercent = stats.VCR(lat, g.conf.SLO)
	st.P95LatencyMS = p95 * 1000
	st.Config = g.active.Load().cfg
	st.BreakerState = merged.String()
	g.smu.Lock()
	st.Reconfigurations = g.reconfigs
	st.DecideErrors = g.decideErrs
	g.smu.Unlock()
	return st
}

// Breaker returns the merged circuit-breaker state across shards: Open if
// any shard's breaker is open, else HalfOpen if any is probing, else Closed.
func (g *Gateway) Breaker() BreakerState {
	return g.mergedBreakerState()
}

// mergedBreakerState folds the per-shard breaker states (read from their
// lock-free mirrors, so shards can call this while holding their own mu)
// into the severity-ordered merged state the gauge and /stats report.
func (g *Gateway) mergedBreakerState() BreakerState {
	merged := BreakerClosed
	for _, s := range g.shards {
		switch BreakerState(s.brMirror.Load()) {
		case BreakerOpen:
			return BreakerOpen
		case BreakerHalfOpen:
			merged = BreakerHalfOpen
		}
	}
	return merged
}

// Handler returns the HTTP mux: POST /infer, GET /stats, GET /config,
// GET /metrics (Prometheus text format), GET /metrics.json (JSON snapshot
// plus the event stream).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", g.handleInfer)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/config", g.handleConfig)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/metrics.json", g.handleMetricsJSON)
	return mux
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	done := g.Enqueue()
	select {
	case resp := <-done:
		w.Header().Set("Content-Type", "application/json")
		switch resp.Error {
		case "":
		case ErrDeadlineExceeded.Error():
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			w.WriteHeader(http.StatusBadGateway)
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The response was already committed; nothing sensible to do.
			return
		}
	case <-r.Context().Done():
		// Client went away; the batch result is discarded for this waiter.
		http.Error(w, "client cancelled", http.StatusRequestTimeout)
	}
}

// observeArrival feeds the interarrival parser. Skipped entirely without a
// decide function — nothing would ever read the window, and the skip keeps
// the static-configuration admit path free of the parser lock.
func (g *Gateway) observeArrival(now float64) {
	if g.decide == nil {
		return
	}
	g.pmu.Lock()
	g.parser.Observe(now)
	g.pmu.Unlock()
}

// admitShard stamps a new request with the gateway clock and a fresh ID and
// routes it to its shard.
func (g *Gateway) admitShard() (s *shard, id int, now float64) {
	now = g.clock.Now()
	id = int(g.lastID.Add(1))
	g.observeArrival(now)
	return g.shards[shardOf(uint64(id), len(g.shards))], id, now
}

// Enqueue submits one inference request, stamped with the gateway clock,
// and returns its completion channel — the programmatic equivalent of
// POST /infer, used by the HTTP handler and the chaos harness alike. Each
// call allocates a fresh waiter and channel (the handler may abandon them on
// client cancel) and dispatches full batches asynchronously; latency-
// critical in-process callers should prefer the pooled Submit/Do path.
func (g *Gateway) Enqueue() <-chan Response {
	s, id, now := g.admitShard()
	w := &waiter{id: id, arriveAt: now, ch: make(chan Response, 1)}
	if batch, ac, cause := s.enqueueWaiter(w); batch != nil {
		g.spawnExecute(s, batch, ac, cause)
	}
	return w.ch
}

// Handle is the pooled completion handle for one Submit-ed request. Wait
// must be called exactly once; it returns the response and recycles the
// underlying waiter. The zero Handle is invalid.
type Handle struct {
	w *waiter
	s *shard
	// direct marks a request whose own Submit dispatched its batch
	// synchronously: the response is already in w.resp (written by this
	// goroutine inside execute), so Wait skips the channel.
	direct bool
}

// Wait blocks for the response, then returns the waiter to its shard's
// free-list. The Handle must not be used again.
//
//deepbat:hotpath
func (h Handle) Wait() Response {
	var resp Response
	if h.direct {
		resp = h.w.resp
	} else {
		//lint:allow hotpath-alloc async dispatch delivers over the waiter's pre-allocated 1-buffered channel; this receive is the wait itself
		resp = <-h.w.ch
	}
	h.s.putWaiter(h.w)
	return resp
}

// Submit is the zero-alloc admit path: it enqueues one request on a pooled
// waiter and returns its completion handle. When the request fills a batch
// (B = 1, T = 0, or the size trigger), the batch executes synchronously on
// the caller's goroutine — the submitting request pays for its own dispatch
// instead of a handoff to a spawned goroutine. Unlike Enqueue, the caller
// MUST consume the response via Handle.Wait (abandoning a handle leaks its
// waiter from the pool).
//
//deepbat:hotpath
func (g *Gateway) Submit() Handle {
	s, id, now := g.admitShard()
	w, batch, ac, cause := s.submitPooled(id, now)
	if batch != nil {
		// w is always a member of the batch its own submission completed,
		// so execute delivers its response by direct field write.
		s.execute(batch, ac, cause, w)
		return Handle{w: w, s: s, direct: true}
	}
	return Handle{w: w, s: s}
}

// Do submits one request and waits for its response — the pooled,
// allocation-free equivalent of draining Enqueue's channel.
//
//deepbat:hotpath
func (g *Gateway) Do() Response {
	return g.Submit().Wait()
}

// NextFlushDeadline returns the earliest virtual batch-timeout deadline
// across shards (clock seconds) and whether any batch is waiting on one.
// Meaningful only under Config.VirtualTimers with a serialized driver: the
// driver advances its manual clock to the returned instant and calls
// FlushDue, reproducing timer dispatch without wall time.
func (g *Gateway) NextFlushDeadline() (float64, bool) {
	min, ok := 0.0, false
	for _, s := range g.shards {
		s.mu.Lock()
		if len(s.pending) > 0 && s.flushAt > 0 && (!ok || s.flushAt < min) {
			min, ok = s.flushAt, true
		}
		s.mu.Unlock()
	}
	return min, ok
}

// FlushDue dispatches, synchronously and in shard order, every open batch
// whose virtual timeout deadline is at or before the gateway clock's current
// time, exactly as its wall timer would have (causeTimeout accounting
// included). It returns the number of batches flushed. The caller must be
// the sole driver of a VirtualTimers gateway; responses are delivered to the
// batches' waiters as usual.
func (g *Gateway) FlushDue() int {
	now := g.clock.Now()
	n := 0
	for _, s := range g.shards {
		s.mu.Lock()
		if len(s.pending) == 0 || s.flushAt <= 0 || s.flushAt > now {
			s.mu.Unlock()
			continue
		}
		batch, ac := s.takeBatchLocked()
		s.mu.Unlock()
		if len(batch) > 0 {
			s.execute(batch, ac, causeTimeout, nil)
			n++
		}
	}
	return n
}

// spawnExecute runs a batch asynchronously, tracked by execWG.
func (g *Gateway) spawnExecute(s *shard, batch []*waiter, ac *activeCfg, cause string) {
	g.execWG.Add(1)
	//lint:allow goroutine-discipline request-scoped batch execution; joined on each waiter's done channel by handleInfer and via execWG.Wait in Stop
	go func() {
		defer g.execWG.Done()
		s.execute(batch, ac, cause, nil)
	}()
}

// backoff returns the wait before retry attempt (0-based): exponential from
// RetryBase, capped at RetryMax, scaled by a jitter factor in [0.5, 1)
// drawn from the injected PRNG when one is configured.
func (g *Gateway) backoff(attempt int) time.Duration {
	r := g.conf.Resilience
	if r.RetryBase <= 0 {
		return 0
	}
	d := math.Ldexp(float64(r.RetryBase), attempt) // RetryBase * 2^attempt
	if r.RetryMax > 0 && d > float64(r.RetryMax) {
		d = float64(r.RetryMax)
	}
	if r.Jitter != nil {
		g.jmu.Lock()
		d *= 0.5 + 0.5*r.Jitter.Float64()
		g.jmu.Unlock()
	}
	return time.Duration(d)
}

// sleepInterruptible waits for d or until Stop begins; retries skip their
// remaining backoff during shutdown so Stop's closing flush stays bounded.
func (g *Gateway) sleepInterruptible(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.stop:
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	s := g.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) handleConfig(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Config()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.obs.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON serves the JSON snapshot together with the event stream.
func (g *Gateway) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Metrics obs.Snapshot `json:"metrics"`
		Events  []obs.Event  `json:"events"`
	}{Metrics: g.obs.Snapshot(), Events: g.rec.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
