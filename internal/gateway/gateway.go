// Package gateway is a real-time HTTP front-end for DeepBAT: the
// On-Top-of-Platform deployment of Fig. 2 running on the wall clock instead
// of simulated time. Inference requests POSTed to /infer are accumulated in
// a batching buffer (dispatch on batch size B or timeout T), executed on a
// pluggable serverless backend, and answered individually; a background
// control loop feeds the recent interarrival window to a decision function
// (the DeepBAT optimizer, or any other controller) and live-reconfigures
// (M, B, T).
//
// Every gateway carries an obs.Registry and obs.Recorder: per-request
// latency/cost/violation series, dispatch-cause counters, and
// reconfiguration events, exposed in Prometheus text format at /metrics and
// as a JSON snapshot at /metrics.json (see the README metric reference).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
)

// Backend executes one batched invocation under a configuration and returns
// its duration and USD cost. Implementations may block for the duration
// (real platforms) or return immediately (simulations).
type Backend interface {
	Execute(cfg lambda.Config, batchSize int) (time.Duration, float64)
}

// SimulatedBackend models AWS Lambda: deterministic service times from a
// profile, the pay-as-you-go pricing, and an optional wall-clock scale (1.0
// sleeps for the real duration; 0 returns instantly).
type SimulatedBackend struct {
	Profile   lambda.Profile
	Pricing   lambda.Pricing
	TimeScale float64
}

// Execute implements Backend.
func (s SimulatedBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64) {
	svc := s.Profile.ServiceTime(cfg.MemoryMB, batchSize)
	if s.TimeScale > 0 {
		time.Sleep(time.Duration(svc * s.TimeScale * float64(time.Second)))
	}
	return time.Duration(svc * float64(time.Second)), s.Pricing.InvocationCost(cfg.MemoryMB, svc)
}

// DecideFunc maps the recent interarrival window (seconds) to a new
// configuration.
type DecideFunc func(window []float64) (lambda.Config, error)

// Config parameterizes a Gateway.
type Config struct {
	// Initial is the configuration served before the first decision.
	Initial lambda.Config
	// SLO is the latency objective used for violation accounting.
	SLO float64
	// DecideEvery is the control period; zero disables reconfiguration.
	DecideEvery time.Duration
	// WindowLen is the number of interarrivals handed to Decide.
	WindowLen int
	// Obs, when non-nil, is the metric registry the gateway records into;
	// nil creates a private one. Injecting a shared registry lets one
	// /metrics page aggregate several components.
	Obs *obs.Registry
	// EventCap bounds the reconfiguration/error event stream
	// (0 = obs.DefaultRecorderCap).
	EventCap int
}

// Stats is the JSON document served at /stats.
type Stats struct {
	Served           int           `json:"served"`
	Invocations      int           `json:"invocations"`
	Reconfigurations int           `json:"reconfigurations"`
	VCRPercent       float64       `json:"vcr_percent"`
	P95LatencyMS     float64       `json:"p95_latency_ms"`
	TotalCostUSD     float64       `json:"total_cost_usd"`
	Config           lambda.Config `json:"config"`
}

// inferResponse is the JSON answer to one inference request.
type inferResponse struct {
	ID        int     `json:"id"`
	BatchSize int     `json:"batch_size"`
	LatencyMS float64 `json:"latency_ms"`
	CostUSD   float64 `json:"cost_usd"`
	Config    string  `json:"config"`
}

type waiter struct {
	id       int
	arriveAt time.Time
	done     chan inferResponse
}

// dispatch causes, as recorded in the gateway_dispatch_*_total counters.
const (
	causeSize      = "size"      // batch reached B
	causeTimeout   = "timeout"   // batch timer fired
	causeImmediate = "immediate" // B = 1 or T = 0: no accumulation
	causeFlush     = "flush"     // Stop drained the open batch
)

// metrics holds the gateway's registered series; names are documented in
// the README metric reference table.
type metrics struct {
	requests    *obs.Counter
	latency     *obs.Histogram
	batchSize   *obs.Histogram
	cost        *obs.Counter
	violations  *obs.Counter
	invocations *obs.Counter
	dispatch    map[string]*obs.Counter // by cause
	reconfigs   *obs.Counter
	decideErrs  *obs.Counter
	pending     *obs.Gauge
	cfgMemory   *obs.Gauge
	cfgBatch    *obs.Gauge
	cfgTimeout  *obs.Gauge
}

// newMetrics registers the gateway series on reg. Registration errors (name
// collisions from an injected registry) propagate to New.
func newMetrics(reg *obs.Registry) (*metrics, error) {
	m := &metrics{dispatch: make(map[string]*obs.Counter)}
	var err error
	register := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	register(&m.requests, "gateway_requests_total", "inference requests served")
	register(&m.cost, "gateway_cost_usd_total", "cumulative invocation cost in USD")
	register(&m.violations, "gateway_slo_violations_total", "requests whose latency exceeded the SLO")
	register(&m.invocations, "gateway_invocations_total", "backend invocations executed")
	register(&m.reconfigs, "gateway_reconfigurations_total", "control-loop configuration changes applied")
	register(&m.decideErrs, "gateway_decide_errors_total", "control-loop decisions that failed or were invalid")
	for _, cause := range []string{causeSize, causeTimeout, causeImmediate, causeFlush} {
		c := cause
		var dst *obs.Counter
		register(&dst, "gateway_dispatch_"+c+"_total", "batches dispatched because of "+c)
		m.dispatch[c] = dst
	}
	if err != nil {
		return nil, err
	}
	if m.latency, err = reg.Histogram("gateway_request_latency_seconds",
		"end-to-end request latency", obs.DefaultLatencyBuckets()); err != nil {
		return nil, err
	}
	if m.batchSize, err = reg.Histogram("gateway_batch_size",
		"requests per dispatched batch", []float64{1, 2, 4, 8, 16, 32, 64}); err != nil {
		return nil, err
	}
	gauge := func(dst **obs.Gauge, name, help string) {
		if err == nil {
			*dst, err = reg.Gauge(name, help)
		}
	}
	gauge(&m.pending, "gateway_pending_requests", "requests waiting in the open batch")
	gauge(&m.cfgMemory, "gateway_config_memory_mb", "active configuration: function memory (MB)")
	gauge(&m.cfgBatch, "gateway_config_batch_size", "active configuration: batch size B")
	gauge(&m.cfgTimeout, "gateway_config_timeout_seconds", "active configuration: batch timeout T (s)")
	if err != nil {
		return nil, err
	}
	return m, nil
}

// setConfig mirrors the active configuration into the config gauges.
func (m *metrics) setConfig(cfg lambda.Config) {
	m.cfgMemory.Set(cfg.MemoryMB)
	m.cfgBatch.Set(float64(cfg.BatchSize))
	m.cfgTimeout.Set(cfg.TimeoutS)
}

// Gateway is the running front-end. Create with New (which also starts the
// control loop), expose via Handler, stop with Stop (or its alias Close).
type Gateway struct {
	backend Backend
	decide  DecideFunc
	conf    Config
	obs     *obs.Registry
	rec     *obs.Recorder
	met     *metrics

	mu        sync.Mutex
	started   bool
	stopped   bool
	cfg       lambda.Config
	pending   []waiter
	batchCfg  lambda.Config // parameters captured when the open batch started
	timer     *time.Timer
	parser    *core.WorkloadParser
	lastID    int
	served    int
	invoked   int
	reconfigs int
	latencies []float64
	totalCost float64

	stop    chan struct{}
	loopWG  sync.WaitGroup // control loop
	execWG  sync.WaitGroup // spawned batch executions
	timerWG sync.WaitGroup // armed batch timers (fired or cancelled)
}

// New builds and starts a gateway. decide may be nil (static configuration).
func New(backend Backend, decide DecideFunc, conf Config) (*Gateway, error) {
	if !conf.Initial.Valid() {
		return nil, errors.New("gateway: invalid initial configuration")
	}
	if conf.WindowLen <= 0 {
		conf.WindowLen = 64
	}
	reg := conf.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met, err := newMetrics(reg)
	if err != nil {
		return nil, fmt.Errorf("gateway: registering metrics: %w", err)
	}
	g := &Gateway{
		backend: backend,
		decide:  decide,
		conf:    conf,
		obs:     reg,
		rec:     obs.NewRecorder(obs.NewWallClock(), conf.EventCap),
		met:     met,
		cfg:     conf.Initial,
		parser:  core.NewWorkloadParser(conf.WindowLen),
		stop:    make(chan struct{}),
	}
	met.setConfig(conf.Initial)
	g.Start()
	return g, nil
}

// Start launches the control loop. It is called by New; calling it again is
// a no-op, as is calling it after Stop.
func (g *Gateway) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started || g.stopped {
		return
	}
	g.started = true
	if g.decide != nil && g.conf.DecideEvery > 0 {
		g.loopWG.Add(1)
		//lint:allow goroutine-discipline long-lived control loop; joined via g.loopWG.Wait in Stop
		go g.controlLoop()
	}
}

// Stop shuts the gateway down: it stops the control loop, flushes any
// buffered requests, and joins every goroutine the gateway spawned — the
// control loop, in-flight batch executions, and armed batch timers. It is
// idempotent. Callers should drain their HTTP server first, so no new
// requests arrive concurrently with the shutdown.
func (g *Gateway) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	close(g.stop)
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg, causeFlush)
	}
	g.loopWG.Wait()
	g.timerWG.Wait()
	g.execWG.Wait()
	g.mu.Lock()
	served := g.served
	g.mu.Unlock()
	g.rec.Event("stop", obs.I("served", served))
}

// Close is an alias for Stop, kept for io.Closer-style call sites.
func (g *Gateway) Close() { g.Stop() }

// Obs returns the gateway's metric registry (for embedding in a larger
// exposition page or asserting on in tests).
func (g *Gateway) Obs() *obs.Registry { return g.obs }

// Events returns the gateway's event recorder (reconfigurations, decide
// errors, stop).
func (g *Gateway) Events() *obs.Recorder { return g.rec }

// controlLoop periodically re-optimizes from the parser's window.
func (g *Gateway) controlLoop() {
	defer g.loopWG.Done()
	ticker := time.NewTicker(g.conf.DecideEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.mu.Lock()
		full := g.parser.Full()
		window := g.parser.Window()
		g.mu.Unlock()
		if !full {
			continue
		}
		cfg, err := g.decide(window)
		if err != nil || !cfg.Valid() {
			g.met.decideErrs.Inc()
			g.rec.Event("decide_error")
			continue
		}
		g.mu.Lock()
		if cfg != g.cfg {
			old := g.cfg
			g.cfg = cfg
			g.reconfigs++
			g.met.reconfigs.Inc()
			g.met.setConfig(cfg)
			g.rec.Event("reconfigure",
				obs.S("from", old.String()), obs.S("to", cfg.String()))
		}
		g.mu.Unlock()
	}
}

// Config returns the active configuration.
func (g *Gateway) Config() lambda.Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// Handler returns the HTTP mux: POST /infer, GET /stats, GET /config,
// GET /metrics (Prometheus text format), GET /metrics.json (JSON snapshot
// plus the event stream).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", g.handleInfer)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/config", g.handleConfig)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/metrics.json", g.handleMetricsJSON)
	return mux
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	done := g.enqueue(time.Now())
	select {
	case resp := <-done:
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The response was already committed; nothing sensible to do.
			return
		}
	case <-r.Context().Done():
		// Client went away; the batch result is discarded for this waiter.
		http.Error(w, "client cancelled", http.StatusRequestTimeout)
	}
}

// enqueue registers an arrival and returns its completion channel.
func (g *Gateway) enqueue(now time.Time) chan inferResponse {
	g.mu.Lock()
	g.lastID++
	g.parser.Observe(float64(now.UnixNano()) / 1e9)
	wtr := waiter{id: g.lastID, arriveAt: now, done: make(chan inferResponse, 1)}
	if len(g.pending) == 0 {
		// Opening a new batch: snapshot the active parameters and arm the
		// timeout.
		g.batchCfg = g.cfg
		g.pending = append(g.pending, wtr)
		g.met.pending.Set(1)
		if g.batchCfg.BatchSize > 1 && g.batchCfg.TimeoutS > 0 {
			g.armTimerLocked(time.Duration(g.batchCfg.TimeoutS * float64(time.Second)))
		} else {
			// B = 1 or T = 0: serve immediately, no accumulation.
			batch, cfg := g.takeBatchLocked()
			g.mu.Unlock()
			g.spawnExecute(batch, cfg, causeImmediate)
			return wtr.done
		}
		g.mu.Unlock()
		return wtr.done
	}
	g.pending = append(g.pending, wtr)
	g.met.pending.Set(float64(len(g.pending)))
	if len(g.pending) >= g.batchCfg.BatchSize {
		batch, cfg := g.takeBatchLocked()
		g.mu.Unlock()
		g.spawnExecute(batch, cfg, causeSize)
		return wtr.done
	}
	g.mu.Unlock()
	return wtr.done
}

// armTimerLocked starts the batch timeout and registers it with timerWG so
// Stop can join it whether it fires or is cancelled. Callers hold mu.
func (g *Gateway) armTimerLocked(d time.Duration) {
	g.timerWG.Add(1)
	g.timer = time.AfterFunc(d, func() {
		defer g.timerWG.Done()
		g.flushTimeout()
	})
}

// spawnExecute runs a batch asynchronously, tracked by execWG.
func (g *Gateway) spawnExecute(batch []waiter, cfg lambda.Config, cause string) {
	g.execWG.Add(1)
	//lint:allow goroutine-discipline request-scoped batch execution; joined on each waiter's done channel by handleInfer and via execWG.Wait in Stop
	go func() {
		defer g.execWG.Done()
		g.execute(batch, cfg, cause)
	}()
}

// flushTimeout dispatches the open batch when its timer fires.
func (g *Gateway) flushTimeout() {
	g.mu.Lock()
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg, causeTimeout)
	}
}

// takeBatchLocked removes and returns the pending batch together with the
// parameters it was opened under. Callers hold mu.
func (g *Gateway) takeBatchLocked() ([]waiter, lambda.Config) {
	batch := g.pending
	g.pending = nil
	g.met.pending.Set(0)
	if g.timer != nil {
		if g.timer.Stop() {
			// The callback will never run; release its timerWG slot here.
			g.timerWG.Done()
		}
		g.timer = nil
	}
	return batch, g.batchCfg
}

// execute runs a batch on the backend and resolves every waiter.
func (g *Gateway) execute(batch []waiter, cfg lambda.Config, cause string) {
	if cfg.BatchSize == 0 {
		cfg = g.conf.Initial
	}
	dur, cost := g.backend.Execute(cfg, len(batch))
	finished := time.Now()
	per := cost / float64(len(batch))
	g.met.invocations.Inc()
	g.met.cost.Add(cost)
	g.met.batchSize.Observe(float64(len(batch)))
	if c := g.met.dispatch[cause]; c != nil {
		c.Inc()
	}
	g.mu.Lock()
	g.invoked++
	g.totalCost += cost
	for _, wtr := range batch {
		lat := finished.Sub(wtr.arriveAt)
		g.served++
		g.latencies = append(g.latencies, lat.Seconds())
		g.met.requests.Inc()
		g.met.latency.Observe(lat.Seconds())
		if g.conf.SLO > 0 && lat.Seconds() > g.conf.SLO {
			g.met.violations.Inc()
		}
		wtr.done <- inferResponse{
			ID:        wtr.id,
			BatchSize: len(batch),
			LatencyMS: float64(lat) / float64(time.Millisecond),
			CostUSD:   per,
			Config:    cfg.String(),
		}
	}
	_ = dur
	g.mu.Unlock()
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	p95, _ := stats.Percentile(g.latencies, 95)
	s := Stats{
		Served:           g.served,
		Invocations:      g.invoked,
		Reconfigurations: g.reconfigs,
		VCRPercent:       stats.VCR(g.latencies, g.conf.SLO),
		P95LatencyMS:     p95 * 1000,
		TotalCostUSD:     g.totalCost,
		Config:           g.cfg,
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) handleConfig(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Config()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.obs.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON serves the JSON snapshot together with the event stream.
func (g *Gateway) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Metrics obs.Snapshot `json:"metrics"`
		Events  []obs.Event  `json:"events"`
	}{Metrics: g.obs.Snapshot(), Events: g.rec.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
