// Package gateway is a real-time HTTP front-end for DeepBAT: the
// On-Top-of-Platform deployment of Fig. 2 running on the wall clock instead
// of simulated time. Inference requests POSTed to /infer are accumulated in
// a batching buffer (dispatch on batch size B or timeout T), executed on a
// pluggable serverless backend, and answered individually; a background
// control loop feeds the recent interarrival window to a decision function
// (the DeepBAT optimizer, or any other controller) and live-reconfigures
// (M, B, T).
//
// The serving path is resilient to backend and controller faults
// (internal/fault is the matching injection layer): failed invocations are
// retried with capped exponential backoff and jitter from an injected PRNG,
// per-request deadlines fail fast with a typed error, a consecutive-failure
// circuit breaker sheds to a configurable safe fallback configuration, and
// Decide errors degrade gracefully to the last good configuration. All
// latency, deadline, and breaker accounting reads an injected obs.Clock, so
// the chaos-test harness (internal/fault/faulttest) can drive the gateway on
// a manual clock and assert bit-identical behaviour across same-seed runs.
//
// Every gateway carries an obs.Registry and obs.Recorder: per-request
// latency/cost/violation series, dispatch-cause counters, retry/shed/breaker
// series, and reconfiguration events, exposed in Prometheus text format at
// /metrics and as a JSON snapshot at /metrics.json (see the README metric
// reference).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/stats"
)

// Backend executes one batched invocation under a configuration and returns
// its duration, USD cost, and an error when the invocation failed.
// Implementations may block for the duration (real platforms) or return
// immediately (simulations). A returned error counts as a failed attempt
// against the gateway's retry budget and circuit breaker.
type Backend interface {
	Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error)
}

// SimulatedBackend models AWS Lambda: deterministic service times from a
// profile, the pay-as-you-go pricing, and an optional wall-clock scale (1.0
// sleeps for the real duration; 0 returns instantly). It never fails; wrap
// it in a fault.FaultyBackend to inject errors.
type SimulatedBackend struct {
	Profile   lambda.Profile
	Pricing   lambda.Pricing
	TimeScale float64
}

// Execute implements Backend.
func (s SimulatedBackend) Execute(cfg lambda.Config, batchSize int) (time.Duration, float64, error) {
	svc := s.Profile.ServiceTime(cfg.MemoryMB, batchSize)
	if s.TimeScale > 0 {
		time.Sleep(time.Duration(svc * s.TimeScale * float64(time.Second)))
	}
	return time.Duration(svc * float64(time.Second)), s.Pricing.InvocationCost(cfg.MemoryMB, svc), nil
}

// DecideFunc maps the recent interarrival window (seconds) to a new
// configuration.
type DecideFunc func(window []float64) (lambda.Config, error)

// Typed serving errors, surfaced to clients in Response.Error (and mapped to
// HTTP 504/502 by the /infer handler).
var (
	// ErrDeadlineExceeded fails a request whose per-request deadline
	// passed before its batch executed.
	ErrDeadlineExceeded = errors.New("gateway: request deadline exceeded")
	// ErrBackendFailed fails a batch whose retry budget was exhausted.
	ErrBackendFailed = errors.New("gateway: backend failed after retries")
)

// BreakerState enumerates the circuit-breaker states, in the order the
// gateway_breaker_state gauge reports them.
type BreakerState int

// The breaker state machine: Closed --threshold consecutive failures-->
// Open --cooldown--> HalfOpen --probe success--> Closed (probe failure
// reopens).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Resilience configures the gateway's failure handling. The zero value
// disables everything: no retries, no deadlines, no breaker — the behaviour
// of the pre-resilience gateway.
type Resilience struct {
	// MaxRetries is how many times a failed batch invocation is retried
	// before the batch fails with ErrBackendFailed (0 = no retries).
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// retry and is capped at RetryMax. Zero retries immediately.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Jitter, when non-nil, is the PRNG backoff jitter is drawn from:
	// each wait is scaled by a uniform factor in [0.5, 1). nil disables
	// jitter, making backoff fully deterministic.
	Jitter *rand.Rand
	// RequestTimeoutS is the per-request deadline in clock seconds
	// (0 = none). A request whose deadline passes before its batch
	// executes — or between retries — fails fast with ErrDeadlineExceeded
	// instead of holding the batch.
	RequestTimeoutS float64
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed invocation attempts (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldownS is how long (clock seconds) the breaker stays open
	// before admitting a half-open probe on the active configuration.
	BreakerCooldownS float64
	// Fallback is the safe configuration batches are served under while
	// the breaker is open; the zero value falls back to Config.Initial.
	Fallback lambda.Config
}

// Config parameterizes a Gateway.
type Config struct {
	// Initial is the configuration served before the first decision.
	Initial lambda.Config
	// SLO is the latency objective used for violation accounting.
	SLO float64
	// DecideEvery is the control period; zero disables the periodic loop
	// (decisions can still be forced with DecideNow).
	DecideEvery time.Duration
	// WindowLen is the number of interarrivals handed to Decide.
	WindowLen int
	// Obs, when non-nil, is the metric registry the gateway records into;
	// nil creates a private one. Injecting a shared registry lets one
	// /metrics page aggregate several components.
	Obs *obs.Registry
	// EventCap bounds the reconfiguration/error event stream
	// (0 = obs.DefaultRecorderCap).
	EventCap int
	// Clock supplies the timestamps used for latency, deadline, and
	// breaker accounting (nil = wall clock). The chaos harness injects an
	// obs.ManualClock to make whole runs bit-deterministic.
	Clock obs.Clock
	// Resilience configures retries, deadlines, and the circuit breaker.
	Resilience Resilience
}

// Stats is the JSON document served at /stats.
type Stats struct {
	Served           int           `json:"served"`
	Invocations      int           `json:"invocations"`
	Reconfigurations int           `json:"reconfigurations"`
	VCRPercent       float64       `json:"vcr_percent"`
	P95LatencyMS     float64       `json:"p95_latency_ms"`
	TotalCostUSD     float64       `json:"total_cost_usd"`
	Config           lambda.Config `json:"config"`
	// Resilience accounting. Served counts successfully answered
	// requests only; failures and deadline expiries are broken out here.
	Retries         int    `json:"retries"`
	BackendFailures int    `json:"backend_failures"`
	FailedRequests  int    `json:"failed_requests"`
	DeadlineExpired int    `json:"deadline_expired"`
	Shed            int    `json:"shed"`
	BreakerOpens    int    `json:"breaker_opens"`
	BreakerState    string `json:"breaker_state"`
	DecideErrors    int    `json:"decide_errors"`
}

// Response is the JSON answer to one inference request. Error is empty on
// success; on failure it carries the typed error string
// (ErrDeadlineExceeded, ErrBackendFailed) and the latency/cost fields
// reflect the time spent before giving up.
type Response struct {
	ID        int     `json:"id"`
	BatchSize int     `json:"batch_size"`
	LatencyMS float64 `json:"latency_ms"`
	CostUSD   float64 `json:"cost_usd"`
	Config    string  `json:"config"`
	Error     string  `json:"error,omitempty"`
}

type waiter struct {
	id       int
	arriveAt float64 // clock seconds
	done     chan Response
}

// dispatch causes, as recorded in the gateway_dispatch_*_total counters.
const (
	causeSize      = "size"      // batch reached B
	causeTimeout   = "timeout"   // batch timer fired
	causeImmediate = "immediate" // B = 1 or T = 0: no accumulation
	causeFlush     = "flush"     // Stop drained the open batch
)

// metrics holds the gateway's registered series; names are documented in
// the README metric reference table.
type metrics struct {
	requests    *obs.Counter
	latency     *obs.Histogram
	batchSize   *obs.Histogram
	cost        *obs.Counter
	violations  *obs.Counter
	invocations *obs.Counter
	dispatch    map[string]*obs.Counter // by cause
	reconfigs   *obs.Counter
	decideErrs  *obs.Counter
	retries     *obs.Counter
	failures    *obs.Counter
	failedReqs  *obs.Counter
	expired     *obs.Counter
	shed        *obs.Counter
	brOpens     *obs.Counter
	pending     *obs.Gauge
	brState     *obs.Gauge
	cfgMemory   *obs.Gauge
	cfgBatch    *obs.Gauge
	cfgTimeout  *obs.Gauge
}

// newMetrics registers the gateway series on reg. Registration errors (name
// collisions from an injected registry) propagate to New.
func newMetrics(reg *obs.Registry) (*metrics, error) {
	m := &metrics{dispatch: make(map[string]*obs.Counter)}
	var err error
	register := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	register(&m.requests, "gateway_requests_total", "inference requests served")
	register(&m.cost, "gateway_cost_usd_total", "cumulative invocation cost in USD")
	register(&m.violations, "gateway_slo_violations_total", "requests whose latency exceeded the SLO")
	register(&m.invocations, "gateway_invocations_total", "backend invocations executed")
	register(&m.reconfigs, "gateway_reconfigurations_total", "control-loop configuration changes applied")
	register(&m.decideErrs, "gateway_decide_errors_total", "control-loop decisions that failed or were invalid")
	register(&m.retries, "gateway_retries_total", "backend invocation retries")
	register(&m.failures, "gateway_backend_failures_total", "failed backend invocation attempts")
	register(&m.failedReqs, "gateway_failed_requests_total", "requests answered with an error after retry exhaustion")
	register(&m.expired, "gateway_deadline_expired_total", "requests failed fast at their per-request deadline")
	register(&m.shed, "gateway_shed_total", "requests served under the fallback configuration while the breaker was open")
	register(&m.brOpens, "gateway_breaker_opens_total", "circuit-breaker open transitions")
	for _, cause := range []string{causeSize, causeTimeout, causeImmediate, causeFlush} {
		c := cause
		var dst *obs.Counter
		register(&dst, "gateway_dispatch_"+c+"_total", "batches dispatched because of "+c)
		m.dispatch[c] = dst
	}
	if err != nil {
		return nil, err
	}
	if m.latency, err = reg.Histogram("gateway_request_latency_seconds",
		"end-to-end request latency", obs.DefaultLatencyBuckets()); err != nil {
		return nil, err
	}
	if m.batchSize, err = reg.Histogram("gateway_batch_size",
		"requests per dispatched batch", []float64{1, 2, 4, 8, 16, 32, 64}); err != nil {
		return nil, err
	}
	gauge := func(dst **obs.Gauge, name, help string) {
		if err == nil {
			*dst, err = reg.Gauge(name, help)
		}
	}
	gauge(&m.pending, "gateway_pending_requests", "requests waiting in the open batch")
	gauge(&m.brState, "gateway_breaker_state", "circuit breaker state (0 closed, 1 open, 2 half-open)")
	gauge(&m.cfgMemory, "gateway_config_memory_mb", "active configuration: function memory (MB)")
	gauge(&m.cfgBatch, "gateway_config_batch_size", "active configuration: batch size B")
	gauge(&m.cfgTimeout, "gateway_config_timeout_seconds", "active configuration: batch timeout T (s)")
	if err != nil {
		return nil, err
	}
	return m, nil
}

// setConfig mirrors the active configuration into the config gauges.
func (m *metrics) setConfig(cfg lambda.Config) {
	m.cfgMemory.Set(cfg.MemoryMB)
	m.cfgBatch.Set(float64(cfg.BatchSize))
	m.cfgTimeout.Set(cfg.TimeoutS)
}

// Gateway is the running front-end. Create with New (which also starts the
// control loop), expose via Handler, stop with Stop (or its alias Close).
type Gateway struct {
	backend Backend
	decide  DecideFunc
	conf    Config
	clock   obs.Clock
	obs     *obs.Registry
	rec     *obs.Recorder
	met     *metrics

	// jmu guards the backoff jitter PRNG (conf.Resilience.Jitter), which
	// concurrent batch executions share.
	jmu sync.Mutex

	mu         sync.Mutex
	started    bool
	stopped    bool
	cfg        lambda.Config
	pending    []waiter
	batchCfg   lambda.Config // parameters captured when the open batch started
	timer      *time.Timer
	parser     *core.WorkloadParser
	lastID     int
	served     int
	invoked    int
	reconfigs  int
	latencies  []float64
	totalCost  float64
	retries    int
	failures   int
	failed     int
	expired    int
	shed       int
	brOpens    int
	decideErrs int
	brState    BreakerState
	brFails    int     // consecutive failed invocation attempts
	brOpenedAt float64 // clock seconds of the last open transition

	stop    chan struct{}
	loopWG  sync.WaitGroup // control loop
	execWG  sync.WaitGroup // spawned batch executions
	timerWG sync.WaitGroup // armed batch timers (fired or cancelled)
}

// New builds and starts a gateway. decide may be nil (static configuration).
func New(backend Backend, decide DecideFunc, conf Config) (*Gateway, error) {
	if !conf.Initial.Valid() {
		return nil, errors.New("gateway: invalid initial configuration")
	}
	if conf.WindowLen <= 0 {
		conf.WindowLen = 64
	}
	reg := conf.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met, err := newMetrics(reg)
	if err != nil {
		return nil, fmt.Errorf("gateway: registering metrics: %w", err)
	}
	clock := conf.Clock
	if clock == nil {
		clock = obs.NewWallClock()
	}
	g := &Gateway{
		backend: backend,
		decide:  decide,
		conf:    conf,
		clock:   clock,
		obs:     reg,
		rec:     obs.NewRecorder(clock, conf.EventCap),
		met:     met,
		cfg:     conf.Initial,
		parser:  core.NewWorkloadParser(conf.WindowLen),
		stop:    make(chan struct{}),
	}
	met.setConfig(conf.Initial)
	g.Start()
	return g, nil
}

// Start launches the control loop. It is called by New; calling it again is
// a no-op, as is calling it after Stop.
func (g *Gateway) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started || g.stopped {
		return
	}
	g.started = true
	if g.decide != nil && g.conf.DecideEvery > 0 {
		g.loopWG.Add(1)
		//lint:allow goroutine-discipline long-lived control loop; joined via g.loopWG.Wait in Stop
		go g.controlLoop()
	}
}

// Stop shuts the gateway down: it stops the control loop, flushes any
// buffered requests, and joins every goroutine the gateway spawned — the
// control loop, in-flight batch executions (whose remaining retry backoffs
// are skipped once stop is signalled), and armed batch timers. It is
// idempotent. Callers should drain their HTTP server first, so no new
// requests arrive concurrently with the shutdown.
func (g *Gateway) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	close(g.stop)
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg, causeFlush)
	}
	g.loopWG.Wait()
	g.timerWG.Wait()
	g.execWG.Wait()
	g.mu.Lock()
	served := g.served
	g.mu.Unlock()
	g.rec.Event("stop", obs.I("served", served))
}

// Close is an alias for Stop, kept for io.Closer-style call sites.
func (g *Gateway) Close() { g.Stop() }

// Obs returns the gateway's metric registry (for embedding in a larger
// exposition page or asserting on in tests).
func (g *Gateway) Obs() *obs.Registry { return g.obs }

// Events returns the gateway's event recorder (reconfigurations, decide
// errors, retries, breaker transitions, stop).
func (g *Gateway) Events() *obs.Recorder { return g.rec }

// controlLoop periodically re-optimizes from the parser's window.
func (g *Gateway) controlLoop() {
	defer g.loopWG.Done()
	ticker := time.NewTicker(g.conf.DecideEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.decideOnce()
	}
}

// DecideNow forces one synchronous control decision outside the periodic
// loop — an operational hook, and the chaos harness's deterministic way to
// drive the controller. It is a no-op without a decide function or before
// the interarrival window has filled.
func (g *Gateway) DecideNow() {
	if g.decide != nil {
		g.decideOnce()
	}
}

// decideOnce runs one decision cycle. Decide errors degrade gracefully: the
// last good configuration stays active, the failure is counted, and a
// decide_error event carries the reason.
func (g *Gateway) decideOnce() {
	g.mu.Lock()
	full := g.parser.Full()
	window := g.parser.Window()
	g.mu.Unlock()
	if !full {
		return
	}
	cfg, err := g.decide(window)
	if err != nil || !cfg.Valid() {
		reason := "invalid configuration " + cfg.String()
		if err != nil {
			reason = err.Error()
		}
		g.met.decideErrs.Inc()
		g.mu.Lock()
		g.decideErrs++
		g.mu.Unlock()
		g.rec.Event("decide_error", obs.S("error", reason))
		return
	}
	g.mu.Lock()
	if cfg != g.cfg {
		old := g.cfg
		g.cfg = cfg
		g.reconfigs++
		g.met.reconfigs.Inc()
		g.met.setConfig(cfg)
		g.rec.Event("reconfigure",
			obs.S("from", old.String()), obs.S("to", cfg.String()))
	}
	g.mu.Unlock()
}

// Config returns the active configuration.
func (g *Gateway) Config() lambda.Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// Stats returns the current stats document (the body of GET /stats).
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	p95, _ := stats.Percentile(g.latencies, 95)
	return Stats{
		Served:           g.served,
		Invocations:      g.invoked,
		Reconfigurations: g.reconfigs,
		VCRPercent:       stats.VCR(g.latencies, g.conf.SLO),
		P95LatencyMS:     p95 * 1000,
		TotalCostUSD:     g.totalCost,
		Config:           g.cfg,
		Retries:          g.retries,
		BackendFailures:  g.failures,
		FailedRequests:   g.failed,
		DeadlineExpired:  g.expired,
		Shed:             g.shed,
		BreakerOpens:     g.brOpens,
		BreakerState:     g.brState.String(),
		DecideErrors:     g.decideErrs,
	}
}

// Breaker returns the current circuit-breaker state.
func (g *Gateway) Breaker() BreakerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.brState
}

// Handler returns the HTTP mux: POST /infer, GET /stats, GET /config,
// GET /metrics (Prometheus text format), GET /metrics.json (JSON snapshot
// plus the event stream).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", g.handleInfer)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/config", g.handleConfig)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/metrics.json", g.handleMetricsJSON)
	return mux
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	done := g.Enqueue()
	select {
	case resp := <-done:
		w.Header().Set("Content-Type", "application/json")
		switch resp.Error {
		case "":
		case ErrDeadlineExceeded.Error():
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			w.WriteHeader(http.StatusBadGateway)
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The response was already committed; nothing sensible to do.
			return
		}
	case <-r.Context().Done():
		// Client went away; the batch result is discarded for this waiter.
		http.Error(w, "client cancelled", http.StatusRequestTimeout)
	}
}

// Enqueue submits one inference request, stamped with the gateway clock,
// and returns its completion channel — the programmatic equivalent of
// POST /infer, used by the HTTP handler and the chaos harness alike.
func (g *Gateway) Enqueue() <-chan Response {
	now := g.clock.Now()
	g.mu.Lock()
	g.lastID++
	g.parser.Observe(now)
	wtr := waiter{id: g.lastID, arriveAt: now, done: make(chan Response, 1)}
	if len(g.pending) == 0 {
		// Opening a new batch: snapshot the active parameters and arm the
		// timeout.
		g.batchCfg = g.cfg
		g.pending = append(g.pending, wtr)
		g.met.pending.Set(1)
		if g.batchCfg.BatchSize > 1 && g.batchCfg.TimeoutS > 0 {
			g.armTimerLocked(time.Duration(g.batchCfg.TimeoutS * float64(time.Second)))
		} else {
			// B = 1 or T = 0: serve immediately, no accumulation.
			batch, cfg := g.takeBatchLocked()
			g.mu.Unlock()
			g.spawnExecute(batch, cfg, causeImmediate)
			return wtr.done
		}
		g.mu.Unlock()
		return wtr.done
	}
	g.pending = append(g.pending, wtr)
	g.met.pending.Set(float64(len(g.pending)))
	if len(g.pending) >= g.batchCfg.BatchSize {
		batch, cfg := g.takeBatchLocked()
		g.mu.Unlock()
		g.spawnExecute(batch, cfg, causeSize)
		return wtr.done
	}
	g.mu.Unlock()
	return wtr.done
}

// armTimerLocked starts the batch timeout and registers it with timerWG so
// Stop can join it whether it fires or is cancelled. Callers hold mu.
func (g *Gateway) armTimerLocked(d time.Duration) {
	g.timerWG.Add(1)
	g.timer = time.AfterFunc(d, func() {
		defer g.timerWG.Done()
		g.flushTimeout()
	})
}

// spawnExecute runs a batch asynchronously, tracked by execWG.
func (g *Gateway) spawnExecute(batch []waiter, cfg lambda.Config, cause string) {
	g.execWG.Add(1)
	//lint:allow goroutine-discipline request-scoped batch execution; joined on each waiter's done channel by handleInfer and via execWG.Wait in Stop
	go func() {
		defer g.execWG.Done()
		g.execute(batch, cfg, cause)
	}()
}

// flushTimeout dispatches the open batch when its timer fires.
func (g *Gateway) flushTimeout() {
	g.mu.Lock()
	batch, cfg := g.takeBatchLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.execute(batch, cfg, causeTimeout)
	}
}

// takeBatchLocked removes and returns the pending batch together with the
// parameters it was opened under. Callers hold mu.
func (g *Gateway) takeBatchLocked() ([]waiter, lambda.Config) {
	batch := g.pending
	g.pending = nil
	g.met.pending.Set(0)
	if g.timer != nil {
		if g.timer.Stop() {
			// The callback will never run; release its timerWG slot here.
			g.timerWG.Done()
		}
		g.timer = nil
	}
	return batch, g.batchCfg
}

// expireBatch fails fast every waiter whose per-request deadline has passed
// and returns the survivors. It runs before the first attempt and after
// every retry backoff, so a struggling backend cannot hold requests past
// their deadline.
func (g *Gateway) expireBatch(batch []waiter) []waiter {
	r := g.conf.Resilience
	if r.RequestTimeoutS <= 0 {
		return batch
	}
	now := g.clock.Now()
	live := batch[:0]
	var dead []waiter
	for _, w := range batch {
		if now-w.arriveAt > r.RequestTimeoutS {
			dead = append(dead, w)
		} else {
			live = append(live, w)
		}
	}
	if len(dead) == 0 {
		return batch
	}
	g.met.expired.Add(float64(len(dead)))
	g.mu.Lock()
	g.expired += len(dead)
	g.mu.Unlock()
	g.rec.Event("deadline_expired", obs.I("requests", len(dead)))
	for _, w := range dead {
		w.done <- Response{
			ID:        w.id,
			LatencyMS: (now - w.arriveAt) * 1000,
			Error:     ErrDeadlineExceeded.Error(),
		}
	}
	return live
}

// admit applies the circuit breaker to a batch about to execute: while the
// breaker is open it substitutes the safe fallback configuration (shedding);
// once the cooldown has elapsed it transitions to half-open and lets the
// batch probe the active configuration.
func (g *Gateway) admit(cfg lambda.Config) (lambda.Config, bool) {
	r := g.conf.Resilience
	if r.BreakerThreshold <= 0 {
		return cfg, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.brState != BreakerOpen {
		return cfg, false
	}
	if g.clock.Now()-g.brOpenedAt >= r.BreakerCooldownS {
		g.brState = BreakerHalfOpen
		g.met.brState.Set(float64(BreakerHalfOpen))
		g.rec.Event("breaker_half_open")
		return cfg, false
	}
	fb := r.Fallback
	if !fb.Valid() {
		fb = g.conf.Initial
	}
	return fb, true
}

// noteFailure records one failed invocation attempt against the breaker.
func (g *Gateway) noteFailure() {
	g.met.failures.Inc()
	g.mu.Lock()
	g.failures++
	r := g.conf.Resilience
	if r.BreakerThreshold > 0 {
		g.brFails++
		open := false
		switch g.brState {
		case BreakerHalfOpen:
			// Failed probe: reopen immediately.
			open = true
		case BreakerClosed:
			open = g.brFails >= r.BreakerThreshold
		}
		if open {
			g.brState = BreakerOpen
			g.brOpenedAt = g.clock.Now()
			g.brOpens++
			g.met.brOpens.Inc()
			g.met.brState.Set(float64(BreakerOpen))
			g.rec.Event("breaker_open", obs.I("consecutive_failures", g.brFails))
		}
	}
	g.mu.Unlock()
}

// noteSuccess resets the consecutive-failure count and closes the breaker
// after a successful half-open probe.
func (g *Gateway) noteSuccess() {
	if g.conf.Resilience.BreakerThreshold <= 0 {
		return
	}
	g.mu.Lock()
	g.brFails = 0
	if g.brState == BreakerHalfOpen {
		g.brState = BreakerClosed
		g.met.brState.Set(float64(BreakerClosed))
		g.rec.Event("breaker_close")
	}
	g.mu.Unlock()
}

// backoff returns the wait before retry attempt (0-based): exponential from
// RetryBase, capped at RetryMax, scaled by a jitter factor in [0.5, 1)
// drawn from the injected PRNG when one is configured.
func (g *Gateway) backoff(attempt int) time.Duration {
	r := g.conf.Resilience
	if r.RetryBase <= 0 {
		return 0
	}
	d := math.Ldexp(float64(r.RetryBase), attempt) // RetryBase * 2^attempt
	if r.RetryMax > 0 && d > float64(r.RetryMax) {
		d = float64(r.RetryMax)
	}
	if r.Jitter != nil {
		g.jmu.Lock()
		d *= 0.5 + 0.5*r.Jitter.Float64()
		g.jmu.Unlock()
	}
	return time.Duration(d)
}

// sleepInterruptible waits for d or until Stop begins; retries skip their
// remaining backoff during shutdown so Stop's closing flush stays bounded.
func (g *Gateway) sleepInterruptible(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.stop:
	}
}

// failBatch answers every waiter with the given terminal error.
func (g *Gateway) failBatch(batch []waiter, cause error, attempts int) {
	now := g.clock.Now()
	g.met.failedReqs.Add(float64(len(batch)))
	g.mu.Lock()
	g.failed += len(batch)
	g.mu.Unlock()
	g.rec.Event("batch_failed", obs.I("requests", len(batch)), obs.I("attempts", attempts))
	for _, w := range batch {
		w.done <- Response{
			ID:        w.id,
			BatchSize: len(batch),
			LatencyMS: (now - w.arriveAt) * 1000,
			Error:     cause.Error(),
		}
	}
}

// execute runs a batch on the backend — retrying failures with capped,
// jittered exponential backoff, expiring per-request deadlines between
// attempts, and honouring the circuit breaker — then resolves every waiter.
func (g *Gateway) execute(batch []waiter, cfg lambda.Config, cause string) {
	if len(batch) == 0 {
		// Empty-batch race: a timeout flush can lose the race with a
		// size/flush dispatch that already drained the queue. Never invoke
		// the backend — or count an invocation — for nothing.
		return
	}
	if cfg.BatchSize == 0 {
		cfg = g.conf.Initial
	}
	if batch = g.expireBatch(batch); len(batch) == 0 {
		return
	}
	useCfg, shedding := g.admit(cfg)
	var dur time.Duration
	var cost float64
	attempt := 0
	for {
		var err error
		dur, cost, err = g.backend.Execute(useCfg, len(batch))
		if err == nil {
			g.noteSuccess()
			break
		}
		g.noteFailure()
		if attempt >= g.conf.Resilience.MaxRetries {
			g.failBatch(batch, ErrBackendFailed, attempt+1)
			return
		}
		wait := g.backoff(attempt)
		g.met.retries.Inc()
		g.mu.Lock()
		g.retries++
		g.mu.Unlock()
		g.rec.Event("retry",
			obs.I("attempt", attempt+1), obs.I("batch", len(batch)),
			obs.F("backoff_s", wait.Seconds()))
		g.sleepInterruptible(wait)
		attempt++
		if batch = g.expireBatch(batch); len(batch) == 0 {
			return
		}
	}
	finished := g.clock.Now()
	per := cost / float64(len(batch))
	g.met.invocations.Inc()
	g.met.cost.Add(cost)
	g.met.batchSize.Observe(float64(len(batch)))
	if c := g.met.dispatch[cause]; c != nil {
		c.Inc()
	}
	if shedding {
		g.met.shed.Add(float64(len(batch)))
	}
	g.mu.Lock()
	g.invoked++
	g.totalCost += cost
	if shedding {
		g.shed += len(batch)
	}
	for _, wtr := range batch {
		lat := finished - wtr.arriveAt
		g.served++
		g.latencies = append(g.latencies, lat)
		g.met.requests.Inc()
		g.met.latency.Observe(lat)
		if g.conf.SLO > 0 && lat > g.conf.SLO {
			g.met.violations.Inc()
		}
		wtr.done <- Response{
			ID:        wtr.id,
			BatchSize: len(batch),
			LatencyMS: lat * 1000,
			CostUSD:   per,
			Config:    useCfg.String(),
		}
	}
	_ = dur
	g.mu.Unlock()
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	s := g.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) handleConfig(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Config()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.obs.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON serves the JSON snapshot together with the event stream.
func (g *Gateway) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Metrics obs.Snapshot `json:"metrics"`
		Events  []obs.Event  `json:"events"`
	}{Metrics: g.obs.Snapshot(), Events: g.rec.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
