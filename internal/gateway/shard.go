package gateway

import (
	"sync"
	"sync/atomic"
	"time"

	"deepbat/internal/obs"
)

// latRingCap bounds the per-shard latency sample window Stats() computes
// tail percentiles and VCR over. Runs shorter than the window get exact
// figures (every chaos-harness scenario does); under sustained load the
// tails describe the most recent latRingCap samples per shard instead of
// growing without bound — the pre-shard gateway kept every latency forever,
// which leaks memory at serving rates.
const latRingCap = 1024

// Pool bounds: free-lists stop growing past these sizes so a burst does not
// pin its high-water mark forever. Steady-state closed-loop traffic recycles
// far fewer objects than either bound.
const (
	maxFreeWaiters = 1024
	maxFreeBatches = 16
)

// latRing is a fixed-capacity latency sample ring (insertion order, oldest
// overwritten first). Zero-alloc once warm.
type latRing struct {
	buf []float64
	n   int // total observations ever
}

func (r *latRing) observe(v float64) {
	if len(r.buf) < latRingCap {
		//lint:allow hotpath-alloc the ring fills to latRingCap once at warmup; steady-state observations overwrite in place
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.n%latRingCap] = v
	}
	r.n++
}

// waiter is one queued request. Pooled waiters (Submit/Do) carry a reusable
// cap-1 response channel and are recycled through the shard free-list by
// Handle.Wait; legacy waiters (Enqueue) are garbage-collected after their
// channel is drained.
type waiter struct {
	id       int
	arriveAt float64 // clock seconds
	ch       chan Response
	pooled   bool
	// resp receives the response by direct write instead of a channel send
	// when this waiter's own Submit dispatched the batch synchronously: the
	// goroutine that runs execute is the one that reads resp in Wait, so no
	// synchronization — or channel round-trip — is needed.
	resp Response
}

// deliver resolves one waiter's response: the submitting waiter of a
// synchronous dispatch (self) by direct field write, everyone else through
// their channel.
func deliver(w, self *waiter, resp Response) {
	if w == self {
		w.resp = resp
		return
	}
	//lint:allow hotpath-alloc cross-goroutine delivery for the async path; the pooled synchronous submitter takes the direct-write branch above
	w.ch <- resp
}

// shardOf maps a request ID to a shard with a splitmix64 finalizer — a pure
// function of the ID, so the mapping is identical across runs, processes,
// and GOMAXPROCS values. shardOf(id, 1) == 0 for every id: P = 1 reproduces
// the single-queue gateway exactly.
//
//deepbat:hotpath
func shardOf(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// shard is one independent batching queue: its own open batch, batch timer,
// circuit breaker, tallies, and object pools, all guarded by its own mutex.
// Requests are hashed onto shards by ID; the shared optimizer configuration
// arrives via the gateway's atomic config pointer, captured per batch at
// open. Tallies are merged by the gateway in shard order (index 0..P-1), so
// deterministic drivers see deterministic merged figures.
type shard struct {
	g   *Gateway
	idx int

	// brMirror mirrors brState for lock-free cross-shard merged reads
	// (Breaker(), the breaker-state gauge). Written under mu only.
	brMirror atomic.Int32

	// freeSlot is a single-entry lock-free waiter exchange in front of the
	// mutex-guarded freeW list: a request loop that waits for each response
	// before submitting the next (the closed-loop common case) recycles its
	// waiter through this slot without touching mu at all.
	freeSlot atomic.Pointer[waiter]

	mu       sync.Mutex
	pending  []*waiter
	batchCfg *activeCfg // captured when the open batch started
	timer    *time.Timer
	// flushAt is the open batch's timeout deadline in clock seconds
	// (0 = none armed). Under Config.VirtualTimers it replaces the wall
	// timer entirely and is honoured by Gateway.FlushDue; otherwise it
	// mirrors the armed timer for observability.
	flushAt float64

	// Free-lists backing the zero-alloc steady state.
	freeW []*waiter
	freeB [][]*waiter

	// Tallies, merged in shard order by Gateway.Stats.
	served     int
	invoked    int
	totalCost  float64
	retries    int
	failures   int
	failed     int
	expired    int
	shedCount  int
	brOpens    int
	lat        latRing
	brState    BreakerState
	brFails    int     // consecutive failed invocation attempts
	brOpenedAt float64 // clock seconds of the last open transition
}

func newShard(g *Gateway, idx int) *shard {
	return &shard{
		g:       g,
		idx:     idx,
		pending: make([]*waiter, 0, 16),
		lat:     latRing{buf: make([]float64, 0, latRingCap)},
	}
}

// getWaiterLocked pops a recycled waiter (or builds one, cold path) and
// stamps it for a new request. Callers hold mu.
func (s *shard) getWaiterLocked(id int, arriveAt float64) *waiter {
	var w *waiter
	if n := len(s.freeW); n > 0 {
		w = s.freeW[n-1]
		s.freeW[n-1] = nil
		s.freeW = s.freeW[:n-1]
		checkWaiterClean(w)
	} else {
		//lint:allow hotpath-alloc pool miss: early requests populate the free-list; steady state recycles and never reaches this branch
		w = &waiter{ch: make(chan Response, 1), pooled: true}
	}
	w.id, w.arriveAt = id, arriveAt
	return w
}

// putWaiter recycles a pooled waiter after its response was consumed. Under
// the poolcheck build tag the waiter is poisoned so any aliasing of a
// previous request's state is caught at the next get. The single-slot
// exchange is tried first; only a full slot falls back to the locked list.
func (s *shard) putWaiter(w *waiter) {
	poisonWaiter(w)
	if s.freeSlot.CompareAndSwap(nil, w) {
		return
	}
	s.mu.Lock()
	if len(s.freeW) < maxFreeWaiters {
		//lint:allow hotpath-alloc the free-list grows to its fixed maxFreeWaiters bound once, then every append is in-capacity
		s.freeW = append(s.freeW, w)
	}
	s.mu.Unlock()
}

// grabSliceLocked hands out a recycled batch backing array. Callers hold mu.
func (s *shard) grabSliceLocked() []*waiter {
	if n := len(s.freeB); n > 0 {
		b := s.freeB[n-1]
		s.freeB[n-1] = nil
		s.freeB = s.freeB[:n-1]
		return b
	}
	//lint:allow hotpath-alloc pool miss: batch backing arrays are built cold and recycled through freeB thereafter
	return make([]*waiter, 0, 16)
}

// recycleBatch clears a dispatched batch's waiter pointers and returns its
// backing array to the free-list.
func (s *shard) recycleBatch(batch []*waiter) {
	if cap(batch) == 0 {
		return
	}
	s.mu.Lock()
	s.recycleBatchLocked(batch)
	s.mu.Unlock()
}

// recycleBatchLocked is recycleBatch for callers already holding mu — the
// clean dispatch path recycles inside the same critical section that records
// its tallies, saving a lock round-trip per batch.
func (s *shard) recycleBatchLocked(batch []*waiter) {
	if cap(batch) == 0 {
		return
	}
	for i := range batch {
		batch[i] = nil
	}
	if len(s.freeB) < maxFreeBatches {
		//lint:allow hotpath-alloc the batch free-list grows to its fixed maxFreeBatches bound once, then every append is in-capacity
		s.freeB = append(s.freeB, batch[:0])
	}
}

// enqueueWaiter runs the admit→enqueue→dispatch decision for one request.
// When the returned batch is non-nil the caller owns its dispatch (the
// legacy channel path spawns, the pooled path executes synchronously).
func (s *shard) enqueueWaiter(w *waiter) (batch []*waiter, ac *activeCfg, cause string) {
	s.mu.Lock()
	return s.enqueueWaiterLocked(w)
}

// enqueueWaiterLocked is enqueueWaiter with mu already held; it unlocks.
func (s *shard) enqueueWaiterLocked(w *waiter) (batch []*waiter, ac *activeCfg, cause string) {
	g := s.g
	if len(s.pending) == 0 {
		// Opening a new batch: snapshot the active parameters and arm the
		// timeout.
		s.batchCfg = g.active.Load()
		//lint:allow hotpath-alloc appends into the recycled pending backing array (cap 16 from grabSliceLocked); in-capacity in steady state
		s.pending = append(s.pending, w)
		if s.batchCfg.cfg.BatchSize > 1 && s.batchCfg.cfg.TimeoutS > 0 {
			g.met.pending.Add(1)
			s.flushAt = w.arriveAt + s.batchCfg.cfg.TimeoutS
			if !g.conf.VirtualTimers {
				s.armTimerLocked(time.Duration(s.batchCfg.cfg.TimeoutS * float64(time.Second)))
			}
			s.mu.Unlock()
			return nil, nil, ""
		}
		// B = 1 or T = 0: serve immediately, no accumulation. The request
		// never waits, so the pending gauge (whose +1/-1 would cancel
		// inside this same lock hold) is left untouched.
		batch = s.pending
		//lint:allow pool-ownership the shard is the long-lived owner of its pending slice; the old backing array leaves as the batch and recycles after dispatch
		s.pending = s.grabSliceLocked()
		ac = s.batchCfg
		s.mu.Unlock()
		return batch, ac, causeImmediate
	}
	//lint:allow hotpath-alloc appends into the recycled pending backing array (cap 16 from grabSliceLocked); in-capacity in steady state
	s.pending = append(s.pending, w)
	g.met.pending.Add(1)
	if len(s.pending) >= s.batchCfg.cfg.BatchSize {
		batch, ac = s.takeBatchLocked()
		s.mu.Unlock()
		return batch, ac, causeSize
	}
	s.mu.Unlock()
	return nil, nil, ""
}

// submitPooled is the zero-alloc admit path: the waiter comes from the
// lock-free exchange slot when possible, and a single lock acquisition runs
// the batch decision.
func (s *shard) submitPooled(id int, arriveAt float64) (w *waiter, batch []*waiter, ac *activeCfg, cause string) {
	if w = s.freeSlot.Swap(nil); w != nil {
		checkWaiterClean(w)
		w.id, w.arriveAt = id, arriveAt
		s.mu.Lock()
	} else {
		s.mu.Lock()
		w = s.getWaiterLocked(id, arriveAt)
	}
	batch, ac, cause = s.enqueueWaiterLocked(w)
	return w, batch, ac, cause
}

// armTimerLocked starts the batch timeout and registers it with the
// gateway's timerWG so Stop can join it whether it fires or is cancelled.
// Callers hold mu.
func (s *shard) armTimerLocked(d time.Duration) {
	s.g.timerWG.Add(1)
	//lint:allow hotpath-alloc one timer per opened batch, amortized over its B requests; the B=1/T=0 zero-alloc configuration never arms it
	s.timer = time.AfterFunc(d, func() {
		defer s.g.timerWG.Done()
		s.flushTimeout()
	})
}

// flushTimeout dispatches the open batch when its timer fires.
func (s *shard) flushTimeout() {
	s.mu.Lock()
	batch, ac := s.takeBatchLocked()
	s.mu.Unlock()
	if len(batch) > 0 {
		s.execute(batch, ac, causeTimeout, nil)
	}
}

// takeBatchLocked removes and returns the pending batch together with the
// parameters it was opened under, swapping in a recycled backing array.
// Callers hold mu.
func (s *shard) takeBatchLocked() ([]*waiter, *activeCfg) {
	batch := s.pending
	//lint:allow pool-ownership the shard is the long-lived owner of its pending slice; the old backing array leaves as the batch and recycles after dispatch
	s.pending = s.grabSliceLocked()
	s.g.met.pending.Add(-float64(len(batch)))
	s.flushAt = 0
	if s.timer != nil {
		if s.timer.Stop() {
			// The callback will never run; release its timerWG slot here.
			s.g.timerWG.Done()
		}
		s.timer = nil
	}
	return batch, s.batchCfg
}

// expireBatch fails fast every waiter whose per-request deadline has passed
// and returns the survivors. It runs before the first attempt and after
// every retry backoff, so a struggling backend cannot hold requests past
// their deadline.
func (s *shard) expireBatch(batch []*waiter, self *waiter) []*waiter {
	g := s.g
	r := g.conf.Resilience
	if r.RequestTimeoutS <= 0 {
		return batch
	}
	now := g.clock.Now()
	live := batch[:0]
	var dead []*waiter
	for _, w := range batch {
		if now-w.arriveAt > r.RequestTimeoutS {
			//lint:allow hotpath-alloc deadline expiry is the exceptional branch; collecting the expired waiters may allocate
			dead = append(dead, w)
		} else {
			//lint:allow hotpath-alloc live compacts into the batch's own backing array (batch[:0]); never beyond capacity
			live = append(live, w)
		}
	}
	if len(dead) == 0 {
		return batch
	}
	g.met.expired.Add(float64(len(dead)))
	s.mu.Lock()
	s.expired += len(dead)
	s.mu.Unlock()
	//lint:allow hotpath-alloc exceptional-path telemetry; the event sink may allocate and this waiver vouches for the obs subtree
	g.rec.Event("deadline_expired", obs.I("requests", len(dead)))
	for _, w := range dead {
		deliver(w, self, Response{
			ID:        w.id,
			LatencyMS: (now - w.arriveAt) * 1000,
			Error:     ErrDeadlineExceeded.Error(),
		})
	}
	return live
}

// admitBreaker applies this shard's circuit breaker to a batch about to
// execute: while the breaker is open it substitutes the safe fallback
// configuration (shedding); once the cooldown has elapsed it transitions to
// half-open and lets the batch probe the active configuration.
func (s *shard) admitBreaker(ac *activeCfg) (*activeCfg, bool) {
	g := s.g
	r := g.conf.Resilience
	if r.BreakerThreshold <= 0 {
		return ac, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.brState != BreakerOpen {
		return ac, false
	}
	if g.clock.Now()-s.brOpenedAt >= r.BreakerCooldownS {
		s.brState = BreakerHalfOpen
		s.brMirror.Store(int32(BreakerHalfOpen))
		g.met.brState.Set(float64(g.mergedBreakerState()))
		//lint:allow hotpath-alloc breaker transitions are rare; telemetry events off the steady-state path may allocate
		g.rec.Event("breaker_half_open")
		return ac, false
	}
	return g.fallback, true
}

// noteFailure records one failed invocation attempt against this shard's
// breaker.
func (s *shard) noteFailure() {
	g := s.g
	g.met.failures.Inc()
	s.mu.Lock()
	s.failures++
	r := g.conf.Resilience
	if r.BreakerThreshold > 0 {
		s.brFails++
		open := false
		switch s.brState {
		case BreakerHalfOpen:
			// Failed probe: reopen immediately.
			open = true
		case BreakerClosed:
			open = s.brFails >= r.BreakerThreshold
		}
		if open {
			s.brState = BreakerOpen
			s.brMirror.Store(int32(BreakerOpen))
			s.brOpenedAt = g.clock.Now()
			s.brOpens++
			g.met.brOpens.Inc()
			g.met.brState.Set(float64(g.mergedBreakerState()))
			//lint:allow hotpath-alloc breaker transitions are rare; telemetry events off the steady-state path may allocate
			g.rec.Event("breaker_open", obs.I("consecutive_failures", s.brFails))
		}
	}
	s.mu.Unlock()
}

// noteSuccess resets the consecutive-failure count and closes this shard's
// breaker after a successful half-open probe.
func (s *shard) noteSuccess() {
	g := s.g
	if g.conf.Resilience.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	s.brFails = 0
	if s.brState == BreakerHalfOpen {
		s.brState = BreakerClosed
		s.brMirror.Store(int32(BreakerClosed))
		g.met.brState.Set(float64(g.mergedBreakerState()))
		//lint:allow hotpath-alloc breaker transitions are rare; telemetry events off the steady-state path may allocate
		g.rec.Event("breaker_close")
	}
	s.mu.Unlock()
}

// failBatch answers every waiter with the given terminal error.
func (s *shard) failBatch(batch []*waiter, self *waiter, cause error, attempts int) {
	g := s.g
	now := g.clock.Now()
	g.met.failedReqs.Add(float64(len(batch)))
	s.mu.Lock()
	s.failed += len(batch)
	s.mu.Unlock()
	//lint:allow hotpath-alloc terminal failure path; telemetry and error delivery may allocate
	g.rec.Event("batch_failed", obs.I("requests", len(batch)), obs.I("attempts", attempts))
	for _, w := range batch {
		deliver(w, self, Response{
			ID:        w.id,
			BatchSize: len(batch),
			LatencyMS: (now - w.arriveAt) * 1000,
			Error:     cause.Error(),
		})
	}
}

// execute runs a batch on the backend — retrying failures with capped,
// jittered exponential backoff, expiring per-request deadlines between
// attempts, and honouring this shard's circuit breaker — then resolves
// every waiter and recycles the batch backing array. It allocates nothing
// on the clean path. self, when non-nil, is the submitting waiter of a
// synchronous dispatch: its response is delivered by direct field write
// (see deliver) instead of a channel send.
func (s *shard) execute(batch []*waiter, ac *activeCfg, cause string, self *waiter) {
	if len(batch) == 0 {
		// Empty-batch race: a timeout flush can lose the race with a
		// size/flush dispatch that already drained the queue. Never invoke
		// the backend — or count an invocation — for nothing.
		return
	}
	g := s.g
	// orig keeps the full original slice so every waiter pointer is cleared
	// at recycle time even after expireBatch shrinks batch in place.
	orig := batch
	if ac == nil || ac.cfg.BatchSize == 0 {
		ac = g.initial
	}
	// Hoist the feature-flag checks out of expireBatch / admitBreaker /
	// noteSuccess: with deadlines and the breaker disabled (the steady-state
	// serving configuration) the hot path skips three non-inlined calls.
	res := g.conf.Resilience
	if res.RequestTimeoutS > 0 {
		if batch = s.expireBatch(batch, self); len(batch) == 0 {
			s.recycleBatch(orig)
			return
		}
	}
	useAc, shedding := ac, false
	if res.BreakerThreshold > 0 {
		useAc, shedding = s.admitBreaker(ac)
	}
	var cost float64
	attempt := 0
	for {
		var err error
		_, cost, err = g.backend.Execute(useAc.cfg, len(batch))
		if err == nil {
			if res.BreakerThreshold > 0 {
				s.noteSuccess()
			}
			break
		}
		s.noteFailure()
		if attempt >= res.MaxRetries {
			s.failBatch(batch, self, ErrBackendFailed, attempt+1)
			s.recycleBatch(orig)
			return
		}
		wait := g.backoff(attempt)
		g.met.retries.Inc()
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
		//lint:allow hotpath-alloc retry path: a failed batch has already left the zero-alloc happy path; telemetry may allocate
		g.rec.Event("retry",
			obs.I("attempt", attempt+1), obs.I("batch", len(batch)),
			obs.F("backoff_s", wait.Seconds()))
		//lint:allow hotpath-alloc retry backoff: the timer sleep is the modeled wait, not per-request overhead
		g.sleepInterruptible(wait)
		attempt++
		if batch = s.expireBatch(batch, self); len(batch) == 0 {
			s.recycleBatch(orig)
			return
		}
	}
	finished := g.clock.Now()
	per := cost / float64(len(batch))
	g.met.invocations.Inc()
	g.met.cost.Add(cost)
	g.met.batchSize.Observe(float64(len(batch)))
	// Resolve the dispatch-cause counter without the map lookup: cause is
	// always one of the four constants on this path.
	switch cause {
	case causeImmediate:
		g.met.dImmediate.Inc()
	case causeSize:
		g.met.dSize.Inc()
	case causeTimeout:
		g.met.dTimeout.Inc()
	case causeFlush:
		g.met.dFlush.Inc()
	}
	if shedding {
		g.met.shed.Add(float64(len(batch)))
	}
	s.mu.Lock()
	s.invoked++
	s.totalCost += cost
	if shedding {
		s.shedCount += len(batch)
	}
	for _, w := range batch {
		lat := finished - w.arriveAt
		s.served++
		s.lat.observe(lat)
		g.met.requests.Inc()
		g.met.latency.Observe(lat)
		if g.conf.SLO > 0 && lat > g.conf.SLO {
			g.met.violations.Inc()
		}
		deliver(w, self, Response{
			ID:        w.id,
			BatchSize: len(batch),
			LatencyMS: lat * 1000,
			CostUSD:   per,
			Config:    useAc.str,
		})
	}
	s.recycleBatchLocked(orig)
	s.mu.Unlock()
}
