package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

func fastBackend() SimulatedBackend {
	return SimulatedBackend{
		Profile:   lambda.DefaultProfile(),
		Pricing:   lambda.DefaultPricing(),
		TimeScale: 0, // no wall-clock sleep in tests
	}
}

func postInfer(t *testing.T, url string) Response {
	t.Helper()
	resp, err := http.Post(url+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(fastBackend(), nil, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSingleRequestFlushedByTimeout(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.03},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	start := time.Now()
	out := postInfer(t, srv.URL)
	elapsed := time.Since(start)
	if out.BatchSize != 1 {
		t.Fatalf("batch size = %d, want 1", out.BatchSize)
	}
	// The response must have waited for the ~30ms timeout.
	if elapsed < 25*time.Millisecond {
		t.Fatalf("answered in %s, before the timeout", elapsed)
	}
}

func TestBatchFillsByCount(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 5},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	results := make([]Response, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postInfer(t, srv.URL)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("batch did not fill within 3s (timeout is 5s, so count-dispatch failed)")
	}
	for _, r := range results {
		if r.BatchSize != 4 {
			t.Fatalf("batch size = %d, want 4", r.BatchSize)
		}
	}
}

func TestImmediateDispatchWithBatchOne(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 10},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	start := time.Now()
	out := postInfer(t, srv.URL)
	if time.Since(start) > time.Second {
		t.Fatal("B=1 should dispatch immediately")
	}
	if out.BatchSize != 1 {
		t.Fatalf("batch size = %d", out.BatchSize)
	}
}

func TestStatsEndpoint(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		postInfer(t, srv.URL)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Served != 3 || s.Invocations != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalCostUSD <= 0 {
		t.Fatal("no cost recorded")
	}
	cfgResp, err := http.Get(srv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer cfgResp.Body.Close()
	var cfg lambda.Config
	if err := json.NewDecoder(cfgResp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if !cfg.Valid() {
		t.Fatalf("config endpoint returned %+v", cfg)
	}
}

func TestInferRejectsGET(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestControlLoopReconfigures(t *testing.T) {
	target := lambda.Config{MemoryMB: 1024, BatchSize: 2, TimeoutS: 0.01}
	var decisions atomic.Int64
	decide := func(window []float64) (lambda.Config, error) {
		decisions.Add(1)
		if len(window) != 4 {
			t.Errorf("window length = %d", len(window))
		}
		return target, nil
	}
	g, err := New(fastBackend(), decide, Config{
		Initial:     lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:         0.1,
		DecideEvery: 20 * time.Millisecond,
		WindowLen:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	// Generate enough arrivals to fill the parser window.
	for i := 0; i < 6; i++ {
		postInfer(t, srv.URL)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.Config() == target {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.Config() != target {
		t.Fatalf("gateway never reconfigured (decisions=%d)", decisions.Load())
	}
}

func TestCloseFlushesPending(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 30},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := g.Enqueue()
	g.Close()
	select {
	case resp := <-done:
		if resp.BatchSize != 1 {
			t.Fatalf("flushed batch size = %d", resp.BatchSize)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not flush the pending request")
	}
	// Double close is safe.
	g.Close()
}

func TestConcurrentLoad(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.01},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	const n = 64
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := postInfer(t, srv.URL)
			if out.BatchSize >= 1 && out.BatchSize <= 4 {
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if served.Load() != n {
		t.Fatalf("served %d of %d with sane batch sizes", served.Load(), n)
	}
}

func TestFlushTimeoutOnEmptyQueueCountsNothing(t *testing.T) {
	// Regression: a timeout flush can lose the race with a size dispatch
	// that already drained the queue, leaving flushTimeout (and execute) a
	// nil batch. That must never reach the backend or the accounting.
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 30},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.shards[0].flushTimeout()
	g.shards[0].execute(nil, nil, causeTimeout, nil)
	s := g.Stats()
	if s.Invocations != 0 || s.Served != 0 {
		t.Fatalf("empty flush counted work: %+v", s)
	}
	if s.TotalCostUSD > 0 {
		t.Fatalf("empty flush billed cost: %+v", s)
	}
	snap := g.Obs().Snapshot()
	for _, c := range snap.Series {
		if c.Kind == obs.KindCounter && c.Value > 0 {
			t.Fatalf("counter %s = %v after empty flush", c.Name, c.Value)
		}
	}
}
