//go:build poolcheck

package gateway

import "fmt"

// Pool-hygiene instrumentation (poolcheck build tag): a waiter is poisoned
// when it enters the free-list and verified still-poisoned when it leaves.
// Any recycling bug — a stale response left in the completion channel, a
// waiter put back twice, a live waiter recycled — panics at the earliest
// put/get instead of silently aliasing a later request's response. `make
// race` runs the gateway tests with this tag on.

// poisonID is an ID no real request ever carries (IDs start at 1).
const poisonID = -0x5EED

func poisonWaiter(w *waiter) {
	if w.id == poisonID {
		panic("gateway: pooled waiter put back twice")
	}
	if len(w.ch) != 0 {
		panic(fmt.Sprintf("gateway: waiter %d recycled with an unconsumed response", w.id))
	}
	w.id = poisonID
}

func checkWaiterClean(w *waiter) {
	if w.id != poisonID {
		panic(fmt.Sprintf("gateway: pooled waiter dirty on reuse (id=%d)", w.id))
	}
	if len(w.ch) != 0 {
		panic("gateway: pooled waiter has a pending response on reuse")
	}
}
