package gateway

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"deepbat/internal/lambda"
	"deepbat/internal/obs"
)

// scrapeProm GETs /metrics and parses the Prometheus text format into a
// sample map (metric name, or name_bucket{le="..."} key, to value) plus the
// set of TYPE declarations.
func scrapeProm(t *testing.T, url string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	samples := make(map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func TestMetricsEndpointScrapes(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const n = 5
	for i := 0; i < n; i++ {
		postInfer(t, srv.URL)
	}
	samples, types := scrapeProm(t, srv.URL)

	if got := samples["gateway_requests_total"]; got != n {
		t.Fatalf("gateway_requests_total = %v, want %d", got, n)
	}
	if got := samples["gateway_dispatch_immediate_total"]; got != n {
		t.Fatalf("gateway_dispatch_immediate_total = %v, want %d", got, n)
	}
	if got := samples["gateway_request_latency_seconds_count"]; got != n {
		t.Fatalf("latency histogram count = %v, want %d", got, n)
	}
	if samples["gateway_cost_usd_total"] <= 0 {
		t.Fatal("no cost recorded")
	}
	if got := samples["gateway_config_batch_size"]; got != 1 {
		t.Fatalf("gateway_config_batch_size = %v", got)
	}
	if types["gateway_requests_total"] != "counter" ||
		types["gateway_request_latency_seconds"] != "histogram" ||
		types["gateway_config_memory_mb"] != "gauge" {
		t.Fatalf("TYPE declarations wrong: %v", types)
	}
	// The +Inf bucket must equal the histogram count.
	inf := samples[`gateway_request_latency_seconds_bucket{le="+Inf"}`]
	if inf != samples["gateway_request_latency_seconds_count"] {
		t.Fatalf("+Inf bucket %v != count %v", inf, samples["gateway_request_latency_seconds_count"])
	}
}

func TestDispatchCauseCounters(t *testing.T) {
	// Size-triggered: B=2, long timeout.
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 5},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	srv := httptest.NewServer(g.Handler())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); postInfer(t, srv.URL) }()
	}
	wg.Wait()
	samples, _ := scrapeProm(t, srv.URL)
	srv.Close()
	if got := samples["gateway_dispatch_size_total"]; got != 1 {
		t.Fatalf("gateway_dispatch_size_total = %v, want 1", got)
	}

	// Timeout-triggered: B=8, short timeout, single request.
	g2, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.02},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Stop()
	srv2 := httptest.NewServer(g2.Handler())
	postInfer(t, srv2.URL)
	samples2, _ := scrapeProm(t, srv2.URL)
	srv2.Close()
	if got := samples2["gateway_dispatch_timeout_total"]; got != 1 {
		t.Fatalf("gateway_dispatch_timeout_total = %v, want 1", got)
	}

	// Flush-triggered: Stop drains the open batch.
	g3, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 30},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := g3.Enqueue()
	g3.Stop()
	<-done
	c, err := g3.Obs().Counter("gateway_dispatch_flush_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != 1 {
		t.Fatalf("gateway_dispatch_flush_total = %v, want 1", got)
	}
}

func TestViolationCounterAndReconfigEvents(t *testing.T) {
	target := lambda.Config{MemoryMB: 1024, BatchSize: 2, TimeoutS: 0.01}
	decide := func(window []float64) (lambda.Config, error) { return target, nil }
	g, err := New(fastBackend(), decide, Config{
		// TimeoutS forces ~20ms buffering, far above the 1µs SLO below, so
		// every request violates.
		Initial:     lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.02},
		SLO:         1e-6,
		DecideEvery: 10 * time.Millisecond,
		WindowLen:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		postInfer(t, srv.URL)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && g.Config() != target {
		time.Sleep(5 * time.Millisecond)
	}
	if g.Config() != target {
		t.Fatal("gateway never reconfigured")
	}

	v, err := g.Obs().Counter("gateway_slo_violations_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.Value() < 3 {
		t.Fatalf("violations = %v, want >= 3", v.Value())
	}
	var reconf int
	for _, e := range g.Events().Events() {
		if e.Name == "reconfigure" {
			reconf++
			if len(e.Attrs) != 2 || e.Attrs[0].Key != "from" || e.Attrs[1].Key != "to" {
				t.Fatalf("reconfigure event attrs = %+v", e.Attrs)
			}
		}
	}
	if reconf == 0 {
		t.Fatal("no reconfigure event recorded")
	}
	r, err := g.Obs().Counter("gateway_reconfigurations_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if int(r.Value()) != reconf {
		t.Fatalf("reconfig counter %v != events %d", r.Value(), reconf)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	g, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	postInfer(t, srv.URL)

	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Metrics obs.Snapshot `json:"metrics"`
		Events  []obs.Event  `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range doc.Metrics.Series {
		if s.Name == "gateway_requests_total" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missing gateway_requests_total=1: %+v", doc.Metrics.Series)
	}
}

// TestInjectedRegistryCollisionErrors pins the no-panic contract: a second
// gateway on the same registry re-uses the same series (get-or-create), but
// a registry where a gateway name is already taken by another kind must
// surface an error from New.
func TestInjectedRegistryCollisionErrors(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := reg.Gauge("gateway_requests_total", ""); err != nil {
		t.Fatal(err)
	}
	_, err := New(fastBackend(), nil, Config{
		Initial: lambda.Config{MemoryMB: 2048, BatchSize: 1, TimeoutS: 0},
		SLO:     0.1,
		Obs:     reg,
	})
	if err == nil {
		t.Fatal("New did not propagate the registration collision")
	}
}

// gatewayLifecycle runs one full Start→traffic→scrape→Stop cycle, returning
// only after Stop has joined everything.
func gatewayLifecycle(t *testing.T) {
	t.Helper()
	decide := func(window []float64) (lambda.Config, error) {
		return lambda.Config{MemoryMB: 2048, BatchSize: 2, TimeoutS: 0.005}, nil
	}
	g, err := New(fastBackend(), decide, Config{
		Initial:     lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.005},
		SLO:         0.1,
		DecideEvery: 5 * time.Millisecond,
		WindowLen:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/infer", "application/json", nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Scrape /metrics mid-run, while batch timers and the control loop are
	// live, and check it parses.
	samples, types := scrapeProm(t, srv.URL)
	if len(samples) == 0 || types["gateway_requests_total"] != "counter" {
		t.Fatalf("mid-run scrape failed: %d samples", len(samples))
	}
	wg.Wait()
	srv.Close() // drain handlers before stopping the gateway
	g.Stop()
	g.Stop() // idempotent
}

// TestStartStopJoinsAllGoroutines is the goroutine-leak regression test for
// the gateway lifecycle: after Stop returns, the control loop, every batch
// timer, and every batch-execution goroutine must be gone. Several cycles
// run back-to-back so a single leaked goroutine per cycle shows up as a
// monotone drift over the baseline.
func TestStartStopJoinsAllGoroutines(t *testing.T) {
	// Let goroutines from other tests settle first.
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		gatewayLifecycle(t)
	}
	// HTTP client/server helpers may take a moment to wind down; poll.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}
