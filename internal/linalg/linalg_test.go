package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At = %v", m.At(1, 0))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if Add(a, b).At(1, 1) != 12 {
		t.Fatal("Add")
	}
	if Sub(b, a).At(0, 0) != 4 {
		t.Fatal("Sub")
	}
	if Scale(a, 2).At(1, 0) != 6 {
		t.Fatal("Scale")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
}

func TestVecMatMatVecDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := VecMat([]float64{1, 1}, a)
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("VecMat = %v", v)
	}
	w := MatVec(a, []float64{1, 1})
	if w[0] != 3 || w[1] != 7 {
		t.Fatalf("MatVec = %v", w)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	if o := Ones(3); o[0] != 1 || len(o) != 3 {
		t.Fatal("Ones")
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolvePivoting(t *testing.T) {
	// Requires row swap: zero pivot in the first position.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve pivoting = %v", x)
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	id := Mul(a, inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id.At(i, j)-want) > 1e-12 {
				t.Fatalf("A A^-1 = %v", id.Data)
			}
		}
	}
	if _, err := Inverse(FromRows([][]float64{{1, 1}, {1, 1}})); err == nil {
		t.Fatal("Inverse of singular should fail")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -2}})
	e := Expm(a)
	if math.Abs(e.At(0, 0)-math.E) > 1e-10 || math.Abs(e.At(1, 1)-math.Exp(-2)) > 1e-10 {
		t.Fatalf("Expm diag = %v", e.Data)
	}
	if math.Abs(e.At(0, 1)) > 1e-12 || math.Abs(e.At(1, 0)) > 1e-12 {
		t.Fatalf("Expm diag off-terms = %v", e.Data)
	}
}

func TestExpmZero(t *testing.T) {
	e := Expm(NewMat(3, 3))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Expm(0) = %v", e.Data)
			}
		}
	}
}

func TestExpmNilpotent(t *testing.T) {
	// A = [[0,1],[0,0]] => e^A = [[1,1],[0,1]] exactly.
	a := FromRows([][]float64{{0, 1}, {0, 0}})
	e := Expm(a)
	if math.Abs(e.At(0, 0)-1) > 1e-12 || math.Abs(e.At(0, 1)-1) > 1e-12 ||
		math.Abs(e.At(1, 0)) > 1e-12 || math.Abs(e.At(1, 1)-1) > 1e-12 {
		t.Fatalf("Expm nilpotent = %v", e.Data)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Check e^(A) via the semigroup property against e^(A/2) squared.
	a := FromRows([][]float64{{-30, 30}, {5, -5}})
	e := Expm(a)
	half := Expm(Scale(a, 0.5))
	sq := Mul(half, half)
	for i := range e.Data {
		if math.Abs(e.Data[i]-sq.Data[i]) > 1e-8 {
			t.Fatalf("semigroup violated: %v vs %v", e.Data, sq.Data)
		}
	}
}

func TestExpmGeneratorRowSums(t *testing.T) {
	// e^(Qt) of a CTMC generator is stochastic: nonneg rows summing to 1.
	q := FromRows([][]float64{{-2, 2, 0}, {1, -3, 2}, {0, 4, -4}})
	e := Expm(Scale(q, 0.37))
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			v := e.At(i, j)
			if v < -1e-12 {
				t.Fatalf("negative transition probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestExpmSemigroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewMat(2, 2)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		e1 := Expm(a)
		h := Expm(Scale(a, 0.5))
		e2 := Mul(h, h)
		for i := range e1.Data {
			if math.Abs(e1.Data[i]-e2.Data[i]) > 1e-7*(1+math.Abs(e1.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryVector(t *testing.T) {
	// Birth-death chain with known stationary distribution.
	q := FromRows([][]float64{{-1, 1}, {2, -2}})
	pi, err := StationaryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	// pi = (2/3, 1/3): balance 1*pi0 = 2*pi1.
	if math.Abs(pi[0]-2.0/3) > 1e-12 || math.Abs(pi[1]-1.0/3) > 1e-12 {
		t.Fatalf("stationary = %v", pi)
	}
}

func TestStationaryVectorThreeState(t *testing.T) {
	q := FromRows([][]float64{{-3, 2, 1}, {1, -2, 1}, {2, 2, -4}})
	pi, err := StationaryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	sum := pi[0] + pi[1] + pi[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("stationary sums to %v", sum)
	}
	// Verify pi Q = 0.
	r := VecMat(pi, q)
	for _, v := range r {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("pi Q = %v", r)
		}
	}
}

func TestKron(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	k := Kron(a, b)
	if k.R != 4 || k.C != 4 {
		t.Fatalf("Kron shape = %dx%d", k.R, k.C)
	}
	// Block (0,0) = 1*b, block (0,1) = 2*b.
	if k.At(0, 1) != 1 || k.At(0, 3) != 2 || k.At(3, 0) != 3 || k.At(2, 3) != 4 {
		t.Fatalf("Kron = %v", k.Data)
	}
}

func TestKronSumGenerators(t *testing.T) {
	// The Kronecker sum of two CTMC generators is a generator (zero rows).
	a := FromRows([][]float64{{-1, 1}, {2, -2}})
	b := FromRows([][]float64{{-3, 3}, {1, -1}})
	ks := KronSum(a, b)
	for i := 0; i < ks.R; i++ {
		sum := 0.0
		for j := 0; j < ks.C; j++ {
			sum += ks.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestKronSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square input")
		}
	}()
	KronSum(NewMat(2, 3), NewMat(2, 2))
}

func TestMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Mul(NewMat(2, 3), NewMat(2, 3))
}

// mulReference is the pre-gemm naive product (ikj with skip-on-zero),
// retained as the floating-point reference for Mul.
func mulReference(a, b *Mat) *Mat {
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			av := a.Data[i*a.C+k]
			if av == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.Data[i*b.C+j] += av * b.Data[k*b.C+j]
			}
		}
	}
	return out
}

// TestMulMatchesReferenceBitwise pins Mul to the reference kernel on both
// sides of the gemm blocked-dispatch threshold, including ragged shapes.
func TestMulMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, s := range []struct{ n, k, m int }{
		{2, 2, 2},    // MMPP-sized, naive path
		{7, 5, 11},   // ragged, naive path
		{33, 40, 37}, // ragged, blocked path (> BlockedThreshold)
	} {
		a := NewMat(s.n, s.k)
		b := NewMat(s.k, s.m)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a.Data[0] = 0
		want := mulReference(a, b)
		got := Mul(a, b)
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("shape %v: cell %d = %v, want %v (bitwise)", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}
