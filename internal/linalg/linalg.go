// Package linalg provides the small dense-matrix kernels needed by the
// Markovian arrival process (MAP) machinery: products, linear solves,
// stationary-vector computation, and the matrix exponential via Padé
// approximation with scaling and squaring. Matrices here are usually tiny
// (the reproduction uses 2-state MMPPs); products route through the shared
// internal/gemm kernels, which dispatch to the blocked/packed fast path for
// the occasional large product (Kronecker-expanded superpositions) while
// staying bit-identical to the naive reference kernel.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"deepbat/internal/gemm"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat returns a zero r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Mat {
	r := len(rows)
	if r == 0 {
		return NewMat(0, 0)
	}
	c := len(rows[0])
	m := NewMat(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: %d vs %d", len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.R, m.C)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

func checkSame(a, b *Mat) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
}

// Add returns a + b.
func Add(a, b *Mat) *Mat {
	checkSame(a, b)
	out := NewMat(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Mat) *Mat {
	checkSame(a, b)
	out := NewMat(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Mat, s float64) *Mat {
	out := NewMat(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// Mul returns the matrix product a b via the shared gemm kernels: the
// blocked/packed kernel above gemm.BlockedThreshold, the naive reference
// kernel below it. Both produce identical bits, so the dispatch is
// invisible to callers.
func Mul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	n, k, m := a.R, a.C, b.C
	if n*k*m >= gemm.BlockedThreshold {
		packed := make([]float64, gemm.PackedLen(k, m))
		gemm.Pack(packed, b.Data, k, m)
		gemm.Blocked(out.Data, a.Data, packed, 0, n, k, m)
		return out
	}
	gemm.Naive(out.Data, a.Data, b.Data, 0, n, k, m)
	return out
}

// VecMat returns the row vector v a (v length = a.R).
func VecMat(v []float64, a *Mat) []float64 {
	if len(v) != a.R {
		panic("linalg: VecMat length mismatch")
	}
	out := make([]float64, a.C)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		for j := 0; j < a.C; j++ {
			out[j] += vi * a.Data[i*a.C+j]
		}
	}
	return out
}

// MatVec returns the column vector a v (v length = a.C).
func MatVec(a *Mat, v []float64) []float64 {
	if len(v) != a.C {
		panic("linalg: MatVec length mismatch")
	}
	out := make([]float64, a.R)
	for i := 0; i < a.R; i++ {
		s := 0.0
		for j := 0; j < a.C; j++ {
			s += a.Data[i*a.C+j] * v[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Mat) *Mat {
	out := NewMat(a.R*b.R, a.C*b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for k := 0; k < b.R; k++ {
				for l := 0; l < b.C; l++ {
					out.Set(i*b.R+k, j*b.C+l, av*b.At(k, l))
				}
			}
		}
	}
	return out
}

// KronSum returns the Kronecker sum a ⊕ b = a ⊗ I + I ⊗ b for square a, b.
func KronSum(a, b *Mat) *Mat {
	if a.R != a.C || b.R != b.C {
		panic("linalg: KronSum requires square matrices")
	}
	return Add(Kron(a, Identity(b.R)), Kron(Identity(a.R), b))
}

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves A x = b by Gaussian elimination with partial pivoting.
// A and b are not modified.
func Solve(a *Mat, b []float64) ([]float64, error) {
	n := a.R
	if a.C != n || len(b) != n {
		panic("linalg: Solve requires square system")
	}
	// Augmented working copy.
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		copy(m[i], a.Data[i*n:(i+1)*n])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Mat) (*Mat, error) {
	n := a.R
	if a.C != n {
		panic("linalg: Inverse requires square matrix")
	}
	out := NewMat(n, n)
	e := make([]float64, n)
	for col := 0; col < n; col++ {
		for i := range e {
			e[i] = 0
		}
		e[col] = 1
		x, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Data[i*n+col] = x[i]
		}
	}
	return out, nil
}

// MaxAbs returns the largest absolute entry of a.
func MaxAbs(a *Mat) float64 {
	m := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Expm returns e^A computed with a 6th-order Padé approximant combined with
// scaling and squaring. A must be square.
func Expm(a *Mat) *Mat {
	n := a.R
	if a.C != n {
		panic("linalg: Expm requires square matrix")
	}
	// Scale so that the norm is below 0.5.
	norm := MaxAbs(a)
	s := 0
	for norm > 0.5 {
		norm /= 2
		s++
	}
	x := Scale(a, 1/math.Pow(2, float64(s)))

	// Padé(6,6) coefficients.
	const q = 6
	c := 1.0
	num := Identity(n)
	den := Identity(n)
	pow := Identity(n)
	for k := 1; k <= q; k++ {
		c = c * float64(q-k+1) / float64(k*(2*q-k+1))
		pow = Mul(pow, x)
		num = Add(num, Scale(pow, c))
		if k%2 == 0 {
			den = Add(den, Scale(pow, c))
		} else {
			den = Sub(den, Scale(pow, c))
		}
	}
	inv, err := Inverse(den)
	if err != nil {
		// Fall back to a truncated Taylor series; the denominator of a Padé
		// approximant is singular only for pathological inputs.
		return expmTaylor(a)
	}
	r := Mul(inv, num)
	for i := 0; i < s; i++ {
		r = Mul(r, r)
	}
	return r
}

// expmTaylor is a plain Taylor-series fallback for Expm.
func expmTaylor(a *Mat) *Mat {
	n := a.R
	r := Identity(n)
	term := Identity(n)
	for k := 1; k <= 64; k++ {
		term = Scale(Mul(term, a), 1/float64(k))
		r = Add(r, term)
		if MaxAbs(term) < 1e-16 {
			break
		}
	}
	return r
}

// StationaryVector returns the probability vector pi with pi Q = 0 and
// sum(pi) = 1 for an irreducible CTMC generator Q.
func StationaryVector(q *Mat) ([]float64, error) {
	n := q.R
	if q.C != n {
		panic("linalg: StationaryVector requires square generator")
	}
	// Solve Q^T pi^T = 0 with the last equation replaced by sum = 1.
	a := NewMat(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, q.At(j, i)) // transpose
		}
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	return Solve(a, b)
}
