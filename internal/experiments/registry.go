package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment against a lab.
type Runner func(*Lab) (*Report, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"fig1":   Fig1,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15a": Fig15a,
	"fig15b": Fig15b,
	"timing": Timing,
	// Beyond the paper's own figures: the design-choice ablations that
	// DESIGN.md calls out.
	"ablations": Ablations,
	// Observability: dump an instrumented simulation's metric snapshot and
	// event stream (internal/obs).
	"obs": Obs,
	// Chaos: the serving path under the deterministic fault model
	// (internal/fault), swept over error rates and retry budgets.
	"chaos": Chaos,
	// Scenarios: the workload zoo replayed through the real gateway hot
	// path (internal/workload + internal/replay), {trace x fault x SLO}.
	"scenarios": Scenarios,
	// Fleet: the multi-SLO planner (solo search + merge pass) evaluated
	// through the fleet front door, {class count x SLO spread x merge}.
	"fleet": FleetExp,
}

// IDs returns the registered experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(l *Lab, id string) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, IDs())
	}
	return r(l)
}
