package experiments

import "fmt"

// vcrReport renders the per-hour VCR of BATCH vs fine-tuned DeepBAT over the
// first 12 hours of a trace (the template behind Figs. 8 and 10), plus the
// no-fine-tuning ablation for the hours the paper calls out.
func vcrReport(l *Lab, id, title, traceName string, ablateHours []int) (*Report, error) {
	r := &Report{ID: id, Title: title}
	db, err := l.Replay(traceName, kindDeepBAT, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	ba, err := l.Replay(traceName, kindBATCH, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	dh := db.WindowVCR(l.Cfg.HourSeconds)
	bh := ba.WindowVCR(l.Cfg.HourSeconds)
	hours := l.Cfg.Hours / 2
	if hours > len(dh) {
		hours = len(dh)
	}
	if hours > len(bh) {
		hours = len(bh)
	}
	t := r.AddTable("per-hour VCR", "hour", "deepbat_vcr", "batch_vcr")
	for h := 0; h < hours; h++ {
		t.AddRow(fmt.Sprintf("%d", h), fmtPct(dh[h]), fmtPct(bh[h]))
	}

	if len(ablateHours) > 0 {
		raw, err := l.Replay(traceName, kindDeepBATRaw, l.Cfg.SLO)
		if err != nil {
			return nil, err
		}
		rh := raw.WindowVCR(l.Cfg.HourSeconds)
		ab := r.AddTable("fine-tuning ablation (pre-trained model only)",
			"hour", "deepbat_ft_vcr", "deepbat_noft_vcr", "batch_vcr",
			"deepbat_ft_cost", "deepbat_noft_cost")
		for _, h := range ablateHours {
			if h < len(dh) && h < len(rh) && h < len(bh) {
				from := float64(h) * l.Cfg.HourSeconds
				to := from + l.Cfg.HourSeconds
				ab.AddRow(fmt.Sprintf("%d", h), fmtPct(dh[h]), fmtPct(rh[h]), fmtPct(bh[h]),
					fmtUSD(costBetween(db, from, to)), fmtUSD(costBetween(raw, from, to)))
			}
		}
		r.AddNote("at this scale the calibrated robustness margin keeps even the unadapted model inside the SLO; the fine-tuning benefit then appears as lower cost")
	}
	sum := r.AddTable("overall", "metric", "deepbat", "batch")
	sum.AddRow("VCR", fmtPct(db.VCR()), fmtPct(ba.VCR()))
	sum.AddRow("cost/request", fmtUSD(db.CostPerRequest()), fmtUSD(ba.CostPerRequest()))
	r.AddNote("expected shape: BATCH VCR spikes in the hours after intensity shifts; fine-tuned DeepBAT stays far lower; no-fine-tune DeepBAT sits in between")
	return r, nil
}

// Fig8 reproduces Fig. 8: hourly VCR on the Alibaba trace, with the paper's
// hour-4/5 fine-tuning ablation.
func Fig8(l *Lab) (*Report, error) {
	return vcrReport(l, "fig8", "Alibaba: VCR per hour (12h)", "alibaba", []int{4, 5})
}

// Fig10 reproduces Fig. 10: hourly VCR on the MAP-generated synthetic trace.
func Fig10(l *Lab) (*Report, error) {
	return vcrReport(l, "fig10", "Synthetic (MAP): VCR per hour (12h)", "synthetic", nil)
}
