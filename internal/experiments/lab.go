// Package experiments reproduces every figure of the paper's evaluation
// (Figs. 1, 4–15 and the Section IV-F timing comparison) on the synthetic
// substrate: each experiment returns a Report of plain-text tables with the
// same rows/series the paper plots. The Lab caches traces, trained models,
// and closed-loop replays so that one process can regenerate the full
// evaluation without repeating work.
//
// Time scaling: paper hours are simulated at Lab.Cfg.HourSeconds of trace
// time per hour (default 60 s). The system under study is event-driven, so
// shapes — who wins, by how much, where crossovers fall — are preserved.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"deepbat"
	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/obs"
	"deepbat/internal/qsim"
	"deepbat/internal/surrogate"
	"deepbat/internal/sweep"
	"deepbat/internal/trace"
	"deepbat/internal/workload"
)

// LabConfig scales the evaluation.
type LabConfig struct {
	Hours       int
	HourSeconds float64
	Seed        int64
	SLO         float64
	SeqLen      int
	// TrainSamples/TrainEpochs control pre-training on the Azure trace.
	TrainSamples int
	TrainEpochs  int
	// FineTuneSamples labels the first-hour OOD adaptation sets.
	FineTuneSamples int
	Grid            lambda.Grid
	// Workers bounds each experiment's parallel fan-out through
	// internal/sweep (0 = GOMAXPROCS, 1 = serial). Reports are byte-identical
	// at every value: cells replay/simulate in isolation and merge in cell
	// order. Training-bound cells ignore it and run serially — grad mode is
	// a process-global scope (see tensor.NoGrad).
	Workers int
}

// DefaultLabConfig matches the paper's setup at the default time scale. The
// training budget (window length, samples, epochs) is sized for a single
// CPU core — raise SeqLen/TrainSamples/TrainEpochs freely on bigger
// machines; every replayed figure keeps the full 24-hour traces.
func DefaultLabConfig() LabConfig {
	return LabConfig{
		Hours:           trace.DefaultHours,
		HourSeconds:     trace.DefaultHourSeconds,
		Seed:            trace.DefaultSeed,
		SLO:             0.1,
		SeqLen:          32,
		TrainSamples:    700,
		TrainEpochs:     10,
		FineTuneSamples: 150,
		Grid:            lambda.DefaultGrid(),
	}
}

// QuickLabConfig shrinks everything for tests and benchmarks.
func QuickLabConfig() LabConfig {
	c := DefaultLabConfig()
	c.Hours = 8
	c.HourSeconds = 20
	c.SeqLen = 16
	c.TrainSamples = 200
	c.TrainEpochs = 5
	c.FineTuneSamples = 60
	c.Grid = lambda.Grid{
		Memories:  []float64{1024, 2048, 4096},
		Batches:   []int{1, 4, 8, 16},
		TimeoutsS: []float64{0.02, 0.05, 0.1},
	}
	return c
}

// Lab holds shared, lazily built experiment state.
type Lab struct {
	Cfg LabConfig

	// Obs, when non-nil, accumulates the merged metric registries of every
	// sweep cell (replay gateways, chaos simulators) in cell-index order —
	// the deterministic snapshot cmd/experiments -metrics writes.
	Obs *obs.Registry
	// WL is the shared read-only workload cache: each tracev1 trace is
	// synthesized and digested once and its slices are shared across every
	// cell that replays it.
	WL *workload.Cache

	mu      sync.Mutex
	traces  map[string]*trace.Trace
	base    *deepbat.System
	tuned   map[string]*deepbat.System
	replays map[string]*deepbat.ReplayResult
}

// NewLab returns an empty lab.
func NewLab(cfg LabConfig) *Lab {
	return &Lab{
		Cfg:     cfg,
		WL:      workload.NewCache(),
		traces:  map[string]*trace.Trace{},
		tuned:   map[string]*deepbat.System{},
		replays: map[string]*deepbat.ReplayResult{},
	}
}

// sweep fans n independent cells out across the lab's worker budget,
// merging per-cell telemetry into l.Obs in cell order.
func (l *Lab) sweep(n int, fn func(c *sweep.Cell) error) error {
	return sweep.Run(sweep.Options{Workers: l.Cfg.Workers, Seed: l.Cfg.Seed, Obs: l.Obs}, n, fn)
}

// sweepSerial runs n cells through the engine pinned to one worker. It is
// the required shape for cells that train models: tensor's grad mode is a
// process-global scope, so grad-mode training may never overlap another
// cell's no-grad evaluation. The cells still get per-cell seeds, isolated
// registries, and panic capture.
func (l *Lab) sweepSerial(n int, fn func(c *sweep.Cell) error) error {
	return sweep.Run(sweep.Options{Workers: 1, Seed: l.Cfg.Seed, Obs: l.Obs}, n, fn)
}

// replayKey names one cached closed-loop replay.
type replayKey struct {
	kind deciderKind
	slo  float64
}

// warmReplays fills the lab's replay cache for one trace in parallel: the
// systems each key needs are trained first (serially — training holds the
// process-global grad mode), then the replays themselves, which are pure
// inference and simulation, fan out as sweep cells. Callers then assemble
// tables from the warm cache in their own deterministic order.
func (l *Lab) warmReplays(traceName string, keys []replayKey) error {
	for _, k := range keys {
		if k.kind == kindDeepBAT && (traceName == "alibaba" || traceName == "synthetic") {
			if _, err := l.TunedSystem(traceName); err != nil {
				return err
			}
			continue
		}
		if _, err := l.BaseSystem(); err != nil {
			return err
		}
	}
	l.Trace(traceName) // generate once up front rather than under the first cell's lock
	return l.sweep(len(keys), func(c *sweep.Cell) error {
		_, err := l.Replay(traceName, keys[c.Index].kind, keys[c.Index].slo)
		return err
	})
}

// Trace returns the named workload, generating and caching it on first use.
func (l *Lab) Trace(name string) *trace.Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tr, ok := l.traces[name]; ok {
		return tr
	}
	tr := trace.MustGenerate(trace.Spec{
		Name:  name,
		Hours: l.Cfg.Hours, HourSeconds: l.Cfg.HourSeconds, Seed: l.Cfg.Seed,
	})
	l.traces[name] = tr
	return tr
}

// options assembles the deepbat options for this lab.
func (l *Lab) options() deepbat.Options {
	opts := deepbat.DefaultOptions()
	opts.SLO = l.Cfg.SLO
	opts.Grid = l.Cfg.Grid
	opts.Model.SeqLen = l.Cfg.SeqLen
	opts.Model.Dropout = 0
	opts.DatasetSamples = l.Cfg.TrainSamples
	opts.Train.Epochs = l.Cfg.TrainEpochs
	opts.Seed = l.Cfg.Seed
	return opts
}

// BaseSystem returns the system pre-trained on the first half of the Azure
// trace, as in Section IV-B ("We train the model using the first 12-hour
// Azure data").
func (l *Lab) BaseSystem() (*deepbat.System, error) {
	l.mu.Lock()
	if l.base != nil {
		defer l.mu.Unlock()
		return l.base, nil
	}
	l.mu.Unlock()

	azure := l.Trace("azure")
	trainTrace := azure.FirstHours(l.Cfg.Hours / 2)
	sys, err := deepbat.Train(trainTrace, l.options())
	if err != nil {
		return nil, fmt.Errorf("experiments: pre-train: %w", err)
	}
	l.mu.Lock()
	l.base = sys
	l.mu.Unlock()
	return sys, nil
}

// TunedSystem returns a copy of the base system fine-tuned on the first hour
// of the named OOD trace (Sections IV-C/D).
func (l *Lab) TunedSystem(name string) (*deepbat.System, error) {
	l.mu.Lock()
	if s, ok := l.tuned[name]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()

	base, err := l.BaseSystem()
	if err != nil {
		return nil, err
	}
	// Clone via serialization so fine-tuning never mutates the base model.
	var buf strings.Builder
	if err := base.Model.Save(&writerAdapter{&buf}); err != nil {
		return nil, err
	}
	m, err := surrogate.Load(strings.NewReader(buf.String()))
	if err != nil {
		return nil, err
	}
	sys := deepbat.NewSystem(m, base.Opts)
	firstHour := l.Trace(name).FirstHours(1)
	// FineTune also recalibrates the robustness penalty gamma on the
	// adaptation data (Section III-D).
	if err := sys.FineTune(firstHour, l.Cfg.FineTuneSamples); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.tuned[name] = sys
	l.mu.Unlock()
	return sys, nil
}

// writerAdapter lets a strings.Builder act as an io.Writer for gob.
type writerAdapter struct{ b *strings.Builder }

func (w *writerAdapter) Write(p []byte) (int, error) { return w.b.Write(p) }

// Simulator returns a fresh ground-truth simulator with the lab's profile.
func (l *Lab) Simulator() *qsim.Simulator {
	return qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
}

// replayOptions are the standard closed-loop settings: DeepBAT re-decides
// every control period; BATCH once per paper-hour.
func (l *Lab) replayOptions() deepbat.ReplayOptions {
	return deepbat.ReplayOptions{
		PeriodS:       l.Cfg.HourSeconds / 6,
		DecideEvery:   1,
		LookbackS:     l.Cfg.HourSeconds,
		InitialConfig: deepbat.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           l.Cfg.SLO,
	}
}

// deciderKind selects which controller a cached replay used.
type deciderKind string

const (
	kindDeepBAT    deciderKind = "deepbat"     // fine-tuned where applicable
	kindDeepBATRaw deciderKind = "deepbat-raw" // base model, no fine-tuning
	kindBATCH      deciderKind = "batch"
	kindOracle     deciderKind = "oracle"
)

// Replay runs (or returns the cached) closed-loop replay of the named trace
// under the given controller at the given SLO.
func (l *Lab) Replay(traceName string, kind deciderKind, slo float64) (*deepbat.ReplayResult, error) {
	key := fmt.Sprintf("%s/%s/%g", traceName, kind, slo)
	l.mu.Lock()
	if r, ok := l.replays[key]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()

	tr := l.Trace(traceName)
	var sys *deepbat.System
	var err error
	switch {
	case kind == kindDeepBAT && (traceName == "alibaba" || traceName == "synthetic"):
		sys, err = l.TunedSystem(traceName)
	default:
		sys, err = l.BaseSystem()
	}
	if err != nil {
		return nil, err
	}
	opts := l.replayOptions()
	opts.SLO = slo
	sys = sys.WithSLO(slo)
	var dec deepbat.Decider
	switch kind {
	case kindDeepBAT, kindDeepBATRaw:
		dec = sys.Decider()
	case kindBATCH:
		dec = sys.BATCHBaseline()
		// A coarser analytic grid keeps long closed-loop replays affordable
		// on small machines; the batchopt convergence tests show the P95
		// estimate is already stable at this resolution. The Section IV-F
		// timing experiment uses the default resolution.
		if bd, ok := dec.(*core.BATCHDecider); ok {
			bd.Pipeline.Analyzer.GridSteps = 96
		}
		// BATCH re-fits once per paper-hour on the previous hour's data.
		opts.DecideEvery = int(l.Cfg.HourSeconds / opts.PeriodS)
		if opts.DecideEvery < 1 {
			opts.DecideEvery = 1
		}
	case kindOracle:
		dec = sys.Oracle()
	default:
		return nil, fmt.Errorf("experiments: unknown decider kind %q", kind)
	}
	res, err := sys.Replay(tr.Timestamps, dec, opts)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.replays[key] = res
	l.mu.Unlock()
	return res, nil
}
