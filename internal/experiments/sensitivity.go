package experiments

import (
	"fmt"
	"time"

	"deepbat/internal/surrogate"
	"deepbat/internal/sweep"
)

// trainFor trains a fresh surrogate with the given architecture overrides on
// Azure data and returns it with its validation set.
func (l *Lab) trainFor(mutate func(*surrogate.ModelConfig)) (*surrogate.Model, *surrogate.Dataset, error) {
	return l.trainVariant(mutate, nil)
}

// trained is one (model, validation set) pair produced by a training cell.
type trained struct {
	m   *surrogate.Model
	val *surrogate.Dataset
}

// trainCells trains one surrogate variant per mutation through the sweep
// engine. The fan-out is pinned serial (sweepSerial): grad mode is a
// process-global scope, so two training cells may never overlap — but each
// variant still runs as an isolated, panic-captured cell.
func (l *Lab) trainCells(mutations []func(*surrogate.ModelConfig)) ([]trained, error) {
	out := make([]trained, len(mutations))
	err := l.sweepSerial(len(mutations), func(c *sweep.Cell) error {
		m, val, err := l.trainFor(mutations[c.Index])
		if err != nil {
			return err
		}
		out[c.Index] = trained{m, val}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// seqLenSweep returns the sequence lengths evaluated by Fig15a, scaled from
// the lab's base length (the paper sweeps {128, 256, 512, 1024}).
func (l *Lab) seqLenSweep() []int {
	base := l.Cfg.SeqLen
	return []int{base, base * 2, base * 4, base * 8}
}

// Fig15a reproduces Fig. 15a: the sequence-length trade-off — prediction
// time per sequence rises sharply (attention is O(l^2)) while the error rate
// falls as longer windows expose more workload context.
func Fig15a(l *Lab) (*Report, error) {
	r := &Report{ID: "fig15a", Title: "Sensitivity to sequence length"}
	t := r.AddTable("", "seq_len", "time_per_sequence", "val_mape")
	tw := l.Trace("azure")
	lens := l.seqLenSweep()
	muts := make([]func(*surrogate.ModelConfig), len(lens))
	for i, sl := range lens {
		sl := sl
		muts[i] = func(mc *surrogate.ModelConfig) { mc.SeqLen = sl }
	}
	models, err := l.trainCells(muts)
	if err != nil {
		return nil, err
	}
	// Inference timing stays outside the cells: it is a wall-clock
	// measurement, and concurrent cells would contend for the core.
	for i, sl := range lens {
		m, val := models[i].m, models[i].val
		// Inference time per sequence: encode + full-grid scoring, averaged.
		inter := tw.Interarrivals()
		if len(inter) < sl {
			return nil, fmt.Errorf("experiments: trace shorter than window %d", sl)
		}
		window := inter[:sl]
		cfgs := l.Cfg.Grid.Configs()
		const reps = 10
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			m.PredictGrid(window, cfgs)
		}
		per := time.Since(start) / reps
		t.AddRow(fmt.Sprintf("%d", sl), per.String(), fmtPct(m.EvalMAPE(val)))
	}
	r.AddNote("expected shape: time per sequence grows superlinearly with length; error tends down (paper picks the mid-length balance point)")
	r.AddNote("lengths are scaled from the lab's base window; the paper sweeps {128, 256, 512, 1024}")
	return r, nil
}

// Fig15b reproduces Fig. 15b: the encoder-layer ablation — 2 layers train
// stably with low MAPE and deeper stacks do not help.
func Fig15b(l *Lab) (*Report, error) {
	r := &Report{ID: "fig15b", Title: "Ablation on Transformer encoder layers"}
	t := r.AddTable("", "layers", "val_mape", "final_val_loss")
	layerCounts := []int{1, 2, 4, 6}
	muts := make([]func(*surrogate.ModelConfig), len(layerCounts))
	for i, layers := range layerCounts {
		layers := layers
		muts[i] = func(mc *surrogate.ModelConfig) { mc.EncoderLayers = layers }
	}
	models, err := l.trainCells(muts)
	if err != nil {
		return nil, err
	}
	for i, layers := range layerCounts {
		m, val := models[i].m, models[i].val
		tc := surrogate.DefaultTrainConfig()
		tc.SLO = l.Cfg.SLO
		t.AddRow(fmt.Sprintf("%d", layers), fmtPct(m.EvalMAPE(val)), fmtF(m.EvalLoss(val, tc)))
	}
	r.AddNote("expected shape: 2 layers reach low MAPE; 4 and 6 layers do not improve on it (the paper fixes N=2)")
	return r, nil
}
