package experiments

import (
	"fmt"
	"time"

	"deepbat/internal/surrogate"
)

// trainFor trains a fresh surrogate with the given architecture overrides on
// Azure data and returns it with its validation set.
func (l *Lab) trainFor(mutate func(*surrogate.ModelConfig)) (*surrogate.Model, *surrogate.Dataset, error) {
	return l.trainVariant(mutate, nil)
}

// seqLenSweep returns the sequence lengths evaluated by Fig15a, scaled from
// the lab's base length (the paper sweeps {128, 256, 512, 1024}).
func (l *Lab) seqLenSweep() []int {
	base := l.Cfg.SeqLen
	return []int{base, base * 2, base * 4, base * 8}
}

// Fig15a reproduces Fig. 15a: the sequence-length trade-off — prediction
// time per sequence rises sharply (attention is O(l^2)) while the error rate
// falls as longer windows expose more workload context.
func Fig15a(l *Lab) (*Report, error) {
	r := &Report{ID: "fig15a", Title: "Sensitivity to sequence length"}
	t := r.AddTable("", "seq_len", "time_per_sequence", "val_mape")
	tw := l.Trace("azure")
	for _, sl := range l.seqLenSweep() {
		sl := sl
		m, val, err := l.trainFor(func(mc *surrogate.ModelConfig) { mc.SeqLen = sl })
		if err != nil {
			return nil, err
		}
		// Inference time per sequence: encode + full-grid scoring, averaged.
		inter := tw.Interarrivals()
		if len(inter) < sl {
			return nil, fmt.Errorf("experiments: trace shorter than window %d", sl)
		}
		window := inter[:sl]
		cfgs := l.Cfg.Grid.Configs()
		const reps = 10
		start := time.Now()
		for i := 0; i < reps; i++ {
			m.PredictGrid(window, cfgs)
		}
		per := time.Since(start) / reps
		t.AddRow(fmt.Sprintf("%d", sl), per.String(), fmtPct(m.EvalMAPE(val)))
	}
	r.AddNote("expected shape: time per sequence grows superlinearly with length; error tends down (paper picks the mid-length balance point)")
	r.AddNote("lengths are scaled from the lab's base window; the paper sweeps {128, 256, 512, 1024}")
	return r, nil
}

// Fig15b reproduces Fig. 15b: the encoder-layer ablation — 2 layers train
// stably with low MAPE and deeper stacks do not help.
func Fig15b(l *Lab) (*Report, error) {
	r := &Report{ID: "fig15b", Title: "Ablation on Transformer encoder layers"}
	t := r.AddTable("", "layers", "val_mape", "final_val_loss")
	for _, layers := range []int{1, 2, 4, 6} {
		layers := layers
		m, val, err := l.trainFor(func(mc *surrogate.ModelConfig) { mc.EncoderLayers = layers })
		if err != nil {
			return nil, err
		}
		tc := surrogate.DefaultTrainConfig()
		tc.SLO = l.Cfg.SLO
		t.AddRow(fmt.Sprintf("%d", layers), fmtPct(m.EvalMAPE(val)), fmtF(m.EvalLoss(val, tc)))
	}
	r.AddNote("expected shape: 2 layers reach low MAPE; 4 and 6 layers do not improve on it (the paper fixes N=2)")
	return r, nil
}
