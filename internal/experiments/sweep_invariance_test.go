package experiments

import (
	"bytes"
	"testing"

	"deepbat/internal/obs"
)

// scenariosAt runs the scenarios experiment on a fresh lab at the given
// worker count and returns the rendered report plus the merged metric
// snapshot of every cell.
func scenariosAt(t *testing.T, workers int) (string, []byte) {
	t.Helper()
	cfg := QuickLabConfig()
	cfg.Workers = workers
	l := NewLab(cfg)
	l.Obs = obs.NewRegistry()
	rep, err := Scenarios(l)
	if err != nil {
		t.Fatalf("Scenarios(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := l.Obs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return rep.String(), buf.Bytes()
}

// TestScenariosWorkerInvariance pins the acceptance criterion of the sweep
// retrofit: the scenarios report AND the merged metric snapshot are
// byte-identical at any worker count.
func TestScenariosWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("scenarios matrix is expensive; run without -short")
	}
	refRep, refSnap := scenariosAt(t, 1)
	for _, w := range []int{4, 8} {
		rep, snap := scenariosAt(t, w)
		if rep != refRep {
			t.Fatalf("workers=%d report differs from workers=1:\n--- w=%d ---\n%s\n--- w=1 ---\n%s", w, w, rep, refRep)
		}
		if !bytes.Equal(snap, refSnap) {
			t.Fatalf("workers=%d merged metric snapshot differs from workers=1", w)
		}
	}
}

// TestChaosWorkerInvariance covers the qsim-backed sweep the same way.
func TestChaosWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is expensive; run without -short")
	}
	run := func(workers int) (string, []byte) {
		cfg := QuickLabConfig()
		cfg.Workers = workers
		l := NewLab(cfg)
		l.Obs = obs.NewRegistry()
		rep, err := Chaos(l)
		if err != nil {
			t.Fatalf("Chaos(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := l.Obs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return rep.String(), buf.Bytes()
	}
	refRep, refSnap := run(1)
	rep, snap := run(8)
	if rep != refRep {
		t.Fatalf("workers=8 chaos report differs from workers=1")
	}
	if !bytes.Equal(snap, refSnap) {
		t.Fatalf("workers=8 chaos metric snapshot differs from workers=1")
	}
}
