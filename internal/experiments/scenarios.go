package experiments

import (
	"fmt"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/replay"
	"deepbat/internal/sweep"
	"deepbat/internal/workload"
)

// Scenarios sweeps the workload zoo through the real gateway hot path:
// every {trace x fault plan x SLO} cell is one virtual-time replay
// (internal/replay) of a tracev1 workload against gateway.Submit with
// virtual batch timers — not the discrete-event simulator. The matrix fans
// out across internal/sweep workers: each cell replays on its own gateway
// with an isolated metric registry, traces and digests come from the lab's
// shared read-only workload cache, and rows merge in cell-index order — so
// the table is byte-identical run to run AND at any worker count (traces
// are pure functions of their specs, fault outcomes are pure functions of
// the plan, and each replay driver is single-threaded on its own manual
// clock). It is the evaluation substrate ROADMAP items 1-4 plug into: a
// rival decider or retrained surrogate swaps into the gateway and reruns
// the identical request streams.
func Scenarios(l *Lab) (*Report, error) {
	rep := &Report{ID: "scenarios", Title: "Workload zoo replayed through the real gateway: {trace x fault x SLO}"}

	// One legacy anchor plus the four zoo shapes, scaled down from the
	// default spec to keep the sweep fast; shapes are preserved.
	traces := []string{"azure", "diurnal", "flashcrowd", "corrburst", "sizemix"}
	plans := []struct {
		name string
		plan fault.Plan
		res  gateway.Resilience
	}{
		{"none", fault.Plan{}, gateway.Resilience{}},
		{"errors", fault.Plan{Seed: 7, ErrorRate: 0.05}, gateway.Resilience{}},
		{"errors+retry", fault.Plan{Seed: 7, ErrorRate: 0.05}, gateway.Resilience{MaxRetries: 2}},
		{"stragglers", fault.Plan{Seed: 7, StragglerRate: 0.2, StragglerFactor: 4}, gateway.Resilience{}},
	}
	slos := []float64{0.1, 0.25}

	// Phase 1: synthesize the traces as parallel cells into the shared
	// cache; every replay cell below reads the same trace slices and
	// memoized digests.
	type traceInfo struct {
		t      *workload.Trace
		digest uint64
	}
	infos := make([]traceInfo, len(traces))
	if err := l.sweep(len(traces), func(c *sweep.Cell) error {
		spec := workload.DefaultSpec(traces[c.Index])
		spec.Hours, spec.HourSeconds = 2, 30
		t, err := l.WL.Generate(spec)
		if err != nil {
			return err
		}
		digest, err := l.WL.Digest(t)
		if err != nil {
			return err
		}
		infos[c.Index] = traceInfo{t, digest}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, tn := range traces {
		rep.AddNote("%s: %d requests, %d classes, tracev1 digest %016x",
			tn, len(infos[i].t.Reqs), len(infos[i].t.Header.Classes), infos[i].digest)
	}

	// Phase 2: the full matrix, one replay per cell. Each cell's gateway
	// records into the cell's private registry; rows land at the cell index,
	// so the fan-in below walks {trace x plan x slo} in the serial order.
	type cellKey struct{ ti, pi, si int }
	cells := make([]cellKey, 0, len(traces)*len(plans)*len(slos))
	for ti := range traces {
		for pi := range plans {
			for si := range slos {
				cells = append(cells, cellKey{ti, pi, si})
			}
		}
	}
	rows := make([][]string, len(cells))
	if err := l.sweep(len(cells), func(c *sweep.Cell) error {
		k := cells[c.Index]
		r, err := replay.Run(replay.Config{
			Trace:      infos[k.ti].t,
			Shards:     1,
			SLO:        slos[k.si],
			Fault:      plans[k.pi].plan,
			Resilience: plans[k.pi].res,
			WindowS:    30,
			Obs:        c.Obs(),
			Cache:      l.WL,
		})
		if err != nil {
			return fmt.Errorf("scenarios: %s/%s: %w", traces[k.ti], plans[k.pi].name, err)
		}
		tot := r.Totals
		rows[c.Index] = []string{
			traces[k.ti], plans[k.pi].name, fmtMS(slos[k.si]), fmtI(r.Requests),
			fmtI(tot.Served), fmtI(tot.Failed),
			fmtF(tot.ThroughputRPS), fmtF(tot.GoodputRPS),
			fmtMS(tot.P50MS / 1000), fmtMS(tot.P95MS / 1000), fmtMS(tot.P99MS / 1000),
			fmtUSD(r.CostUSD),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	tbl := rep.AddTable("replay: M=2048MB B=4 T=100ms, 1 shard, 2 paper-hours at 30 s/hour",
		"trace", "fault", "slo", "requests", "served", "failed",
		"thru_rps", "good_rps", "p50", "p95", "p99", "cost")
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	rep.AddNote("every cell replays the recorded request stream through gateway.Submit on a virtual clock (Config.VirtualTimers); same table on every run and machine")
	return rep, nil
}
