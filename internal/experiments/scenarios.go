package experiments

import (
	"fmt"

	"deepbat/internal/fault"
	"deepbat/internal/gateway"
	"deepbat/internal/replay"
	"deepbat/internal/workload"
)

// Scenarios sweeps the workload zoo through the real gateway hot path:
// every {trace x fault plan x SLO} cell is one virtual-time replay
// (internal/replay) of a tracev1 workload against gateway.Submit with
// virtual batch timers — not the discrete-event simulator. The table is
// fully deterministic: traces are pure functions of their specs, fault
// outcomes are pure functions of the plan, and the replay driver is
// single-threaded on a manual clock, so this report is byte-identical run
// to run. It is the evaluation substrate ROADMAP items 1-4 plug into: a
// rival decider or retrained surrogate swaps into the gateway and reruns
// the identical request streams.
func Scenarios(l *Lab) (*Report, error) {
	rep := &Report{ID: "scenarios", Title: "Workload zoo replayed through the real gateway: {trace x fault x SLO}"}

	// One legacy anchor plus the four zoo shapes, scaled down from the
	// default spec to keep the sweep fast; shapes are preserved.
	traces := []string{"azure", "diurnal", "flashcrowd", "corrburst", "sizemix"}
	plans := []struct {
		name string
		plan fault.Plan
		res  gateway.Resilience
	}{
		{"none", fault.Plan{}, gateway.Resilience{}},
		{"errors", fault.Plan{Seed: 7, ErrorRate: 0.05}, gateway.Resilience{}},
		{"errors+retry", fault.Plan{Seed: 7, ErrorRate: 0.05}, gateway.Resilience{MaxRetries: 2}},
		{"stragglers", fault.Plan{Seed: 7, StragglerRate: 0.2, StragglerFactor: 4}, gateway.Resilience{}},
	}
	slos := []float64{0.1, 0.25}

	tbl := rep.AddTable("replay: M=2048MB B=4 T=100ms, 1 shard, 2 paper-hours at 30 s/hour",
		"trace", "fault", "slo", "requests", "served", "failed",
		"thru_rps", "good_rps", "p50", "p95", "p99", "cost")
	for _, tn := range traces {
		spec := workload.DefaultSpec(tn)
		spec.Hours, spec.HourSeconds = 2, 30
		t, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		digest, err := workload.Digest(t)
		if err != nil {
			return nil, err
		}
		rep.AddNote("%s: %d requests, %d classes, tracev1 digest %016x",
			tn, len(t.Reqs), len(t.Header.Classes), digest)
		for _, pl := range plans {
			for _, slo := range slos {
				r, err := replay.Run(replay.Config{
					Trace:      t,
					Shards:     1,
					SLO:        slo,
					Fault:      pl.plan,
					Resilience: pl.res,
					WindowS:    30,
				})
				if err != nil {
					return nil, fmt.Errorf("scenarios: %s/%s: %w", tn, pl.name, err)
				}
				tot := r.Totals
				tbl.AddRow(tn, pl.name, fmtMS(slo), fmtI(r.Requests),
					fmtI(tot.Served), fmtI(tot.Failed),
					fmtF(tot.ThroughputRPS), fmtF(tot.GoodputRPS),
					fmtMS(tot.P50MS/1000), fmtMS(tot.P95MS/1000), fmtMS(tot.P99MS/1000),
					fmtUSD(r.CostUSD))
			}
		}
	}
	rep.AddNote("every cell replays the recorded request stream through gateway.Submit on a virtual clock (Config.VirtualTimers); same table on every run and machine")
	return rep, nil
}
