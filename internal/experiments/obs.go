package experiments

import (
	"deepbat/internal/obs"
	"deepbat/internal/optimizer"
	"deepbat/internal/qsim"
)

// Obs demonstrates the observability subsystem end to end: it instruments a
// ground-truth simulation of the first Azure paper-hour and one optimizer
// grid search with a shared registry and event recorder, then dumps the
// metric snapshot and event-stream summary as report tables. Everything is
// driven by simulated time, so re-running the experiment reproduces the same
// tables byte for byte.
func Obs(l *Lab) (*Report, error) {
	r := &Report{ID: "obs", Title: "observability: instrumented simulation and grid search"}

	reg := obs.NewRegistry()
	rec := obs.NewRecorder(nil, obs.DefaultRecorderCap)

	hour := l.Trace("azure").FirstHours(1)
	sim := l.Simulator()
	sim.Opts.EnableColdStarts = true
	sim.Opts.KeepAlive = l.Cfg.HourSeconds / 60
	sim.Opts.Obs = reg
	sim.Opts.Recorder = rec
	res, err := sim.Run(hour.Timestamps, l.replayOptions().InitialConfig)
	if err != nil {
		return nil, err
	}

	sys, err := l.BaseSystem()
	if err != nil {
		return nil, err
	}
	opt := optimizer.New(sys.Model, l.Cfg.Grid, l.Cfg.SLO)
	opt.Obs = reg
	opt.Recorder = rec
	// A manual clock keeps the sweep-duration histogram deterministic (every
	// sweep observes 0s), so the report stays byte-identical across runs.
	opt.Clock = &obs.ManualClock{}
	inter := qsim.Interarrivals(hour.Timestamps)
	if len(inter) > l.Cfg.SeqLen {
		inter = inter[len(inter)-l.Cfg.SeqLen:]
	}
	dec, err := opt.Decide(inter)
	if err != nil {
		return nil, err
	}

	metrics := r.AddTable("metric snapshot", "series", "kind", "value", "count", "sum")
	for _, s := range reg.Snapshot().Series {
		if s.Kind == obs.KindHistogram {
			metrics.AddRow(s.Name, string(s.Kind), "-", fmtI(int(s.Count)), fmtF(s.Sum))
			continue
		}
		metrics.AddRow(s.Name, string(s.Kind), fmtF(s.Value), "-", "-")
	}

	events := r.AddTable("event stream", "event", "count")
	for _, nc := range rec.CountByName() {
		events.AddRow(nc.Name, fmtI(nc.Count))
	}

	r.AddNote("simulated %d requests in %d batches; decision %s (feasible=%v, %d candidates)",
		len(res.Latencies), len(res.Batches), dec.Config.String(), dec.Feasible, dec.Evaluated)
	if d := rec.Dropped(); d > 0 {
		r.AddNote("recorder dropped %d events at capacity %d", d, obs.DefaultRecorderCap)
	}
	return r, nil
}
