package experiments

import (
	"fmt"
	"time"

	"deepbat/internal/batchopt"
	"deepbat/internal/lambda"
)

// Timing reproduces Section IV-F: the wall-clock time each framework needs
// to return an optimized configuration for the same observation window and
// candidate grid. On the authors' testbed BATCH takes 40.83 s against
// DeepBAT's 0.73 s — a 55.93x speedup; the reproduction criterion is the
// ordering and a large (>>10x) gap, since the absolute gap depends on the
// grid resolution of the analytical transient solver.
func Timing(l *Lab) (*Report, error) {
	r := &Report{ID: "timing", Title: "Optimized-configuration decision time: DeepBAT vs BATCH"}
	sys, err := l.BaseSystem()
	if err != nil {
		return nil, err
	}
	tr := l.Trace("azure")
	inter := tr.LastHours(l.Cfg.Hours / 2).Interarrivals()
	if len(inter) < l.Cfg.SeqLen {
		return nil, fmt.Errorf("experiments: not enough arrivals for a window")
	}
	window := inter[:len(inter)/2]

	// DeepBAT: encode once + score the full grid, repeated for stability.
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := sys.Decide(window[:l.Cfg.SeqLen]); err != nil {
			return nil, err
		}
	}
	deepbatTime := time.Since(start) / reps

	// BATCH: fit a MAP to the window, then solve the analytical model for
	// every configuration in the grid.
	pl := batchopt.NewPipeline(lambda.DefaultProfile(), lambda.DefaultPricing(), l.Cfg.Grid, l.Cfg.SLO)
	start = time.Now()
	rep, err := pl.Decide(window)
	if err != nil {
		return nil, err
	}
	batchTime := time.Since(start)

	t := r.AddTable("", "framework", "decision_time", "configs_scored")
	t.AddRow("DeepBAT", deepbatTime.String(), fmt.Sprintf("%d", l.Cfg.Grid.Size()))
	t.AddRow("BATCH", batchTime.String(), fmt.Sprintf("%d", l.Cfg.Grid.Size()))
	speedup := float64(batchTime) / float64(deepbatTime)
	r.AddNote("speedup: %.1fx (paper reports 55.93x on its testbed)", speedup)
	r.AddNote("BATCH additionally needs %d candidate-process evaluations for MAP fitting before it can solve at all", rep.Fit.Evaluations)
	return r, nil
}
